//! # nvbitfi-suite — umbrella crate for the NVBitFI reproduction
//!
//! Re-exports every layer of the stack so examples and integration tests
//! can depend on a single crate:
//!
//! * [`gpu_isa`] — the SASS-like instruction set (171 opcodes),
//! * [`gpu_sim`] — the architectural GPU simulator (SMs, warps, memory,
//!   traps, instrumentation hooks),
//! * [`gpu_runtime`] — the CUDA-like runtime with the tool attach point,
//! * [`nvbit`] — the dynamic binary-instrumentation framework analog,
//! * [`nvbitfi`] — the fault-injection tool itself (profiler, injectors,
//!   campaigns, outcome classification),
//! * [`workloads`] — the 15-program SpecACCEL-analog benchmark suite.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.

pub use gpu_isa;
pub use gpu_runtime;
pub use gpu_sim;
pub use nvbit;
pub use nvbitfi;
pub use workloads;
