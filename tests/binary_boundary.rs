//! The "no source code" contract: everything the tool layer sees crosses a
//! *binary* boundary, exactly as NVBitFI operates on shipped cubins.

use gpu_isa::{asm_text, disasm, encode};
use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};
use nvbit::{CallSite, InstrView, NvBit, NvBitTool};
use parking_lot::Mutex;
use std::sync::Arc;
use workloads::Scale;

/// A tool that records what it can see of the target's code.
struct Spy {
    sass: Arc<Mutex<Vec<String>>>,
}

impl NvBitTool for Spy {
    fn on_module_load(&mut self, module: &gpu_isa::Module) {
        // The tool receives decoded binaries and can disassemble them —
        // the cuobjdump/nvdisasm workflow.
        self.sass.lock().push(disasm::module(module));
    }
    fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
}

#[test]
fn tools_see_only_decoded_binaries() {
    let sass = Arc::new(Mutex::new(Vec::new()));
    let tool = NvBit::new(Spy { sass: Arc::clone(&sass) });
    let program = workloads::omriq::Omriq { scale: Scale::Test };
    let out = run_program(&program, RuntimeConfig::default(), Some(Box::new(tool)));
    assert!(out.termination.is_clean());
    let listings = sass.lock();
    assert_eq!(listings.len(), 1, "one module loaded");
    assert!(listings[0].contains("mriq_phimag"));
    assert!(listings[0].contains("MUFU"), "disassembly shows real instructions");
}

#[test]
fn module_binaries_round_trip_for_every_suite_kernel() {
    // Encode→decode is lossless for every kernel every program ships.
    struct Capture {
        bytes: Arc<Mutex<Vec<Vec<u8>>>>,
    }
    impl NvBitTool for Capture {
        fn on_module_load(&mut self, module: &gpu_isa::Module) {
            self.bytes.lock().push(encode::encode_module(module));
        }
        fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {}
    }
    for entry in workloads::suite(Scale::Test) {
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(Capture { bytes: Arc::clone(&bytes) });
        let out =
            run_program(entry.program.as_ref(), RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean(), "{}", entry.name);
        for blob in bytes.lock().iter() {
            let module = encode::decode_module(blob).expect("decode");
            let re = encode::encode_module(&module);
            assert_eq!(&re, blob, "{}: binary round-trip", entry.name);
            for kernel in module.kernels() {
                // Disassembly works for every kernel and mentions each
                // instruction index…
                let text = disasm::kernel(kernel);
                assert!(text.contains(&format!("/*{:04}*/", kernel.len() - 1)));
                // …and the text assembler reproduces the kernel exactly —
                // the cuobjdump→edit→reassemble loop closes.
                let reparsed = asm_text::parse_kernel(&text)
                    .unwrap_or_else(|e| panic!("{}: {}: {e}", entry.name, kernel.name()));
                assert_eq!(&reparsed, kernel, "{}: {}", entry.name, kernel.name());
            }
        }
    }
}

#[test]
fn instruction_inspection_matches_raw_instructions() {
    let kernel = workloads::kernels::saxpy_f32("k");
    for (pc, raw) in kernel.instrs().iter().enumerate() {
        let view = InstrView::new(pc as u32, raw);
        assert_eq!(view.opcode(), raw.op);
        assert_eq!(view.gpr_dests(), raw.gpr_dests());
        assert_eq!(view.has_dest(), raw.has_dest());
        assert!(view.sass().contains(raw.op.mnemonic()));
    }
}

#[test]
fn corrupt_binaries_are_rejected_at_load() {
    struct BadLoader;
    impl Program for BadLoader {
        fn name(&self) -> &str {
            "bad-loader"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let kernel = workloads::kernels::copy_f32("c");
            let mut bytes = encode::encode_module(&gpu_isa::Module::new("m", vec![kernel]));
            let len = bytes.len();
            bytes.truncate(len - 7); // rip the tail off
            match rt.load_module(&bytes) {
                Err(RuntimeError::ModuleLoad(_)) => Ok(()),
                other => panic!("expected load failure, got {other:?}"),
            }
        }
    }
    let out = run_program(&BadLoader, RuntimeConfig::default(), None);
    assert!(out.termination.is_clean());
}
