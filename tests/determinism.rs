//! Reproducibility guarantees: fault sites are deterministic functions of
//! the seed, and a fault site names the same architectural event on every
//! run — the property that makes `<kernel, instance, instruction>` tuples
//! meaningful at all.

use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::{
    run_transient_campaign, select_campaign, BitFlipModel, CampaignConfig, InstrGroup,
    ProfilingMode, TransientInjector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::Scale;

#[test]
fn same_seed_same_campaign() {
    let program = workloads::omriq::Omriq { scale: Scale::Test };
    let check = workloads::omriq::Omriq::check();
    let cfg = CampaignConfig {
        injections: 15,
        seed: 0xABCD,
        workers: 4,
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let a = run_transient_campaign(&program, &check, &cfg).expect("campaign a");
    let b = run_transient_campaign(&program, &check, &cfg).expect("campaign b");
    assert_eq!(a.counts, b.counts);
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.params, rb.params);
        assert_eq!(ra.outcome, rb.outcome);
        assert_eq!(ra.injected, rb.injected);
    }
}

#[test]
fn different_seeds_select_different_sites() {
    let program = workloads::omriq::Omriq { scale: Scale::Test };
    let profile =
        nvbitfi::profile_program(&program, RuntimeConfig::default(), ProfilingMode::Exact)
            .expect("profile");
    let mut r1 = StdRng::seed_from_u64(1);
    let mut r2 = StdRng::seed_from_u64(2);
    let s1 = select_campaign(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, 20, &mut r1)
        .expect("sites");
    let s2 = select_campaign(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, 20, &mut r2)
        .expect("sites");
    assert_ne!(s1, s2);
}

#[test]
fn a_fault_site_names_the_same_event_every_time() {
    // Inject the same site twice; the injector must corrupt the same
    // register of the same thread at the same pc with the same old value.
    let program = workloads::md::Md { scale: Scale::Test };
    let profile =
        nvbitfi::profile_program(&program, RuntimeConfig::default(), ProfilingMode::Exact)
            .expect("profile");
    let mut rng = StdRng::seed_from_u64(33);
    let params =
        nvbitfi::select_transient(&profile, InstrGroup::Fp64, BitFlipModel::FlipTwoBits, &mut rng)
            .expect("site");

    let observe = || {
        let (tool, handle) = TransientInjector::new(params.clone());
        let out = run_program(&program, RuntimeConfig::default(), Some(Box::new(tool)));
        (handle.get(), out.stdout, out.files)
    };
    let (rec_a, stdout_a, files_a) = observe();
    let (rec_b, stdout_b, files_b) = observe();
    assert!(rec_a.injected, "FP64 site must be reachable under exact profiling");
    assert_eq!(rec_a, rec_b, "identical architectural event");
    assert_eq!(stdout_a, stdout_b, "identical propagation");
    assert_eq!(files_a, files_b);
}

#[test]
fn golden_runs_are_bit_identical() {
    for entry in workloads::suite(Scale::Test).into_iter().take(5) {
        let a = run_program(entry.program.as_ref(), RuntimeConfig::default(), None);
        let b = run_program(entry.program.as_ref(), RuntimeConfig::default(), None);
        assert_eq!(a.stdout, b.stdout, "{}", entry.name);
        assert_eq!(a.files, b.files, "{}", entry.name);
        assert_eq!(a.summary.dyn_instrs, b.summary.dyn_instrs, "{}", entry.name);
    }
}
