//! Cross-validation of static dead-fault pruning.
//!
//! Pruning claims certain fault sites are provably Masked without
//! simulation. These tests hold it to that claim from three directions:
//!
//! 1. A program with known-dead writes: campaigns with and without
//!    `use_static_prune` must select the same sites and classify every one
//!    identically — the pruned runs' force-simulated counterparts must all
//!    come back Masked with no anomaly.
//! 2. The whole 15-program suite, same invariant (suite kernels are held
//!    lint-clean, so pruning rarely fires there — the sweep guards the
//!    equivalence as kernels evolve).
//! 3. Property tests over random programs: the static live-out set must
//!    over-approximate each thread's dynamic read-before-overwrite trace,
//!    and every site pruning flags must simulate to Masked.

use gpu_isa::asm::KernelBuilder;
use gpu_isa::{encode, CmpOp, Kernel, Module, PReg, Reg, SpecialReg};
use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use nvbitfi::{
    classify, golden_run, prune_dead_sites, run_transient_campaign, BitFlipModel, CampaignConfig,
    ExactDiff, InstrGroup, ProfilingMode, TransientInjector, TransientParams,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use workloads::Scale;

/// A program whose kernel mixes live computation with three dead writes
/// (R10, R11, R13 are never read), so a uniform campaign lands a healthy
/// fraction of its sites on provably-dead destinations.
struct DeadWrites;

impl Program for DeadWrites {
    fn name(&self) -> &str {
        "dead-writes"
    }
    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let mut k = KernelBuilder::new("deadw");
        let (out, tid, off, v) = (Reg(4), Reg(0), Reg(1), Reg(2));
        k.ldc(out, 0);
        k.s2r(tid, SpecialReg::TidX);
        k.shli(off, tid, 2);
        k.iadd(out, out, off);
        k.movi(Reg(10), 0xDEAD); // dead: R10 never read
        k.iaddi(Reg(11), tid, 3); // dead: R11 never read
        k.movi(v, 5);
        k.iadd(v, v, tid);
        k.shli(Reg(13), v, 1); // dead: R13 never read
        k.stg(out, 0, v);
        k.exit();
        let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
        let m = rt.load_module(&bytes)?;
        let k = rt.get_kernel(m, "deadw")?;
        let buf = rt.alloc(32 * 4)?;
        rt.launch(k, 1u32, 32u32, &[buf.addr()])?;
        rt.synchronize()?;
        let v = rt.read_u32s(buf, 32)?;
        rt.println(format!("sum={}", v.iter().sum::<u32>()));
        Ok(())
    }
}

fn paired_campaigns(
    program: &dyn Program,
    check: &dyn nvbitfi::SdcCheck,
    base: &CampaignConfig,
) -> (nvbitfi::TransientCampaign, nvbitfi::TransientCampaign) {
    let with = run_transient_campaign(
        program,
        check,
        &CampaignConfig { use_static_prune: true, ..base.clone() },
    )
    .expect("pruned campaign");
    let without = run_transient_campaign(
        program,
        check,
        &CampaignConfig { use_static_prune: false, ..base.clone() },
    )
    .expect("unpruned campaign");
    (with, without)
}

/// Identical selection and classification, run for run; every pruned
/// site's force-simulated counterpart Masked without anomaly.
fn assert_equivalent(with: &nvbitfi::TransientCampaign, without: &nvbitfi::TransientCampaign) {
    assert_eq!(with.runs.len(), without.runs.len());
    assert_eq!(with.counts, without.counts, "outcome distribution must not change");
    assert_eq!(without.statically_pruned(), 0);
    for (a, b) in with.runs.iter().zip(&without.runs) {
        assert_eq!(a.params, b.params, "same seed must select the same sites");
        assert_eq!(a.outcome, b.outcome, "pruning changed {}", a.params);
        if a.pruned {
            assert!(
                b.outcome.is_masked() && !b.outcome.potential_due,
                "pruned site {} simulates to {:?}, not Masked",
                a.params,
                b.outcome
            );
            assert!(b.injected, "pruned site {} never fired when simulated", a.params);
            assert_eq!(a.wall, std::time::Duration::ZERO);
        }
    }
}

#[test]
fn pruned_sites_simulate_to_masked() {
    let base = CampaignConfig {
        injections: 60,
        group: InstrGroup::Gp,
        seed: 11,
        workers: 2,
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let (with, without) = paired_campaigns(&DeadWrites, &ExactDiff, &base);
    assert!(
        with.statically_pruned() >= 1,
        "a kernel with three dead writes must yield pruned sites"
    );
    assert!(with.statically_pruned() < with.runs.len(), "live destinations must not be pruned");
    assert_equivalent(&with, &without);
    // The pruned campaign still accounts one (zero) timing entry per run.
    assert_eq!(with.timing.injections.len(), with.runs.len());
    assert!(with.timing.analysis > std::time::Duration::ZERO);
    assert_eq!(without.timing.analysis, std::time::Duration::ZERO);
}

#[test]
fn suite_campaigns_identical_with_and_without_pruning() {
    for entry in workloads::suite(Scale::Test) {
        let base = CampaignConfig {
            injections: 12,
            seed: 3,
            workers: 2,
            profiling: ProfilingMode::Exact,
            ..CampaignConfig::default()
        };
        let (with, without) = paired_campaigns(entry.program.as_ref(), entry.check.as_ref(), &base);
        assert_equivalent(&with, &without);
    }
}

// ---------------------------------------------------------------------------
// Property tests over random programs.
// ---------------------------------------------------------------------------

/// One body instruction of a random kernel.
#[derive(Debug, Clone)]
enum Op {
    /// `IADD32I Rd, Ra, imm`
    AddI { d: u8, a: u8, imm: i32 },
    /// `IADD Rd, Ra, Rb`
    Add { d: u8, a: u8, b: u8 },
    /// `IMUL Rd, Ra, Rb`
    Mul { d: u8, a: u8, b: u8 },
    /// `SHL Rd, Ra, sh`
    Shl { d: u8, a: u8, sh: u32 },
    /// `MOV32I Rd, imm`
    Mov { d: u8, imm: u32 },
    /// `ISETP.cmp P, Ra, imm`
    SetP { p: u8, a: u8, imm: i32 },
    /// `@P BRA +skip` — a forward branch over the next `skip` body ops.
    BraIf { p: u8, skip: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<i32>()).prop_map(|(d, a, imm)| Op::AddI {
            d: d % 8,
            a: a % 8,
            imm: imm % 100
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, a, b)| Op::Add {
            d: d % 8,
            a: a % 8,
            b: b % 8
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, a, b)| Op::Mul {
            d: d % 8,
            a: a % 8,
            b: b % 8
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, a, sh)| Op::Shl {
            d: d % 8,
            a: a % 8,
            sh: u32::from(sh % 8)
        }),
        (any::<u8>(), any::<u32>()).prop_map(|(d, imm)| Op::Mov { d: d % 8, imm: imm % 1000 }),
        (any::<u8>(), any::<u8>(), any::<i32>()).prop_map(|(p, a, imm)| Op::SetP {
            p: p % 3,
            a: a % 8,
            imm: imm % 50
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(p, skip)| Op::BraIf { p: p % 3, skip: skip % 4 }),
    ]
}

/// Assemble a random body into a runnable kernel: a prologue seeds R0-R7
/// and P0-P2 from the thread id, an epilogue stores R0-R5 so most live
/// corruption is observable, and every branch is a bounded forward skip.
fn build_kernel(body: &[Op]) -> Kernel {
    let mut k = KernelBuilder::new("rand");
    let (base, tid) = (Reg(8), Reg(9));
    k.ldc(base, 0);
    k.s2r(tid, SpecialReg::TidX);
    k.shli(Reg(10), tid, 5);
    k.iadd(base, base, Reg(10));
    for r in 0..8 {
        k.iaddi(Reg(r), tid, i32::from(r) * 7 + 1);
    }
    for p in 0..3 {
        k.isetp(PReg(p), CmpOp::Lt, tid, 16 + i32::from(p));
    }
    // Emit the body, binding each pending forward label after its skip
    // count of body ops has been emitted.
    let mut pending: Vec<(usize, gpu_isa::asm::Label)> = Vec::new();
    for op in body {
        match *op {
            Op::AddI { d, a, imm } => {
                k.iaddi(Reg(d), Reg(a), imm);
            }
            Op::Add { d, a, b } => {
                k.iadd(Reg(d), Reg(a), Reg(b));
            }
            Op::Mul { d, a, b } => {
                k.imul(Reg(d), Reg(a), Reg(b));
            }
            Op::Shl { d, a, sh } => {
                k.shli(Reg(d), Reg(a), sh);
            }
            Op::Mov { d, imm } => {
                k.movi(Reg(d), imm);
            }
            Op::SetP { p, a, imm } => {
                k.isetp(PReg(p), CmpOp::Lt, Reg(a), imm);
            }
            Op::BraIf { p, skip } => {
                let l = k.new_label();
                k.bra_if(PReg(p), l);
                pending.push((usize::from(skip) + 1, l));
            }
        }
        for entry in &mut pending {
            entry.0 -= 1;
        }
        while let Some(pos) = pending.iter().position(|&(left, _)| left == 0) {
            let (_, l) = pending.remove(pos);
            k.bind(l);
        }
    }
    for (_, l) in pending {
        k.bind(l);
    }
    for r in 0..6u8 {
        k.stg(base, i16::from(r) * 4, Reg(r));
    }
    k.exit();
    k.finish()
}

/// Runs `kernel` on one 32-thread block writing 32×8 u32s of output.
struct RandProg {
    kernel: Kernel,
}

impl Program for RandProg {
    fn name(&self) -> &str {
        "rand-prog"
    }
    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let bytes = encode::encode_module(&Module::new("m", vec![self.kernel.clone()]));
        let m = rt.load_module(&bytes)?;
        let k = rt.get_kernel(m, "rand")?;
        let buf = rt.alloc(32 * 32)?;
        rt.launch(k, 1u32, 32u32, &[buf.addr()])?;
        rt.synchronize()?;
        let v = rt.read_u32s(buf, 32 * 8)?;
        rt.println(format!("sum={}", v.iter().fold(0u32, |s, x| s.wrapping_add(*x))));
        Ok(())
    }
}

#[derive(Default)]
struct TraceState {
    /// Per thread: (instrs seen, site pc if reached, regs overwritten
    /// since the site, dynamic live set).
    threads: HashMap<u32, ThreadTrace>,
}

#[derive(Default)]
struct ThreadTrace {
    seen: u64,
    site_pc: Option<u32>,
    written: Vec<gpu_isa::RegSlot>,
    dyn_live: Vec<gpu_isa::RegSlot>,
}

/// Before-hook tracer: for each thread, treats its `site_index`-th
/// executed instruction as the injection site and collects every register
/// unit the thread reads afterwards before overwriting it — the *dynamic*
/// live set the static analysis must over-approximate.
struct LiveTracer {
    site_index: u64,
    state: Arc<Mutex<TraceState>>,
}

impl NvBitTool for LiveTracer {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        for pc in 0..kernel.len() {
            inserter.insert_call(pc, When::Before, 0, Vec::new());
        }
    }
    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        let mut state = self.state.lock();
        let t = state.threads.entry(thread.meta.flat_tid).or_default();
        let n = t.seen;
        t.seen += 1;
        let instr = site.instr.instr();
        if n == self.site_index {
            t.site_pc = Some(site.instr.pc());
        } else if n > self.site_index {
            for slot in instr.uses() {
                if !t.written.contains(&slot) && !t.dyn_live.contains(&slot) {
                    t.dyn_live.push(slot);
                }
            }
            // The callback only fires for guard-passing threads, so every
            // def actually writes.
            for slot in instr.defs() {
                if !t.written.contains(&slot) {
                    t.written.push(slot);
                }
            }
        }
    }
}

proptest! {
    /// Static liveness over-approximates every thread's dynamic
    /// read-before-overwrite set at every site.
    #[test]
    fn static_liveness_covers_dynamic_reads(
        body in proptest::collection::vec(arb_op(), 5..20),
        site_index in 0u64..24,
    ) {
        let kernel = build_kernel(&body);
        let cfg = gpu_analysis::Cfg::build(&kernel);
        prop_assert!(cfg.precise, "forward branches only");
        let live = gpu_analysis::Liveness::compute(&kernel, &cfg);
        let state = Arc::new(Mutex::new(TraceState::default()));
        let tracer = LiveTracer { site_index, state: Arc::clone(&state) };
        let program = RandProg { kernel: kernel.clone() };
        let out = run_program(&program, RuntimeConfig::default(), Some(Box::new(NvBit::new(tracer))));
        prop_assert!(out.termination.is_clean(), "{:?}", out.termination);
        let state = state.lock();
        prop_assert!(!state.threads.is_empty());
        for (tid, t) in &state.threads {
            let Some(pc) = t.site_pc else { continue };
            let static_live = live.live_out(pc);
            for slot in &t.dyn_live {
                prop_assert!(
                    static_live.contains(*slot),
                    "thread {tid}: {slot} read after pc {pc} but not statically live-out"
                );
            }
        }
    }

    /// Every site pruning flags as dead simulates to Masked: the injected
    /// run's output is bit-identical to golden.
    #[test]
    fn pruned_random_sites_simulate_to_masked(
        body in proptest::collection::vec(arb_op(), 5..20),
        dreg in 0u8..10,
    ) {
        let kernel = build_kernel(&body);
        let program = RandProg { kernel };
        let run_cfg = RuntimeConfig::default();
        let golden = golden_run(&program, run_cfg.clone()).expect("golden");
        // Lane-0 sites at the first 16 group-instruction ordinals.
        let sites: Vec<TransientParams> = (0..16u64)
            .map(|j| TransientParams {
                group: InstrGroup::Gp,
                bit_flip: BitFlipModel::FlipSingleBit,
                kernel_name: "rand".into(),
                kernel_count: 0,
                instruction_count: j * 32,
                destination_register: f64::from(dreg) / 10.0,
                bit_pattern: 0.5,
            })
            .collect();
        let flags = prune_dead_sites(&program, run_cfg.clone(), InstrGroup::Gp, &sites);
        for (site, pruned) in sites.into_iter().zip(flags) {
            if !pruned {
                continue;
            }
            let (tool, handle) = TransientInjector::new(site.clone());
            let out = run_program(&program, run_cfg.clone(), Some(Box::new(tool)));
            let outcome = classify(&golden, &out, &ExactDiff);
            prop_assert!(handle.get().injected, "pruned site {site} never fired");
            prop_assert!(
                outcome.is_masked() && !outcome.potential_due,
                "pruned site {site} simulated to {outcome:?}"
            );
        }
    }
}
