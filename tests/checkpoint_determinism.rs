//! Checkpoint fast-forward must be invisible to fault injection: for every
//! suite program, an injection run that restores the golden checkpoint
//! preceding its target kernel instance must produce the same classified
//! `Outcome`, the same `InjectionDetail` (same architectural event), and
//! bit-identical program output as a run that re-simulates the full prefix.

use gpu_runtime::{run_program, run_program_fast_forward, RuntimeConfig};
use nvbitfi::{
    classify, golden_run_recording, profile_program, select_transient, BitFlipModel,
    CampaignConfig, InstrGroup, ProfilingMode, TransientInjector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use workloads::Scale;

#[test]
fn checkpoint_restored_runs_match_full_reexecution_on_every_workload() {
    for entry in workloads::suite(Scale::Test) {
        let cfg = RuntimeConfig::default();
        let (golden, store) =
            golden_run_recording(entry.program.as_ref(), cfg.clone()).expect(entry.name);
        let profile = profile_program(entry.program.as_ref(), cfg.clone(), ProfilingMode::Exact)
            .expect(entry.name);

        let mut run_cfg = cfg;
        run_cfg.instr_budget = Some(golden.suggested_budget());
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);

        // A couple of sites per program keeps the sweep cheap while still
        // exercising different target instances (and hence different
        // checkpoint indices).
        for _ in 0..2 {
            let params =
                select_transient(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, &mut rng)
                    .expect(entry.name);
            let upto = store
                .find_instance(&params.kernel_name, params.kernel_count)
                .unwrap_or(store.len() as u64);

            let (tool, full_handle) = TransientInjector::new(params.clone());
            let full = run_program(entry.program.as_ref(), run_cfg.clone(), Some(Box::new(tool)));

            let (tool, ff_handle) = TransientInjector::new(params.clone());
            let ff = run_program_fast_forward(
                entry.program.as_ref(),
                run_cfg.clone(),
                Some(Box::new(tool)),
                Arc::new(store.clone()),
                upto,
            );

            let ctx = format!("{} site {params}", entry.name);
            assert_eq!(ff.stdout, full.stdout, "{ctx}");
            assert_eq!(ff.files, full.files, "{ctx}");
            assert_eq!(ff.termination, full.termination, "{ctx}");
            assert_eq!(ff.anomalies.len(), full.anomalies.len(), "{ctx}");
            assert_eq!(ff_handle.get(), full_handle.get(), "{ctx}: architectural event");
            assert_eq!(
                classify(&golden, &ff, entry.check.as_ref()),
                classify(&golden, &full, entry.check.as_ref()),
                "{ctx}: classified outcome"
            );
            assert_eq!(
                ff.prefix_instrs_skipped,
                store.instrs_before(upto),
                "{ctx}: skipped exactly the recorded prefix"
            );
        }
    }
}

#[test]
fn campaign_outcome_counts_match_with_and_without_checkpoints() {
    // The acceptance check's correctness half: same seed, same workload,
    // identical OutcomeCounts whether or not injection runs fast-forward.
    let entry = workloads::find(Scale::Test, "303.ostencil").expect("suite entry");
    let base = CampaignConfig {
        injections: 20,
        seed: 0xFA57,
        workers: 4,
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let with = nvbitfi::run_transient_campaign(
        entry.program.as_ref(),
        entry.check.as_ref(),
        &CampaignConfig { use_checkpoints: true, ..base.clone() },
    )
    .expect("checkpointed campaign");
    let without = nvbitfi::run_transient_campaign(
        entry.program.as_ref(),
        entry.check.as_ref(),
        &CampaignConfig { use_checkpoints: false, ..base },
    )
    .expect("full-replay campaign");

    assert_eq!(with.counts, without.counts);
    for (a, b) in with.runs.iter().zip(&without.runs) {
        assert_eq!(a.params, b.params, "selection order preserved");
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.injected, b.injected);
        assert_eq!(b.prefix_instrs_skipped, 0, "--no-checkpoint replays everything");
    }
    assert!(
        with.timing.prefix_instrs_skipped > 0,
        "checkpointed campaign skipped some prefix work"
    );
}
