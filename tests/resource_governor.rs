//! Resource-governor calibration and classification: the default caps must
//! be invisible to every workload's golden run, while a fault-corrupted
//! allocation size must trip the governor and classify as a crash DUE —
//! never as an infrastructure error or a harness panic.

use gpu_runtime::{
    run_program, Program, Runtime, RuntimeConfig, RuntimeError, Termination,
    OUTPUT_TRUNCATED_MARKER,
};
use nvbitfi::{classify, golden_run, DueKind, OutcomeClass};
use workloads::{suite, Scale};

/// The governor's defaults are calibrated against the whole suite: every
/// golden run completes cleanly, with no resource trap, no anomaly, and
/// no truncated output, under `RuntimeConfig::default()` (which carries
/// `ResourceLimits::default()`).
#[test]
fn default_caps_are_invisible_to_all_golden_runs() {
    let entries = suite(Scale::Test);
    assert_eq!(entries.len(), 15, "the paper's full workload table");
    for entry in entries {
        let name = entry.program.name().to_string();
        let golden = golden_run(entry.program.as_ref(), RuntimeConfig::default())
            .unwrap_or_else(|e| panic!("{name}: golden run trips the governor: {e}"));
        assert!(
            !golden.stdout.contains(OUTPUT_TRUNCATED_MARKER),
            "{name}: governor truncated golden output"
        );
    }
}

/// An MRI-style reduction whose scratch-buffer size lives in a "size
/// register". With `corrupt` set, the program models an injected single-bit
/// flip (bit 30) in that register before the allocation — the classic
/// fault-to-runaway-`cudaMalloc` path the governor exists to contain.
#[derive(Debug, Clone, Copy)]
struct RunawayAlloc {
    corrupt: bool,
}

impl Program for RunawayAlloc {
    fn name(&self) -> &str {
        "runaway-alloc"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let mut size: u32 = 4096;
        if self.corrupt {
            size ^= 1 << 30; // the injected bit flip in the size register
        }
        let buf = rt.alloc(size)?;
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        rt.write_f32s(buf, &data)?;
        let back = rt.read_f32s(buf, data.len())?;
        let sum: f64 = back.iter().map(|v| *v as f64).sum();
        rt.println(format!("runaway-alloc sum {sum}"));
        Ok(())
    }
}

/// A corrupted size register inflates the allocation past the governor's
/// global-memory cap: the run terminates as a crash (the sandbox kills the
/// victim like an OOM-kill) and classifies as `Due(Crash)` — a program
/// outcome that stays in the paper's denominators, not an `InfraError`.
#[test]
fn corrupted_size_register_classifies_as_crash_due() {
    let clean = RunawayAlloc { corrupt: false };
    let golden = golden_run(&clean, RuntimeConfig::default()).expect("clean run is clean");

    let out = run_program(&RunawayAlloc { corrupt: true }, RuntimeConfig::default(), None);
    assert_eq!(out.termination, Termination::Crash, "governor kill surfaces as a crash");
    assert!(out.has_anomaly(), "the resource trap is logged as a device anomaly");

    let check = workloads::TolerantCheck::f32(1e-6);
    let outcome = classify(&golden, &out, &check);
    assert_eq!(outcome.class, OutcomeClass::Due(DueKind::Crash));
    assert!(!outcome.potential_due, "a DUE is terminal, not merely potential");
}
