//! SDC-checker sensitivity: every program's checking script must (a) pass
//! its own golden output, (b) catch corrupted output files, (c) catch
//! corrupted stdout, and — for tolerance-based checkers — (d) accept
//! last-ulp drift. "SDC checking scripts must always be provided by the
//! user" (§IV-A); these tests are the contract those scripts satisfy.

use gpu_runtime::{ProgramOutput, RuntimeConfig, Termination};
use nvbitfi::{golden_run, GoldenOutput, SdcVerdict};
use workloads::Scale;

fn as_output(g: &GoldenOutput) -> ProgramOutput {
    ProgramOutput {
        stdout: g.stdout.clone(),
        files: g.files.clone(),
        termination: Termination::Normal { exit_code: 0 },
        anomalies: Vec::new(),
        summary: g.summary.clone(),
        prefix_instrs_skipped: 0,
    }
}

#[test]
fn every_checker_passes_its_own_golden() {
    for entry in workloads::suite(Scale::Test) {
        let golden = golden_run(entry.program.as_ref(), RuntimeConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let verdict = entry.check.check(&golden, &as_output(&golden));
        assert_eq!(verdict, SdcVerdict::Pass, "{}", entry.name);
    }
}

#[test]
fn every_checker_catches_file_corruption() {
    for entry in workloads::suite(Scale::Test) {
        let golden = golden_run(entry.program.as_ref(), RuntimeConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let mut run = as_output(&golden);
        let (name, bytes) = run.files.iter_mut().next().unwrap_or_else(|| {
            panic!("{} writes no output file", entry.name);
        });
        // Corrupt the exponent byte of an element-aligned slot in the
        // middle: a change no numeric tolerance can absorb. (Element width
        // is 4 or 8 bytes; 8-byte alignment lands on an element start for
        // both, and the last byte of an 8-byte window is an exponent byte
        // for f64 while offset +3 is the exponent byte for f32.)
        let start = (bytes.len() / 2) & !7;
        let hi = if matches!(entry.name, "350.md") { start + 7 } else { start + 3 };
        bytes[hi] ^= 0x7F;
        let name = name.clone();
        let verdict = entry.check.check(&golden, &run);
        assert!(
            matches!(verdict, SdcVerdict::Fail(_)),
            "{}: corrupting {name} must be an SDC",
            entry.name
        );
    }
}

#[test]
fn every_checker_catches_stdout_corruption() {
    for entry in workloads::suite(Scale::Test) {
        let golden = golden_run(entry.program.as_ref(), RuntimeConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let mut run = as_output(&golden);
        // Multiply the first numeric token by 10 (shift its decimal point):
        // far outside any checker's tolerance.
        let corrupted: Vec<String> = golden
            .stdout
            .split_whitespace()
            .map(|tok| match tok.parse::<f64>() {
                Ok(v) if v != 0.0 => format!("{}", v * 10.0),
                _ => tok.to_string(),
            })
            .collect();
        run.stdout = corrupted.join(" ");
        assert_ne!(run.stdout, golden.stdout, "{}: corruption must change stdout", entry.name);
        let verdict = entry.check.check(&golden, &run);
        assert!(
            matches!(verdict, SdcVerdict::Fail(_)),
            "{}: corrupted stdout must be an SDC",
            entry.name
        );
    }
}

#[test]
fn tolerant_checkers_accept_last_ulp_drift() {
    // FP programs' checkers must not flag sub-tolerance drift (the reason
    // user-provided scripts exist at all: bit-exact comparison would flag
    // benign reassociation differences on real GPUs).
    for name in ["303.ostencil", "355.seismic", "363.swim"] {
        let entry = workloads::find(Scale::Test, name).expect("suite entry");
        let golden = golden_run(entry.program.as_ref(), RuntimeConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut run = as_output(&golden);
        // Nudge every f32 element by one ulp.
        let bytes = run.files.values_mut().next().expect("an output file");
        for chunk in bytes.chunks_exact_mut(4) {
            let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let nudged = f32::from_bits(v.to_bits().wrapping_add(1));
            if nudged.is_finite() {
                chunk.copy_from_slice(&nudged.to_le_bytes());
            }
        }
        let verdict = entry.check.check(&golden, &run);
        assert_eq!(verdict, SdcVerdict::Pass, "{name}: one-ulp drift is not an SDC");
    }
}
