//! Workspace-level integration tests: the full Figure 1 pipeline across
//! every crate — ISA → simulator → runtime → NVBit layer → NVBitFI
//! campaigns — on real suite programs.

use nvbitfi::{
    run_permanent_campaign, run_transient_campaign, CampaignConfig, PermanentCampaignConfig,
    ProfilingMode,
};
use workloads::Scale;

fn small_campaign(profiling: ProfilingMode, injections: usize, seed: u64) -> CampaignConfig {
    CampaignConfig { injections, profiling, seed, workers: 2, ..CampaignConfig::default() }
}

#[test]
fn transient_campaign_end_to_end_ostencil() {
    let program = workloads::ostencil::Ostencil { scale: Scale::Test };
    let check = workloads::ostencil::Ostencil::check();
    let result =
        run_transient_campaign(&program, &check, &small_campaign(ProfilingMode::Exact, 25, 1))
            .expect("campaign");
    // Every injection classified, exactly once.
    assert_eq!(result.counts.total(), 25);
    assert_eq!(result.runs.len(), 25);
    // With exact profiling every selected site exists, so every fault fires.
    assert!(result.runs.iter().all(|r| r.injected), "exact profile sites must be reachable");
    // The profile matches the program's Table IV shape.
    assert_eq!(result.profile.kernels.len(), 11); // 2*5 stencil + 1 copy at Test scale
    assert!(result.profile.total() > 0);
    // Timing was recorded for the overhead figures.
    assert!(result.timing.profiling > std::time::Duration::ZERO);
    assert_eq!(result.timing.injections.len(), 25);
}

#[test]
fn transient_campaign_covers_multiple_outcome_classes() {
    // With pointer-heavy G_GP injections on a checking program, a moderate
    // campaign reliably produces both masked and non-masked outcomes.
    let program = workloads::ostencil::Ostencil { scale: Scale::Test };
    let check = workloads::ostencil::Ostencil::check();
    let result =
        run_transient_campaign(&program, &check, &small_campaign(ProfilingMode::Exact, 60, 2))
            .expect("campaign");
    let c = &result.counts;
    assert!(c.masked > 0, "some faults must mask: {c}");
    assert!(c.sdc + c.due() > 0, "some faults must propagate: {c}");
}

#[test]
fn approximate_profiling_may_miss_sites_but_still_classifies() {
    // cg's reduction tree makes instance workloads differ; approximate
    // profiling extrapolates from the first instance, so some selected
    // sites may never be reached. Those runs must still classify (Masked).
    let program = workloads::cg::Cg { scale: Scale::Test };
    let check = workloads::cg::Cg::check();
    let result = run_transient_campaign(
        &program,
        &check,
        &small_campaign(ProfilingMode::Approximate, 40, 3),
    )
    .expect("campaign");
    assert_eq!(result.counts.total(), 40);
    let unfired = result.runs.iter().filter(|r| !r.injected).count();
    // Not asserting unfired > 0 (seed-dependent), but unfired runs must be
    // masked: no injection, no corruption.
    for run in result.runs.iter().filter(|r| !r.injected) {
        assert!(run.outcome.is_masked(), "unfired injection classified {}", run.outcome);
    }
    // The approximate profile believes all instances of a static kernel
    // look like the first one.
    let p = &result.profile;
    let mut by_name: std::collections::HashMap<&str, Vec<u64>> = Default::default();
    for k in &p.kernels {
        by_name.entry(k.kernel.as_str()).or_default().push(k.total());
    }
    for (name, totals) in by_name {
        assert!(
            totals.iter().all(|t| *t == totals[0]),
            "approximate profile must replicate first-instance counts for {name}"
        );
    }
    let _ = unfired;
}

#[test]
fn permanent_campaign_end_to_end_md() {
    let program = workloads::md::Md { scale: Scale::Test };
    let check = workloads::md::Md::check();
    let cfg = PermanentCampaignConfig { seed: 4, workers: 2, ..Default::default() };
    let result = run_permanent_campaign(&program, &check, &cfg).expect("campaign");
    // One experiment per executed opcode, pruned by the profile (§IV-C).
    let executed = result.profile.executed_opcodes();
    assert_eq!(result.runs.len(), executed.len());
    assert!(
        (10..=50).contains(&executed.len()),
        "executed-opcode count should be in the paper's ballpark (16-41): {}",
        executed.len()
    );
    // Weighted fractions form a distribution.
    let w = result.weighted;
    assert!((w.sdc + w.due + w.masked - 1.0).abs() < 1e-9, "{w:?}");
    // FP64 opcodes are in the mix for md.
    assert!(executed.iter().any(|o| o.mnemonic() == "DFMA"), "md is FP64-heavy");
}

#[test]
fn unweighted_and_weighted_permanent_outcomes_differ_in_general() {
    // Weighting by dynamic count is the whole point of Figure 3's
    // aggregation; check the machinery produces sane numbers on ep.
    let program = workloads::ep::Ep { scale: Scale::Test };
    let check = workloads::ep::Ep::check();
    let cfg = PermanentCampaignConfig { seed: 5, workers: 2, ..Default::default() };
    let result = run_permanent_campaign(&program, &check, &cfg).expect("campaign");
    assert_eq!(result.counts.total() as usize, result.runs.len());
    let total_weight: u64 = result.runs.iter().map(|r| r.weight).sum();
    assert!(total_weight > 0);
    // Every run's weight equals its opcode's profile total.
    for run in &result.runs {
        assert_eq!(run.weight, result.profile.opcode_total(run.params.opcode()));
    }
}

#[test]
fn campaign_over_whole_suite_smoke() {
    // Tiny campaign across all 15 programs: everything loads, profiles,
    // injects, and classifies without errors.
    for entry in workloads::suite(Scale::Test) {
        let result = run_transient_campaign(
            entry.program.as_ref(),
            entry.check.as_ref(),
            &small_campaign(ProfilingMode::Approximate, 4, 6),
        )
        .unwrap_or_else(|e| panic!("campaign failed for {}: {e}", entry.name));
        assert_eq!(result.counts.total(), 4, "{}", entry.name);
    }
}

#[test]
fn profiler_counts_match_simulator_counts() {
    // The profiler's total must equal the simulator's own thread-level
    // dynamic-instruction statistic for the same run — two independent
    // counting paths (tool callbacks vs scheduler counters) agreeing.
    use gpu_runtime::{run_program, RuntimeConfig};
    for entry in workloads::suite(Scale::Test).into_iter().take(6) {
        let out = run_program(entry.program.as_ref(), RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", entry.name);
        let profile = nvbitfi::profile_program(
            entry.program.as_ref(),
            RuntimeConfig::default(),
            ProfilingMode::Exact,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(
            profile.total(),
            out.summary.dyn_instrs,
            "{}: profiler vs scheduler disagree",
            entry.name
        );
        // One profile line per dynamic kernel launch.
        assert_eq!(profile.kernels.len(), out.summary.launches.len(), "{}", entry.name);
    }
}
