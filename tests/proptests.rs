//! Property-based tests over core data structures and invariants.

use gpu_isa::{
    encode, AtomOp, BoolOp, CmpOp, Dst, Guard, Instr, Kernel, MemRef, MemWidth, Modifier, Module,
    MufuFunc, Opcode, Operand, PReg, Reg, RoundMode, ShflMode, Space, SpecialReg,
};
use nvbitfi::{
    logfile, BitFlipModel, DueKind, InfraKind, InjectionRun, InstrGroup, KernelProfile, Outcome,
    OutcomeClass, Profile, ProfilingMode, SdcReason, TransientParams,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_reg() -> impl Strategy<Value = Reg> {
    any::<u8>().prop_map(Reg)
}

fn arb_preg() -> impl Strategy<Value = PReg> {
    (0u8..8).prop_map(PReg)
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0..gpu_isa::OPCODE_COUNT).prop_map(|i| Opcode::ALL[i])
}

fn arb_space() -> impl Strategy<Value = Space> {
    prop_oneof![Just(Space::Global), Just(Space::Shared), Just(Space::Local), Just(Space::Const)]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::None),
        arb_reg().prop_map(Operand::R),
        arb_reg().prop_map(Operand::R64),
        arb_preg().prop_map(Operand::P),
        arb_preg().prop_map(Operand::NotP),
        any::<u32>().prop_map(Operand::Imm),
        (arb_reg(), any::<i16>(), arb_space())
            .prop_map(|(base, offset, space)| Operand::Mem(MemRef { base, offset, space })),
        (0usize..SpecialReg::ALL.len()).prop_map(|i| Operand::Sr(SpecialReg::ALL[i])),
    ]
}

fn arb_dst() -> impl Strategy<Value = Dst> {
    prop_oneof![
        Just(Dst::None),
        arb_reg().prop_map(Dst::R),
        arb_reg().prop_map(Dst::R64),
        arb_preg().prop_map(Dst::P),
    ]
}

fn arb_modifier() -> impl Strategy<Value = Modifier> {
    prop_oneof![
        Just(Modifier::None),
        (0usize..CmpOp::ALL.len()).prop_map(|i| Modifier::Cmp(CmpOp::ALL[i])),
        (0usize..CmpOp::ALL.len(), 0usize..BoolOp::ALL.len())
            .prop_map(|(c, b)| Modifier::CmpBool(CmpOp::ALL[c], BoolOp::ALL[b])),
        (0usize..MemWidth::ALL.len()).prop_map(|i| Modifier::Width(MemWidth::ALL[i])),
        (0usize..MufuFunc::ALL.len()).prop_map(|i| Modifier::Func(MufuFunc::ALL[i])),
        (0usize..RoundMode::ALL.len()).prop_map(|i| Modifier::Round(RoundMode::ALL[i])),
        any::<u8>().prop_map(Modifier::Lut),
        (0usize..ShflMode::ALL.len()).prop_map(|i| Modifier::Shfl(ShflMode::ALL[i])),
        (0usize..AtomOp::ALL.len()).prop_map(|i| Modifier::AtomOp(AtomOp::ALL[i])),
    ]
}

fn arb_guard() -> impl Strategy<Value = Guard> {
    (arb_preg(), any::<bool>()).prop_map(|(pred, negated)| Guard { pred, negated })
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    // SDC payloads use the parser's placeholder strings so a serialized
    // outcome round-trips to an *equal* value, not just the same kind.
    let class = prop_oneof![
        Just(OutcomeClass::Masked),
        Just(OutcomeClass::Sdc(vec![SdcReason::Stdout])),
        Just(OutcomeClass::Sdc(vec![SdcReason::File("<from-log>".into())])),
        Just(OutcomeClass::Sdc(vec![SdcReason::AppCheck("<from-log>".into())])),
        Just(OutcomeClass::Sdc(vec![])),
        Just(OutcomeClass::Due(DueKind::Timeout)),
        Just(OutcomeClass::Due(DueKind::Crash)),
        Just(OutcomeClass::Due(DueKind::NonZeroExit)),
        Just(OutcomeClass::InfraError(InfraKind::WorkerPanic)),
        Just(OutcomeClass::InfraError(InfraKind::Deadline)),
    ];
    (class, any::<bool>()).prop_map(|(class, potential_due)| Outcome { class, potential_due })
}

prop_compose! {
    fn arb_log_run()(
        igid in 1u8..9,
        bfm in 1u8..5,
        kern in 0u8..4,
        kcount in 0u64..6,
        icount in 0u64..100_000,
        dreg in 0.0f64..1.0,
        bitpat in 0.0f64..1.0,
        outcome in arb_outcome(),
        injected in any::<bool>(),
        wall_us in any::<u32>(),
        skipped in any::<u32>(),
        pruned in any::<bool>(),
        attempts in 1u32..5,
    ) -> InjectionRun {
        InjectionRun {
            params: TransientParams {
                group: InstrGroup::from_id(igid).expect("valid igid"),
                bit_flip: BitFlipModel::from_id(bfm).expect("valid bfm"),
                kernel_name: format!("kern_{kern}"),
                kernel_count: kcount,
                instruction_count: icount,
                destination_register: dreg,
                bit_pattern: bitpat,
            },
            outcome,
            injected,
            wall: std::time::Duration::from_micros(u64::from(wall_us)),
            prefix_instrs_skipped: u64::from(skipped),
            pruned,
            attempts,
            resumed: false,
        }
    }
}

prop_compose! {
    fn arb_instr()(
        op in arb_opcode(),
        guard in arb_guard(),
        modifier in arb_modifier(),
        d0 in arb_dst(),
        d1 in arb_dst(),
        s0 in arb_operand(),
        s1 in arb_operand(),
        s2 in arb_operand(),
        s3 in arb_operand(),
    ) -> Instr {
        let mut i = Instr::new(op);
        i.guard = guard;
        i.modifier = modifier;
        i.dsts = [d0, d1];
        i.srcs = [s0, s1, s2, s3];
        // branch targets are resolved separately; keep 0 so Kernel::new
        // validation passes for any instruction count
        i.target = 0;
        i
    }
}

proptest! {
    #[test]
    fn instruction_encoding_roundtrips(instr in arb_instr()) {
        let mut buf = bytes::BytesMut::new();
        encode::encode_instr(&instr, &mut buf);
        prop_assert_eq!(buf.len(), encode::INSTR_BYTES);
        let mut bytes = buf.freeze();
        let back = encode::decode_instr(&mut bytes).expect("decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn module_encoding_roundtrips(instrs in prop::collection::vec(arb_instr(), 1..40)) {
        let kernel = Kernel::new("k", instrs, 64).expect("kernel");
        let module = Module::new("m", vec![kernel]);
        let bytes = encode::encode_module(&module);
        let back = encode::decode_module(&bytes).expect("decode");
        prop_assert_eq!(back, module);
    }

    #[test]
    fn truncated_modules_never_panic(instrs in prop::collection::vec(arb_instr(), 1..10), cut in any::<prop::sample::Index>()) {
        let kernel = Kernel::new("k", instrs, 0).expect("kernel");
        let bytes = encode::encode_module(&Module::new("m", vec![kernel]));
        let cut = cut.index(bytes.len());
        // Must return Err, never panic.
        prop_assert!(encode::decode_module(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflip_masks_in_spec(value in 0.0f64..1.0, original: u32) {
        // FLIP_SINGLE_BIT: exactly one bit.
        prop_assert_eq!(BitFlipModel::FlipSingleBit.mask(value, original).count_ones(), 1);
        // FLIP_TWO_BITS: exactly two adjacent bits.
        let two = BitFlipModel::FlipTwoBits.mask(value, original);
        prop_assert_eq!(two.count_ones(), 2);
        prop_assert_eq!(two >> two.trailing_zeros(), 0b11);
        // ZERO_VALUE: corruption yields zero.
        prop_assert_eq!(BitFlipModel::ZeroValue.corrupt(value, original), 0);
        // Corruption is an involution for XOR-mask models.
        let m = BitFlipModel::FlipSingleBit.mask(value, original);
        prop_assert_eq!(original ^ m ^ m, original);
    }

    #[test]
    fn groups_partition_and_derive(op in arb_opcode()) {
        let base: usize = InstrGroup::ALL[..6].iter().filter(|g| g.contains(op)).count();
        prop_assert_eq!(base, 1);
        prop_assert_eq!(InstrGroup::GpPr.contains(op), !InstrGroup::NoDest.contains(op));
        prop_assert_eq!(
            InstrGroup::Gp.contains(op),
            !InstrGroup::NoDest.contains(op) && !InstrGroup::Pr.contains(op)
        );
    }

    #[test]
    fn profile_locate_is_a_bijection(
        counts in prop::collection::vec((0u64..60, 0u64..60, 0u64..60), 1..8)
    ) {
        // Build a profile with arbitrary FADD/LDG/EXIT counts per kernel.
        let kernels: Vec<KernelProfile> = counts
            .iter()
            .enumerate()
            .map(|(i, (fadd, ldg, exit))| {
                let mut c = BTreeMap::new();
                if *fadd > 0 { c.insert(Opcode::FADD, *fadd); }
                if *ldg > 0 { c.insert(Opcode::LDG, *ldg); }
                if *exit > 0 { c.insert(Opcode::EXIT, *exit); }
                KernelProfile { kernel: format!("k{i}"), instance: 0, counts: c }
            })
            .collect();
        let profile = Profile { mode: ProfilingMode::Exact, kernels };
        let group = InstrGroup::Gp; // FADD + LDG
        let total = profile.total_in_group(group);
        // Every n < total maps to a site with a within-kernel index smaller
        // than that kernel's group population; n == total maps to None.
        let mut seen = std::collections::HashSet::new();
        for n in 0..total {
            let site = profile.locate(group, n).expect("in range");
            let k = profile
                .kernels
                .iter()
                .find(|k| k.kernel == site.kernel && k.instance == site.kernel_count)
                .expect("kernel exists");
            prop_assert!(site.instruction_count < k.total_in_group(group));
            seen.insert((site.kernel.clone(), site.kernel_count, site.instruction_count));
        }
        prop_assert_eq!(seen.len() as u64, total, "distinct sites");
        prop_assert_eq!(profile.locate(group, total), None);
    }

    #[test]
    fn profile_file_roundtrips(
        counts in prop::collection::vec((0u64..1000, 0u64..1000), 1..6),
        approx in any::<bool>(),
    ) {
        let kernels: Vec<KernelProfile> = counts
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let mut c = BTreeMap::new();
                if *a > 0 { c.insert(Opcode::DFMA, *a); }
                if *b > 0 { c.insert(Opcode::ISETP, *b); }
                KernelProfile { kernel: format!("kern_{i}"), instance: i as u64, counts: c }
            })
            .collect();
        let profile = Profile {
            mode: if approx { ProfilingMode::Approximate } else { ProfilingMode::Exact },
            kernels,
        };
        let text = profile.to_file();
        prop_assert_eq!(Profile::from_file(&text).expect("parse"), profile);
    }

    #[test]
    fn regfile_pairs_compose(lo: u32, hi: u32, base in (0u8..250).prop_map(|v| v & !1)) {
        let mut rf = gpu_sim::RegFile::new();
        let r = Reg(base);
        rf.write(r, lo);
        rf.write(r.pair_hi(), hi);
        prop_assert_eq!(rf.read64(r), (lo as u64) | ((hi as u64) << 32));
        let v = f64::from_bits(rf.read64(r));
        rf.write_f64(r, v);
        prop_assert_eq!(rf.read(r), lo);
        prop_assert_eq!(rf.read(r.pair_hi()), hi);
    }

    #[test]
    fn guards_encode_roundtrip(guard in arb_guard()) {
        prop_assert_eq!(Guard::decode(guard.encode()), guard);
    }

    #[test]
    fn results_log_roundtrips_every_version(
        runs in prop::collection::vec(arb_log_run(), 1..10),
        version_cols in 10usize..14,
    ) {
        // Serialize each run as v4, then truncate rows to the column count
        // of an earlier log version: 10 = v1, 11 = v2, 12 = v3, 13 = v4.
        // The reader must accept all of them, defaulting the missing tail.
        let mut text = logfile::results_log_header("fuzz.prog", &[("seed", "7".to_string())]);
        for r in &runs {
            let full = logfile::results_log_row(r);
            let cols: Vec<&str> = full.trim_end_matches('\n').split('\t').collect();
            text.push_str(&cols[..version_cols].join("\t"));
            text.push('\n');
        }
        let rows = logfile::read_results_log(&text).expect("every version parses");
        prop_assert_eq!(rows.len(), runs.len());
        for (row, run) in rows.iter().zip(&runs) {
            prop_assert_eq!(&row.params, &run.params);
            prop_assert_eq!(&row.outcome, &run.outcome);
            prop_assert_eq!(row.injected, run.injected);
            prop_assert_eq!(row.wall_us, run.wall.as_micros() as u64);
            prop_assert_eq!(
                row.prefix_instrs_skipped,
                if version_cols >= 11 { run.prefix_instrs_skipped } else { 0 }
            );
            prop_assert_eq!(row.pruned, version_cols >= 12 && run.pruned);
            prop_assert_eq!(row.attempts, if version_cols >= 13 { run.attempts } else { 1 });
        }
        let header = logfile::parse_log_header(&text);
        prop_assert_eq!(header.program.as_deref(), Some("fuzz.prog"));
        prop_assert_eq!(header.meta.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn results_log_recovery_tolerates_any_torn_tail(
        runs in prop::collection::vec(arb_log_run(), 1..8),
        frag in any::<prop::sample::Index>(),
    ) {
        let mut text = logfile::results_log_header("fuzz.prog", &[]);
        for r in &runs {
            text.push_str(&logfile::results_log_row(r));
        }
        let clean = logfile::read_results_log(&text).expect("clean log parses");

        // A crash mid-append tears the final line at an arbitrary byte
        // (rows are ASCII, so every index is a char boundary). `cut` never
        // reaches the trailing newline, so any nonzero fragment is torn.
        let extra = logfile::results_log_row(&runs[0]);
        let cut = frag.index(extra.len());
        let torn_text = format!("{text}{}", &extra[..cut]);
        let (rows, torn) = logfile::recover_results_log(&torn_text).expect("recoverable");
        prop_assert_eq!(torn, cut > 0);
        prop_assert_eq!(rows.len(), runs.len(), "only the torn tail is dropped");
        prop_assert_eq!(logfile::tally(&rows), logfile::tally(&clean));
    }

    #[test]
    fn builder_kernels_roundtrip_through_listings(ops in prop::collection::vec((0u8..12, 0u8..16, 0u8..16, 0u8..16, any::<i16>()), 1..30)) {
        // Random straight-line builder programs survive
        // disasm → parse exactly.
        use gpu_isa::asm::KernelBuilder;
        use gpu_isa::{asm_text, disasm, CmpOp, MufuFunc};
        let mut k = KernelBuilder::new("fuzz");
        for (sel, a, b, c, imm) in ops {
            let (ra, rb, rc) = (Reg(a), Reg(b), Reg(c));
            match sel {
                0 => { k.fadd(ra, rb, rc); }
                1 => { k.imad(ra, rb, rc, Reg(a ^ 1)); }
                2 => { k.movi(ra, imm as u32); }
                3 => { k.ldg(ra, rb, imm & 0x3FF); }
                4 => { k.stg(ra, imm & 0x3FF, rb); }
                5 => { k.isetp(PReg(a & 7), CmpOp::ALL[(b % 6) as usize], rc, imm as i32); }
                6 => { k.mufu(MufuFunc::ALL[(b % 7) as usize], ra, rc); }
                7 => { k.lds(ra, rb, (imm & 0xFF).abs()); }
                8 => { k.dfma(ra, rb, rc, Reg(a.wrapping_add(2))); }
                9 => { k.shli(ra, rb, (c & 31) as u32); }
                10 => { k.and(ra, rb, rc); }
                _ => { k.nop(); }
            }
        }
        k.exit();
        let kernel = k.finish();
        let listing = disasm::kernel(&kernel);
        let back = asm_text::parse_kernel(&listing).expect("parse own listing");
        prop_assert_eq!(back, kernel);
    }
}

// ---------------------------------------------------------------------------
// Worker-protocol transport: the supervisor/worker frame stream and message
// codec must round-trip any payload and survive any byte garbage without
// panicking — a corrupt child can write anything into the pipe.

fn arb_wire_string() -> impl Strategy<Value = String> {
    // Hostile payloads: arbitrary Unicode scalars, including quotes,
    // backslashes, newlines, control characters, and non-BMP code points
    // (surrogate-range draws fold into control characters).
    prop::collection::vec(any::<u32>(), 0..64).prop_map(|vs| {
        vs.into_iter()
            .map(|v| {
                char::from_u32(v % 0x11_0000).unwrap_or_else(|| char::from_u32(v % 0x20).unwrap())
            })
            .collect()
    })
}

fn arb_msg() -> impl Strategy<Value = nvbitfi::Msg> {
    use nvbitfi::{Msg, WorkerInit};
    prop_oneof![
        (
            arb_wire_string(),
            arb_wire_string(),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(program, scale, use_checkpoints, has_deadline, deadline, heartbeat_ms)| {
                    Msg::Init(WorkerInit {
                        program,
                        scale,
                        use_checkpoints,
                        deadline_ms: has_deadline.then_some(deadline),
                        heartbeat_ms,
                    })
                }
            ),
        Just(Msg::Ready),
        (any::<u64>(), arb_wire_string()).prop_map(|(id, site)| Msg::Run { id, site }),
        Just(Msg::Heartbeat),
        (any::<u64>(), arb_wire_string(), any::<bool>(), any::<u64>(), any::<u64>()).prop_map(
            |(id, outcome, injected, wall_us, skip_instrs)| Msg::Done {
                id,
                outcome,
                injected,
                wall_us,
                skip_instrs,
            }
        ),
        arb_wire_string().prop_map(|message| Msg::Error { message }),
        Just(Msg::Shutdown),
    ]
}

proptest! {
    #[test]
    fn worker_frames_roundtrip(payload in arb_wire_string()) {
        use nvbitfi::worker::{read_frame, write_frame};
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        let mut r = &buf[..];
        prop_assert_eq!(read_frame(&mut r).expect("read"), Some(payload));
        // The stream then ends cleanly at a frame boundary.
        prop_assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn torn_worker_frames_error_instead_of_panicking(
        payload in arb_wire_string(),
        cut in any::<prop::sample::Index>(),
    ) {
        use nvbitfi::worker::{read_frame, write_frame};
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        let cut = cut.index(buf.len());
        let got = read_frame(&mut &buf[..cut]);
        if cut == 0 {
            // Nothing read yet: a clean end-of-stream, not corruption.
            prop_assert_eq!(got.expect("clean eof"), None);
        } else {
            prop_assert!(got.is_err(), "a torn frame is a transport error");
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_frame_reader(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        // Any Ok/Err verdict is acceptable for arbitrary garbage — the
        // invariant is that the reader never panics and never fabricates
        // an oversized frame.
        if let Ok(Some(payload)) = nvbitfi::worker::read_frame(&mut &bytes[..]) {
            prop_assert!(payload.len() <= nvbitfi::MAX_FRAME as usize);
        }
    }

    #[test]
    fn worker_messages_roundtrip(msg in arb_msg()) {
        let encoded = msg.to_json();
        prop_assert_eq!(nvbitfi::Msg::parse(&encoded), Some(msg));
    }

    #[test]
    fn message_parser_never_panics_on_garbage(text in arb_wire_string()) {
        let _ = nvbitfi::Msg::parse(&text);
    }
}
