//! Qualitative claims from the paper's evaluation, checked at test scale:
//! overhead ordering, permanent-vs-transient masking, profile pruning, and
//! the selective-instrumentation property.

use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::{
    profile_program, run_permanent_campaign, run_transient_campaign, CampaignConfig,
    PermanentCampaignConfig, Profiler, ProfilingMode, TransientInjector,
};
use workloads::Scale;

/// Simulated-cycle cost of a run under a given tool.
fn cycles_with(tool: Option<Box<dyn gpu_runtime::Tool>>) -> u64 {
    let program = workloads::seismic::Seismic { scale: Scale::Test };
    let out = run_program(&program, RuntimeConfig::default(), tool);
    assert!(out.termination.is_clean());
    out.summary.cycles
}

#[test]
fn overhead_ordering_exact_gt_approx_gt_injection_gt_plain() {
    // Figure 4's shape, in simulated cycles (host-noise-free): exact
    // profiling instruments every dynamic kernel; approximate only first
    // instances; the injector only one dynamic kernel.
    let plain = cycles_with(None);

    let (exact, _h) = Profiler::new(ProfilingMode::Exact);
    let exact_cycles = cycles_with(Some(Box::new(exact)));

    let (approx, _h) = Profiler::new(ProfilingMode::Approximate);
    let approx_cycles = cycles_with(Some(Box::new(approx)));

    // Target an FP32 *value* so the run completes cleanly (a pointer hit
    // would be a DUE, which is fine for campaigns but not for this timing
    // comparison).
    let params = nvbitfi::TransientParams {
        group: nvbitfi::InstrGroup::Fp32,
        bit_flip: nvbitfi::BitFlipModel::FlipSingleBit,
        kernel_name: "seis_step".into(),
        kernel_count: 1,
        instruction_count: 5,
        destination_register: 0.9,
        bit_pattern: 0.05,
    };
    let (inj, _h) = TransientInjector::new(params);
    let inj_cycles = cycles_with(Some(Box::new(inj)));

    assert!(
        exact_cycles > approx_cycles,
        "exact profiling must cost more than approximate: {exact_cycles} vs {approx_cycles}"
    );
    assert!(
        approx_cycles > inj_cycles,
        "profiling must cost more than one-kernel injection: {approx_cycles} vs {inj_cycles}"
    );
    assert!(inj_cycles > plain, "injection still instruments one kernel: {inj_cycles} vs {plain}");
    // And the paper's headline gap: exact profiling is *much* more
    // expensive than injection.
    assert!(exact_cycles as f64 / inj_cycles as f64 > 1.5);
}

#[test]
fn permanent_faults_mask_less_than_transient() {
    // §IV-B: "Masked outcomes constitute 57.6% for transient faults but
    // only 17.4% for permanent faults." Check the direction on a program
    // with real arithmetic depth.
    let program = workloads::ostencil::Ostencil { scale: Scale::Test };
    let check = workloads::ostencil::Ostencil::check();

    let t = run_transient_campaign(
        &program,
        &check,
        &CampaignConfig {
            injections: 40,
            seed: 9,
            workers: 2,
            profiling: ProfilingMode::Exact,
            // Single-bit flips in FP32 values: the transient case that masks
            // often. (G_GPPR campaigns at tiny test scale are dominated by
            // pointer loads, which understates transient masking.)
            group: nvbitfi::InstrGroup::Fp32,
            ..CampaignConfig::default()
        },
    )
    .expect("transient");
    let p = run_permanent_campaign(
        &program,
        &check,
        &PermanentCampaignConfig { seed: 9, workers: 2, ..Default::default() },
    )
    .expect("permanent");

    let (_, _, transient_masked) = t.counts.fractions();
    assert!(
        p.weighted.masked < transient_masked,
        "permanent faults activate repeatedly and should mask less: {} vs {}",
        p.weighted.masked,
        transient_masked
    );
}

#[test]
fn profile_prunes_unused_opcodes() {
    // §IV-C: permanent experiments can be skipped for unused opcodes; the
    // programs execute a small fraction of the 171-opcode ISA.
    let program = workloads::ilbdc::Ilbdc { scale: Scale::Test };
    let profile = profile_program(&program, RuntimeConfig::default(), ProfilingMode::Approximate)
        .expect("profile");
    let executed = profile.executed_opcodes();
    assert!(executed.len() < 171 / 2, "executed {} opcodes", executed.len());
    assert!(!executed.is_empty());
    // The permanent campaign runs exactly that many experiments.
    let check = workloads::ilbdc::Ilbdc::check();
    let result = run_permanent_campaign(
        &program,
        &check,
        &PermanentCampaignConfig { seed: 1, workers: 2, ..Default::default() },
    )
    .expect("campaign");
    assert_eq!(result.runs.len(), executed.len());
}

#[test]
fn injection_instruments_only_the_target_kernel() {
    // The discussion section's key property: "NVBitFI can limit
    // instrumentation needed for fault injection to the dynamic instance of
    // the target kernel. Non-target instances of the same static kernel
    // execute unmodified."
    let program = workloads::ostencil::Ostencil { scale: Scale::Test };
    // Fp32 target: value corruption only, so no sticky error cuts the run
    // short and every launch is observed.
    let params = nvbitfi::TransientParams {
        group: nvbitfi::InstrGroup::Fp32,
        bit_flip: nvbitfi::BitFlipModel::FlipSingleBit,
        kernel_name: "stencil_step".into(),
        kernel_count: 7,
        instruction_count: 3,
        destination_register: 0.5,
        bit_pattern: 0.5,
    };
    let (tool, _handle) = TransientInjector::new(params);
    let stats = tool.stats_handle();
    let out = run_program(&program, RuntimeConfig::default(), Some(Box::new(tool)));
    // The corrupted value may or may not be an SDC; the run completes.
    let _ = out;
    let s = *stats.lock();
    assert_eq!(
        s.kernels_instrumented, 1,
        "only the target static kernel is JIT-instrumented: {s:?}"
    );
    assert_eq!(s.launches_instrumented, 1, "only the target dynamic instance pays");
    // 11 launches at Test scale: 9 non-target stencil instances plus the
    // final_copy (empty instrumentation) run unmodified.
    assert_eq!(s.launches_unmodified, 10, "{s:?}");
    assert_eq!(s.launches_instrumented + s.launches_unmodified, 11, "{s:?}");
}

#[test]
fn statistical_guidance_matches_paper() {
    // §IV-B's two calibration sentences.
    assert!((nvbitfi::stats::error_margin(100, 0.90) - 0.082).abs() < 0.004);
    assert!((nvbitfi::stats::error_margin(1000, 0.95) - 0.031).abs() < 0.002);
}
