//! Crash-and-resume robustness: an interrupted campaign resumed from its
//! journal reproduces the uninterrupted campaign's outcome counts exactly,
//! and a panicking or runaway worker costs only its own run's verdict.

use nvbitfi::{
    logfile, run_transient_campaign, run_transient_campaign_with, CampaignConfig, CampaignHooks,
    FaultHook, InjectionRun, NoHooks, OutcomeClass, ProfilingMode,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use workloads::omriq::Omriq;
use workloads::Scale;

fn cfg(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed: 42,
        profiling: ProfilingMode::Exact,
        workers: 2,
        retry_backoff: Duration::ZERO,
        ..CampaignConfig::default()
    }
}

/// Hooks that journal each completed run into a string (the in-memory
/// analog of the CLI's durable file journal) and request a stop once
/// `stop_after` runs have completed — the worker-side view of Ctrl-C.
struct JournalStop {
    rows: Mutex<String>,
    completed: AtomicUsize,
    stop_after: usize,
}

impl JournalStop {
    fn new(stop_after: usize) -> JournalStop {
        JournalStop { rows: Mutex::new(String::new()), completed: AtomicUsize::new(0), stop_after }
    }
}

impl CampaignHooks for JournalStop {
    fn on_run(&self, run: &InjectionRun) {
        self.rows.lock().push_str(&logfile::results_log_row(run));
        self.completed.fetch_add(1, Ordering::SeqCst);
    }

    fn should_stop(&self) -> bool {
        self.completed.load(Ordering::SeqCst) >= self.stop_after
    }
}

#[test]
fn interrupted_campaign_resumes_to_identical_counts() {
    let program = Omriq { scale: Scale::Test };
    let check = Omriq::check();
    let cfg = cfg(20);

    let baseline = run_transient_campaign(&program, &check, &cfg).expect("uninterrupted");
    assert_eq!(baseline.runs.len(), 20);
    assert!(!baseline.interrupted);

    // Interrupt mid-campaign: stop dispatching after 7 completions.
    let hooks = JournalStop::new(7);
    let partial = run_transient_campaign_with(&program, &check, &cfg, Vec::new(), &hooks)
        .expect("interrupted campaign still returns");
    assert!(partial.interrupted, "stop hook must mark the campaign interrupted");
    assert!(partial.runs.len() < 20, "undispatched sites are dropped");
    assert!(partial.runs.len() >= 7, "completed (incl. in-flight) runs are kept");

    // The journal holds exactly the completed runs — crash-durable state.
    let journal = format!("{}{}", logfile::results_log_header("omriq", &[]), hooks.rows.lock());
    let (rows, torn) = logfile::recover_results_log(&journal).expect("journal parses");
    assert!(!torn);
    assert_eq!(rows.len(), partial.runs.len());

    // Resume from the journal: identical config, prior verdicts reloaded.
    let reloaded = rows.len();
    let resumed_hooks = JournalStop::new(usize::MAX);
    let resumed =
        run_transient_campaign_with(&program, &check, &cfg, logfile::to_runs(rows), &resumed_hooks)
            .expect("resume");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.runs.len(), 20);
    assert_eq!(resumed.resumed_runs(), reloaded, "every journaled verdict is honored");
    assert_eq!(
        resumed.counts, baseline.counts,
        "resume reproduces the uninterrupted campaign's outcome counts"
    );

    // Duplicate-free completion: reloaded rows plus freshly-journaled rows
    // cover each selected site exactly once.
    let fresh = resumed_hooks.completed.load(Ordering::SeqCst);
    assert_eq!(reloaded + fresh, 20);
    let mut keys: Vec<String> = resumed
        .runs
        .iter()
        .map(|r| logfile::results_log_row(r).split('\t').take(7).collect::<Vec<_>>().join("\t"))
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 20, "no site appears twice after resume");
}

#[test]
fn transient_worker_panic_is_retried_without_changing_outcomes() {
    let program = Omriq { scale: Scale::Test };
    let check = Omriq::check();
    let base_cfg = cfg(10);
    let baseline = run_transient_campaign(&program, &check, &base_cfg).expect("baseline");

    // Every site's first attempt panics; the retry succeeds.
    let flaky = CampaignConfig {
        max_retries: 2,
        fault_hook: Some(FaultHook::new(|_, attempt| attempt == 1)),
        ..base_cfg.clone()
    };
    let result = run_transient_campaign(&program, &check, &flaky).expect("flaky campaign");
    assert_eq!(result.counts, baseline.counts, "retries must not alter verdicts");
    assert_eq!(result.counts.infra, 0);
    for r in &result.runs {
        // Pruned sites never execute, so the harness fault can't hit them.
        assert!(r.pruned || r.attempts == 2, "attempts={} pruned={}", r.attempts, r.pruned);
    }
    assert_eq!(
        result.retried_runs(),
        result.runs.iter().filter(|r| !r.pruned).count(),
        "every executed site needed its retry"
    );
}

#[test]
fn persistent_worker_panic_costs_only_that_runs_verdict() {
    let program = Omriq { scale: Scale::Test };
    let check = Omriq::check();
    let hostile = CampaignConfig {
        max_retries: 1,
        fault_hook: Some(FaultHook::new(|_, _| true)), // every attempt panics
        ..cfg(8)
    };
    let result = run_transient_campaign(&program, &check, &hostile).expect("campaign survives");
    assert_eq!(result.runs.len(), 8, "panics never poison the fan-out");
    let executed = result.runs.iter().filter(|r| !r.pruned).count() as u64;
    assert_eq!(result.counts.infra, executed, "every executed site is an infra error");
    for r in result.runs.iter().filter(|r| !r.pruned) {
        assert!(
            matches!(r.outcome.class, OutcomeClass::InfraError(_)),
            "persistent panic records InfraError, got {:?}",
            r.outcome.class
        );
        assert_eq!(r.attempts, 2, "max_retries=1 means two attempts");
    }
    // Infra errors leave the SDC/DUE denominator instead of biasing it.
    assert_eq!(result.counts.classified(), result.counts.total() - executed);
}

#[test]
fn expired_deadline_is_an_infra_error_not_a_crash() {
    let program = Omriq { scale: Scale::Test };
    let check = Omriq::check();
    let hostile = CampaignConfig {
        max_retries: 0,
        run_deadline: Some(Duration::ZERO), // every simulated run overruns
        ..cfg(6)
    };
    let result = run_transient_campaign(&program, &check, &hostile).expect("campaign survives");
    assert_eq!(result.runs.len(), 6);
    for r in result.runs.iter().filter(|r| !r.pruned) {
        assert!(
            matches!(r.outcome.class, OutcomeClass::InfraError(nvbitfi::InfraKind::Deadline)),
            "zero deadline records InfraError(Deadline), got {:?}",
            r.outcome.class
        );
        assert_eq!(r.attempts, 1, "max_retries=0 records the first failure");
    }
    // A prior InfraError verdict is not honored on resume: the site re-runs.
    let infra_rows = result.runs.clone();
    let healthy = CampaignConfig { run_deadline: None, ..cfg(6) };
    let resumed = run_transient_campaign_with(&program, &check, &healthy, infra_rows, &NoHooks)
        .expect("resume past infra errors");
    assert_eq!(resumed.counts.infra, 0, "infra verdicts get a fresh attempt on resume");
    assert_eq!(resumed.resumed_runs(), 0);
    assert_eq!(resumed.counts.total(), 6);
}
