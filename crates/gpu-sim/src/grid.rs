//! Launch geometry: 3-dimensional grids and blocks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 3-dimensional extent or index, CUDA `dim3` style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// x extent (fastest-varying).
    pub x: u32,
    /// y extent.
    pub y: u32,
    /// z extent (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total number of elements.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Decompose a linear index into an (x, y, z) index within this extent.
    pub fn unflatten(self, linear: u32) -> Dim3 {
        let x = linear % self.x;
        let y = (linear / self.x) % self.y;
        let z = linear / (self.x * self.y);
        Dim3 { x, y, z }
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Dim3 {
        Dim3 { x, y, z }
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_conversions() {
        assert_eq!(Dim3::from(128).count(), 128);
        assert_eq!(Dim3::from((4, 5)).count(), 20);
        assert_eq!(Dim3::from((2, 3, 4)).count(), 24);
    }

    #[test]
    fn unflatten_roundtrip() {
        let d = Dim3::xyz(4, 3, 2);
        let mut seen = std::collections::HashSet::new();
        for linear in 0..d.count() as u32 {
            let idx = d.unflatten(linear);
            assert!(idx.x < 4 && idx.y < 3 && idx.z < 2);
            assert!(seen.insert((idx.x, idx.y, idx.z)));
        }
        assert_eq!(seen.len(), 24);
    }
}
