//! Hardware traps: the ways a kernel launch can die.
//!
//! Traps are the simulator-level raw material for the paper's **DUE** and
//! **potential DUE** outcome categories (Table V): a trapped kernel
//! terminates early and latches an error in the runtime; whether that error
//! becomes a process crash or a silently-swallowed anomaly depends on
//! whether the *host* code checks for it (§IV-A).

use gpu_isa::Space;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The reason a thread trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrapKind {
    /// A memory access outside any allocation (the classic
    /// "illegal address" CUDA error).
    OutOfBounds {
        /// Address space of the faulting access.
        space: Space,
        /// The faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
    /// A memory access that is not naturally aligned ("misaligned address").
    Misaligned {
        /// Address space of the faulting access.
        space: Space,
        /// The faulting byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// An opcode with no implemented semantics reached execution.
    IllegalInstruction,
    /// An indirect branch (`BRX`/`JMX`) targeted a PC outside the kernel.
    InvalidBranch {
        /// The out-of-range target.
        target: u32,
    },
    /// Execution fell off the end of the kernel without `EXIT`.
    PcOverrun,
    /// `RET` executed with an empty call stack.
    RetUnderflow,
    /// The `KILL` opcode executed.
    Killed,
    /// The `BPT` (breakpoint) opcode executed.
    Breakpoint,
    /// The launch exceeded its dynamic-instruction budget — the simulator's
    /// hang detector (the paper's "Timeout, indicating a hang").
    Timeout,
    /// All runnable threads of a block are blocked and the barrier cannot
    /// release (barrier divergence deadlock).
    BarrierDeadlock,
    /// The launch outlived the harness's wall-clock deadline. Unlike
    /// [`TrapKind::Timeout`] this is an *infrastructure* verdict about the
    /// experiment run itself, not an observation about the program: outcome
    /// classification must not count it as a DUE.
    DeadlineExceeded,
    /// The run exceeded a resource-governor cap
    /// ([`crate::ResourceLimits`]) — the sandbox analog of a cgroup
    /// OOM-kill. Classified as an OS-detected DUE (the governor terminates
    /// the victim run the way a real sandbox kills the victim process).
    ResourceLimit {
        /// Address space whose cap was breached.
        space: Space,
        /// Bytes the run tried to use.
        requested: u32,
        /// The configured cap in bytes.
        limit: u32,
    },
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::OutOfBounds { space, addr, width } => {
                write!(f, "out-of-bounds {space} access of {width} bytes at {addr:#x}")
            }
            TrapKind::Misaligned { space, addr, align } => {
                write!(
                    f,
                    "misaligned {space} access at {addr:#x} (requires {align}-byte alignment)"
                )
            }
            TrapKind::IllegalInstruction => write!(f, "illegal instruction"),
            TrapKind::InvalidBranch { target } => write!(f, "invalid branch target {target}"),
            TrapKind::PcOverrun => write!(f, "pc ran off the end of the kernel"),
            TrapKind::RetUnderflow => write!(f, "RET with empty call stack"),
            TrapKind::Killed => write!(f, "KILL executed"),
            TrapKind::Breakpoint => write!(f, "breakpoint trap"),
            TrapKind::Timeout => write!(f, "dynamic-instruction budget exceeded (hang)"),
            TrapKind::BarrierDeadlock => write!(f, "barrier deadlock"),
            TrapKind::DeadlineExceeded => write!(f, "wall-clock run deadline exceeded"),
            TrapKind::ResourceLimit { space, requested, limit } => {
                write!(
                    f,
                    "resource limit exceeded: {requested} bytes of {space} memory \
                     requested, governor cap is {limit}"
                )
            }
        }
    }
}

impl TrapKind {
    /// `true` for the hang-detector trap, which outcome classification
    /// treats differently from crashes (Table V: hangs are monitor-detected
    /// DUEs, crashes are OS-detected DUEs).
    pub fn is_hang(self) -> bool {
        matches!(self, TrapKind::Timeout | TrapKind::BarrierDeadlock)
    }

    /// `true` for the wall-clock deadline trap, a harness-infrastructure
    /// verdict rather than a program outcome.
    pub fn is_deadline(self) -> bool {
        matches!(self, TrapKind::DeadlineExceeded)
    }

    /// `true` for a resource-governor kill, which terminates the victim run
    /// like a sandbox OOM-kill (an OS-detected crash in Table V terms).
    pub fn is_resource_limit(self) -> bool {
        matches!(self, TrapKind::ResourceLimit { .. })
    }
}

/// A trap plus where it happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrapInfo {
    /// What went wrong.
    pub kind: TrapKind,
    /// Kernel name.
    pub kernel: String,
    /// Program counter (instruction index) of the faulting instruction, if
    /// attributable to one.
    pub pc: Option<u32>,
    /// Linear block id of the faulting thread, if attributable.
    pub block: Option<u32>,
    /// Thread index within the block, if attributable.
    pub thread: Option<u32>,
}

impl fmt::Display for TrapInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in kernel `{}`", self.kind, self.kernel)?;
        if let Some(pc) = self.pc {
            write!(f, " at pc {pc}")?;
        }
        if let (Some(b), Some(t)) = (self.block, self.thread) {
            write!(f, " (block {b}, thread {t})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let t = TrapKind::OutOfBounds { space: Space::Global, addr: 0x1000, width: 4 };
        let s = t.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("global"));
    }

    #[test]
    fn hang_classification() {
        assert!(TrapKind::Timeout.is_hang());
        assert!(TrapKind::BarrierDeadlock.is_hang());
        assert!(!TrapKind::Killed.is_hang());
        assert!(!TrapKind::IllegalInstruction.is_hang());
        assert!(!TrapKind::DeadlineExceeded.is_hang(), "deadline is not a DUE");
        assert!(TrapKind::DeadlineExceeded.is_deadline());
        assert!(!TrapKind::Timeout.is_deadline());
        let rl = TrapKind::ResourceLimit { space: Space::Global, requested: 99, limit: 10 };
        assert!(!rl.is_hang(), "governor kills are crashes, not hangs");
        assert!(!rl.is_deadline(), "governor kills are program outcomes, not infra");
    }

    #[test]
    fn trap_info_display() {
        let info = TrapInfo {
            kind: TrapKind::Timeout,
            kernel: "k".into(),
            pc: Some(7),
            block: Some(1),
            thread: Some(33),
        };
        let s = info.to_string();
        assert!(s.contains("`k`"));
        assert!(s.contains("pc 7"));
        assert!(s.contains("block 1"));
    }
}
