//! Launch-configuration errors.

use crate::trap::TrapInfo;
use std::fmt;

/// Why a launch could not start or did not finish.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Block dimensions exceed the 1024-thread limit.
    BlockTooLarge {
        /// Threads requested per block.
        threads: u64,
    },
    /// Grid or block has zero extent.
    EmptyLaunch,
    /// The kernel has no instructions.
    EmptyKernel,
    /// Kernel parameters exceed constant-memory capacity.
    ParamsTooLarge {
        /// Bytes of parameters supplied.
        bytes: usize,
    },
    /// Instrumentation masks do not match the kernel's instruction count.
    BadInstrumentationMask {
        /// Mask length supplied.
        mask_len: usize,
        /// Kernel instruction count.
        kernel_len: usize,
    },
    /// The kernel trapped. Partial execution statistics are attached.
    Trap {
        /// What trapped, where.
        info: TrapInfo,
        /// Statistics accumulated up to the trap.
        stats: crate::gpu::LaunchStats,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BlockTooLarge { threads } => {
                write!(f, "block of {threads} threads exceeds the 1024-thread limit")
            }
            SimError::EmptyLaunch => write!(f, "grid and block extents must be nonzero"),
            SimError::EmptyKernel => write!(f, "kernel has no instructions"),
            SimError::ParamsTooLarge { bytes } => {
                write!(f, "{bytes} bytes of kernel parameters exceed constant memory")
            }
            SimError::BadInstrumentationMask { mask_len, kernel_len } => {
                write!(f, "instrumentation mask of {mask_len} entries does not match kernel of {kernel_len} instructions")
            }
            SimError::Trap { info, .. } => write!(f, "kernel trapped: {info}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SimError::BlockTooLarge { threads: 2048 },
            SimError::EmptyLaunch,
            SimError::EmptyKernel,
            SimError::ParamsTooLarge { bytes: 1 << 20 },
            SimError::BadInstrumentationMask { mask_len: 3, kernel_len: 5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
