//! The device front-end: configuration, launches, and statistics.

use crate::block::{BlockState, Counters};
use crate::error::SimError;
use crate::grid::Dim3;
use crate::hooks::Instrumentation;
use crate::memory::GlobalMem;
use gpu_isa::Kernel;
use serde::{Deserialize, Serialize};

/// Maximum threads per block, matching CUDA.
pub const MAX_BLOCK_THREADS: u64 = 1024;

/// Maximum bytes of kernel parameters (CUDA's 4 KiB launch-parameter limit).
pub const MAX_PARAM_BYTES: usize = 4096;

/// Simulated device configuration.
///
/// Defaults model a Titan V (the paper's evaluation GPU): 80 SMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors; blocks are assigned
    /// `sm = block_id % num_sms`.
    pub num_sms: u32,
    /// Per-thread local-memory bytes.
    pub local_mem_bytes: u32,
    /// Default per-launch dynamic-instruction budget (the hang detector).
    pub default_instr_budget: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig { num_sms: 80, local_mem_bytes: 1024, default_instr_budget: 2_000_000_000 }
    }
}

/// A simulated GPU device.
///
/// ```
/// use gpu_sim::{Gpu, GpuConfig, GlobalMem, Launch, Dim3};
/// use gpu_isa::asm::KernelBuilder;
/// use gpu_isa::{Reg, SpecialReg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Kernel: out[gtid] = gtid
/// let mut k = KernelBuilder::new("iota");
/// k.ldc(Reg(4), 0); // param 0: output base pointer
/// k.s2r(Reg(0), SpecialReg::GlobalTidX);
/// k.shli(Reg(1), Reg(0), 2);
/// k.iadd(Reg(4), Reg(4), Reg(1));
/// k.stg(Reg(4), 0, Reg(0));
/// k.exit();
/// let kernel = k.finish();
///
/// let gpu = Gpu::new(GpuConfig::default());
/// let mut mem = GlobalMem::new(1 << 20);
/// let out = mem.alloc(64 * 4)?;
/// let stats = gpu.launch(
///     &Launch { kernel: &kernel, grid: Dim3::from(2), block: Dim3::from(32), params: &[out.addr()], instr_budget: None },
///     &mut mem,
///     None,
/// )?;
/// assert_eq!(mem.read_u32s(out, 64)?, (0..64).collect::<Vec<u32>>());
/// assert!(stats.dyn_instrs > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gpu {
    cfg: GpuConfig,
    deadline: Option<std::time::Instant>,
    limits: Option<crate::ResourceLimits>,
}

/// One kernel launch request.
#[derive(Debug)]
pub struct Launch<'a> {
    /// The kernel to run.
    pub kernel: &'a Kernel,
    /// Grid dimensions (blocks).
    pub grid: Dim3,
    /// Block dimensions (threads).
    pub block: Dim3,
    /// Kernel parameters, copied to constant memory at offset 0.
    pub params: &'a [u32],
    /// Dynamic-instruction budget override (hang detector threshold).
    pub instr_budget: Option<u64>,
}

/// Statistics from a (possibly partial) launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Guard-passing thread-level dynamic instructions executed.
    pub dyn_instrs: u64,
    /// Simulated cycles consumed (includes instrumentation-callback cost).
    pub cycles: u64,
    /// Blocks in the grid.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u64,
}

impl Gpu {
    /// Create a device with the given configuration.
    pub fn new(cfg: GpuConfig) -> Gpu {
        Gpu { cfg, deadline: None, limits: None }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Arm (or disarm) the wall-clock deadline. While armed, every launch
    /// polls the clock alongside the instruction-budget hang check and traps
    /// with [`crate::TrapKind::DeadlineExceeded`] once `deadline` passes —
    /// the fault-isolation backstop for runaway injection runs.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Arm (or disarm) the resource governor's launch-time caps. While
    /// armed, a kernel declaring more static shared memory than
    /// [`crate::ResourceLimits::max_shared_bytes`] traps with
    /// [`crate::TrapKind::ResourceLimit`] instead of allocating it.
    pub fn set_limits(&mut self, limits: Option<crate::ResourceLimits>) {
        self.limits = limits;
    }

    /// Run a kernel to completion.
    ///
    /// Blocks execute in linear order; each block runs on
    /// `sm = block_id % num_sms` for the purpose of `SR_SMID` and the
    /// permanent-fault model's SM targeting.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid launch configurations, and
    /// [`SimError::Trap`] — with partial [`LaunchStats`] attached — when the
    /// kernel faults or exceeds its instruction budget.
    pub fn launch(
        &self,
        l: &Launch<'_>,
        global: &mut GlobalMem,
        mut instrumentation: Option<&mut Instrumentation<'_>>,
    ) -> Result<LaunchStats, SimError> {
        let threads = l.block.count();
        if threads == 0 || l.grid.count() == 0 {
            return Err(SimError::EmptyLaunch);
        }
        if threads > MAX_BLOCK_THREADS {
            return Err(SimError::BlockTooLarge { threads });
        }
        if l.kernel.is_empty() {
            return Err(SimError::EmptyKernel);
        }
        let param_bytes: Vec<u8> = l.params.iter().flat_map(|w| w.to_le_bytes()).collect();
        if param_bytes.len() > MAX_PARAM_BYTES {
            return Err(SimError::ParamsTooLarge { bytes: param_bytes.len() });
        }
        if let Some(ins) = instrumentation.as_deref() {
            if ins.before_mask.len() != l.kernel.len() || ins.after_mask.len() != l.kernel.len() {
                return Err(SimError::BadInstrumentationMask {
                    mask_len: ins.before_mask.len(),
                    kernel_len: l.kernel.len(),
                });
            }
        }

        // Governor check: a fault-corrupted shared-memory declaration traps
        // like a sandbox kill instead of materializing a huge scratchpad.
        if let Some(limits) = self.limits {
            if l.kernel.shared_bytes() > limits.max_shared_bytes {
                return Err(SimError::Trap {
                    info: crate::trap::TrapInfo {
                        kind: crate::trap::TrapKind::ResourceLimit {
                            space: gpu_isa::Space::Shared,
                            requested: l.kernel.shared_bytes(),
                            limit: limits.max_shared_bytes,
                        },
                        kernel: l.kernel.name().to_string(),
                        pc: None,
                        block: None,
                        thread: None,
                    },
                    stats: LaunchStats {
                        dyn_instrs: 0,
                        cycles: 0,
                        blocks: l.grid.count(),
                        threads_per_block: threads,
                    },
                });
            }
        }

        let mut counters = Counters {
            executed: 0,
            cycles: 0,
            budget: l.instr_budget.unwrap_or(self.cfg.default_instr_budget),
            deadline: self.deadline,
        };
        // An already-expired deadline traps before any instruction executes,
        // so even trivially short launches cannot extend a runaway run.
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(SimError::Trap {
                    info: crate::trap::TrapInfo {
                        kind: crate::trap::TrapKind::DeadlineExceeded,
                        kernel: l.kernel.name().to_string(),
                        pc: None,
                        block: None,
                        thread: None,
                    },
                    stats: LaunchStats {
                        dyn_instrs: 0,
                        cycles: 0,
                        blocks: l.grid.count(),
                        threads_per_block: threads,
                    },
                });
            }
        }
        let nblocks = l.grid.count() as u32;
        for b in 0..nblocks {
            let sm = b % self.cfg.num_sms;
            let mut block =
                BlockState::new(l.kernel, l.grid, l.block, b, sm, self.cfg.local_mem_bytes);
            let run =
                block.run(l.kernel, global, &param_bytes, &mut counters, &mut instrumentation);
            if let Err(info) = run {
                return Err(SimError::Trap {
                    info,
                    stats: LaunchStats {
                        dyn_instrs: counters.executed,
                        cycles: counters.cycles,
                        blocks: l.grid.count(),
                        threads_per_block: threads,
                    },
                });
            }
        }
        Ok(LaunchStats {
            dyn_instrs: counters.executed,
            cycles: counters.cycles,
            blocks: l.grid.count(),
            threads_per_block: threads,
        })
    }
}
