#![warn(missing_docs)]

//! # gpu-sim — an architectural GPU simulator
//!
//! This crate is the workspace's substitute for physical NVIDIA hardware
//! (see `DESIGN.md` §1). It executes [`gpu_isa`] kernels with:
//!
//! * **SMs and warps** — blocks are assigned to SMs round-robin; warps of 32
//!   lanes execute with a min-PC independent-thread-scheduling model that
//!   handles divergence and reconvergence,
//! * **full memory hierarchy** — bounds- and alignment-checked global,
//!   shared, local, and constant spaces; corrupted pointers trap exactly as
//!   "illegal address" errors do on real GPUs,
//! * **traps** ([`TrapKind`]) — out-of-bounds, misaligned, illegal
//!   instruction, hang detection via instruction budgets — the raw material
//!   for DUE classification,
//! * **deterministic dynamic-instruction numbering** — the property fault
//!   injection needs so a site `<kernel, instance, instruction index>`
//!   always names the same event,
//! * **an instrumentation surface** ([`Instrumentation`], [`ExecHook`]) —
//!   per-static-instruction before/after callbacks with register-file
//!   access, the contract the NVBit layer builds its `insert_call` API on.
//!   Un-instrumented instructions take a fast path, so tools pay only for
//!   what they instrument.
//!
//! See the [`Gpu::launch`] docs for a complete runnable example.

mod block;
pub mod cycles;
mod error;
mod exec;
mod gpu;
mod grid;
mod hooks;
mod limits;
mod memory;
mod regfile;
mod trap;

pub use error::SimError;
pub use exec::{exec_scalar, ExecEnv, Flow};
pub use gpu::{Gpu, GpuConfig, Launch, LaunchStats, MAX_BLOCK_THREADS, MAX_PARAM_BYTES};
pub use grid::Dim3;
pub use hooks::{ExecHook, InstrSite, Instrumentation, ThreadCtx, ThreadMeta};
pub use limits::ResourceLimits;
pub use memory::{DevPtr, GlobalMem, MemError, MemSnapshot, SharedMem, PAGE_SIZE};
pub use regfile::RegFile;
pub use trap::{TrapInfo, TrapKind};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{AtomOp, CmpOp, PReg, Reg, ShflMode, SpecialReg};

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::default())
    }

    /// out[i] = a[i] + b[i], one thread per element.
    fn vecadd_kernel() -> gpu_isa::Kernel {
        let mut k = KernelBuilder::new("vecadd");
        let (pa, pb, pc, gtid, off) = (Reg(4), Reg(6), Reg(8), Reg(0), Reg(1));
        k.ldc(pa, 0);
        k.ldc(pb, 4);
        k.ldc(pc, 8);
        k.s2r(gtid, SpecialReg::GlobalTidX);
        k.shli(off, gtid, 2);
        k.iadd(pa, pa, off);
        k.iadd(pb, pb, off);
        k.iadd(pc, pc, off);
        k.ldg(Reg(10), pa, 0);
        k.ldg(Reg(11), pb, 0);
        k.fadd(Reg(12), Reg(10), Reg(11));
        k.stg(pc, 0, Reg(12));
        k.exit();
        k.finish()
    }

    #[test]
    fn vecadd_end_to_end() {
        let g = gpu();
        let mut mem = GlobalMem::new(1 << 20);
        let n = 256usize;
        let a = mem.alloc((n * 4) as u32).expect("alloc");
        let b = mem.alloc((n * 4) as u32).expect("alloc");
        let c = mem.alloc((n * 4) as u32).expect("alloc");
        let av: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        mem.write_f32s(a, &av).expect("write");
        mem.write_f32s(b, &bv).expect("write");
        let kernel = vecadd_kernel();
        let stats = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(4),
                    block: Dim3::from(64),
                    params: &[a.addr(), b.addr(), c.addr()],
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .expect("launch");
        let out = mem.read_f32s(c, n).expect("read");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        // 13 instructions × 256 threads, all unconditional.
        assert_eq!(stats.dyn_instrs, 13 * 256);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn divergent_branch_reconverges() {
        // Even lanes write 1, odd lanes write 2.
        let mut k = KernelBuilder::new("diverge");
        let (out, lane, bit, off) = (Reg(4), Reg(0), Reg(1), Reg(2));
        k.ldc(out, 0);
        k.s2r(lane, SpecialReg::LaneId);
        k.movi(bit, 1);
        k.and(bit, lane, bit);
        k.isetp(PReg(0), CmpOp::Eq, bit, 0);
        k.shli(off, lane, 2);
        k.iadd(out, out, off);
        let odd = k.new_label();
        let done = k.new_label();
        k.bra_ifnot(PReg(0), odd);
        k.movi(Reg(3), 1);
        k.bra(done);
        k.bind(odd);
        k.movi(Reg(3), 2);
        k.bind(done);
        k.stg(out, 0, Reg(3));
        k.exit();
        let kernel = k.finish();

        let g = gpu();
        let mut mem = GlobalMem::new(1 << 16);
        let out_buf = mem.alloc(32 * 4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(32),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch");
        let vals = mem.read_u32s(out_buf, 32).expect("read");
        for (lane, v) in vals.iter().enumerate() {
            assert_eq!(*v, if lane % 2 == 0 { 1 } else { 2 }, "lane {lane}");
        }
    }

    #[test]
    fn barrier_orders_shared_memory() {
        // Thread t writes shared[t]; after BAR, reads shared[(t+1)%n].
        let n = 64u32;
        let mut k = KernelBuilder::new("rotate");
        k.shared_bytes(n * 4);
        let (out, tid, addr, v, next) = (Reg(4), Reg(0), Reg(1), Reg(2), Reg(3));
        k.ldc(out, 0);
        k.s2r(tid, SpecialReg::TidX);
        k.shli(addr, tid, 2);
        k.sts(addr, 0, tid);
        k.bar();
        k.iaddi(next, tid, 1);
        k.movi(Reg(5), n - 1);
        k.and(next, next, Reg(5)); // (tid+1) % n for power-of-two n
        k.shli(next, next, 2);
        k.lds(v, next, 0);
        k.shli(addr, tid, 2);
        k.iadd(addr, out, addr);
        k.stg(addr, 0, v);
        k.exit();
        let kernel = k.finish();

        let g = gpu();
        let mut mem = GlobalMem::new(1 << 16);
        let out_buf = mem.alloc(n * 4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(n),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch");
        let vals = mem.read_u32s(out_buf, n as usize).expect("read");
        for (t, v) in vals.iter().enumerate() {
            assert_eq!(*v, ((t as u32) + 1) % n, "thread {t}");
        }
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let mut k = KernelBuilder::new("spin");
        let top = k.new_label();
        k.bind(top);
        k.bra(top);
        k.exit();
        let kernel = k.finish();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let err = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(32),
                    params: &[],
                    instr_budget: Some(10_000),
                },
                &mut mem,
                None,
            )
            .unwrap_err();
        match err {
            SimError::Trap { info, stats } => {
                assert_eq!(info.kind, TrapKind::Timeout);
                assert!(stats.dyn_instrs >= 10_000);
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn shared_mem_over_governor_cap_traps() {
        let mut k = KernelBuilder::new("hog");
        k.shared_bytes(1 << 20); // 1 MiB, far past the 48 KiB cap
        k.exit();
        let kernel = k.finish();
        let mut g = gpu();
        g.set_limits(Some(ResourceLimits::default()));
        let mut mem = GlobalMem::new(4096);
        let err = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(1),
                    params: &[],
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .unwrap_err();
        match err {
            SimError::Trap { info, stats } => {
                assert!(matches!(info.kind, TrapKind::ResourceLimit { .. }), "{:?}", info.kind);
                assert_eq!(info.kernel, "hog");
                assert_eq!(stats.dyn_instrs, 0, "trapped before execution");
            }
            other => panic!("expected trap, got {other:?}"),
        }
        // Without the governor the same launch succeeds.
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(1),
                params: &[],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch without governor");
    }

    #[test]
    fn oob_store_traps_with_location() {
        let mut k = KernelBuilder::new("wild");
        k.movi(Reg(4), 0xFFFF_0000);
        k.stg(Reg(4), 0, Reg(0));
        k.exit();
        let kernel = k.finish();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let err = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(1),
                    params: &[],
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .unwrap_err();
        match err {
            SimError::Trap { info, .. } => {
                assert!(matches!(info.kind, TrapKind::OutOfBounds { .. }));
                assert_eq!(info.pc, Some(1));
                assert_eq!(info.kernel, "wild");
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn warp_shuffle_butterfly_reduction() {
        // Warp-wide sum via butterfly shuffles: every lane ends with the
        // total 0+1+..+31 = 496.
        let mut k = KernelBuilder::new("wreduce");
        let (out, lane, acc, tmp) = (Reg(4), Reg(0), Reg(2), Reg(3));
        k.ldc(out, 0);
        k.s2r(lane, SpecialReg::LaneId);
        k.mov(acc, lane);
        for sh in [16u32, 8, 4, 2, 1] {
            k.shfl(ShflMode::Bfly, tmp, acc, sh);
            k.iadd(acc, acc, tmp);
        }
        k.shli(tmp, lane, 2);
        k.iadd(out, out, tmp);
        k.stg(out, 0, acc);
        k.exit();
        let kernel = k.finish();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let out_buf = mem.alloc(32 * 4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(32),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch");
        let vals = mem.read_u32s(out_buf, 32).expect("read");
        assert!(vals.iter().all(|&v| v == 496), "{vals:?}");
    }

    #[test]
    fn atomics_across_blocks_accumulate() {
        let mut k = KernelBuilder::new("histo");
        let (ctr, one) = (Reg(4), Reg(5));
        k.ldc(ctr, 0);
        k.movi(one, 1);
        k.red(AtomOp::Add, ctr, 0, one);
        k.exit();
        let kernel = k.finish();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let c = mem.alloc(4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(10),
                block: Dim3::from(33), // 2 warps, odd size
                params: &[c.addr()],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch");
        assert_eq!(mem.read_u32s(c, 1).expect("read"), vec![330]);
    }

    #[test]
    fn predicated_off_instruction_not_counted() {
        // A guarded instruction whose guard fails everywhere must not
        // appear in dyn_instrs (paper §III-A).
        let mut k = KernelBuilder::new("pred");
        k.movi(Reg(0), 1).guard = gpu_isa::Guard::if_true(PReg(0)); // P0=false
        k.exit();
        let kernel = k.finish();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let stats = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(32),
                    params: &[],
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .expect("launch");
        // Only EXIT counts: 32 threads × 1 instruction.
        assert_eq!(stats.dyn_instrs, 32);
    }

    #[test]
    fn sm_assignment_round_robin() {
        // Record SR_SMID per block and check the modulo mapping.
        let mut k = KernelBuilder::new("smid");
        let (out, bid, sm, off) = (Reg(4), Reg(0), Reg(1), Reg(2));
        k.ldc(out, 0);
        k.s2r(bid, SpecialReg::CtaIdX);
        k.s2r(sm, SpecialReg::SmId);
        k.shli(off, bid, 2);
        k.iadd(out, out, off);
        k.stg(out, 0, sm);
        k.exit();
        let kernel = k.finish();
        let g = Gpu::new(GpuConfig { num_sms: 4, ..GpuConfig::default() });
        let mut mem = GlobalMem::new(1 << 16);
        let out_buf = mem.alloc(10 * 4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(10),
                block: Dim3::from(1),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            None,
        )
        .expect("launch");
        let vals = mem.read_u32s(out_buf, 10).expect("read");
        for b in 0..10u32 {
            assert_eq!(vals[b as usize], b % 4, "block {b}");
        }
    }

    #[test]
    fn launch_validation() {
        let kernel = vecadd_kernel();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        assert!(matches!(
            g.launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(0),
                    block: Dim3::from(32),
                    params: &[],
                    instr_budget: None
                },
                &mut mem,
                None
            ),
            Err(SimError::EmptyLaunch)
        ));
        assert!(matches!(
            g.launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(2048),
                    params: &[],
                    instr_budget: None
                },
                &mut mem,
                None
            ),
            Err(SimError::BlockTooLarge { threads: 2048 })
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        // Identical launches produce identical stats — the property fault
        // sites depend on.
        let kernel = vecadd_kernel();
        let g = gpu();
        let run = || {
            let mut mem = GlobalMem::new(1 << 20);
            let a = mem.alloc(1024).expect("a");
            let b = mem.alloc(1024).expect("b");
            let c = mem.alloc(1024).expect("c");
            mem.write_f32s(a, &vec![1.0; 256]).expect("w");
            mem.write_f32s(b, &vec![2.0; 256]).expect("w");
            let stats = g
                .launch(
                    &Launch {
                        kernel: &kernel,
                        grid: Dim3::from(8),
                        block: Dim3::from(32),
                        params: &[a.addr(), b.addr(), c.addr()],
                        instr_budget: None,
                    },
                    &mut mem,
                    None,
                )
                .expect("launch");
            (stats, mem.read_f32s(c, 256).expect("read"))
        };
        let (s1, o1) = run();
        let (s2, o2) = run();
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn instrumentation_hooks_fire_and_can_corrupt() {
        struct CountAndCorrupt {
            before_calls: u64,
            after_calls: u64,
            corrupt_at: u64,
        }
        impl ExecHook for CountAndCorrupt {
            fn before(&mut self, _t: &mut ThreadCtx<'_>, _s: InstrSite<'_>) {
                self.before_calls += 1;
            }
            fn after(&mut self, t: &mut ThreadCtx<'_>, s: InstrSite<'_>) {
                self.after_calls += 1;
                if t.dyn_index == self.corrupt_at {
                    if let Some(r) = s.instr.gpr_dests().first() {
                        t.corrupt_reg(*r, 0xFFFF_FFFF);
                    }
                }
            }
        }

        // Kernel: out[tid] = tid + 1
        let mut k = KernelBuilder::new("inc");
        let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
        k.ldc(out, 0);
        k.s2r(tid, SpecialReg::TidX);
        k.iaddi(Reg(2), tid, 1);
        k.shli(off, tid, 2);
        k.iadd(out, out, off);
        k.stg(out, 0, Reg(2));
        k.exit();
        let kernel = k.finish();

        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let out_buf = mem.alloc(32 * 4).expect("alloc");
        let mut hook = CountAndCorrupt { before_calls: 0, after_calls: 0, corrupt_at: u64::MAX };
        // Instrument only the IADD32I at pc=2.
        let mut before = vec![false; kernel.len()];
        let mut after = vec![false; kernel.len()];
        before[2] = true;
        after[2] = true;
        let mut ins = Instrumentation {
            before_mask: &before,
            after_mask: &after,
            hook: &mut hook,
            kernel_instance: 0,
        };
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(32),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            Some(&mut ins),
        )
        .expect("launch");
        assert_eq!(hook.before_calls, 32);
        assert_eq!(hook.after_calls, 32);
        let clean = mem.read_u32s(out_buf, 32).expect("read");
        assert_eq!(clean[5], 6);

        // Now corrupt thread 5's IADD32I destination. The IADD32I at pc=2 is
        // the thread's 3rd executed instruction. With 32 threads stepping in
        // lockstep, dynamic indices interleave warp-wide: instruction group
        // at pc=2 occupies dyn indices 64..96, lane 5 at 64+5.
        let mut hook = CountAndCorrupt { before_calls: 0, after_calls: 0, corrupt_at: 64 + 5 };
        let mut ins = Instrumentation {
            before_mask: &before,
            after_mask: &after,
            hook: &mut hook,
            kernel_instance: 0,
        };
        let mut mem = GlobalMem::new(4096);
        let out_buf = mem.alloc(32 * 4).expect("alloc");
        g.launch(
            &Launch {
                kernel: &kernel,
                grid: Dim3::from(1),
                block: Dim3::from(32),
                params: &[out_buf.addr()],
                instr_budget: None,
            },
            &mut mem,
            Some(&mut ins),
        )
        .expect("launch");
        let dirty = mem.read_u32s(out_buf, 32).expect("read");
        assert_eq!(dirty[5], 6 ^ 0xFFFF_FFFF, "corrupted lane");
        assert_eq!(dirty[4], 5, "uncorrupted neighbour");
    }

    #[test]
    fn instrumentation_mask_must_match_kernel() {
        struct Noop;
        impl ExecHook for Noop {}
        let kernel = vecadd_kernel();
        let g = gpu();
        let mut mem = GlobalMem::new(4096);
        let mut hook = Noop;
        let before = vec![false; 2]; // wrong length
        let after = vec![false; 2];
        let mut ins = Instrumentation {
            before_mask: &before,
            after_mask: &after,
            hook: &mut hook,
            kernel_instance: 0,
        };
        assert!(matches!(
            g.launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(1),
                    block: Dim3::from(1),
                    params: &[],
                    instr_budget: None
                },
                &mut mem,
                Some(&mut ins)
            ),
            Err(SimError::BadInstrumentationMask { .. })
        ));
    }

    #[test]
    fn instrumented_run_costs_more_cycles() {
        struct Noop;
        impl ExecHook for Noop {}
        let kernel = vecadd_kernel();
        let g = gpu();
        let setup = |mem: &mut GlobalMem| {
            let a = mem.alloc(1024).expect("a");
            let b = mem.alloc(1024).expect("b");
            let c = mem.alloc(1024).expect("c");
            [a.addr(), b.addr(), c.addr()]
        };
        let mut mem = GlobalMem::new(1 << 20);
        let params = setup(&mut mem);
        let plain = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(4),
                    block: Dim3::from(64),
                    params: &params,
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .expect("launch");

        let mut mem = GlobalMem::new(1 << 20);
        let params = setup(&mut mem);
        let mut hook = Noop;
        let before = vec![true; kernel.len()];
        let after = vec![false; kernel.len()];
        let mut ins = Instrumentation {
            before_mask: &before,
            after_mask: &after,
            hook: &mut hook,
            kernel_instance: 0,
        };
        let instrumented = g
            .launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(4),
                    block: Dim3::from(64),
                    params: &params,
                    instr_budget: None,
                },
                &mut mem,
                Some(&mut ins),
            )
            .expect("launch");
        assert!(instrumented.cycles > plain.cycles);
        assert_eq!(instrumented.dyn_instrs, plain.dyn_instrs);
    }
}
