//! The simulated-cycle cost model.
//!
//! Wall-clock overheads in the paper's Figure 4 come from instrumentation
//! structure; the simulator additionally reports *simulated cycles* so the
//! same overhead ratios can be computed in virtual time, independent of host
//! machine noise. Latencies are loosely modeled on Volta issue-to-use
//! latencies and are deliberately coarse.

use gpu_isa::ExecFamily;

/// Issue-to-use latency, in cycles, charged per executed warp-group.
pub fn latency(family: ExecFamily) -> u64 {
    use ExecFamily::*;
    match family {
        // Core FP32 / integer ALU
        FAdd | FMul | FFma | FMnMx | FSel | FSet | FCmp | FRnd => 4,
        // Packed FP16 runs at FP32-like latency on Volta
        HAdd2 | HMul2 | HFma2 | HSet2 | HMnMx2 => 4,
        HSetP2 => 5,
        IAdd | ISub | IAdd3 | IMnMx | IScAdd | Lea | ISet | ICmp | ISad | IAbs | Lop | Lop3
        | Bmsk | Bfe | Bfi | Shf | Shl | Shr | Brev | Popc | Flo | Sgxt | Prmt | Sel | Mov => 4,
        IMad | IMul | Xmad => 5,
        // Predicate datapath
        FSetP | ISetP | DSetP | PSet | PSetP | PLop3 | FChk | P2R | R2P => 5,
        // FP64 runs at half rate on GV100-class parts
        DAdd | DMul | DFma | DMnMx | DSet => 8,
        // Transcendentals and conversions go through the MUFU / XU pipes
        Mufu => 16,
        F2F | F2I | I2F | I2I => 8,
        // Cross-lane
        Shfl | Vote | FSwzAdd => 12,
        S2R => 6,
        // Memory
        Ld => 40,
        St | Red => 8,
        Atom => 60,
        // Control
        Bra | Brx | Call | Ret => 8,
        Bar => 30,
        Exit | Kill | Bpt => 1,
        Nop | MemFence | NanoSleep | ReconvHint => 1,
        Unimplemented => 1,
    }
}

/// Extra cycles charged when an instrumentation callback fires, modeling the
/// cost of the injected `insert_call` trampoline on real hardware.
pub const HOOK_CYCLES: u64 = 18;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_slower_than_alu() {
        assert!(latency(ExecFamily::Ld) > latency(ExecFamily::FAdd));
        assert!(latency(ExecFamily::Atom) > latency(ExecFamily::Ld));
    }

    #[test]
    fn fp64_is_slower_than_fp32() {
        assert!(latency(ExecFamily::DFma) > latency(ExecFamily::FFma));
    }

    #[test]
    fn every_family_has_nonzero_latency() {
        use gpu_isa::Opcode;
        for op in Opcode::ALL {
            assert!(latency(op.family()) >= 1);
        }
    }
}
