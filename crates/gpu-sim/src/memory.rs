//! Device memory: global, shared, local, and constant spaces.
//!
//! Global memory uses a bump allocator with a reserved null page, so that
//! fault-corrupted pointers near zero fault instead of silently aliasing the
//! first allocation — mirroring how corrupted addresses on real GPUs usually
//! produce "illegal address" errors.

use crate::trap::TrapKind;
use gpu_isa::{MemWidth, Space};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A device pointer into global memory (32-bit address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DevPtr(pub u32);

impl DevPtr {
    /// The byte address as `u32` (what kernels receive as a parameter).
    #[inline]
    pub fn addr(self) -> u32 {
        self.0
    }

    /// Pointer displaced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u32) -> DevPtr {
        DevPtr(self.0 + bytes)
    }
}

impl fmt::Display for DevPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{:#x}", self.0)
    }
}

/// Errors from host-side memory operations (allocation, copies).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The allocation would exceed device capacity.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u32,
        /// Bytes remaining.
        available: u32,
    },
    /// A host copy touched unallocated memory.
    BadCopy {
        /// Faulting byte address.
        addr: u32,
        /// Length of the attempted copy.
        len: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested, available } => {
                write!(f, "device out of memory: requested {requested} bytes, {available} available")
            }
            MemError::BadCopy { addr, len } => {
                write!(f, "host copy of {len} bytes at {addr:#x} touches unallocated memory")
            }
        }
    }
}

impl std::error::Error for MemError {}

const NULL_PAGE: u32 = 4096;

/// Device global memory: a bump-allocated, bounds-checked byte array.
#[derive(Debug, Clone)]
pub struct GlobalMem {
    data: Vec<u8>,
    brk: u32,
}

impl GlobalMem {
    /// Create a device memory of `capacity` bytes (plus the null page).
    pub fn new(capacity: u32) -> GlobalMem {
        let total = NULL_PAGE as usize + capacity as usize;
        GlobalMem { data: vec![0; total], brk: NULL_PAGE }
    }

    /// Allocate `size` bytes aligned to 256 (like `cudaMalloc`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc(&mut self, size: u32) -> Result<DevPtr, MemError> {
        let aligned = self.brk.next_multiple_of(256);
        let end = aligned as u64 + size as u64;
        if end > self.data.len() as u64 {
            return Err(MemError::OutOfMemory {
                requested: size,
                available: (self.data.len() as u64).saturating_sub(aligned as u64) as u32,
            });
        }
        self.brk = end as u32;
        Ok(DevPtr(aligned))
    }

    /// Bytes currently allocated (excluding the null page).
    pub fn allocated(&self) -> u32 {
        self.brk - NULL_PAGE
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let end = addr as u64 + len as u64;
        if addr < NULL_PAGE || end > self.brk as u64 {
            Err(MemError::BadCopy { addr, len })
        } else {
            Ok(addr as usize)
        }
    }

    /// Host-side copy into device memory (`cudaMemcpy` host→device).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn copy_from_host(&mut self, dst: DevPtr, src: &[u8]) -> Result<(), MemError> {
        let off = self.check(dst.0, src.len() as u32)?;
        self.data[off..off + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Host-side copy out of device memory (`cudaMemcpy` device→host).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn copy_to_host(&self, src: DevPtr, dst: &mut [u8]) -> Result<(), MemError> {
        let off = self.check(src.0, dst.len() as u32)?;
        dst.copy_from_slice(&self.data[off..off + dst.len()]);
        Ok(())
    }

    /// Host-side typed write of an `f32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_f32s(&mut self, dst: DevPtr, values: &[f32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of an `f32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_f32s(&self, src: DevPtr, count: usize) -> Result<Vec<f32>, MemError> {
        let mut bytes = vec![0u8; count * 4];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Host-side typed write of a `u32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_u32s(&mut self, dst: DevPtr, values: &[u32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of a `u32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_u32s(&self, src: DevPtr, count: usize) -> Result<Vec<u32>, MemError> {
        let mut bytes = vec![0u8; count * 4];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Host-side typed write of an `f64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_f64s(&mut self, dst: DevPtr, values: &[f64]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of an `f64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_f64s(&self, src: DevPtr, count: usize) -> Result<Vec<f64>, MemError> {
        let mut bytes = vec![0u8; count * 8];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Device-side load (bounds- and alignment-checked).
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn load(&self, addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
        let w = width.bytes();
        device_check(Space::Global, addr, w, NULL_PAGE, self.brk)?;
        Ok(load_le(&self.data, addr as usize, w))
    }

    /// Device-side store (bounds- and alignment-checked).
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn store(&mut self, addr: u32, width: MemWidth, value: u64) -> Result<(), TrapKind> {
        let w = width.bytes();
        device_check(Space::Global, addr, w, NULL_PAGE, self.brk)?;
        store_le(&mut self.data, addr as usize, w, value);
        Ok(())
    }
}

/// Per-block shared memory (scratchpad).
#[derive(Debug, Clone)]
pub struct SharedMem {
    data: Vec<u8>,
}

impl SharedMem {
    /// Create a shared memory of `size` bytes, zero-initialized.
    pub fn new(size: u32) -> SharedMem {
        SharedMem { data: vec![0; size as usize] }
    }

    /// Size in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// `true` if the block declared no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side load.
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn load(&self, addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
        let w = width.bytes();
        device_check(Space::Shared, addr, w, 0, self.data.len() as u32)?;
        Ok(load_le(&self.data, addr as usize, w))
    }

    /// Device-side store.
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn store(&mut self, addr: u32, width: MemWidth, value: u64) -> Result<(), TrapKind> {
        let w = width.bytes();
        device_check(Space::Shared, addr, w, 0, self.data.len() as u32)?;
        store_le(&mut self.data, addr as usize, w, value);
        Ok(())
    }
}

/// Bounds + alignment check shared by all spaces.
#[inline]
fn device_check(space: Space, addr: u32, width: u32, lo: u32, hi: u32) -> Result<(), TrapKind> {
    if !addr.is_multiple_of(width) {
        return Err(TrapKind::Misaligned { space, addr, align: width });
    }
    let end = addr as u64 + width as u64;
    if addr < lo || end > hi as u64 {
        return Err(TrapKind::OutOfBounds { space, addr, width });
    }
    Ok(())
}

/// Little-endian load of `width` bytes (width ∈ {1,2,4,8}).
#[inline]
fn load_le(data: &[u8], off: usize, width: u32) -> u64 {
    let mut v = 0u64;
    for i in 0..width as usize {
        v |= (data[off + i] as u64) << (8 * i);
    }
    v
}

/// Little-endian store of `width` bytes (width ∈ {1,2,4,8}).
#[inline]
fn store_le(data: &mut [u8], off: usize, width: u32, value: u64) {
    for i in 0..width as usize {
        data[off + i] = (value >> (8 * i)) as u8;
    }
}

/// Device-side load from per-thread local memory.
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn local_load(local: &[u8], addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
    let w = width.bytes();
    device_check(Space::Local, addr, w, 0, local.len() as u32)?;
    Ok(load_le(local, addr as usize, w))
}

/// Device-side store to per-thread local memory.
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn local_store(local: &mut [u8], addr: u32, width: MemWidth, value: u64) -> Result<(), TrapKind> {
    let w = width.bytes();
    device_check(Space::Local, addr, w, 0, local.len() as u32)?;
    store_le(local, addr as usize, w, value);
    Ok(())
}

/// Device-side load from constant memory (kernel parameters).
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn const_load(cmem: &[u8], addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
    let w = width.bytes();
    device_check(Space::Const, addr, w, 0, cmem.len() as u32)?;
    Ok(load_le(cmem, addr as usize, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_nonnull() {
        let mut m = GlobalMem::new(1 << 16);
        let p = m.alloc(100).expect("alloc");
        assert_eq!(p.0 % 256, 0);
        assert!(p.0 >= NULL_PAGE);
        let q = m.alloc(4).expect("alloc");
        assert!(q.0 >= p.0 + 100);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut m = GlobalMem::new(1024);
        assert!(m.alloc(512).is_ok());
        assert!(matches!(m.alloc(10_000), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn host_roundtrip_f32() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(16).expect("alloc");
        m.write_f32s(p, &[1.0, 2.5, -3.0, 0.0]).expect("write");
        assert_eq!(m.read_f32s(p, 4).expect("read"), vec![1.0, 2.5, -3.0, 0.0]);
    }

    #[test]
    fn host_roundtrip_f64_u32() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(32).expect("alloc");
        m.write_f64s(p, &[1.25, -9.5]).expect("write");
        assert_eq!(m.read_f64s(p, 2).expect("read"), vec![1.25, -9.5]);
        let q = m.alloc(8).expect("alloc");
        m.write_u32s(q, &[7, 8]).expect("write");
        assert_eq!(m.read_u32s(q, 2).expect("read"), vec![7, 8]);
    }

    #[test]
    fn host_copy_out_of_range_fails() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(8).expect("alloc");
        assert!(m.write_u32s(p.offset(8), &[1]).is_err());
        assert!(m.read_u32s(DevPtr(0), 1).is_err(), "null page is not readable by host");
    }

    #[test]
    fn device_null_deref_traps() {
        let m = GlobalMem::new(4096);
        assert!(matches!(
            m.load(0, MemWidth::B32),
            Err(TrapKind::OutOfBounds { space: Space::Global, .. })
        ));
    }

    #[test]
    fn device_misaligned_traps() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(64).expect("alloc");
        assert!(matches!(
            m.load(p.0 + 2, MemWidth::B32),
            Err(TrapKind::Misaligned { .. })
        ));
        assert!(matches!(
            m.load(p.0 + 4, MemWidth::B64),
            Err(TrapKind::Misaligned { .. })
        ));
    }

    #[test]
    fn device_load_store_roundtrip_all_widths() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(64).expect("alloc");
        for (w, v) in [
            (MemWidth::B8, 0xABu64),
            (MemWidth::B16, 0xBEEF),
            (MemWidth::B32, 0xDEAD_BEEF),
            (MemWidth::B64, 0x0123_4567_89AB_CDEF),
        ] {
            m.store(p.0, w, v).expect("store");
            assert_eq!(m.load(p.0, w).expect("load"), v);
        }
    }

    #[test]
    fn device_store_beyond_brk_traps() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(8).expect("alloc");
        assert!(m.store(p.0 + 256, MemWidth::B32, 1).is_err());
    }

    #[test]
    fn shared_mem_bounds() {
        let mut s = SharedMem::new(64);
        s.store(60, MemWidth::B32, 5).expect("store");
        assert_eq!(s.load(60, MemWidth::B32).expect("load"), 5);
        assert!(s.store(64, MemWidth::B32, 5).is_err());
        assert!(s.load(61, MemWidth::B32).is_err(), "misaligned");
    }

    #[test]
    fn local_and_const_helpers() {
        let mut local = vec![0u8; 32];
        local_store(&mut local, 8, MemWidth::B64, 42).expect("store");
        assert_eq!(local_load(&local, 8, MemWidth::B64).expect("load"), 42);
        assert!(local_load(&local, 32, MemWidth::B8).is_err());

        let cmem = [1u8, 0, 0, 0, 2, 0, 0, 0];
        assert_eq!(const_load(&cmem, 0, MemWidth::B32).expect("load"), 1);
        assert_eq!(const_load(&cmem, 4, MemWidth::B32).expect("load"), 2);
        assert!(const_load(&cmem, 8, MemWidth::B32).is_err());
    }
}
