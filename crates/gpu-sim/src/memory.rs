//! Device memory: global, shared, local, and constant spaces.
//!
//! Global memory uses a bump allocator with a reserved null page, so that
//! fault-corrupted pointers near zero fault instead of silently aliasing the
//! first allocation — mirroring how corrupted addresses on real GPUs usually
//! produce "illegal address" errors.

use crate::trap::TrapKind;
use gpu_isa::{MemWidth, Space};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A device pointer into global memory (32-bit address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DevPtr(pub u32);

impl DevPtr {
    /// The byte address as `u32` (what kernels receive as a parameter).
    #[inline]
    pub fn addr(self) -> u32 {
        self.0
    }

    /// Pointer displaced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u32) -> DevPtr {
        DevPtr(self.0 + bytes)
    }
}

impl fmt::Display for DevPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{:#x}", self.0)
    }
}

/// Errors from host-side memory operations (allocation, copies).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The allocation would exceed device capacity.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u32,
        /// Bytes remaining.
        available: u32,
    },
    /// A host copy touched unallocated memory.
    BadCopy {
        /// Faulting byte address.
        addr: u32,
        /// Length of the attempted copy.
        len: u32,
    },
    /// The allocation would push total live allocations past the resource
    /// governor's cap ([`crate::ResourceLimits::max_global_bytes`]) — fired
    /// before the device itself runs out, so a fault-corrupted allocation
    /// size becomes a sandbox kill rather than a host OOM.
    LimitExceeded {
        /// Bytes requested by this allocation.
        requested: u32,
        /// The configured cap in bytes.
        limit: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested, available } => {
                write!(
                    f,
                    "device out of memory: requested {requested} bytes, {available} available"
                )
            }
            MemError::BadCopy { addr, len } => {
                write!(f, "host copy of {len} bytes at {addr:#x} touches unallocated memory")
            }
            MemError::LimitExceeded { requested, limit } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds the resource governor's \
                     {limit}-byte global-memory cap"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

const NULL_PAGE: u32 = 4096;

/// Page granularity of global memory (one null page's worth).
pub const PAGE_SIZE: u32 = 4096;

type Page = [u8; PAGE_SIZE as usize];

/// A zero page is represented as `None` — untouched memory costs nothing.
type PageSlot = Option<Arc<Page>>;

/// An O(resident-pages) copy-on-write snapshot of [`GlobalMem`].
///
/// Taking one clones only the page table (one `Arc` pointer per resident
/// page, `None` per untouched page), never page contents. Restoring swaps
/// the page table back in; pages are shared until the next write dirties
/// them. Snapshots are `Send + Sync`, so checkpoint stores can hand the
/// same snapshot to many injection workers.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    pages: Vec<PageSlot>,
    brk: u32,
    capacity: u32,
}

impl MemSnapshot {
    /// Number of resident (non-zero, materialized) pages captured.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Allocation break captured by the snapshot.
    pub fn brk(&self) -> u32 {
        self.brk
    }
}

/// Device global memory: a bump-allocated, bounds-checked address space
/// backed by copy-on-write pages.
///
/// Pages start as `None` (implicitly all-zero), so a fresh 64 MiB device
/// memory costs one pointer-sized slot per page rather than 64 MiB of
/// zeroed bytes. Writes materialize pages; [`GlobalMem::snapshot`] and
/// [`GlobalMem::restore`] share them by reference count.
#[derive(Debug, Clone)]
pub struct GlobalMem {
    pages: Vec<PageSlot>,
    capacity: u32,
    brk: u32,
    alloc_limit: Option<u32>,
}

impl GlobalMem {
    /// Create a device memory of `capacity` bytes (plus the null page).
    pub fn new(capacity: u32) -> GlobalMem {
        let total = NULL_PAGE as u64 + capacity as u64;
        let num_pages = total.div_ceil(PAGE_SIZE as u64) as usize;
        GlobalMem {
            pages: vec![None; num_pages],
            capacity: total as u32,
            brk: NULL_PAGE,
            alloc_limit: None,
        }
    }

    /// Arm (or disarm) the resource governor's allocation cap. While set,
    /// [`GlobalMem::alloc`] fails with [`MemError::LimitExceeded`] once
    /// total allocated bytes would pass `limit` — before the device itself
    /// runs out of capacity.
    pub fn set_alloc_limit(&mut self, limit: Option<u32>) {
        self.alloc_limit = limit;
    }

    /// Allocate `size` bytes aligned to 256 (like `cudaMalloc`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::LimitExceeded`] when a governor cap is armed and
    /// breached, or [`MemError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc(&mut self, size: u32) -> Result<DevPtr, MemError> {
        let aligned = self.brk.next_multiple_of(256);
        let end = aligned as u64 + size as u64;
        if let Some(limit) = self.alloc_limit {
            if end - NULL_PAGE as u64 > limit as u64 {
                return Err(MemError::LimitExceeded { requested: size, limit });
            }
        }
        if end > self.capacity as u64 {
            return Err(MemError::OutOfMemory {
                requested: size,
                available: (self.capacity as u64).saturating_sub(aligned as u64) as u32,
            });
        }
        self.brk = end as u32;
        Ok(DevPtr(aligned))
    }

    /// Bytes currently allocated (excluding the null page).
    pub fn allocated(&self) -> u32 {
        self.brk - NULL_PAGE
    }

    /// Number of materialized (written-to) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Capture a copy-on-write snapshot of the current contents.
    ///
    /// Cost is one refcount bump per resident page — independent of how
    /// many bytes the pages hold.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot { pages: self.pages.clone(), brk: self.brk, capacity: self.capacity }
    }

    /// Restore contents and allocation state from a snapshot.
    ///
    /// The snapshot's pages are shared, not copied; subsequent writes to
    /// either side dirty only the touched page.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a device of a different capacity.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        assert_eq!(
            self.capacity, snap.capacity,
            "snapshot restored onto a device of different capacity"
        );
        self.pages = snap.pages.clone();
        self.brk = snap.brk;
    }

    /// Mutable access to the page containing `addr`, materializing or
    /// un-sharing it as needed (the copy-on-write fault path).
    #[inline]
    fn page_mut(&mut self, addr: usize) -> &mut Page {
        let slot = &mut self.pages[addr / PAGE_SIZE as usize];
        Arc::make_mut(slot.get_or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize])))
    }

    /// Copy `dst.len()` bytes out, spanning pages as needed (range already
    /// bounds-checked).
    fn read_bytes(&self, addr: u32, dst: &mut [u8]) {
        let mut off = addr as usize;
        let mut done = 0;
        while done < dst.len() {
            let in_page = off % PAGE_SIZE as usize;
            let run = (PAGE_SIZE as usize - in_page).min(dst.len() - done);
            match &self.pages[off / PAGE_SIZE as usize] {
                Some(page) => dst[done..done + run].copy_from_slice(&page[in_page..in_page + run]),
                None => dst[done..done + run].fill(0),
            }
            off += run;
            done += run;
        }
    }

    /// Copy `src` in, spanning pages as needed (range already
    /// bounds-checked).
    fn write_bytes(&mut self, addr: u32, src: &[u8]) {
        let mut off = addr as usize;
        let mut done = 0;
        while done < src.len() {
            let in_page = off % PAGE_SIZE as usize;
            let run = (PAGE_SIZE as usize - in_page).min(src.len() - done);
            let page = self.page_mut(off);
            page[in_page..in_page + run].copy_from_slice(&src[done..done + run]);
            off += run;
            done += run;
        }
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let end = addr as u64 + len as u64;
        if addr < NULL_PAGE || end > self.brk as u64 {
            Err(MemError::BadCopy { addr, len })
        } else {
            Ok(addr as usize)
        }
    }

    /// Host-side copy into device memory (`cudaMemcpy` host→device).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn copy_from_host(&mut self, dst: DevPtr, src: &[u8]) -> Result<(), MemError> {
        self.check(dst.0, src.len() as u32)?;
        self.write_bytes(dst.0, src);
        Ok(())
    }

    /// Host-side copy out of device memory (`cudaMemcpy` device→host).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn copy_to_host(&self, src: DevPtr, dst: &mut [u8]) -> Result<(), MemError> {
        self.check(src.0, dst.len() as u32)?;
        self.read_bytes(src.0, dst);
        Ok(())
    }

    /// Host-side typed write of an `f32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_f32s(&mut self, dst: DevPtr, values: &[f32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of an `f32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_f32s(&self, src: DevPtr, count: usize) -> Result<Vec<f32>, MemError> {
        let mut bytes = vec![0u8; count * 4];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Host-side typed write of a `u32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_u32s(&mut self, dst: DevPtr, values: &[u32]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of a `u32` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_u32s(&self, src: DevPtr, count: usize) -> Result<Vec<u32>, MemError> {
        let mut bytes = vec![0u8; count * 4];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Host-side typed write of an `f64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn write_f64s(&mut self, dst: DevPtr, values: &[f64]) -> Result<(), MemError> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.copy_from_host(dst, &bytes)
    }

    /// Host-side typed read of an `f64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadCopy`] if the range is not fully allocated.
    pub fn read_f64s(&self, src: DevPtr, count: usize) -> Result<Vec<f64>, MemError> {
        let mut bytes = vec![0u8; count * 8];
        self.copy_to_host(src, &mut bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Device-side load (bounds- and alignment-checked).
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn load(&self, addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
        let w = width.bytes();
        device_check(Space::Global, addr, w, NULL_PAGE, self.brk)?;
        // Aligned accesses of ≤ 8 bytes never straddle a page boundary.
        match &self.pages[addr as usize / PAGE_SIZE as usize] {
            Some(page) => Ok(load_le(&page[..], addr as usize % PAGE_SIZE as usize, w)),
            None => Ok(0),
        }
    }

    /// Device-side store (bounds- and alignment-checked).
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn store(&mut self, addr: u32, width: MemWidth, value: u64) -> Result<(), TrapKind> {
        let w = width.bytes();
        device_check(Space::Global, addr, w, NULL_PAGE, self.brk)?;
        // Aligned accesses of ≤ 8 bytes never straddle a page boundary.
        let page = self.page_mut(addr as usize);
        store_le(&mut page[..], addr as usize % PAGE_SIZE as usize, w, value);
        Ok(())
    }
}

/// Per-block shared memory (scratchpad).
#[derive(Debug, Clone)]
pub struct SharedMem {
    data: Vec<u8>,
}

impl SharedMem {
    /// Create a shared memory of `size` bytes, zero-initialized.
    pub fn new(size: u32) -> SharedMem {
        SharedMem { data: vec![0; size as usize] }
    }

    /// Size in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// `true` if the block declared no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side load.
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn load(&self, addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
        let w = width.bytes();
        device_check(Space::Shared, addr, w, 0, self.data.len() as u32)?;
        Ok(load_le(&self.data, addr as usize, w))
    }

    /// Device-side store.
    ///
    /// # Errors
    ///
    /// Returns the [`TrapKind`] a faulting access raises on device.
    #[inline]
    pub fn store(&mut self, addr: u32, width: MemWidth, value: u64) -> Result<(), TrapKind> {
        let w = width.bytes();
        device_check(Space::Shared, addr, w, 0, self.data.len() as u32)?;
        store_le(&mut self.data, addr as usize, w, value);
        Ok(())
    }
}

/// Bounds + alignment check shared by all spaces.
#[inline]
fn device_check(space: Space, addr: u32, width: u32, lo: u32, hi: u32) -> Result<(), TrapKind> {
    if !addr.is_multiple_of(width) {
        return Err(TrapKind::Misaligned { space, addr, align: width });
    }
    let end = addr as u64 + width as u64;
    if addr < lo || end > hi as u64 {
        return Err(TrapKind::OutOfBounds { space, addr, width });
    }
    Ok(())
}

/// Little-endian load of `width` bytes (width ∈ {1,2,4,8}).
#[inline]
fn load_le(data: &[u8], off: usize, width: u32) -> u64 {
    let mut v = 0u64;
    for i in 0..width as usize {
        v |= (data[off + i] as u64) << (8 * i);
    }
    v
}

/// Little-endian store of `width` bytes (width ∈ {1,2,4,8}).
#[inline]
fn store_le(data: &mut [u8], off: usize, width: u32, value: u64) {
    for i in 0..width as usize {
        data[off + i] = (value >> (8 * i)) as u8;
    }
}

/// Device-side load from per-thread local memory.
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn local_load(local: &[u8], addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
    let w = width.bytes();
    device_check(Space::Local, addr, w, 0, local.len() as u32)?;
    Ok(load_le(local, addr as usize, w))
}

/// Device-side store to per-thread local memory.
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn local_store(
    local: &mut [u8],
    addr: u32,
    width: MemWidth,
    value: u64,
) -> Result<(), TrapKind> {
    let w = width.bytes();
    device_check(Space::Local, addr, w, 0, local.len() as u32)?;
    store_le(local, addr as usize, w, value);
    Ok(())
}

/// Device-side load from constant memory (kernel parameters).
///
/// # Errors
///
/// Returns the [`TrapKind`] a faulting access raises on device.
#[inline]
pub fn const_load(cmem: &[u8], addr: u32, width: MemWidth) -> Result<u64, TrapKind> {
    let w = width.bytes();
    device_check(Space::Const, addr, w, 0, cmem.len() as u32)?;
    Ok(load_le(cmem, addr as usize, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_nonnull() {
        let mut m = GlobalMem::new(1 << 16);
        let p = m.alloc(100).expect("alloc");
        assert_eq!(p.0 % 256, 0);
        assert!(p.0 >= NULL_PAGE);
        let q = m.alloc(4).expect("alloc");
        assert!(q.0 >= p.0 + 100);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut m = GlobalMem::new(1024);
        assert!(m.alloc(512).is_ok());
        assert!(matches!(m.alloc(10_000), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn alloc_limit_fires_before_capacity() {
        let mut m = GlobalMem::new(1 << 20);
        m.set_alloc_limit(Some(1024));
        assert!(m.alloc(512).is_ok());
        // Within capacity but past the governor cap.
        let err = m.alloc(1024).unwrap_err();
        assert!(matches!(err, MemError::LimitExceeded { requested: 1024, limit: 1024 }), "{err}");
        // Disarming restores plain capacity behavior.
        m.set_alloc_limit(None);
        assert!(m.alloc(1024).is_ok());
    }

    #[test]
    fn host_roundtrip_f32() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(16).expect("alloc");
        m.write_f32s(p, &[1.0, 2.5, -3.0, 0.0]).expect("write");
        assert_eq!(m.read_f32s(p, 4).expect("read"), vec![1.0, 2.5, -3.0, 0.0]);
    }

    #[test]
    fn host_roundtrip_f64_u32() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(32).expect("alloc");
        m.write_f64s(p, &[1.25, -9.5]).expect("write");
        assert_eq!(m.read_f64s(p, 2).expect("read"), vec![1.25, -9.5]);
        let q = m.alloc(8).expect("alloc");
        m.write_u32s(q, &[7, 8]).expect("write");
        assert_eq!(m.read_u32s(q, 2).expect("read"), vec![7, 8]);
    }

    #[test]
    fn host_copy_out_of_range_fails() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(8).expect("alloc");
        assert!(m.write_u32s(p.offset(8), &[1]).is_err());
        assert!(m.read_u32s(DevPtr(0), 1).is_err(), "null page is not readable by host");
    }

    #[test]
    fn device_null_deref_traps() {
        let m = GlobalMem::new(4096);
        assert!(matches!(
            m.load(0, MemWidth::B32),
            Err(TrapKind::OutOfBounds { space: Space::Global, .. })
        ));
    }

    #[test]
    fn device_misaligned_traps() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(64).expect("alloc");
        assert!(matches!(m.load(p.0 + 2, MemWidth::B32), Err(TrapKind::Misaligned { .. })));
        assert!(matches!(m.load(p.0 + 4, MemWidth::B64), Err(TrapKind::Misaligned { .. })));
    }

    #[test]
    fn device_load_store_roundtrip_all_widths() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(64).expect("alloc");
        for (w, v) in [
            (MemWidth::B8, 0xABu64),
            (MemWidth::B16, 0xBEEF),
            (MemWidth::B32, 0xDEAD_BEEF),
            (MemWidth::B64, 0x0123_4567_89AB_CDEF),
        ] {
            m.store(p.0, w, v).expect("store");
            assert_eq!(m.load(p.0, w).expect("load"), v);
        }
    }

    #[test]
    fn device_store_beyond_brk_traps() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(8).expect("alloc");
        assert!(m.store(p.0 + 256, MemWidth::B32, 1).is_err());
    }

    #[test]
    fn shared_mem_bounds() {
        let mut s = SharedMem::new(64);
        s.store(60, MemWidth::B32, 5).expect("store");
        assert_eq!(s.load(60, MemWidth::B32).expect("load"), 5);
        assert!(s.store(64, MemWidth::B32, 5).is_err());
        assert!(s.load(61, MemWidth::B32).is_err(), "misaligned");
    }

    #[test]
    fn untouched_memory_reads_zero_without_materializing() {
        let mut m = GlobalMem::new(1 << 20);
        let p = m.alloc(64 * 1024).expect("alloc");
        assert_eq!(m.resident_pages(), 0, "allocation alone must not materialize pages");
        assert_eq!(m.load(p.0, MemWidth::B64).expect("load"), 0);
        assert_eq!(m.read_u32s(p, 4).expect("read"), vec![0; 4]);
        assert_eq!(m.resident_pages(), 0, "reads must not materialize pages");
        m.store(p.0, MemWidth::B8, 1).expect("store");
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn host_copy_spans_page_boundary() {
        let mut m = GlobalMem::new(1 << 20);
        let p = m.alloc(4 * PAGE_SIZE).expect("alloc");
        // 256-aligned base, offset so the copy straddles two page edges.
        let data: Vec<u8> = (0..(2 * PAGE_SIZE + 100) as usize).map(|i| (i % 251) as u8).collect();
        let dst = p.offset(PAGE_SIZE - 50);
        m.copy_from_host(dst, &data).expect("write");
        let mut back = vec![0u8; data.len()];
        m.copy_to_host(dst, &mut back).expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = GlobalMem::new(1 << 20);
        let p = m.alloc(4096).expect("alloc");
        m.write_u32s(p, &[1, 2, 3, 4]).expect("write");
        let snap = m.snapshot();
        assert_eq!(snap.resident_pages(), 1);

        m.write_u32s(p, &[9, 9, 9, 9]).expect("overwrite");
        let q = m.alloc(4096).expect("alloc after snapshot");
        m.write_u32s(q, &[7]).expect("write");

        m.restore(&snap);
        assert_eq!(m.read_u32s(p, 4).expect("read"), vec![1, 2, 3, 4]);
        assert_eq!(m.allocated(), snap.brk() - NULL_PAGE, "brk restored");
        assert!(m.read_u32s(q, 1).is_err(), "post-snapshot allocation rolled back");
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut m = GlobalMem::new(1 << 20);
        let p = m.alloc(64).expect("alloc");
        m.write_u32s(p, &[42]).expect("write");
        let snap = m.snapshot();
        m.write_u32s(p, &[77]).expect("write");

        let mut other = GlobalMem::new(1 << 20);
        other.restore(&snap);
        assert_eq!(other.read_u32s(p, 1).expect("read"), vec![42], "snapshot kept old value");
        assert_eq!(m.read_u32s(p, 1).expect("read"), vec![77], "live memory kept new value");

        // Writing through the restored copy must not leak into the snapshot.
        other.write_u32s(p, &[5]).expect("write");
        let mut third = GlobalMem::new(1 << 20);
        third.restore(&snap);
        assert_eq!(third.read_u32s(p, 1).expect("read"), vec![42]);
    }

    #[test]
    #[should_panic(expected = "different capacity")]
    fn restore_rejects_capacity_mismatch() {
        let m = GlobalMem::new(1 << 20);
        let snap = m.snapshot();
        let mut other = GlobalMem::new(1 << 16);
        other.restore(&snap);
    }

    #[test]
    fn local_and_const_helpers() {
        let mut local = vec![0u8; 32];
        local_store(&mut local, 8, MemWidth::B64, 42).expect("store");
        assert_eq!(local_load(&local, 8, MemWidth::B64).expect("load"), 42);
        assert!(local_load(&local, 32, MemWidth::B8).is_err());

        let cmem = [1u8, 0, 0, 0, 2, 0, 0, 0];
        assert_eq!(const_load(&cmem, 0, MemWidth::B32).expect("load"), 1);
        assert_eq!(const_load(&cmem, 4, MemWidth::B32).expect("load"), 2);
        assert!(const_load(&cmem, 8, MemWidth::B32).is_err());
    }
}
