//! Scalar (per-thread) instruction semantics.
//!
//! [`exec_scalar`] executes one guard-passing instruction for one thread.
//! Cross-lane families (`SHFL`, `VOTE`, `FSWZADD`) are handled by the block
//! scheduler, which can see the whole warp; everything else is defined here.

use crate::hooks::ThreadMeta;
use crate::memory::{const_load, local_load, local_store, GlobalMem, SharedMem};
use crate::regfile::RegFile;
use crate::trap::TrapKind;
use gpu_isa::{
    AtomOp, BoolOp, CmpOp, Dst, ExecFamily, Instr, MemRef, MemWidth, Modifier, MufuFunc, Operand,
    RoundMode, Space, SpecialReg,
};

/// What the thread does next after executing an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to `pc + 1`.
    Next,
    /// Jump to an instruction index.
    Branch(u32),
    /// The thread has exited.
    Exit,
    /// The thread arrived at a block-wide barrier.
    Barrier,
}

/// Execution environment for one thread: registers, all memory spaces, and
/// thread identity.
pub struct ExecEnv<'a> {
    /// The thread's register file.
    pub regs: &'a mut RegFile,
    /// Device global memory.
    pub global: &'a mut GlobalMem,
    /// The block's shared memory.
    pub shared: &'a mut SharedMem,
    /// The thread's local memory.
    pub local: &'a mut Vec<u8>,
    /// Constant memory (kernel parameters at offset 0).
    pub cmem: &'a [u8],
    /// The thread's per-launch call stack (for `CALL`/`RET`).
    pub ret_stack: &'a mut Vec<u32>,
    /// Thread identity.
    pub meta: &'a ThreadMeta,
    /// Current simulated cycle (for `SR_CLOCKLO`).
    pub clock: u64,
    /// Current program counter (needed by `CALL`).
    pub pc: u32,
    /// Number of static instructions in the kernel (for indirect-branch
    /// validation).
    pub kernel_len: u32,
}

impl ExecEnv<'_> {
    fn read_sr(&self, sr: SpecialReg) -> u32 {
        let m = self.meta;
        match sr {
            SpecialReg::TidX => m.tid.x,
            SpecialReg::TidY => m.tid.y,
            SpecialReg::TidZ => m.tid.z,
            SpecialReg::CtaIdX => m.ctaid.x,
            SpecialReg::CtaIdY => m.ctaid.y,
            SpecialReg::CtaIdZ => m.ctaid.z,
            SpecialReg::NTidX => m.ntid.x,
            SpecialReg::NTidY => m.ntid.y,
            SpecialReg::NTidZ => m.ntid.z,
            SpecialReg::NCtaIdX => m.nctaid.x,
            SpecialReg::NCtaIdY => m.nctaid.y,
            SpecialReg::NCtaIdZ => m.nctaid.z,
            SpecialReg::LaneId => m.lane,
            SpecialReg::WarpId => m.warp,
            SpecialReg::SmId => m.sm,
            SpecialReg::ClockLo => self.clock as u32,
            SpecialReg::GlobalTidX => (m.global_tid() & 0xFFFF_FFFF) as u32,
        }
    }

    fn rd_u32(&self, op: Operand) -> u32 {
        match op {
            Operand::R(r) => self.regs.read(r),
            Operand::R64(r) => self.regs.read(r),
            Operand::Imm(v) => v,
            Operand::P(p) => self.regs.read_p(p) as u32,
            Operand::NotP(p) => !self.regs.read_p(p) as u32,
            Operand::Sr(sr) => self.read_sr(sr),
            Operand::None | Operand::Mem(_) => 0,
        }
    }

    fn rd_u64(&self, op: Operand) -> u64 {
        match op {
            Operand::R64(r) => self.regs.read64(r),
            Operand::R(r) => self.regs.read(r) as u64,
            // A 32-bit immediate used by an FP64 op carries f32 bits,
            // widened to f64.
            Operand::Imm(v) => (f32::from_bits(v) as f64).to_bits(),
            _ => 0,
        }
    }

    fn rd_f32(&self, op: Operand) -> f32 {
        f32::from_bits(self.rd_u32(op))
    }

    fn rd_f64(&self, op: Operand) -> f64 {
        f64::from_bits(self.rd_u64(op))
    }

    fn rd_bool(&self, op: Operand) -> bool {
        match op {
            Operand::P(p) => self.regs.read_p(p),
            Operand::NotP(p) => !self.regs.read_p(p),
            Operand::Imm(v) => v != 0,
            Operand::R(r) => self.regs.read(r) != 0,
            _ => true,
        }
    }

    fn effective_addr(&self, m: MemRef) -> u32 {
        self.regs.read(m.base).wrapping_add(m.offset as i32 as u32)
    }

    fn mem_load(&mut self, m: MemRef, width: MemWidth) -> Result<u64, TrapKind> {
        let addr = self.effective_addr(m);
        match m.space {
            Space::Global => self.global.load(addr, width),
            Space::Shared => self.shared.load(addr, width),
            Space::Local => local_load(self.local, addr, width),
            Space::Const => const_load(self.cmem, addr, width),
        }
    }

    fn mem_store(&mut self, m: MemRef, width: MemWidth, v: u64) -> Result<(), TrapKind> {
        let addr = self.effective_addr(m);
        match m.space {
            Space::Global => self.global.store(addr, width, v),
            Space::Shared => self.shared.store(addr, width, v),
            Space::Local => local_store(self.local, addr, width, v),
            Space::Const => {
                Err(TrapKind::OutOfBounds { space: Space::Const, addr, width: width.bytes() })
            }
        }
    }

    fn write_dst_u32(&mut self, i: &Instr, v: u32) {
        if let Dst::R(r) = i.dsts[0] {
            self.regs.write(r, v);
        } else if let Dst::R64(r) = i.dsts[0] {
            self.regs.write(r, v);
        }
    }

    fn write_dst_u64(&mut self, i: &Instr, v: u64) {
        match i.dsts[0] {
            Dst::R64(r) => self.regs.write64(r, v),
            Dst::R(r) => self.regs.write(r, v as u32),
            _ => {}
        }
    }

    fn write_dst_pred(&mut self, i: &Instr, v: bool) {
        if let Dst::P(p) = i.dsts[0] {
            self.regs.write_p(p, v);
        }
    }
}

fn cmp_f(c: CmpOp, a: f32, b: f32) -> bool {
    match a.partial_cmp(&b) {
        Some(ord) => c.eval(ord),
        None => c == CmpOp::Ne, // unordered: only NE holds
    }
}

fn cmp_d(c: CmpOp, a: f64, b: f64) -> bool {
    match a.partial_cmp(&b) {
        Some(ord) => c.eval(ord),
        None => c == CmpOp::Ne,
    }
}

fn cmp_i(c: CmpOp, a: i32, b: i32) -> bool {
    c.eval(a.cmp(&b))
}

fn modifier_cmp(m: Modifier) -> (CmpOp, BoolOp) {
    match m {
        Modifier::Cmp(c) => (c, BoolOp::And),
        Modifier::CmpBool(c, b) => (c, b),
        _ => (CmpOp::Eq, BoolOp::And),
    }
}

fn mem_width(m: Modifier) -> MemWidth {
    match m {
        Modifier::Width(w) => w,
        _ => MemWidth::B32,
    }
}

fn round_mode(m: Modifier) -> RoundMode {
    match m {
        Modifier::Round(r) => r,
        _ => RoundMode::Rn,
    }
}

fn lut(m: Modifier) -> u8 {
    match m {
        Modifier::Lut(l) => l,
        _ => 0xC0, // default to AND(a, b)
    }
}

fn lop3(a: u32, b: u32, c: u32, lut: u8) -> u32 {
    let mut out = 0u32;
    for bit in 0..32 {
        let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
        out |= (((lut >> idx) & 1) as u32) << bit;
    }
    out
}

fn f2i_sat(x: f64) -> i32 {
    if x.is_nan() {
        0
    } else if x >= i32::MAX as f64 {
        i32::MAX
    } else if x <= i32::MIN as f64 {
        i32::MIN
    } else {
        x as i32
    }
}

fn apply_atom(op: AtomOp, old: u64, v: u64, v2: u64, width: MemWidth) -> u64 {
    match (op, width) {
        (AtomOp::Add, MemWidth::B64) => old.wrapping_add(v),
        (AtomOp::Add, _) => (old as u32).wrapping_add(v as u32) as u64,
        (AtomOp::Min, _) => (old as u32 as i32).min(v as u32 as i32) as u32 as u64,
        (AtomOp::Max, _) => (old as u32 as i32).max(v as u32 as i32) as u32 as u64,
        (AtomOp::Exch, _) => v,
        (AtomOp::Cas, _) => {
            if old == v {
                v2
            } else {
                old
            }
        }
        (AtomOp::And, _) => old & v,
        (AtomOp::Or, _) => old | v,
        (AtomOp::Xor, _) => old ^ v,
        (AtomOp::FAdd, _) => {
            (f32::from_bits(old as u32) + f32::from_bits(v as u32)).to_bits() as u64
        }
    }
}

/// Execute one instruction for one thread whose guard already passed.
///
/// Cross-lane opcodes (`SHFL`, `VOTE`, `FSWZADD`) must be handled by the
/// caller; reaching them here raises [`TrapKind::IllegalInstruction`].
///
/// # Errors
///
/// Returns the [`TrapKind`] the instruction raised, if any.
pub fn exec_scalar(i: &Instr, env: &mut ExecEnv<'_>) -> Result<Flow, TrapKind> {
    use ExecFamily::*;
    let fam = i.op.family();
    match fam {
        // ---- FP32 -----------------------------------------------------
        FAdd => {
            let v = env.rd_f32(i.srcs[0]) + env.rd_f32(i.srcs[1]);
            env.write_dst_u32(i, v.to_bits());
        }
        FMul => {
            let v = env.rd_f32(i.srcs[0]) * env.rd_f32(i.srcs[1]);
            env.write_dst_u32(i, v.to_bits());
        }
        FFma => {
            let v = env.rd_f32(i.srcs[0]).mul_add(env.rd_f32(i.srcs[1]), env.rd_f32(i.srcs[2]));
            env.write_dst_u32(i, v.to_bits());
        }
        FMnMx => {
            let (a, b) = (env.rd_f32(i.srcs[0]), env.rd_f32(i.srcs[1]));
            let min = env.rd_bool(i.srcs[2]);
            env.write_dst_u32(i, if min { a.min(b) } else { a.max(b) }.to_bits());
        }
        FSel => {
            let v =
                if env.rd_bool(i.srcs[2]) { env.rd_u32(i.srcs[0]) } else { env.rd_u32(i.srcs[1]) };
            env.write_dst_u32(i, v);
        }
        FSet => {
            let (c, _) = modifier_cmp(i.modifier);
            let hit = cmp_f(c, env.rd_f32(i.srcs[0]), env.rd_f32(i.srcs[1]));
            env.write_dst_u32(i, if hit { u32::MAX } else { 0 });
        }
        FSetP => {
            let (c, b) = modifier_cmp(i.modifier);
            let hit = cmp_f(c, env.rd_f32(i.srcs[0]), env.rd_f32(i.srcs[1]));
            let combined = b.eval(hit, env.rd_bool(i.srcs[2]));
            env.write_dst_pred(i, combined);
        }
        FChk => {
            let q = env.rd_f32(i.srcs[0]) / env.rd_f32(i.srcs[1]);
            env.write_dst_pred(i, !q.is_finite());
        }
        Mufu => {
            let f = match i.modifier {
                Modifier::Func(f) => f,
                _ => MufuFunc::Rcp,
            };
            env.write_dst_u32(i, f.eval(env.rd_f32(i.srcs[0])).to_bits());
        }
        FCmp => {
            let (c, _) = modifier_cmp(i.modifier);
            let hit = cmp_f(c, env.rd_f32(i.srcs[2]), 0.0);
            let v = if hit { env.rd_u32(i.srcs[0]) } else { env.rd_u32(i.srcs[1]) };
            env.write_dst_u32(i, v);
        }
        FRnd => {
            let v = round_mode(i.modifier).round_f64(env.rd_f32(i.srcs[0]) as f64) as f32;
            env.write_dst_u32(i, v.to_bits());
        }
        // ---- Packed FP16 (two halves per register, computed in f32) -----
        HAdd2 | HMul2 | HFma2 | HMnMx2 => {
            use gpu_isa::half::{pack, unpack_hi, unpack_lo};
            let a = env.rd_u32(i.srcs[0]);
            let b = env.rd_u32(i.srcs[1]);
            let (lo, hi) = match fam {
                HAdd2 => (unpack_lo(a) + unpack_lo(b), unpack_hi(a) + unpack_hi(b)),
                HMul2 => (unpack_lo(a) * unpack_lo(b), unpack_hi(a) * unpack_hi(b)),
                HFma2 => {
                    let c = env.rd_u32(i.srcs[2]);
                    (
                        unpack_lo(a).mul_add(unpack_lo(b), unpack_lo(c)),
                        unpack_hi(a).mul_add(unpack_hi(b), unpack_hi(c)),
                    )
                }
                HMnMx2 => {
                    let min = env.rd_bool(i.srcs[2]);
                    if min {
                        (unpack_lo(a).min(unpack_lo(b)), unpack_hi(a).min(unpack_hi(b)))
                    } else {
                        (unpack_lo(a).max(unpack_lo(b)), unpack_hi(a).max(unpack_hi(b)))
                    }
                }
                _ => unreachable!("covered by the outer match arm"),
            };
            env.write_dst_u32(i, pack(lo, hi));
        }
        HSet2 => {
            use gpu_isa::half::{unpack_hi, unpack_lo};
            let (c, _) = modifier_cmp(i.modifier);
            let a = env.rd_u32(i.srcs[0]);
            let b = env.rd_u32(i.srcs[1]);
            let lo = cmp_f(c, unpack_lo(a), unpack_lo(b));
            let hi = cmp_f(c, unpack_hi(a), unpack_hi(b));
            let v = (if lo { 0xFFFFu32 } else { 0 }) | (if hi { 0xFFFF_0000 } else { 0 });
            env.write_dst_u32(i, v);
        }
        HSetP2 => {
            use gpu_isa::half::{unpack_hi, unpack_lo};
            // Both halves compared; the modifier's boolean op combines the
            // two half-results into the single predicate destination.
            let (c, b_op) = modifier_cmp(i.modifier);
            let a = env.rd_u32(i.srcs[0]);
            let b = env.rd_u32(i.srcs[1]);
            let lo = cmp_f(c, unpack_lo(a), unpack_lo(b));
            let hi = cmp_f(c, unpack_hi(a), unpack_hi(b));
            env.write_dst_pred(i, b_op.eval(lo, hi));
        }
        // ---- FP64 ------------------------------------------------------
        DAdd => {
            let v = env.rd_f64(i.srcs[0]) + env.rd_f64(i.srcs[1]);
            env.write_dst_u64(i, v.to_bits());
        }
        DMul => {
            let v = env.rd_f64(i.srcs[0]) * env.rd_f64(i.srcs[1]);
            env.write_dst_u64(i, v.to_bits());
        }
        DFma => {
            let v = env.rd_f64(i.srcs[0]).mul_add(env.rd_f64(i.srcs[1]), env.rd_f64(i.srcs[2]));
            env.write_dst_u64(i, v.to_bits());
        }
        DMnMx => {
            let (a, b) = (env.rd_f64(i.srcs[0]), env.rd_f64(i.srcs[1]));
            let min = env.rd_bool(i.srcs[2]);
            env.write_dst_u64(i, if min { a.min(b) } else { a.max(b) }.to_bits());
        }
        DSet => {
            let (c, _) = modifier_cmp(i.modifier);
            let hit = cmp_d(c, env.rd_f64(i.srcs[0]), env.rd_f64(i.srcs[1]));
            env.write_dst_u32(i, if hit { u32::MAX } else { 0 });
        }
        DSetP => {
            let (c, b) = modifier_cmp(i.modifier);
            let hit = cmp_d(c, env.rd_f64(i.srcs[0]), env.rd_f64(i.srcs[1]));
            env.write_dst_pred(i, b.eval(hit, env.rd_bool(i.srcs[2])));
        }
        // ---- Integer ------------------------------------------------------
        IAdd => {
            let v = env.rd_u32(i.srcs[0]).wrapping_add(env.rd_u32(i.srcs[1]));
            env.write_dst_u32(i, v);
        }
        ISub => {
            let v = env.rd_u32(i.srcs[0]).wrapping_sub(env.rd_u32(i.srcs[1]));
            env.write_dst_u32(i, v);
        }
        IAdd3 => {
            let v = env
                .rd_u32(i.srcs[0])
                .wrapping_add(env.rd_u32(i.srcs[1]))
                .wrapping_add(env.rd_u32(i.srcs[2]));
            env.write_dst_u32(i, v);
        }
        IMad => {
            let v = env
                .rd_u32(i.srcs[0])
                .wrapping_mul(env.rd_u32(i.srcs[1]))
                .wrapping_add(env.rd_u32(i.srcs[2]));
            env.write_dst_u32(i, v);
        }
        IMul => {
            let v = env.rd_u32(i.srcs[0]).wrapping_mul(env.rd_u32(i.srcs[1]));
            env.write_dst_u32(i, v);
        }
        IMnMx => {
            let (a, b) = (env.rd_u32(i.srcs[0]) as i32, env.rd_u32(i.srcs[1]) as i32);
            let min = env.rd_bool(i.srcs[2]);
            env.write_dst_u32(i, if min { a.min(b) } else { a.max(b) } as u32);
        }
        IScAdd | Lea => {
            let sh = env.rd_u32(i.srcs[2]) & 31;
            let v = (env.rd_u32(i.srcs[0]) << sh).wrapping_add(env.rd_u32(i.srcs[1]));
            env.write_dst_u32(i, v);
        }
        ISet => {
            let (c, _) = modifier_cmp(i.modifier);
            let hit = cmp_i(c, env.rd_u32(i.srcs[0]) as i32, env.rd_u32(i.srcs[1]) as i32);
            env.write_dst_u32(i, if hit { u32::MAX } else { 0 });
        }
        ISetP => {
            let (c, b) = modifier_cmp(i.modifier);
            let hit = cmp_i(c, env.rd_u32(i.srcs[0]) as i32, env.rd_u32(i.srcs[1]) as i32);
            env.write_dst_pred(i, b.eval(hit, env.rd_bool(i.srcs[2])));
        }
        ICmp => {
            let (c, _) = modifier_cmp(i.modifier);
            let hit = cmp_i(c, env.rd_u32(i.srcs[2]) as i32, 0);
            let v = if hit { env.rd_u32(i.srcs[0]) } else { env.rd_u32(i.srcs[1]) };
            env.write_dst_u32(i, v);
        }
        ISad => {
            let (a, b) = (env.rd_u32(i.srcs[0]) as i32, env.rd_u32(i.srcs[1]) as i32);
            let v = (a.wrapping_sub(b)).unsigned_abs().wrapping_add(env.rd_u32(i.srcs[2]));
            env.write_dst_u32(i, v);
        }
        IAbs => {
            env.write_dst_u32(i, (env.rd_u32(i.srcs[0]) as i32).wrapping_abs() as u32);
        }
        Lop | Lop3 => {
            let v = lop3(
                env.rd_u32(i.srcs[0]),
                env.rd_u32(i.srcs[1]),
                env.rd_u32(i.srcs[2]),
                lut(i.modifier),
            );
            env.write_dst_u32(i, v);
        }
        Popc => env.write_dst_u32(i, env.rd_u32(i.srcs[0]).count_ones()),
        Flo => {
            let a = env.rd_u32(i.srcs[0]);
            env.write_dst_u32(i, if a == 0 { u32::MAX } else { 31 - a.leading_zeros() });
        }
        Brev => env.write_dst_u32(i, env.rd_u32(i.srcs[0]).reverse_bits()),
        Bmsk => {
            let pos = env.rd_u32(i.srcs[0]) & 31;
            let width = env.rd_u32(i.srcs[1]).min(32);
            let mask = (((1u64 << width) - 1) << pos) as u32;
            env.write_dst_u32(i, mask);
        }
        Bfe => {
            let a = env.rd_u32(i.srcs[0]);
            let ctl = env.rd_u32(i.srcs[1]);
            let pos = ctl & 31;
            let len = (ctl >> 8) & 63;
            let mask = if len >= 32 { u32::MAX } else { (1u32 << len).wrapping_sub(1) };
            env.write_dst_u32(i, (a >> pos) & mask);
        }
        Bfi => {
            let a = env.rd_u32(i.srcs[0]);
            let ctl = env.rd_u32(i.srcs[1]);
            let c = env.rd_u32(i.srcs[2]);
            let pos = ctl & 31;
            let len = (ctl >> 8) & 63;
            let field = if len >= 32 { u32::MAX } else { (1u32 << len).wrapping_sub(1) };
            let mask = field << pos;
            env.write_dst_u32(i, (c & !mask) | ((a << pos) & mask));
        }
        Shf => {
            let lo = env.rd_u32(i.srcs[0]) as u64;
            let hi = env.rd_u32(i.srcs[1]) as u64;
            let sh = env.rd_u32(i.srcs[2]) & 31;
            env.write_dst_u32(i, (((hi << 32) | lo) >> sh) as u32);
        }
        Shl => {
            let s = env.rd_u32(i.srcs[1]);
            let v = if s >= 32 { 0 } else { env.rd_u32(i.srcs[0]) << s };
            env.write_dst_u32(i, v);
        }
        Shr => {
            let s = env.rd_u32(i.srcs[1]);
            let v = if s >= 32 { 0 } else { env.rd_u32(i.srcs[0]) >> s };
            env.write_dst_u32(i, v);
        }
        Xmad => {
            let v = (env.rd_u32(i.srcs[0]) & 0xFFFF)
                .wrapping_mul(env.rd_u32(i.srcs[1]) & 0xFFFF)
                .wrapping_add(env.rd_u32(i.srcs[2]));
            env.write_dst_u32(i, v);
        }
        // ---- Conversions ---------------------------------------------------
        F2F => match i.dsts[0] {
            Dst::R64(_) => {
                let v = env.rd_f32(i.srcs[0]) as f64;
                env.write_dst_u64(i, v.to_bits());
            }
            _ => {
                let v = env.rd_f64(i.srcs[0]) as f32;
                env.write_dst_u32(i, v.to_bits());
            }
        },
        F2I => {
            let x = match i.srcs[0] {
                Operand::R64(_) => env.rd_f64(i.srcs[0]),
                _ => env.rd_f32(i.srcs[0]) as f64,
            };
            let v = f2i_sat(round_mode(i.modifier).round_f64(x));
            env.write_dst_u32(i, v as u32);
        }
        I2F => {
            let a = env.rd_u32(i.srcs[0]) as i32;
            match i.dsts[0] {
                Dst::R64(_) => env.write_dst_u64(i, (a as f64).to_bits()),
                _ => env.write_dst_u32(i, (a as f32).to_bits()),
            }
        }
        I2I => env.write_dst_u32(i, env.rd_u32(i.srcs[0])),
        // ---- Data movement ----------------------------------------------------
        Mov => match i.dsts[0] {
            Dst::R64(_) => {
                let v = env.rd_u64(i.srcs[0]);
                env.write_dst_u64(i, v);
            }
            _ => {
                let v = env.rd_u32(i.srcs[0]);
                env.write_dst_u32(i, v);
            }
        },
        Sel => {
            let v =
                if env.rd_bool(i.srcs[2]) { env.rd_u32(i.srcs[0]) } else { env.rd_u32(i.srcs[1]) };
            env.write_dst_u32(i, v);
        }
        Prmt => {
            let pool = ((env.rd_u32(i.srcs[1]) as u64) << 32) | env.rd_u32(i.srcs[0]) as u64;
            let sel = env.rd_u32(i.srcs[2]);
            let mut out = 0u32;
            for byte in 0..4 {
                let nib = ((sel >> (4 * byte)) & 0x7) as u64;
                let b = (pool >> (8 * nib)) & 0xFF;
                out |= (b as u32) << (8 * byte);
            }
            env.write_dst_u32(i, out);
        }
        Sgxt => {
            let a = env.rd_u32(i.srcs[0]);
            let bits = env.rd_u32(i.srcs[1]).min(32);
            let v = if bits == 0 {
                0
            } else if bits >= 32 {
                a
            } else {
                let shift = 32 - bits;
                (((a << shift) as i32) >> shift) as u32
            };
            env.write_dst_u32(i, v);
        }
        S2R => {
            let v = match i.srcs[0] {
                Operand::Sr(sr) => env.read_sr(sr),
                _ => 0,
            };
            env.write_dst_u32(i, v);
        }
        P2R => env.write_dst_u32(i, env.regs.pred_bits()),
        R2P => {
            let bits = env.rd_u32(i.srcs[0]);
            let mask = env.rd_u32(i.srcs[1]);
            env.regs.set_pred_bits(bits, mask);
        }
        PSet => {
            let (_, b) = modifier_cmp(i.modifier);
            let v = b.eval(env.rd_bool(i.srcs[0]), env.rd_bool(i.srcs[1]));
            env.write_dst_u32(i, if v { u32::MAX } else { 0 });
        }
        PSetP => {
            let (_, b) = modifier_cmp(i.modifier);
            env.write_dst_pred(i, b.eval(env.rd_bool(i.srcs[0]), env.rd_bool(i.srcs[1])));
        }
        PLop3 => {
            let idx = ((env.rd_bool(i.srcs[0]) as u8) << 2)
                | ((env.rd_bool(i.srcs[1]) as u8) << 1)
                | env.rd_bool(i.srcs[2]) as u8;
            env.write_dst_pred(i, (lut(i.modifier) >> idx) & 1 != 0);
        }
        // ---- Memory ---------------------------------------------------------
        Ld => {
            let m = i.mem_ref().ok_or(TrapKind::IllegalInstruction)?;
            let w = mem_width(i.modifier);
            let v = env.mem_load(m, w)?;
            if w == MemWidth::B64 {
                env.write_dst_u64(i, v);
            } else {
                env.write_dst_u32(i, v as u32);
            }
        }
        St => {
            let m = i.mem_ref().ok_or(TrapKind::IllegalInstruction)?;
            let w = mem_width(i.modifier);
            let v = if w == MemWidth::B64 {
                env.rd_u64(i.srcs[1])
            } else {
                env.rd_u32(i.srcs[1]) as u64
            };
            env.mem_store(m, w, v)?;
        }
        Atom | Red => {
            let m = i.mem_ref().ok_or(TrapKind::IllegalInstruction)?;
            let w = mem_width(i.modifier);
            let op = match i.modifier {
                Modifier::AtomOp(a) => a,
                _ => AtomOp::Add,
            };
            let v = env.rd_u32(i.srcs[1]) as u64;
            let v2 = env.rd_u32(i.srcs[2]) as u64;
            let old = env.mem_load(m, w)?;
            let new = apply_atom(op, old, v, v2, w);
            env.mem_store(m, w, new)?;
            if fam == Atom {
                env.write_dst_u32(i, old as u32);
            }
        }
        // ---- Control flow ------------------------------------------------------
        Bra => return Ok(Flow::Branch(i.target)),
        Brx => {
            let t = env.rd_u32(i.srcs[0]);
            if t >= env.kernel_len {
                return Err(TrapKind::InvalidBranch { target: t });
            }
            return Ok(Flow::Branch(t));
        }
        Call => {
            if i.target >= env.kernel_len {
                return Err(TrapKind::InvalidBranch { target: i.target });
            }
            env.ret_stack.push(env.pc + 1);
            return Ok(Flow::Branch(i.target));
        }
        Ret => {
            let t = env.ret_stack.pop().ok_or(TrapKind::RetUnderflow)?;
            if t >= env.kernel_len {
                return Err(TrapKind::InvalidBranch { target: t });
            }
            return Ok(Flow::Branch(t));
        }
        Exit => return Ok(Flow::Exit),
        Bar => return Ok(Flow::Barrier),
        Kill => return Err(TrapKind::Killed),
        Bpt => return Err(TrapKind::Breakpoint),
        Nop | MemFence | NanoSleep | ReconvHint => {}
        // Cross-lane families are the block scheduler's job.
        Shfl | Vote | FSwzAdd => return Err(TrapKind::IllegalInstruction),
        Unimplemented => return Err(TrapKind::IllegalInstruction),
    }
    Ok(Flow::Next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Dim3;
    use gpu_isa::{Guard, Opcode, PReg, Reg};

    fn meta() -> ThreadMeta {
        ThreadMeta {
            tid: Dim3::from(3),
            ctaid: Dim3::from(1),
            ntid: Dim3::from(32),
            nctaid: Dim3::from(4),
            flat_tid: 3,
            flat_ctaid: 1,
            lane: 3,
            warp: 0,
            sm: 1,
        }
    }

    struct Fixture {
        regs: RegFile,
        global: GlobalMem,
        shared: SharedMem,
        local: Vec<u8>,
        cmem: Vec<u8>,
        ret: Vec<u32>,
        meta: ThreadMeta,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                regs: RegFile::new(),
                global: GlobalMem::new(1 << 16),
                shared: SharedMem::new(1024),
                local: vec![0; 256],
                cmem: vec![0; 64],
                ret: Vec::new(),
                meta: meta(),
            }
        }

        fn run(&mut self, i: &Instr) -> Result<Flow, TrapKind> {
            let mut env = ExecEnv {
                regs: &mut self.regs,
                global: &mut self.global,
                shared: &mut self.shared,
                local: &mut self.local,
                cmem: &self.cmem,
                ret_stack: &mut self.ret,
                meta: &self.meta,
                clock: 0,
                pc: 0,
                kernel_len: 16,
            };
            exec_scalar(i, &mut env)
        }
    }

    fn instr(op: Opcode) -> Instr {
        Instr::new(op)
    }

    #[test]
    fn fadd_adds() {
        let mut f = Fixture::new();
        f.regs.write_f32(Reg(1), 1.5);
        f.regs.write_f32(Reg(2), 2.25);
        let mut i = instr(Opcode::FADD);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs[0] = Operand::R(Reg(1));
        i.srcs[1] = Operand::R(Reg(2));
        assert_eq!(f.run(&i), Ok(Flow::Next));
        assert_eq!(f.regs.read_f32(Reg(0)), 3.75);
    }

    #[test]
    fn ffma_fuses() {
        let mut f = Fixture::new();
        f.regs.write_f32(Reg(1), 2.0);
        f.regs.write_f32(Reg(2), 3.0);
        f.regs.write_f32(Reg(3), 4.0);
        let mut i = instr(Opcode::FFMA);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::R(Reg(3)), Operand::None];
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read_f32(Reg(0)), 10.0);
    }

    #[test]
    fn dfma_uses_pairs() {
        let mut f = Fixture::new();
        f.regs.write_f64(Reg(2), 2.0);
        f.regs.write_f64(Reg(4), 3.0);
        f.regs.write_f64(Reg(6), 0.5);
        let mut i = instr(Opcode::DFMA);
        i.dsts[0] = Dst::R64(Reg(8));
        i.srcs = [Operand::R64(Reg(2)), Operand::R64(Reg(4)), Operand::R64(Reg(6)), Operand::None];
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read_f64(Reg(8)), 6.5);
    }

    #[test]
    fn isetp_with_bool_combine() {
        let mut f = Fixture::new();
        f.regs.write(Reg(1), 5);
        f.regs.write_p(PReg(1), true);
        let mut i = instr(Opcode::ISETP);
        i.modifier = Modifier::CmpBool(CmpOp::Lt, BoolOp::And);
        i.dsts[0] = Dst::P(PReg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::Imm(10), Operand::P(PReg(1)), Operand::None];
        f.run(&i).expect("exec");
        assert!(f.regs.read_p(PReg(0)));
    }

    #[test]
    fn nan_compares_unordered() {
        let mut f = Fixture::new();
        f.regs.write_f32(Reg(1), f32::NAN);
        f.regs.write_f32(Reg(2), 1.0);
        for (cmp, expect) in [(CmpOp::Lt, false), (CmpOp::Eq, false), (CmpOp::Ne, true)] {
            let mut i = instr(Opcode::FSETP);
            i.modifier = Modifier::Cmp(cmp);
            i.dsts[0] = Dst::P(PReg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::P(PReg::PT), Operand::None];
            f.run(&i).expect("exec");
            assert_eq!(f.regs.read_p(PReg(0)), expect, "{cmp:?}");
        }
    }

    #[test]
    fn lop3_truth_tables() {
        let mut f = Fixture::new();
        f.regs.write(Reg(1), 0b1100);
        f.regs.write(Reg(2), 0b1010);
        for (lut_v, expect) in [(0xC0u8, 0b1000u32), (0xFC, 0b1110), (0x3C, 0b0110)] {
            let mut i = instr(Opcode::LOP3);
            i.modifier = Modifier::Lut(lut_v);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::R(Reg::RZ), Operand::None];
            f.run(&i).expect("exec");
            assert_eq!(f.regs.read(Reg(0)), expect, "lut {lut_v:#x}");
        }
    }

    #[test]
    fn shift_clamps_at_32() {
        let mut f = Fixture::new();
        f.regs.write(Reg(1), 0xFFFF_FFFF);
        let mut i = instr(Opcode::SHL);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::Imm(33), Operand::None, Operand::None];
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read(Reg(0)), 0);
    }

    #[test]
    fn global_load_store() {
        let mut f = Fixture::new();
        let p = f.global.alloc(64).expect("alloc");
        f.regs.write(Reg(4), p.0);
        f.regs.write(Reg(5), 0xABCD);
        let mut st = instr(Opcode::STG);
        st.modifier = Modifier::Width(MemWidth::B32);
        st.srcs = [
            Operand::Mem(MemRef { base: Reg(4), offset: 8, space: Space::Global }),
            Operand::R(Reg(5)),
            Operand::None,
            Operand::None,
        ];
        f.run(&st).expect("store");
        let mut ld = instr(Opcode::LDG);
        ld.modifier = Modifier::Width(MemWidth::B32);
        ld.dsts[0] = Dst::R(Reg(6));
        ld.srcs[0] = Operand::Mem(MemRef { base: Reg(4), offset: 8, space: Space::Global });
        f.run(&ld).expect("load");
        assert_eq!(f.regs.read(Reg(6)), 0xABCD);
    }

    #[test]
    fn corrupted_pointer_traps() {
        let mut f = Fixture::new();
        f.regs.write(Reg(4), 0); // null
        let mut ld = instr(Opcode::LDG);
        ld.modifier = Modifier::Width(MemWidth::B32);
        ld.dsts[0] = Dst::R(Reg(6));
        ld.srcs[0] = Operand::Mem(MemRef { base: Reg(4), offset: 0, space: Space::Global });
        assert!(matches!(f.run(&ld), Err(TrapKind::OutOfBounds { .. })));
    }

    #[test]
    fn atomic_add_returns_old() {
        let mut f = Fixture::new();
        let p = f.global.alloc(16).expect("alloc");
        f.global.write_u32s(p, &[100]).expect("write");
        f.regs.write(Reg(4), p.0);
        f.regs.write(Reg(5), 7);
        let mut a = instr(Opcode::ATOMG);
        a.modifier = Modifier::AtomOp(AtomOp::Add);
        a.dsts[0] = Dst::R(Reg(6));
        a.srcs = [
            Operand::Mem(MemRef { base: Reg(4), offset: 0, space: Space::Global }),
            Operand::R(Reg(5)),
            Operand::None,
            Operand::None,
        ];
        f.run(&a).expect("atom");
        assert_eq!(f.regs.read(Reg(6)), 100);
        assert_eq!(f.global.read_u32s(p, 1).expect("read"), vec![107]);
    }

    #[test]
    fn call_ret_flow() {
        let mut f = Fixture::new();
        let mut call = instr(Opcode::CALL);
        call.target = 5;
        assert_eq!(f.run(&call), Ok(Flow::Branch(5)));
        let ret = instr(Opcode::RET);
        assert_eq!(f.run(&ret), Ok(Flow::Branch(1)));
        assert_eq!(f.run(&ret), Err(TrapKind::RetUnderflow));
    }

    #[test]
    fn brx_validates_target() {
        let mut f = Fixture::new();
        f.regs.write(Reg(1), 99);
        let mut b = instr(Opcode::BRX);
        b.srcs[0] = Operand::R(Reg(1));
        assert_eq!(f.run(&b), Err(TrapKind::InvalidBranch { target: 99 }));
        f.regs.write(Reg(1), 3);
        assert_eq!(f.run(&b), Ok(Flow::Branch(3)));
    }

    #[test]
    fn control_flow_basics() {
        let mut f = Fixture::new();
        assert_eq!(f.run(&instr(Opcode::EXIT)), Ok(Flow::Exit));
        assert_eq!(f.run(&instr(Opcode::BAR)), Ok(Flow::Barrier));
        assert_eq!(f.run(&instr(Opcode::NOP)), Ok(Flow::Next));
        assert_eq!(f.run(&instr(Opcode::KILL)), Err(TrapKind::Killed));
        assert_eq!(f.run(&instr(Opcode::BPT)), Err(TrapKind::Breakpoint));
    }

    #[test]
    fn unimplemented_opcode_traps() {
        let mut f = Fixture::new();
        assert_eq!(f.run(&instr(Opcode::TEX)), Err(TrapKind::IllegalInstruction));
        assert_eq!(f.run(&instr(Opcode::HMMA)), Err(TrapKind::IllegalInstruction));
    }

    #[test]
    fn s2r_reads_identity() {
        let mut f = Fixture::new();
        let mut i = instr(Opcode::S2R);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs[0] = Operand::Sr(SpecialReg::LaneId);
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read(Reg(0)), 3);
        i.srcs[0] = Operand::Sr(SpecialReg::SmId);
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read(Reg(0)), 1);
    }

    #[test]
    fn conversions_roundtrip() {
        let mut f = Fixture::new();
        f.regs.write(Reg(1), (-7i32) as u32);
        let mut i2f = instr(Opcode::I2F);
        i2f.dsts[0] = Dst::R(Reg(2));
        i2f.srcs[0] = Operand::R(Reg(1));
        f.run(&i2f).expect("exec");
        assert_eq!(f.regs.read_f32(Reg(2)), -7.0);

        let mut f2i = instr(Opcode::F2I);
        f2i.modifier = Modifier::Round(RoundMode::Rz);
        f2i.dsts[0] = Dst::R(Reg(3));
        f2i.srcs[0] = Operand::R(Reg(2));
        f.run(&f2i).expect("exec");
        assert_eq!(f.regs.read(Reg(3)) as i32, -7);
    }

    #[test]
    fn f2i_saturates_nan_and_range() {
        assert_eq!(f2i_sat(f64::NAN), 0);
        assert_eq!(f2i_sat(1e300), i32::MAX);
        assert_eq!(f2i_sat(-1e300), i32::MIN);
    }

    #[test]
    fn predicated_guard_not_checked_here() {
        // exec_scalar assumes the guard already passed; guard handling is
        // the scheduler's job. A guarded instruction still executes.
        let mut f = Fixture::new();
        let mut i = instr(Opcode::MOV32I);
        i.guard = Guard::if_true(PReg(0)); // P0 is false
        i.dsts[0] = Dst::R(Reg(1));
        i.srcs[0] = Operand::Imm(9);
        f.run(&i).expect("exec");
        assert_eq!(f.regs.read(Reg(1)), 9);
    }
}

#[cfg(test)]
mod fp16_tests {
    use super::*;
    use crate::grid::Dim3;
    use gpu_isa::half::pack;
    use gpu_isa::{Opcode, PReg, Reg};

    fn meta() -> ThreadMeta {
        ThreadMeta {
            tid: Dim3::from(0),
            ctaid: Dim3::from(0),
            ntid: Dim3::from(32),
            nctaid: Dim3::from(1),
            flat_tid: 0,
            flat_ctaid: 0,
            lane: 0,
            warp: 0,
            sm: 0,
        }
    }

    fn run_one(i: &Instr, regs: &mut RegFile) -> Result<Flow, TrapKind> {
        let mut global = GlobalMem::new(4096);
        let mut shared = SharedMem::new(64);
        let mut local = vec![0u8; 64];
        let cmem = [0u8; 16];
        let mut ret = Vec::new();
        let m = meta();
        let mut env = ExecEnv {
            regs,
            global: &mut global,
            shared: &mut shared,
            local: &mut local,
            cmem: &cmem,
            ret_stack: &mut ret,
            meta: &m,
            clock: 0,
            pc: 0,
            kernel_len: 8,
        };
        exec_scalar(i, &mut env)
    }

    #[test]
    fn hadd2_adds_both_halves() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(1.5, -2.0));
        rf.write(Reg(2), pack(0.25, 10.0));
        let mut i = Instr::new(Opcode::HADD2);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
        run_one(&i, &mut rf).expect("exec");
        assert_eq!(rf.read(Reg(0)), pack(1.75, 8.0));
    }

    #[test]
    fn hfma2_fuses_both_halves() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(2.0, 3.0));
        rf.write(Reg(2), pack(4.0, 0.5));
        rf.write(Reg(3), pack(1.0, -1.0));
        let mut i = Instr::new(Opcode::HFMA2);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::R(Reg(3)), Operand::None];
        run_one(&i, &mut rf).expect("exec");
        assert_eq!(rf.read(Reg(0)), pack(9.0, 0.5));
    }

    #[test]
    fn hmul2_saturates_to_f16_range() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(60000.0, 2.0));
        rf.write(Reg(2), pack(2.0, 2.0));
        let mut i = Instr::new(Opcode::HMUL2);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
        run_one(&i, &mut rf).expect("exec");
        // 60000 rounds to the nearest representable f16 first; ×2 overflows
        // to +inf in the low half, 4.0 in the high half.
        let lo = gpu_isa::half::unpack_lo(rf.read(Reg(0)));
        assert!(lo.is_infinite() && lo > 0.0);
        assert_eq!(gpu_isa::half::unpack_hi(rf.read(Reg(0))), 4.0);
    }

    #[test]
    fn hset2_masks_per_half() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(1.0, 5.0));
        rf.write(Reg(2), pack(2.0, 4.0));
        let mut i = Instr::new(Opcode::HSET2);
        i.modifier = Modifier::Cmp(CmpOp::Lt);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
        run_one(&i, &mut rf).expect("exec");
        assert_eq!(rf.read(Reg(0)), 0x0000_FFFF, "lo: 1<2 true, hi: 5<4 false");
    }

    #[test]
    fn hsetp2_combines_halves_with_boolop() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(1.0, 5.0));
        rf.write(Reg(2), pack(2.0, 4.0));
        let mut i = Instr::new(Opcode::HSETP2);
        i.modifier = Modifier::Cmp(CmpOp::Lt); // AND-combined by default
        i.dsts[0] = Dst::P(PReg(0));
        i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
        run_one(&i, &mut rf).expect("exec");
        assert!(!rf.read_p(PReg(0)), "true AND false");
        i.modifier = Modifier::CmpBool(CmpOp::Lt, BoolOp::Or);
        run_one(&i, &mut rf).expect("exec");
        assert!(rf.read_p(PReg(0)), "true OR false");
    }

    #[test]
    fn hmnmx2_selects_per_half() {
        let mut rf = RegFile::new();
        rf.write(Reg(1), pack(1.0, 5.0));
        rf.write(Reg(2), pack(2.0, 4.0));
        let mut i = Instr::new(Opcode::HMNMX2);
        i.dsts[0] = Dst::R(Reg(0));
        i.srcs =
            [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::P(gpu_isa::PReg::PT), Operand::None];
        run_one(&i, &mut rf).expect("exec");
        assert_eq!(rf.read(Reg(0)), pack(1.0, 4.0), "min per half");
    }
}
