//! Block execution: warps, divergence, barriers, and cross-lane ops.
//!
//! Scheduling is deterministic by construction: blocks run in linear order,
//! warps within a block are stepped round-robin one instruction-group at a
//! time, and within a warp the group at the minimum program counter issues
//! (a simple model of Volta-style independent thread scheduling). Determinism
//! matters here more than on real hardware: it makes the profiler's
//! dynamic-instruction numbering exactly reproducible, so a fault site
//! `<kernel, instance, instruction index>` always lands on the same
//! architectural event.

use crate::cycles::{latency, HOOK_CYCLES};
use crate::exec::{exec_scalar, ExecEnv, Flow};
use crate::grid::Dim3;
use crate::hooks::{InstrSite, Instrumentation, ThreadCtx, ThreadMeta};
use crate::memory::{GlobalMem, SharedMem};
use crate::regfile::RegFile;
use crate::trap::{TrapInfo, TrapKind};
use gpu_isa::{ExecFamily, Kernel, Modifier, Operand, ShflMode, WARP_SIZE};

pub(crate) struct ThreadState {
    pub regs: RegFile,
    pub pc: u32,
    pub exited: bool,
    pub at_barrier: bool,
    pub ret_stack: Vec<u32>,
    pub local: Vec<u8>,
    pub meta: ThreadMeta,
}

/// Running totals for one kernel launch.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Counters {
    /// Guard-passing thread-level dynamic instructions executed so far.
    pub executed: u64,
    /// Simulated cycles consumed so far.
    pub cycles: u64,
    /// Launch budget: exceeding it raises [`TrapKind::Timeout`].
    pub budget: u64,
    /// Wall-clock deadline: passing it raises [`TrapKind::DeadlineExceeded`].
    /// Polled every [`DEADLINE_POLL_INTERVAL`] instructions, piggybacking on
    /// the budget check so the common case costs one extra branch.
    pub deadline: Option<std::time::Instant>,
}

/// How many dynamic instructions run between wall-clock deadline polls.
/// A power of two so the check is a mask; coarse enough that `Instant::now`
/// never shows up in profiles, fine enough to bound overrun to milliseconds.
pub(crate) const DEADLINE_POLL_INTERVAL: u64 = 1 << 14;

pub(crate) struct BlockState {
    pub threads: Vec<ThreadState>,
    pub shared: SharedMem,
    pub nwarps: usize,
    pub flat_ctaid: u32,
}

enum StepOutcome {
    Ran,
    Idle,
}

impl BlockState {
    pub fn new(
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        flat_ctaid: u32,
        sm: u32,
        local_bytes: u32,
    ) -> BlockState {
        let nthreads = block.count() as usize;
        let nwarps = nthreads.div_ceil(WARP_SIZE);
        let ctaid = grid.unflatten(flat_ctaid);
        let threads = (0..nthreads as u32)
            .map(|flat_tid| ThreadState {
                regs: RegFile::new(),
                pc: 0,
                exited: false,
                at_barrier: false,
                ret_stack: Vec::new(),
                local: vec![0; local_bytes as usize],
                meta: ThreadMeta {
                    tid: block.unflatten(flat_tid),
                    ctaid,
                    ntid: block,
                    nctaid: grid,
                    flat_tid,
                    flat_ctaid,
                    lane: flat_tid % WARP_SIZE as u32,
                    warp: flat_tid / WARP_SIZE as u32,
                    sm,
                },
            })
            .collect();
        BlockState { threads, shared: SharedMem::new(kernel.shared_bytes()), nwarps, flat_ctaid }
    }

    fn trap(&self, kernel: &Kernel, kind: TrapKind, pc: u32, thread: u32) -> TrapInfo {
        TrapInfo {
            kind,
            kernel: kernel.name().to_string(),
            pc: Some(pc),
            block: Some(self.flat_ctaid),
            thread: Some(thread),
        }
    }

    /// Run the block to completion.
    pub fn run(
        &mut self,
        kernel: &Kernel,
        global: &mut GlobalMem,
        cmem: &[u8],
        counters: &mut Counters,
        instrumentation: &mut Option<&mut Instrumentation<'_>>,
    ) -> Result<(), TrapInfo> {
        loop {
            let mut progressed = false;
            for w in 0..self.nwarps {
                match self.step_warp(w, kernel, global, cmem, counters, instrumentation)? {
                    StepOutcome::Ran => progressed = true,
                    StepOutcome::Idle => {}
                }
            }
            if self.threads.iter().all(|t| t.exited) {
                return Ok(());
            }
            if !progressed {
                if self.threads.iter().all(|t| t.exited || t.at_barrier) {
                    // Barrier release: every live thread arrived.
                    for t in &mut self.threads {
                        t.at_barrier = false;
                    }
                } else {
                    return Err(TrapInfo {
                        kind: TrapKind::BarrierDeadlock,
                        kernel: kernel.name().to_string(),
                        pc: None,
                        block: Some(self.flat_ctaid),
                        thread: None,
                    });
                }
            }
        }
    }

    /// Issue one instruction group for warp `w`.
    fn step_warp(
        &mut self,
        w: usize,
        kernel: &Kernel,
        global: &mut GlobalMem,
        cmem: &[u8],
        counters: &mut Counters,
        instrumentation: &mut Option<&mut Instrumentation<'_>>,
    ) -> Result<StepOutcome, TrapInfo> {
        let lo = w * WARP_SIZE;
        let hi = ((w + 1) * WARP_SIZE).min(self.threads.len());
        let runnable: Vec<usize> =
            (lo..hi).filter(|&t| !self.threads[t].exited && !self.threads[t].at_barrier).collect();
        if runnable.is_empty() {
            return Ok(StepOutcome::Idle);
        }
        let pc = runnable.iter().map(|&t| self.threads[t].pc).min().expect("nonempty");
        if pc as usize >= kernel.len() {
            let t = runnable[0] as u32;
            return Err(self.trap(kernel, TrapKind::PcOverrun, pc, t));
        }
        let instr = &kernel.instrs()[pc as usize];
        counters.cycles += latency(instr.op.family());

        // Guard evaluation: failing threads skip the instruction silently
        // (and are excluded from profiling, per paper §III-A).
        let mut active: Vec<usize> = Vec::with_capacity(runnable.len());
        for &ti in &runnable {
            let t = &mut self.threads[ti];
            if t.pc != pc {
                continue;
            }
            if instr.guard.is_always() || instr.guard.passes(t.regs.read_p(instr.guard.pred)) {
                active.push(ti);
            } else {
                t.pc += 1;
            }
        }
        if active.is_empty() {
            return Ok(StepOutcome::Ran);
        }

        let fam = instr.op.family();
        let cross_lane = matches!(fam, ExecFamily::Shfl | ExecFamily::Vote | ExecFamily::FSwzAdd);
        // Cross-lane ops read other lanes' state as of instruction issue:
        // snapshot the source before any writes.
        let snapshot: Option<Vec<(u32, u32, bool)>> = if cross_lane {
            Some(
                active
                    .iter()
                    .map(|&ti| {
                        let t = &self.threads[ti];
                        let src = match instr.srcs[0] {
                            Operand::R(r) => t.regs.read(r),
                            Operand::Imm(v) => v,
                            _ => 0,
                        };
                        let pred = match instr.srcs[0] {
                            Operand::P(p) => t.regs.read_p(p),
                            Operand::NotP(p) => !t.regs.read_p(p),
                            _ => t.regs.read(gpu_isa::Reg(0)) != 0,
                        };
                        (t.meta.lane, src, pred)
                    })
                    .collect(),
            )
        } else {
            None
        };

        for &ti in &active {
            if counters.executed >= counters.budget {
                return Err(self.trap(kernel, TrapKind::Timeout, pc, ti as u32));
            }
            if counters.executed.is_multiple_of(DEADLINE_POLL_INTERVAL) {
                if let Some(deadline) = counters.deadline {
                    if std::time::Instant::now() >= deadline {
                        return Err(self.trap(kernel, TrapKind::DeadlineExceeded, pc, ti as u32));
                    }
                }
            }
            let dyn_index = counters.executed;
            counters.executed += 1;

            let BlockState { threads, shared, .. } = self;
            let t = &mut threads[ti];

            if let Some(ins) = instrumentation.as_deref_mut() {
                if ins.before_mask.get(pc as usize).copied().unwrap_or(false) {
                    counters.cycles += HOOK_CYCLES;
                    let mut ctx = ThreadCtx { regs: &mut t.regs, meta: t.meta, dyn_index };
                    ins.hook.before(
                        &mut ctx,
                        InstrSite { pc, instr, kernel_instance: ins.kernel_instance },
                    );
                }
            }

            let flow = if cross_lane {
                let snap = snapshot.as_ref().expect("snapshot for cross-lane");
                exec_cross_lane(instr, t, snap)
            } else {
                let mut env = ExecEnv {
                    regs: &mut t.regs,
                    global,
                    shared,
                    local: &mut t.local,
                    cmem,
                    ret_stack: &mut t.ret_stack,
                    meta: &t.meta,
                    clock: counters.cycles,
                    pc,
                    kernel_len: kernel.len() as u32,
                };
                exec_scalar(instr, &mut env)
            };

            let flow = match flow {
                Ok(f) => f,
                Err(kind) => return Err(self.trap(kernel, kind, pc, ti as u32)),
            };

            let BlockState { threads, .. } = self;
            let t = &mut threads[ti];
            match flow {
                Flow::Next => t.pc = pc + 1,
                Flow::Branch(target) => t.pc = target,
                Flow::Exit => t.exited = true,
                Flow::Barrier => {
                    t.at_barrier = true;
                    t.pc = pc + 1;
                }
            }

            if let Some(ins) = instrumentation.as_deref_mut() {
                if ins.after_mask.get(pc as usize).copied().unwrap_or(false) {
                    counters.cycles += HOOK_CYCLES;
                    let BlockState { threads, .. } = self;
                    let t = &mut threads[ti];
                    let mut ctx = ThreadCtx { regs: &mut t.regs, meta: t.meta, dyn_index };
                    ins.hook.after(
                        &mut ctx,
                        InstrSite { pc, instr, kernel_instance: ins.kernel_instance },
                    );
                }
            }
        }
        Ok(StepOutcome::Ran)
    }
}

/// Execute a cross-lane instruction for one thread, given the warp snapshot
/// `(lane, src_value, src_pred)` of all active lanes.
fn exec_cross_lane(
    instr: &gpu_isa::Instr,
    t: &mut ThreadState,
    snap: &[(u32, u32, bool)],
) -> Result<Flow, TrapKind> {
    let my_lane = t.meta.lane;
    let lookup = |lane: u32| snap.iter().find(|(l, _, _)| *l == lane);
    match instr.op.family() {
        ExecFamily::Shfl => {
            let mode = match instr.modifier {
                Modifier::Shfl(m) => m,
                _ => ShflMode::Idx,
            };
            let operand = match instr.srcs[1] {
                Operand::Imm(v) => v,
                Operand::R(r) => t.regs.read(r),
                _ => 0,
            };
            let src_lane = match mode {
                ShflMode::Idx => operand,
                ShflMode::Up => my_lane.wrapping_sub(operand),
                ShflMode::Down => my_lane + operand,
                ShflMode::Bfly => my_lane ^ operand,
            };
            let my_val = lookup(my_lane).map(|(_, v, _)| *v).unwrap_or(0);
            // Inactive or out-of-range source lane: keep own value
            // (CUDA leaves the destination undefined; "own value" is the
            // common hardware behaviour and is deterministic).
            let v = if src_lane < WARP_SIZE as u32 {
                lookup(src_lane).map(|(_, v, _)| *v).unwrap_or(my_val)
            } else {
                my_val
            };
            if let gpu_isa::Dst::R(r) = instr.dsts[0] {
                t.regs.write(r, v);
            }
        }
        ExecFamily::Vote => {
            // VOTE = BALLOT: bit per active lane whose source predicate holds.
            let mut mask = 0u32;
            for &(lane, _, pred) in snap {
                if pred {
                    mask |= 1 << lane;
                }
            }
            if let gpu_isa::Dst::R(r) = instr.dsts[0] {
                t.regs.write(r, mask);
            }
        }
        ExecFamily::FSwzAdd => {
            // Butterfly-partner add: value + partner lane's value.
            let partner = my_lane ^ 1;
            let my_val = lookup(my_lane).map(|(_, v, _)| *v).unwrap_or(0);
            let pv = lookup(partner).map(|(_, v, _)| *v).unwrap_or(my_val);
            let sum = f32::from_bits(my_val) + f32::from_bits(pv);
            if let gpu_isa::Dst::R(r) = instr.dsts[0] {
                t.regs.write(r, sum.to_bits());
            }
        }
        _ => return Err(TrapKind::IllegalInstruction),
    }
    Ok(Flow::Next)
}
