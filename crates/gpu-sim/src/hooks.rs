//! The instrumentation hook surface — what the NVBit layer builds on.
//!
//! The simulator executes kernels with an optional [`Instrumentation`]
//! attached. Instrumentation names, per *static* instruction, whether a
//! callback fires before and/or after that instruction executes for a
//! thread. Unmarked instructions take a branch-free fast path, so — exactly
//! as with NVBit's selective `insert_call` instrumentation — the overhead a
//! tool pays is proportional to the number of *instrumented dynamic
//! instructions*, not to program length.

use crate::regfile::RegFile;
use gpu_isa::{Instr, PReg, Reg};

/// Immutable identity of the thread a hook fires for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadMeta {
    /// Thread index within its block.
    pub tid: crate::grid::Dim3,
    /// Block index within the grid.
    pub ctaid: crate::grid::Dim3,
    /// Block dimensions.
    pub ntid: crate::grid::Dim3,
    /// Grid dimensions.
    pub nctaid: crate::grid::Dim3,
    /// Linear thread index within the block.
    pub flat_tid: u32,
    /// Linear block index within the grid.
    pub flat_ctaid: u32,
    /// Hardware lane within the warp (`0..32`) — the permanent-fault model's
    /// *lane id*.
    pub lane: u32,
    /// Warp slot within the block.
    pub warp: u32,
    /// Streaming multiprocessor executing the block — the permanent-fault
    /// model's *SM id*.
    pub sm: u32,
}

impl ThreadMeta {
    /// Flat global thread id (`flat_ctaid * block_size + flat_tid`).
    pub fn global_tid(&self) -> u64 {
        self.flat_ctaid as u64 * self.ntid.count() + self.flat_tid as u64
    }
}

/// Mutable view of one thread's architectural state, handed to hooks.
///
/// This is the NVBit "device function" environment: hooks can read and
/// *write* registers and predicates, which is precisely the capability fault
/// injectors need.
pub struct ThreadCtx<'a> {
    /// The thread's register file.
    pub regs: &'a mut RegFile,
    /// Thread identity.
    pub meta: ThreadMeta,
    /// Zero-based index of this executed instruction in the current kernel
    /// launch's thread-level dynamic instruction stream.
    pub dyn_index: u64,
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("meta", &self.meta)
            .field("dyn_index", &self.dyn_index)
            .finish_non_exhaustive()
    }
}

impl ThreadCtx<'_> {
    /// Read a 32-bit register.
    pub fn read_reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Write a 32-bit register.
    pub fn write_reg(&mut self, r: Reg, v: u32) {
        self.regs.write(r, v)
    }

    /// XOR `mask` into register `r`, returning the pre-corruption value.
    pub fn corrupt_reg(&mut self, r: Reg, mask: u32) -> u32 {
        self.regs.corrupt(r, mask)
    }

    /// Read a predicate.
    pub fn read_pred(&self, p: PReg) -> bool {
        self.regs.read_p(p)
    }

    /// Flip a predicate, returning the pre-corruption value.
    pub fn corrupt_pred(&mut self, p: PReg) -> bool {
        self.regs.corrupt_p(p)
    }
}

/// Where in the kernel a hook fired.
#[derive(Debug, Clone, Copy)]
pub struct InstrSite<'a> {
    /// Program counter (static instruction index).
    pub pc: u32,
    /// The decoded instruction.
    pub instr: &'a Instr,
    /// Zero-based dynamic instance of the kernel within the process.
    pub kernel_instance: u64,
}

/// A tool callback invoked for instrumented instructions.
///
/// Both methods default to no-ops so tools implement only what they need.
pub trait ExecHook {
    /// Fires before an instrumented instruction executes for a thread whose
    /// guard passed.
    fn before(&mut self, thread: &mut ThreadCtx<'_>, site: InstrSite<'_>) {
        let _ = (thread, site);
    }

    /// Fires after the instruction's results are architecturally visible.
    fn after(&mut self, thread: &mut ThreadCtx<'_>, site: InstrSite<'_>) {
        let _ = (thread, site);
    }
}

/// Per-static-instruction instrumentation marks plus the hook to call.
pub struct Instrumentation<'a> {
    /// `before_mask[pc]` — fire [`ExecHook::before`] at this pc.
    pub before_mask: &'a [bool],
    /// `after_mask[pc]` — fire [`ExecHook::after`] at this pc.
    pub after_mask: &'a [bool],
    /// The tool callback.
    pub hook: &'a mut dyn ExecHook,
    /// Dynamic instance index of this kernel launch (maintained by the
    /// attaching layer).
    pub kernel_instance: u64,
}

impl std::fmt::Debug for Instrumentation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrumentation")
            .field("before_marks", &self.before_mask.iter().filter(|b| **b).count())
            .field("after_marks", &self.after_mask.iter().filter(|b| **b).count())
            .field("kernel_instance", &self.kernel_instance)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Dim3;

    fn meta() -> ThreadMeta {
        ThreadMeta {
            tid: Dim3::from(5),
            ctaid: Dim3::from(2),
            ntid: Dim3::from(64),
            nctaid: Dim3::from(10),
            flat_tid: 5,
            flat_ctaid: 2,
            lane: 5,
            warp: 0,
            sm: 2,
        }
    }

    #[test]
    fn global_tid() {
        assert_eq!(meta().global_tid(), 2 * 64 + 5);
    }

    #[test]
    fn thread_ctx_register_access() {
        let mut rf = RegFile::new();
        let mut ctx = ThreadCtx { regs: &mut rf, meta: meta(), dyn_index: 0 };
        ctx.write_reg(Reg(1), 10);
        assert_eq!(ctx.read_reg(Reg(1)), 10);
        let old = ctx.corrupt_reg(Reg(1), 0b11);
        assert_eq!(old, 10);
        assert_eq!(ctx.read_reg(Reg(1)), 10 ^ 0b11);
        assert!(!ctx.read_pred(PReg(0)));
        ctx.corrupt_pred(PReg(0));
        assert!(ctx.read_pred(PReg(0)));
    }
}
