//! Resource governor limits: caps that turn runaway resource consumption
//! into simulator traps.
//!
//! A fault-corrupted value that later feeds an allocation size (or a print
//! loop bound) must not take down the *campaign* process: on real clusters
//! NVBitFI relies on cgroup/ulimit sandboxes to kill the victim app; here
//! the governor converts the same events into a [`crate::TrapKind`] so the
//! run is classified as a DUE (Table V, OS-detected) and the harness moves
//! on to the next injection.

use serde::{Deserialize, Serialize};

/// Resource caps enforced by the simulator and runtime.
///
/// Defaults are deliberately generous — far above what any of the example
/// workloads' golden runs use — so the governor only ever fires on
/// fault-corrupted executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// Maximum bytes of live global-memory allocations per run
    /// (the `cudaMalloc` budget). Must not exceed device capacity to be
    /// meaningful — the governor is supposed to fire *before* the device
    /// reports an out-of-memory condition.
    pub max_global_bytes: u32,
    /// Maximum static shared-memory bytes a single kernel may declare
    /// (CUDA's per-block shared-memory limit).
    pub max_shared_bytes: u32,
    /// Maximum bytes of captured output (stdout plus output files) per run;
    /// excess is truncated with an explicit marker rather than trapped.
    pub max_output_bytes: u64,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            // Below the runtime's 64 MiB device-memory default so a runaway
            // allocation hits the governor, not the allocator.
            max_global_bytes: 48 << 20,
            // CUDA's classic 48 KiB static shared-memory ceiling.
            max_shared_bytes: 48 << 10,
            max_output_bytes: 16 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_and_ordered() {
        let l = ResourceLimits::default();
        assert!(l.max_global_bytes >= 1 << 20);
        assert!(l.max_shared_bytes >= 1 << 10);
        assert!(l.max_output_bytes >= 1 << 20);
    }
}
