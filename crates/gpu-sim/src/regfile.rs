//! The per-thread register file: 256 32-bit GPRs and 8 predicates.
//!
//! This is the state fault injection corrupts: the transient model XORs one
//! GPR or flips one predicate of one dynamic instruction; the permanent
//! model XORs the destination of every instance of an opcode.

use gpu_isa::{PReg, Reg};

/// A thread's architectural register state.
///
/// `R255` (`RZ`) reads as zero and discards writes; `P7` (`PT`) reads as
/// true and discards writes.
#[derive(Debug, Clone)]
pub struct RegFile {
    r: [u32; 256],
    p: u8,
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

impl RegFile {
    /// A zero-initialized register file.
    pub fn new() -> RegFile {
        RegFile { r: [0; 256], p: 0 }
    }

    /// Read a 32-bit GPR.
    #[inline]
    pub fn read(&self, r: Reg) -> u32 {
        if r.is_zero_reg() {
            0
        } else {
            self.r[r.index()]
        }
    }

    /// Write a 32-bit GPR (writes to `RZ` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, v: u32) {
        if !r.is_zero_reg() {
            self.r[r.index()] = v;
        }
    }

    /// XOR a mask into a GPR — the fault injector's corruption primitive.
    /// Returns the value before corruption.
    #[inline]
    pub fn corrupt(&mut self, r: Reg, mask: u32) -> u32 {
        let old = self.read(r);
        self.write(r, old ^ mask);
        old
    }

    /// Read a 64-bit register pair (`r`, `r+1`), little-halves-first.
    #[inline]
    pub fn read64(&self, r: Reg) -> u64 {
        let lo = self.read(r) as u64;
        let hi = self.read(r.pair_hi()) as u64;
        lo | (hi << 32)
    }

    /// Write a 64-bit register pair.
    #[inline]
    pub fn write64(&mut self, r: Reg, v: u64) {
        self.write(r, v as u32);
        self.write(r.pair_hi(), (v >> 32) as u32);
    }

    /// Read a GPR as `f32`.
    #[inline]
    pub fn read_f32(&self, r: Reg) -> f32 {
        f32::from_bits(self.read(r))
    }

    /// Write a GPR as `f32`.
    #[inline]
    pub fn write_f32(&mut self, r: Reg, v: f32) {
        self.write(r, v.to_bits());
    }

    /// Read a register pair as `f64`.
    #[inline]
    pub fn read_f64(&self, r: Reg) -> f64 {
        f64::from_bits(self.read64(r))
    }

    /// Write a register pair as `f64`.
    #[inline]
    pub fn write_f64(&mut self, r: Reg, v: f64) {
        self.write64(r, v.to_bits());
    }

    /// Read a predicate.
    #[inline]
    pub fn read_p(&self, p: PReg) -> bool {
        if p.is_true_reg() {
            true
        } else {
            self.p & (1 << p.index()) != 0
        }
    }

    /// Write a predicate (writes to `PT` are discarded).
    #[inline]
    pub fn write_p(&mut self, p: PReg, v: bool) {
        if !p.is_true_reg() {
            if v {
                self.p |= 1 << p.index();
            } else {
                self.p &= !(1 << p.index());
            }
        }
    }

    /// Flip a predicate — the fault injector's predicate corruption.
    /// Returns the value before corruption.
    #[inline]
    pub fn corrupt_p(&mut self, p: PReg) -> bool {
        let old = self.read_p(p);
        self.write_p(p, !old);
        old
    }

    /// The 7 writable predicates packed into bits `0..7` (for `P2R`).
    #[inline]
    pub fn pred_bits(&self) -> u32 {
        (self.p & 0x7f) as u32
    }

    /// Overwrite writable predicates from packed bits, honouring `mask`
    /// (for `R2P`).
    #[inline]
    pub fn set_pred_bits(&mut self, bits: u32, mask: u32) {
        let m = (mask & 0x7f) as u8;
        self.p = (self.p & !m) | ((bits as u8) & m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rz_semantics() {
        let mut rf = RegFile::new();
        rf.write(Reg::RZ, 123);
        assert_eq!(rf.read(Reg::RZ), 0);
    }

    #[test]
    fn pt_semantics() {
        let mut rf = RegFile::new();
        assert!(rf.read_p(PReg::PT));
        rf.write_p(PReg::PT, false);
        assert!(rf.read_p(PReg::PT));
    }

    #[test]
    fn gpr_roundtrip() {
        let mut rf = RegFile::new();
        rf.write(Reg(10), 0xDEADBEEF);
        assert_eq!(rf.read(Reg(10)), 0xDEADBEEF);
    }

    #[test]
    fn pair_roundtrip() {
        let mut rf = RegFile::new();
        rf.write64(Reg(4), 0x0123_4567_89AB_CDEF);
        assert_eq!(rf.read(Reg(4)), 0x89AB_CDEF);
        assert_eq!(rf.read(Reg(5)), 0x0123_4567);
        assert_eq!(rf.read64(Reg(4)), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn float_views() {
        let mut rf = RegFile::new();
        rf.write_f32(Reg(1), 3.5);
        assert_eq!(rf.read_f32(Reg(1)), 3.5);
        rf.write_f64(Reg(2), -2.25);
        assert_eq!(rf.read_f64(Reg(2)), -2.25);
    }

    #[test]
    fn corrupt_xors() {
        let mut rf = RegFile::new();
        rf.write(Reg(3), 0b1010);
        let old = rf.corrupt(Reg(3), 0b0110);
        assert_eq!(old, 0b1010);
        assert_eq!(rf.read(Reg(3)), 0b1100);
        // ZERO_VALUE model: XOR with the original value produces zero.
        let old = rf.corrupt(Reg(3), rf.read(Reg(3)));
        assert_eq!(old, 0b1100);
        assert_eq!(rf.read(Reg(3)), 0);
    }

    #[test]
    fn corrupt_rz_is_noop() {
        let mut rf = RegFile::new();
        rf.corrupt(Reg::RZ, 0xFFFF_FFFF);
        assert_eq!(rf.read(Reg::RZ), 0);
    }

    #[test]
    fn predicate_bits() {
        let mut rf = RegFile::new();
        rf.write_p(PReg(0), true);
        rf.write_p(PReg(3), true);
        assert_eq!(rf.pred_bits(), 0b1001);
        rf.set_pred_bits(0b0110, 0b0111);
        assert!(!rf.read_p(PReg(0)));
        assert!(rf.read_p(PReg(1)));
        assert!(rf.read_p(PReg(2)));
        assert!(rf.read_p(PReg(3)), "outside mask, unchanged");
    }

    #[test]
    fn corrupt_predicate_flips() {
        let mut rf = RegFile::new();
        assert!(!rf.read_p(PReg(2)));
        rf.corrupt_p(PReg(2));
        assert!(rf.read_p(PReg(2)));
        rf.corrupt_p(PReg(2));
        assert!(!rf.read_p(PReg(2)));
    }
}
