//! Instruction-semantics tests through the public API: one small kernel per
//! family, executed on the device and checked against a host reference.

use gpu_isa::asm::KernelBuilder;
use gpu_isa::{
    AtomOp, CmpOp, Dst, Instr, MemWidth, Modifier, Opcode, Operand, PReg, Reg, RoundMode, ShflMode,
    SpecialReg,
};
use gpu_sim::{Dim3, GlobalMem, Gpu, GpuConfig, Launch};

fn run_kernel(kernel: &gpu_isa::Kernel, threads: u32, params: &[u32], mem: &mut GlobalMem) {
    Gpu::new(GpuConfig::default())
        .launch(
            &Launch {
                kernel,
                grid: Dim3::from(1),
                block: Dim3::from(threads),
                params,
                instr_budget: Some(10_000_000),
            },
            mem,
            None,
        )
        .expect("launch");
}

/// Build a kernel that loads `in[tid]` into R1 and a second operand
/// `in2[tid]` into R2, runs `body`, and stores R0 to `out[tid]`.
fn unary_binary_harness(name: &str, body: impl FnOnce(&mut KernelBuilder)) -> gpu_isa::Kernel {
    let mut k = KernelBuilder::new(name);
    let (out, a, b, tid, off) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
    k.ldc(out, 0);
    k.ldc(a, 4);
    k.ldc(b, 8);
    k.s2r(tid, SpecialReg::TidX);
    k.shli(off, tid, 2);
    k.iadd(out, out, off);
    k.iadd(a, a, off);
    k.iadd(b, b, off);
    k.ldg(Reg(1), a, 0);
    k.ldg(Reg(2), b, 0);
    body(&mut k);
    k.stg(out, 0, Reg(0));
    k.exit();
    k.finish()
}

/// Run a two-input u32 kernel over `xs`/`ys` and return the outputs.
fn eval2(body: impl FnOnce(&mut KernelBuilder), xs: &[u32], ys: &[u32]) -> Vec<u32> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    let kernel = unary_binary_harness("t", body);
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc((n * 4) as u32).expect("out");
    let a = mem.alloc((n * 4) as u32).expect("a");
    let b = mem.alloc((n * 4) as u32).expect("b");
    mem.write_u32s(a, xs).expect("w");
    mem.write_u32s(b, ys).expect("w");
    run_kernel(&kernel, n as u32, &[out.addr(), a.addr(), b.addr()], &mut mem);
    mem.read_u32s(out, n).expect("r")
}

#[test]
fn popc_flo_brev() {
    let xs = [0u32, 1, 0xFFFF_FFFF, 0x8000_0000, 0x0F0F_0F0F];
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::POPC);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs[0] = Operand::R(Reg(1));
            k.push(i);
        },
        &xs,
        &[0; 5],
    );
    assert_eq!(got, vec![0, 1, 32, 1, 16]);

    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::FLO);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs[0] = Operand::R(Reg(1));
            k.push(i);
        },
        &xs,
        &[0; 5],
    );
    assert_eq!(got, vec![u32::MAX, 0, 31, 31, 27]);

    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::BREV);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs[0] = Operand::R(Reg(1));
            k.push(i);
        },
        &xs,
        &[0; 5],
    );
    assert_eq!(got, xs.iter().map(|v| v.reverse_bits()).collect::<Vec<_>>());
}

#[test]
fn bfe_bfi_extract_insert() {
    // BFE: extract 8 bits at position 4.
    let ctl = 4 | (8 << 8);
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::BFE);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::Imm(ctl), Operand::None, Operand::None];
            k.push(i);
        },
        &[0xABCD_EF12, 0xFFFF_FFFF],
        &[0, 0],
    );
    assert_eq!(got, vec![(0xABCD_EF12u32 >> 4) & 0xFF, 0xFF]);

    // BFI: insert R1's low bits into R2 at position 8, length 4.
    let ctl = 8 | (4 << 8);
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::BFI);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::Imm(ctl), Operand::R(Reg(2)), Operand::None];
            k.push(i);
        },
        &[0xF, 0x3],
        &[0x0000_0000, 0xFFFF_FFFF],
    );
    assert_eq!(got, vec![0xF00, 0xFFFF_F3FF]);
}

#[test]
fn funnel_shift_and_xmad() {
    // SHF: funnel (R2:R1) >> 8.
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::SHF);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::Imm(8), Operand::None];
            k.push(i);
        },
        &[0x1234_5678],
        &[0xAABB_CCDD],
    );
    assert_eq!(got, vec![(0xDD12_3456u32)]);

    // XMAD: lo16(a)*lo16(b) + c — c is R2 here.
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::XMAD);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::Imm(100), Operand::R(Reg(2)), Operand::None];
            k.push(i);
        },
        &[0x0001_0005], // lo16 = 5
        &[7],
    );
    assert_eq!(got, vec![5 * 100 + 7]);
}

#[test]
fn prmt_selects_bytes() {
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::PRMT);
            i.dsts[0] = Dst::R(Reg(0));
            // selector 0x5410: byte0=pool[0], byte1=pool[1], byte2=pool[4], byte3=pool[5]
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::Imm(0x5410), Operand::None];
            k.push(i);
        },
        &[0x4433_2211],
        &[0x8877_6655],
    );
    assert_eq!(got, vec![0x6655_2211]);
}

#[test]
fn sgxt_sign_extends() {
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::SGXT);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::Imm(8), Operand::None, Operand::None];
            k.push(i);
        },
        &[0x0000_0080, 0x0000_007F, 0x0000_01FF],
        &[0, 0, 0],
    );
    assert_eq!(got, vec![0xFFFF_FF80, 0x7F, 0xFFFF_FFFF]);
}

#[test]
fn iscadd_and_isad() {
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::ISCADD);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::Imm(4), Operand::None];
            k.push(i);
        },
        &[3],
        &[10],
    );
    assert_eq!(got, vec![3 * 16 + 10]);

    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::ISAD);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::Imm(5), Operand::None];
            k.push(i);
        },
        &[3, 10u32.wrapping_neg()],
        &[10, 3],
    );
    assert_eq!(got, vec![7 + 5, 13 + 5]);
}

#[test]
fn icmp_and_fcmp_select() {
    // ICMP.GT d, a, b, c: d = (c > 0) ? a : b
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::ICMP);
            i.modifier = Modifier::Cmp(CmpOp::Gt);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::Imm(1), Operand::None];
            k.push(i);
        },
        &[111, 222],
        &[999, 888],
    );
    assert_eq!(got, vec![111, 222], "c=1 > 0 picks a");

    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::FCMP);
            i.modifier = Modifier::Cmp(CmpOp::Lt);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs =
                [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::imm_f32(-1.0), Operand::None];
            k.push(i);
        },
        &[5],
        &[6],
    );
    assert_eq!(got, vec![5], "-1 < 0 picks a");
}

#[test]
fn fset_iset_write_masks() {
    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::FSET);
            i.modifier = Modifier::Cmp(CmpOp::Gt);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
            k.push(i);
        },
        &[2.0f32.to_bits(), 1.0f32.to_bits()],
        &[1.0f32.to_bits(), 2.0f32.to_bits()],
    );
    assert_eq!(got, vec![u32::MAX, 0]);

    let got = eval2(
        |k| {
            let mut i = Instr::new(Opcode::ISET);
            i.modifier = Modifier::Cmp(CmpOp::Le);
            i.dsts[0] = Dst::R(Reg(0));
            i.srcs = [Operand::R(Reg(1)), Operand::R(Reg(2)), Operand::None, Operand::None];
            k.push(i);
        },
        &[5, (-3i32) as u32],
        &[5, 2],
    );
    assert_eq!(got, vec![u32::MAX, u32::MAX], "signed compare");
}

#[test]
fn frnd_rounding_modes() {
    for (mode, input, expect) in [
        (RoundMode::Rz, 2.7f32, 2.0f32),
        (RoundMode::Rm, -2.1, -3.0),
        (RoundMode::Rp, 2.1, 3.0),
        (RoundMode::Rn, 2.5, 2.0),
    ] {
        let got = eval2(
            |k| {
                let mut i = Instr::new(Opcode::FRND);
                i.modifier = Modifier::Round(mode);
                i.dsts[0] = Dst::R(Reg(0));
                i.srcs[0] = Operand::R(Reg(1));
                k.push(i);
            },
            &[input.to_bits()],
            &[0],
        );
        assert_eq!(f32::from_bits(got[0]), expect, "{mode:?}({input})");
    }
}

#[test]
fn f2f_widen_narrow_roundtrip() {
    // Widen f32 → f64 in a pair, then narrow back.
    let mut k = KernelBuilder::new("f2f");
    let (out, inp, tid, off) = (Reg(4), Reg(5), Reg(7), Reg(8));
    k.ldc(out, 0);
    k.ldc(inp, 4);
    k.s2r(tid, SpecialReg::TidX);
    k.shli(off, tid, 2);
    k.iadd(out, out, off);
    k.iadd(inp, inp, off);
    k.ldg(Reg(1), inp, 0);
    k.f2d(Reg(10), Reg(1));
    k.d2f(Reg(0), Reg(10));
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(8).expect("out");
    let inp = mem.alloc(8).expect("in");
    mem.write_f32s(inp, &[1.61803, -0.5]).expect("w");
    run_kernel(&kernel, 2, &[out.addr(), inp.addr()], &mut mem);
    assert_eq!(mem.read_f32s(out, 2).expect("r"), vec![1.61803, -0.5]);
}

#[test]
fn local_memory_per_thread_isolation() {
    // Each thread writes tid to local[0] then reads it back; local memory
    // must be private per thread.
    let mut k = KernelBuilder::new("local");
    let (out, tid, off) = (Reg(4), Reg(7), Reg(8));
    k.ldc(out, 0);
    k.s2r(tid, SpecialReg::TidX);
    let mut st = Instr::new(Opcode::STL);
    st.modifier = Modifier::Width(MemWidth::B32);
    st.srcs = [
        Operand::Mem(gpu_isa::MemRef { base: Reg::RZ, offset: 16, space: gpu_isa::Space::Local }),
        Operand::R(tid),
        Operand::None,
        Operand::None,
    ];
    k.push(st);
    let mut ld = Instr::new(Opcode::LDL);
    ld.modifier = Modifier::Width(MemWidth::B32);
    ld.dsts[0] = Dst::R(Reg(0));
    ld.srcs[0] =
        Operand::Mem(gpu_isa::MemRef { base: Reg::RZ, offset: 16, space: gpu_isa::Space::Local });
    k.push(ld);
    k.shli(off, tid, 2);
    k.iadd(out, out, off);
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(32 * 4).expect("out");
    run_kernel(&kernel, 32, &[out.addr()], &mut mem);
    assert_eq!(mem.read_u32s(out, 32).expect("r"), (0..32).collect::<Vec<u32>>());
}

#[test]
fn vote_ballot_reflects_predicates() {
    // Lanes with tid < 5 set P0; VOTE returns the ballot mask 0b11111.
    let mut k = KernelBuilder::new("vote");
    let (out, tid) = (Reg(4), Reg(7));
    k.ldc(out, 0);
    k.s2r(tid, SpecialReg::TidX);
    k.isetp(PReg(0), CmpOp::Lt, tid, 5);
    let mut v = Instr::new(Opcode::VOTE);
    v.dsts[0] = Dst::R(Reg(0));
    v.srcs[0] = Operand::P(PReg(0));
    k.push(v);
    k.shli(Reg(8), tid, 2);
    k.iadd(out, out, Reg(8));
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(32 * 4).expect("out");
    run_kernel(&kernel, 32, &[out.addr()], &mut mem);
    let got = mem.read_u32s(out, 32).expect("r");
    assert!(got.iter().all(|m| *m == 0b11111), "{got:?}");
}

#[test]
fn atomic_cas_swaps_only_on_match() {
    // CAS(expected=7, swap=99): only the slot holding 7 changes.
    let mut k = KernelBuilder::new("cas");
    let (out, tid, addr) = (Reg(4), Reg(7), Reg(8));
    k.ldc(out, 0);
    k.s2r(tid, SpecialReg::TidX);
    k.shli(addr, tid, 2);
    k.iadd(addr, out, addr);
    let mut cas = Instr::new(Opcode::ATOMG);
    cas.modifier = Modifier::AtomOp(AtomOp::Cas);
    cas.dsts[0] = Dst::R(Reg(0));
    cas.srcs = [
        Operand::Mem(gpu_isa::MemRef { base: addr, offset: 0, space: gpu_isa::Space::Global }),
        Operand::Imm(7),
        Operand::Imm(99),
        Operand::None,
    ];
    k.push(cas);
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(4 * 4).expect("out");
    mem.write_u32s(out, &[7, 8, 7, 9]).expect("w");
    run_kernel(&kernel, 4, &[out.addr()], &mut mem);
    assert_eq!(mem.read_u32s(out, 4).expect("r"), vec![99, 8, 99, 9]);
}

#[test]
fn shfl_idx_and_up_down() {
    // Broadcast lane 3's value with SHFL.IDX.
    let mut k = KernelBuilder::new("shfl");
    let (out, lane) = (Reg(4), Reg(7));
    k.ldc(out, 0);
    k.s2r(lane, SpecialReg::LaneId);
    k.imad(Reg(1), lane, lane, Reg::RZ); // value = lane²
    k.shfl(ShflMode::Idx, Reg(0), Reg(1), 3);
    k.shli(Reg(8), lane, 2);
    k.iadd(out, out, Reg(8));
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(32 * 4).expect("out");
    run_kernel(&kernel, 32, &[out.addr()], &mut mem);
    let got = mem.read_u32s(out, 32).expect("r");
    assert!(got.iter().all(|v| *v == 9), "broadcast of lane 3: {got:?}");
}

#[test]
fn fswzadd_pairs_lanes() {
    let mut k = KernelBuilder::new("swz");
    let (out, lane) = (Reg(4), Reg(7));
    k.ldc(out, 0);
    k.s2r(lane, SpecialReg::LaneId);
    k.i2f(Reg(1), lane);
    let mut s = Instr::new(Opcode::FSWZADD);
    s.dsts[0] = Dst::R(Reg(0));
    s.srcs[0] = Operand::R(Reg(1));
    k.push(s);
    k.shli(Reg(8), lane, 2);
    k.iadd(out, out, Reg(8));
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(32 * 4).expect("out");
    run_kernel(&kernel, 32, &[out.addr()], &mut mem);
    let got = mem.read_f32s(out, 32).expect("r");
    for (lane, v) in got.iter().enumerate() {
        let partner = lane ^ 1;
        assert_eq!(*v, (lane + partner) as f32, "lane {lane}");
    }
}

#[test]
fn dset_and_dsetp_compare_doubles() {
    let mut k = KernelBuilder::new("dset");
    let (out, tid) = (Reg(4), Reg(7));
    k.ldc(out, 0);
    k.s2r(tid, SpecialReg::TidX);
    k.i2d(Reg(10), tid); // pair R10 = tid as f64
    k.movi(Reg(1), 5);
    k.i2d(Reg(12), Reg(1)); // pair R12 = 5.0
                            // R0 = (tid < 5) ? mask : 0
    let mut d = Instr::new(Opcode::DSET);
    d.modifier = Modifier::Cmp(CmpOp::Lt);
    d.dsts[0] = Dst::R(Reg(0));
    d.srcs = [Operand::R64(Reg(10)), Operand::R64(Reg(12)), Operand::None, Operand::None];
    k.push(d);
    k.shli(Reg(8), tid, 2);
    k.iadd(out, out, Reg(8));
    k.stg(out, 0, Reg(0));
    k.exit();
    let kernel = k.finish();
    let mut mem = GlobalMem::new(1 << 16);
    let out = mem.alloc(8 * 4).expect("out");
    run_kernel(&kernel, 8, &[out.addr()], &mut mem);
    let got = mem.read_u32s(out, 8).expect("r");
    for (tid, v) in got.iter().enumerate() {
        assert_eq!(*v, if tid < 5 { u32::MAX } else { 0 }, "tid {tid}");
    }
}
