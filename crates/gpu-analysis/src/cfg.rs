//! Basic-block control-flow graph construction.
//!
//! Successor edges model the simulator's per-thread control flow: `BRA`/
//! `JMP` branch to their resolved target (plus fall-through when guarded —
//! a guard-failing thread just steps to the next instruction), `EXIT`,
//! `KILL`, `BPT`, and unimplemented opcodes terminate the thread, `BAR`
//! falls through after the rendezvous, and everything else falls through.
//! Executing past the last instruction raises a `PcOverrun` trap, so a
//! reachable fall-off-the-end path is a genuine kernel defect (reported by
//! the linter as a missing `EXIT`).
//!
//! Indirect branches (`BRX`/`JMX`) and call/return have no statically
//! enumerable successor set; kernels containing them build with
//! [`Cfg::precise`]` == false`, and consumers that need soundness (dead
//! fault pruning, path-sensitive lints) must skip such kernels.

use gpu_isa::{ExecFamily, Kernel};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: u32,
    /// One past the last instruction index (exclusive).
    pub end: u32,
    /// Successor block indices, deduplicated.
    pub succs: Vec<usize>,
    /// Predecessor block indices, deduplicated.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices in the block.
    pub fn pcs(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }
}

/// A kernel's control-flow graph. Block 0 is the entry block.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The basic blocks, ordered by start pc.
    pub blocks: Vec<BasicBlock>,
    /// `false` if the kernel contains indirect branches (`BRX`/`JMX`) or
    /// call/return, whose successors cannot be statically enumerated.
    /// Imprecise CFGs are unsound for pruning.
    pub precise: bool,
    /// Instruction indices from which execution can run past the end of
    /// the kernel (the simulator's `PcOverrun` trap).
    pub fall_off: Vec<u32>,
    block_of: Vec<usize>,
}

/// `true` for opcodes that end a basic block.
fn is_control(family: ExecFamily) -> bool {
    matches!(
        family,
        ExecFamily::Bra
            | ExecFamily::Brx
            | ExecFamily::Call
            | ExecFamily::Ret
            | ExecFamily::Exit
            | ExecFamily::Kill
            | ExecFamily::Bpt
            | ExecFamily::Unimplemented
    )
}

/// The statically known successor instruction indices of `pc`, together
/// with whether any edge was dropped because it cannot be enumerated
/// (indirect branch, return) — in-range indices only.
fn instr_successors(kernel: &Kernel, pc: u32) -> (Vec<u32>, bool) {
    let n = kernel.len() as u32;
    let instr = &kernel.instrs()[pc as usize];
    let fall = pc + 1;
    let guarded = !instr.guard.is_always();
    let mut succs = Vec::new();
    let mut imprecise = false;
    match instr.op.family() {
        ExecFamily::Bra => {
            succs.push(instr.target);
            if guarded {
                succs.push(fall);
            }
        }
        ExecFamily::Brx | ExecFamily::Ret => {
            imprecise = true;
            if guarded {
                succs.push(fall);
            }
        }
        ExecFamily::Call => {
            imprecise = true;
            if instr.target < n {
                succs.push(instr.target);
            }
            // The matching RET eventually resumes after the call site.
            succs.push(fall);
        }
        ExecFamily::Exit | ExecFamily::Kill | ExecFamily::Bpt | ExecFamily::Unimplemented => {
            if guarded {
                succs.push(fall);
            }
        }
        _ => succs.push(fall),
    }
    succs.retain(|s| *s < n);
    succs.dedup();
    (succs, imprecise)
}

impl Cfg {
    /// Build the CFG of a kernel.
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                precise: true,
                fall_off: vec![0],
                block_of: Vec::new(),
            };
        }

        let mut precise = true;
        let mut fall_off = Vec::new();
        let mut succs_of = Vec::with_capacity(n);
        for pc in 0..n as u32 {
            let instr = &kernel.instrs()[pc as usize];
            let (succs, imprecise) = instr_successors(kernel, pc);
            precise &= !imprecise;
            // A fall-through edge to pc == len is a PcOverrun, not an edge.
            let family = instr.op.family();
            let falls = match family {
                ExecFamily::Exit
                | ExecFamily::Kill
                | ExecFamily::Bpt
                | ExecFamily::Unimplemented => !instr.guard.is_always() && pc as usize + 1 == n,
                ExecFamily::Bra => !instr.guard.is_always() && pc as usize + 1 == n,
                ExecFamily::Brx | ExecFamily::Ret | ExecFamily::Call => false,
                _ => pc as usize + 1 == n,
            };
            if falls {
                fall_off.push(pc);
            }
            succs_of.push(succs);
        }

        // Leaders: entry, branch targets, and instructions after control flow.
        let mut leader = vec![false; n];
        leader[0] = true;
        for pc in 0..n {
            if is_control(kernel.instrs()[pc].op.family()) {
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
                for s in &succs_of[pc] {
                    leader[*s as usize] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1];
            if last {
                blocks.push(BasicBlock {
                    start: start as u32,
                    end: (pc + 1) as u32,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc + 1;
            }
        }

        for b in 0..blocks.len() {
            let last_pc = blocks[b].end as usize - 1;
            let mut succs: Vec<usize> =
                succs_of[last_pc].iter().map(|s| block_of[*s as usize]).collect();
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }

        Cfg { blocks, precise, fall_off, block_of }
    }

    /// The block containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range for the kernel.
    pub fn block_of(&self, pc: u32) -> usize {
        self.block_of[pc as usize]
    }

    /// Per-instruction successor indices (in-range only; terminators and
    /// statically unenumerable edges contribute nothing).
    pub fn instr_succs(kernel: &Kernel, pc: u32) -> Vec<u32> {
        instr_successors(kernel, pc).0
    }

    /// Block-level reachability from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse postorder over blocks reachable from the entry.
    pub fn rpo(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.blocks.len());
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return order;
        }
        // Iterative postorder DFS.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        seen[0] = true;
        while let Some((b, i)) = stack.pop() {
            if i < self.blocks[b].succs.len() {
                stack.push((b, i + 1));
                let s = self.blocks[b].succs[i];
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
            }
        }
        order.reverse();
        order
    }

    /// Blocks whose execution leaves the kernel: a thread-terminating last
    /// instruction (`EXIT`, `KILL`, traps, unenumerable returns) or a
    /// fall-off-the-end path. These feed the virtual exit node of the
    /// post-dominator computation.
    pub fn exit_blocks(&self, kernel: &Kernel) -> Vec<usize> {
        let mut out = Vec::new();
        for (b, block) in self.blocks.iter().enumerate() {
            let last_pc = block.end - 1;
            let instr = &kernel.instrs()[last_pc as usize];
            let terminator = matches!(
                instr.op.family(),
                ExecFamily::Exit
                    | ExecFamily::Kill
                    | ExecFamily::Bpt
                    | ExecFamily::Unimplemented
                    | ExecFamily::Ret
                    | ExecFamily::Brx
            );
            if terminator || self.fall_off.contains(&last_pc) {
                out.push(b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{CmpOp, PReg, Reg};

    /// if (R0 < 10) { R1 = R0 + 1 } else { R1 = 0 }; exit
    fn diamond() -> Kernel {
        let mut k = KernelBuilder::new("diamond");
        let (else_, join) = (k.new_label(), k.new_label());
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 0
        k.bra_ifnot(PReg(0), else_); // 1
        k.iaddi(Reg(1), Reg(0), 1); // 2
        k.bra(join); // 3
        k.bind(else_);
        k.movi(Reg(1), 0); // 4
        k.bind(join);
        k.exit(); // 5
        k.finish()
    }

    #[test]
    fn diamond_blocks_and_edges() {
        let kernel = diamond();
        let cfg = Cfg::build(&kernel);
        assert!(cfg.precise);
        assert!(cfg.fall_off.is_empty());
        // Blocks: [0..2) cond, [2..4) then, [4..5) else, [5..6) join.
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        assert!(cfg.blocks[3].succs.is_empty());
        assert_eq!(cfg.blocks[3].preds, vec![1, 2]);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(4), 2);
        assert!(cfg.reachable().iter().all(|r| *r));
        assert_eq!(cfg.rpo()[0], 0);
    }

    #[test]
    fn unreachable_code_after_unconditional_branch() {
        let mut k = KernelBuilder::new("dead");
        let end = k.new_label();
        k.bra(end); // 0
        k.movi(Reg(1), 7); // 1 — unreachable
        k.bind(end);
        k.exit(); // 2
        let cfg = Cfg::build(&k.finish());
        let reach = cfg.reachable();
        assert!(reach[cfg.block_of(0)]);
        assert!(!reach[cfg.block_of(1)]);
        assert!(reach[cfg.block_of(2)]);
    }

    #[test]
    fn missing_exit_is_a_fall_off() {
        let mut k = KernelBuilder::new("nofall");
        k.movi(Reg(1), 7);
        k.iaddi(Reg(1), Reg(1), 1);
        let cfg = Cfg::build(&k.finish());
        assert_eq!(cfg.fall_off, vec![1]);
    }

    #[test]
    fn guarded_exit_falls_through() {
        let mut k = KernelBuilder::new("gexit");
        k.push({
            let mut i = gpu_isa::Instr::new(gpu_isa::Opcode::EXIT);
            i.guard = gpu_isa::Guard::if_true(PReg(0));
            i
        }); // 0
        k.exit(); // 1
        let cfg = Cfg::build(&k.finish());
        assert_eq!(cfg.blocks[0].succs, vec![1], "guard-failing threads fall through");
    }

    #[test]
    fn loops_are_handled() {
        let mut k = KernelBuilder::new("loop");
        let top = k.new_label();
        k.movi(Reg(0), 0); // 0
        k.bind(top);
        k.iaddi(Reg(0), Reg(0), 1); // 1
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 2
        k.bra_if(PReg(0), top); // 3
        k.exit(); // 4
        let cfg = Cfg::build(&k.finish());
        let body = cfg.block_of(1);
        assert!(cfg.blocks[body].preds.contains(&cfg.block_of(0)));
        assert!(cfg.blocks[body].preds.contains(&body), "back edge");
        assert!(cfg.reachable().iter().all(|r| *r));
    }

    #[test]
    fn empty_kernel_falls_off_immediately() {
        let kernel = Kernel::new("empty", vec![], 0).expect("kernel");
        let cfg = Cfg::build(&kernel);
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.fall_off, vec![0]);
    }
}
