//! A fixed-size bitset over the architectural register file.
//!
//! One bit per injectable register unit: 255 GPR units (`R0`–`R254`; `RZ`
//! is hard-wired and never tracked) followed by 7 predicates (`P0`–`P6`;
//! `PT` likewise excluded). Dense bitsets keep the dataflow fixpoints
//! allocation-free in their inner loops.

use gpu_isa::{PReg, Reg, RegSlot};

const GPR_SLOTS: usize = 255;
const PRED_SLOTS: usize = 7;
const SLOTS: usize = GPR_SLOTS + PRED_SLOTS;
const WORDS: usize = SLOTS.div_ceil(64);

/// A set of [`RegSlot`]s backed by a fixed array of machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet {
    bits: [u64; WORDS],
}

fn index(slot: RegSlot) -> Option<usize> {
    match slot {
        RegSlot::Gpr(r) if !r.is_zero_reg() => Some(r.index()),
        RegSlot::Pred(p) if !p.is_true_reg() => Some(GPR_SLOTS + p.0 as usize),
        _ => None,
    }
}

impl RegSet {
    /// The empty set.
    pub const fn empty() -> RegSet {
        RegSet { bits: [0; WORDS] }
    }

    /// Insert a slot; `RZ`/`PT` are silently ignored. Returns `true` if
    /// the slot was not already present.
    pub fn insert(&mut self, slot: RegSlot) -> bool {
        let Some(i) = index(slot) else { return false };
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.bits[w] & b == 0;
        self.bits[w] |= b;
        fresh
    }

    /// Remove a slot.
    pub fn remove(&mut self, slot: RegSlot) {
        if let Some(i) = index(slot) {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test. `RZ`/`PT` are never members.
    pub fn contains(&self, slot: RegSlot) -> bool {
        match index(slot) {
            Some(i) => self.bits[i / 64] & (1u64 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Union `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Remove every slot of `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
    }

    /// `true` if no slot is present.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Number of slots present.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the slots in register order (GPRs first, then predicates).
    pub fn iter(&self) -> impl Iterator<Item = RegSlot> + '_ {
        (0..SLOTS).filter_map(move |i| {
            if self.bits[i / 64] & (1u64 << (i % 64)) == 0 {
                return None;
            }
            Some(if i < GPR_SLOTS {
                RegSlot::Gpr(Reg(i as u8))
            } else {
                RegSlot::Pred(PReg((i - GPR_SLOTS) as u8))
            })
        })
    }

    /// Build a set from an iterator of slots.
    pub fn from_slots(slots: impl IntoIterator<Item = RegSlot>) -> RegSet {
        let mut s = RegSet::empty();
        for slot in slots {
            s.insert(slot);
        }
        s
    }
}

impl FromIterator<RegSlot> for RegSet {
    fn from_iter<T: IntoIterator<Item = RegSlot>>(iter: T) -> RegSet {
        RegSet::from_slots(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = RegSet::empty();
        assert!(s.insert(RegSlot::Gpr(Reg(0))));
        assert!(!s.insert(RegSlot::Gpr(Reg(0))));
        assert!(s.insert(RegSlot::Gpr(Reg(254))));
        assert!(s.insert(RegSlot::Pred(PReg(0))));
        assert!(s.insert(RegSlot::Pred(PReg(6))));
        assert_eq!(s.len(), 4);
        assert!(s.contains(RegSlot::Gpr(Reg(254))));
        assert!(!s.contains(RegSlot::Gpr(Reg(1))));
        s.remove(RegSlot::Pred(PReg(0)));
        assert!(!s.contains(RegSlot::Pred(PReg(0))));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hardwired_registers_are_never_members() {
        let mut s = RegSet::empty();
        assert!(!s.insert(RegSlot::Gpr(Reg::RZ)));
        assert!(!s.insert(RegSlot::Pred(PReg::PT)));
        assert!(s.is_empty());
        assert!(!s.contains(RegSlot::Gpr(Reg::RZ)));
        assert!(!s.contains(RegSlot::Pred(PReg::PT)));
    }

    #[test]
    fn union_subtract_iter() {
        let a = RegSet::from_slots([RegSlot::Gpr(Reg(1)), RegSlot::Pred(PReg(2))]);
        let mut b = RegSet::from_slots([RegSlot::Gpr(Reg(7))]);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union is a no-op");
        assert_eq!(
            b.iter().collect::<Vec<_>>(),
            vec![RegSlot::Gpr(Reg(1)), RegSlot::Gpr(Reg(7)), RegSlot::Pred(PReg(2))]
        );
        b.subtract(&a);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![RegSlot::Gpr(Reg(7))]);
    }
}
