//! Dominator and post-dominator trees.
//!
//! Uses the iterative Cooper–Harvey–Kennedy algorithm over a reverse
//! postorder, which is near-linear on the shallow CFGs our kernels
//! produce. Post-dominators run the same engine over the reversed graph,
//! rooted at a *virtual exit node* fed by every block whose execution
//! leaves the kernel (`EXIT`, traps, fall-off-the-end), so kernels with
//! several exits still have a single post-dominator root.

use crate::cfg::Cfg;
use gpu_isa::Kernel;

/// Immediate-dominator tree over the blocks of a [`Cfg`].
///
/// For the post-dominator variant, node `len - 1` is the virtual exit.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the root's idom is
    /// itself. `None` for nodes unreachable from the root.
    idom: Vec<Option<usize>>,
    root: usize,
}

/// Generic CHK fixpoint: `preds` is the predecessor relation of the graph
/// being dominated, `rpo` a reverse postorder from `root`.
fn compute(preds: &[Vec<usize>], rpo: &[usize], root: usize) -> Vec<Option<usize>> {
    let n = preds.len();
    let mut order_of = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        order_of[*b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);

    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while order_of[a] > order_of[b] {
                a = idom[a].expect("processed node");
            }
            while order_of[b] > order_of[a] {
                b = idom[b].expect("processed node");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Reverse postorder from `root` over an arbitrary successor relation.
fn rpo_of(succs: &[Vec<usize>], root: usize) -> Vec<usize> {
    let n = succs.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![(root, 0usize)];
    seen[root] = true;
    while let Some((b, i)) = stack.pop() {
        if i < succs[b].len() {
            stack.push((b, i + 1));
            let s = succs[b][i];
            if !seen[s] {
                seen[s] = true;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
        }
    }
    order.reverse();
    order
}

impl Dominators {
    /// Dominator tree rooted at the entry block.
    pub fn build(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        if n == 0 {
            return Dominators { idom: Vec::new(), root: 0 };
        }
        let preds: Vec<Vec<usize>> = cfg.blocks.iter().map(|b| b.preds.clone()).collect();
        let succs: Vec<Vec<usize>> = cfg.blocks.iter().map(|b| b.succs.clone()).collect();
        let rpo = rpo_of(&succs, 0);
        Dominators { idom: compute(&preds, &rpo, 0), root: 0 }
    }

    /// Post-dominator tree rooted at a virtual exit node (index
    /// `cfg.blocks.len()`), with an edge from every exiting block of
    /// `kernel` to it.
    pub fn postdominators(cfg: &Cfg, kernel: &Kernel) -> Dominators {
        let n = cfg.blocks.len();
        let exit = n;
        if n == 0 {
            return Dominators { idom: vec![Some(exit)], root: exit };
        }
        // Reversed graph: "preds" of the postdom run are the CFG succs
        // (plus the virtual-exit edges), and we walk CFG edges backwards.
        let mut rev_succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut rev_preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for &s in &block.succs {
                rev_succs[s].push(b);
                rev_preds[b].push(s);
            }
        }
        for b in cfg.exit_blocks(kernel) {
            rev_succs[exit].push(b);
            rev_preds[b].push(exit);
        }
        let rpo = rpo_of(&rev_succs, exit);
        Dominators { idom: compute(&rev_preds, &rpo, exit), root: exit }
    }

    /// The virtual exit node index of a post-dominator tree built from a
    /// CFG with `nblocks` blocks.
    pub fn virtual_exit(nblocks: usize) -> usize {
        nblocks
    }

    /// `true` if `a` (post-)dominates `b`. Nodes unreachable from the root
    /// are dominated by nothing and dominate nothing (except themselves).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let mut cur = b;
        loop {
            match self.idom[cur] {
                Some(next) if next == cur => return false, // reached root
                Some(next) if next == a => return true,
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// The immediate dominator of `b` (`None` for the root or unreachable
    /// nodes).
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom[b] {
            Some(i) if i != b => Some(i),
            _ => None,
        }
    }

    /// The root node (entry block, or the virtual exit for post-dominators).
    pub fn root(&self) -> usize {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{CmpOp, PReg, Reg};

    fn diamond() -> Kernel {
        let mut k = KernelBuilder::new("diamond");
        let (else_, join) = (k.new_label(), k.new_label());
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // block 0
        k.bra_ifnot(PReg(0), else_);
        k.iaddi(Reg(1), Reg(0), 1); // block 1
        k.bra(join);
        k.bind(else_);
        k.movi(Reg(1), 0); // block 2
        k.bind(join);
        k.exit(); // block 3
        k.finish()
    }

    #[test]
    fn diamond_dominators() {
        let kernel = diamond();
        let cfg = Cfg::build(&kernel);
        let dom = Dominators::build(&cfg);
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..4 {
            assert!(dom.dominates(0, b));
        }
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(3), Some(0));
        assert_eq!(dom.idom(0), None);
    }

    #[test]
    fn diamond_postdominators() {
        let kernel = diamond();
        let cfg = Cfg::build(&kernel);
        let pdom = Dominators::postdominators(&cfg, &kernel);
        let exit = Dominators::virtual_exit(cfg.blocks.len());
        // The join post-dominates everything; arms post-dominate nothing
        // but themselves.
        for b in 0..4 {
            assert!(pdom.dominates(3, b), "join postdominates block {b}");
            assert!(pdom.dominates(exit, b));
        }
        assert!(!pdom.dominates(1, 0));
        assert!(!pdom.dominates(2, 0));
        assert_eq!(pdom.idom(0), Some(3));
    }

    #[test]
    fn loop_postdominators() {
        let mut k = KernelBuilder::new("loop");
        let top = k.new_label();
        k.movi(Reg(0), 0); // block 0
        k.bind(top);
        k.iaddi(Reg(0), Reg(0), 1); // block 1 (body, self loop via bra_if)
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10);
        k.bra_if(PReg(0), top);
        k.exit(); // block 2
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let dom = Dominators::build(&cfg);
        let pdom = Dominators::postdominators(&cfg, &kernel);
        let body = cfg.block_of(1);
        let tail = cfg.block_of(4);
        assert!(dom.dominates(0, body));
        assert!(dom.dominates(body, tail));
        assert!(pdom.dominates(tail, 0));
        assert!(pdom.dominates(body, 0));
    }
}
