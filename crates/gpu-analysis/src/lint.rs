//! The kernel linter: static checks over encoded kernels.
//!
//! NVBitFI's usage model ships kernels as opaque binaries, so defects that
//! a compiler would catch at build time (uninitialized reads, unreachable
//! code, a path that runs off the end of the kernel) survive into the
//! `.bin`. `fi lint` runs these checks over a decoded module before a
//! campaign wastes wall-clock on a broken workload.
//!
//! Path-sensitive checks (uninitialized reads, unreachable code, missing
//! `EXIT`, dead writes, barrier divergence) require a precise CFG; kernels
//! with indirect branches or call/return get only the flow-insensitive
//! checks plus an `imprecise-cfg` note.

use crate::cfg::Cfg;
use crate::dataflow::{cross_lane_uses, divergent_slots, Liveness, ReachingDefs, UseInit};
use crate::dom::Dominators;
use gpu_isa::{Dst, ExecFamily, Kernel, Module, PReg, Reg};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional; does not fail `fi lint`.
    Warning,
    /// A defect: the kernel reads undefined state or can trap.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable machine-readable check name, e.g. `"uninitialized-read"`.
    pub kind: &'static str,
    /// Name of the kernel the finding is in.
    pub kernel: String,
    /// Instruction index, when the finding points at one instruction.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

fn finding(
    severity: Severity,
    kind: &'static str,
    kernel: &Kernel,
    pc: Option<u32>,
    message: String,
) -> Finding {
    Finding { severity, kind, kernel: kernel.name().to_string(), pc, message }
}

/// Lint a single kernel. Findings are ordered by program counter.
pub fn lint_kernel(kernel: &Kernel) -> Vec<Finding> {
    let mut out = Vec::new();
    let instrs = kernel.instrs();
    let cfg = Cfg::build(kernel);

    // Flow-insensitive: writes to hard-wired registers are silently
    // discarded by the hardware — almost certainly not what was meant.
    for (pc, instr) in instrs.iter().enumerate() {
        for d in instr.dsts {
            match d {
                Dst::R(r) | Dst::R64(r) if r.is_zero_reg() => out.push(finding(
                    Severity::Warning,
                    "write-to-rz",
                    kernel,
                    Some(pc as u32),
                    format!("`{instr}` writes {}, which discards the value", Reg::RZ),
                )),
                Dst::P(p) if p.is_true_reg() => out.push(finding(
                    Severity::Warning,
                    "write-to-pt",
                    kernel,
                    Some(pc as u32),
                    format!("`{instr}` writes {}, which discards the value", PReg::PT),
                )),
                _ => {}
            }
        }
    }

    if kernel.is_empty() {
        out.push(finding(
            Severity::Error,
            "missing-exit",
            kernel,
            None,
            "kernel is empty: execution immediately runs off the end".to_string(),
        ));
        return out;
    }

    if !cfg.precise {
        out.push(finding(
            Severity::Warning,
            "imprecise-cfg",
            kernel,
            None,
            "kernel uses indirect branches or call/return; path-sensitive checks skipped"
                .to_string(),
        ));
        out.sort_by_key(|f| f.pc);
        return out;
    }

    let reachable = cfg.reachable();

    // Unreachable blocks: report the first instruction of each dead block
    // whose predecessor block is live (avoids one finding per instruction).
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] && !block.preds.iter().any(|p| !reachable[*p]) {
            out.push(finding(
                Severity::Warning,
                "unreachable-code",
                kernel,
                Some(block.start),
                format!("instructions {}..{} can never execute", block.start, block.end),
            ));
        }
    }

    // A reachable path that runs past the last instruction traps.
    for &pc in &cfg.fall_off {
        if reachable[cfg.block_of(pc)] {
            out.push(finding(
                Severity::Error,
                "missing-exit",
                kernel,
                Some(pc),
                format!("execution can run past instruction {pc} off the end of the kernel"),
            ));
        }
    }

    // Uninitialized reads: registers read before any definition reaches.
    // The simulator zero-fills register files, so these execute
    // deterministically here — but on real hardware the launch-time
    // contents are undefined, making this a genuine portability defect.
    let rd = ReachingDefs::compute(kernel, &cfg);
    for (pc, instr) in instrs.iter().enumerate() {
        if !reachable[cfg.block_of(pc as u32)] {
            continue;
        }
        for u in instr.uses() {
            match rd.classify_use(pc as u32, u) {
                UseInit::Initialized => {}
                UseInit::Uninit => out.push(finding(
                    Severity::Error,
                    "uninitialized-read",
                    kernel,
                    Some(pc as u32),
                    format!("`{instr}` reads {u}, which is never written before this point"),
                )),
                UseInit::MaybeUninit => out.push(finding(
                    Severity::Warning,
                    "maybe-uninitialized-read",
                    kernel,
                    Some(pc as u32),
                    format!("`{instr}` reads {u}, which is uninitialized on some paths"),
                )),
            }
        }
    }

    // Dead writes: every destination unit dead after the instruction.
    // Atomics and reductions are executed for their memory side effect, so
    // a dead destination is normal there.
    let live = Liveness::compute(kernel, &cfg);
    let xl = cross_lane_uses(kernel);
    for (pc, instr) in instrs.iter().enumerate() {
        if !reachable[cfg.block_of(pc as u32)] {
            continue;
        }
        if matches!(instr.op.family(), ExecFamily::Atom | ExecFamily::Red) {
            continue;
        }
        let defs = instr.defs();
        if defs.is_empty() {
            continue;
        }
        let all_dead =
            defs.iter().all(|d| !live.live_out(pc as u32).contains(*d) && !xl.contains(*d));
        if all_dead {
            out.push(finding(
                Severity::Warning,
                "dead-write",
                kernel,
                Some(pc as u32),
                format!("`{instr}` writes only registers that are never read afterwards"),
            ));
        }
    }

    // Barriers under divergent control flow: if threads of a block take
    // different paths around a BAR, the kernel deadlocks (the simulator
    // raises a barrier-divergence trap). A BAR is suspect when its own
    // guard is divergent, or when some divergent conditional branch C can
    // bypass it: the BAR post-dominates one successor of C but not C
    // itself.
    let divergent = divergent_slots(kernel);
    let pdom = Dominators::postdominators(&cfg, kernel);
    for (pc, instr) in instrs.iter().enumerate() {
        if instr.op.family() != ExecFamily::Bar || !reachable[cfg.block_of(pc as u32)] {
            continue;
        }
        let bar_block = cfg.block_of(pc as u32);
        if !instr.guard.is_always() && divergent.contains(gpu_isa::RegSlot::Pred(instr.guard.pred))
        {
            out.push(finding(
                Severity::Warning,
                "barrier-divergence",
                kernel,
                Some(pc as u32),
                format!(
                    "`{instr}` is guarded by {} which differs across threads; \
                     a partial barrier deadlocks the block",
                    instr.guard.pred
                ),
            ));
            continue;
        }
        for (cb, cblock) in cfg.blocks.iter().enumerate() {
            if !reachable[cb] || cblock.succs.len() < 2 {
                continue;
            }
            let branch = &instrs[cblock.end as usize - 1];
            if branch.op.family() != ExecFamily::Bra || branch.guard.is_always() {
                continue;
            }
            if !divergent.contains(gpu_isa::RegSlot::Pred(branch.guard.pred)) {
                continue;
            }
            let controls_bar = cblock.succs.iter().any(|&s| pdom.dominates(bar_block, s))
                && !pdom.dominates(bar_block, cb);
            if controls_bar {
                out.push(finding(
                    Severity::Warning,
                    "barrier-divergence",
                    kernel,
                    Some(pc as u32),
                    format!(
                        "BAR at {pc} is control-dependent on the thread-divergent branch \
                         at instruction {}; threads may not all reach it",
                        cblock.end - 1
                    ),
                ));
                break;
            }
        }
    }

    out.sort_by(|a, b| a.pc.cmp(&b.pc).then_with(|| a.kind.cmp(b.kind)));
    out
}

/// Lint every kernel of a module, concatenating findings in kernel order.
pub fn lint_module(module: &Module) -> Vec<Finding> {
    module.kernels().iter().flat_map(lint_kernel).collect()
}

/// Render findings as human-readable text, one line per finding.
pub fn render_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        match f.pc {
            Some(pc) => s.push_str(&format!(
                "{}[{}] kernel `{}` pc {}: {}\n",
                f.severity.as_str(),
                f.kind,
                f.kernel,
                pc,
                f.message
            )),
            None => s.push_str(&format!(
                "{}[{}] kernel `{}`: {}\n",
                f.severity.as_str(),
                f.kind,
                f.kernel,
                f.message
            )),
        }
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    s.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (stable schema; no external JSON
/// dependency).
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"severity\": \"{}\", \"kind\": \"{}\", \"kernel\": \"{}\", \"pc\": {}, \"message\": \"{}\"}}",
            f.severity.as_str(),
            json_escape(f.kind),
            json_escape(&f.kernel),
            match f.pc {
                Some(pc) => pc.to_string(),
                None => "null".to_string(),
            },
            json_escape(&f.message),
        ));
    }
    s.push_str(if findings.is_empty() { "]\n" } else { "\n]\n" });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{CmpOp, Instr, Opcode, SpecialReg};

    fn kinds(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let mut k = KernelBuilder::new("clean");
        k.s2r(Reg(0), SpecialReg::GlobalTidX);
        k.shli(Reg(1), Reg(0), 2);
        k.movi(Reg(2), 0x1000);
        k.iadd(Reg(1), Reg(1), Reg(2));
        k.ldg(Reg(3), Reg(1), 0);
        k.iaddi(Reg(3), Reg(3), 1);
        k.stg(Reg(1), 0, Reg(3));
        k.exit();
        assert!(lint_kernel(&k.finish()).is_empty());
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let mut k = KernelBuilder::new("uninit");
        k.iaddi(Reg(1), Reg(0), 1); // R0 never written
        k.stg(Reg(1), 0, Reg(1));
        k.exit();
        let f = lint_kernel(&k.finish());
        assert_eq!(kinds(&f), vec!["uninitialized-read"]);
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].pc, Some(0));
    }

    #[test]
    fn missing_exit_and_unreachable() {
        let mut k = KernelBuilder::new("bad");
        let end = k.new_label();
        k.movi(Reg(0), 1); // 0
        k.bra(end); // 1
        k.movi(Reg(0), 2); // 2 — unreachable
        k.bind(end);
        k.iaddi(Reg(1), Reg(0), 0); // 3 — falls off the end
        let f = lint_kernel(&k.finish());
        assert!(f.iter().any(|f| f.kind == "unreachable-code" && f.pc == Some(2)));
        assert!(f.iter().any(|f| f.kind == "missing-exit" && f.severity == Severity::Error));
    }

    #[test]
    fn dead_write_and_rz_write() {
        let mut k = KernelBuilder::new("dead");
        k.movi(Reg(0), 7); // dead: never read
        k.movi(Reg::RZ, 7); // write to RZ
        k.exit();
        let f = lint_kernel(&k.finish());
        assert!(f.iter().any(|f| f.kind == "dead-write" && f.pc == Some(0)));
        assert!(f.iter().any(|f| f.kind == "write-to-rz" && f.pc == Some(1)));
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let mut k = KernelBuilder::new("divbar");
        let end = k.new_label();
        k.s2r(Reg(0), SpecialReg::TidX); // 0
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 4); // 1 — divergent predicate
        k.bra_ifnot(PReg(0), end); // 2
        k.push(Instr::new(Opcode::BAR)); // 3 — only some threads arrive
        k.bind(end);
        k.exit(); // 4
        let f = lint_kernel(&k.finish());
        assert!(f.iter().any(|f| f.kind == "barrier-divergence" && f.pc == Some(3)), "{f:?}");
    }

    #[test]
    fn uniform_barrier_is_clean() {
        let mut k = KernelBuilder::new("unibar");
        let end = k.new_label();
        k.s2r(Reg(0), SpecialReg::CtaIdX); // 0 — uniform within the block
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 4); // 1
        k.bra_ifnot(PReg(0), end); // 2
        k.push(Instr::new(Opcode::BAR)); // 3 — all or no threads arrive
        k.bind(end);
        k.exit(); // 4
        let f = lint_kernel(&k.finish());
        assert!(!f.iter().any(|f| f.kind == "barrier-divergence"), "{f:?}");
    }

    #[test]
    fn imprecise_cfg_skips_path_checks() {
        let mut k = KernelBuilder::new("brx");
        k.push(Instr::new(Opcode::BRX)); // indirect — no static successors
        let f = lint_kernel(&k.finish());
        assert_eq!(kinds(&f), vec!["imprecise-cfg"]);
    }

    #[test]
    fn render_formats() {
        let mut k = KernelBuilder::new("uninit");
        k.iaddi(Reg(1), Reg(0), 1);
        k.stg(Reg(1), 0, Reg(1));
        k.exit();
        let f = lint_kernel(&k.finish());
        let text = render_text(&f);
        assert!(text.contains("error[uninitialized-read] kernel `uninit` pc 0"));
        assert!(text.contains("1 error(s), 0 warning(s)"));
        let json = render_json(&f);
        assert!(json.starts_with('['));
        assert!(json.contains("\"kind\": \"uninitialized-read\""));
        assert!(json.contains("\"pc\": 0"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
