#![warn(missing_docs)]

//! # gpu-analysis — static dataflow analysis over `gpu-isa` kernels
//!
//! Classic compiler dataflow, applied to fault injection. NVBitFI corrupts
//! the *destination register* of a dynamic SASS instruction, so whether a
//! flip can ever propagate is a pure dataflow question: if the corrupted
//! register is dead — overwritten or never read before the thread exits —
//! the outcome is provably Masked without simulating anything.
//!
//! The crate provides, over decoded [`gpu_isa::Kernel`]s:
//!
//! * basic-block control-flow graphs ([`Cfg`]) covering branches,
//!   predicated control flow, and EXIT/trap edges,
//! * per-instruction def/use sets (via [`gpu_isa::Instr::defs`] /
//!   [`gpu_isa::Instr::uses`]) packed into [`RegSet`] bitsets,
//! * a backward liveness fixpoint ([`Liveness`]) and a forward
//!   reaching-definitions fixpoint ([`ReachingDefs`]),
//! * dominator and post-dominator trees ([`dom::Dominators`]),
//! * a thread-divergence taint analysis ([`dataflow::divergent_slots`]),
//! * and a kernel linter ([`lint::lint_kernel`]) built on all of the
//!   above: uninitialized reads, unreachable blocks, missing `EXIT`,
//!   writes to `RZ`/`PT`, dead writes, and barriers under divergent
//!   control flow.
//!
//! Soundness contract for pruning: [`Liveness::live_out`] at a program
//! counter is a superset of every register unit any thread can read after
//! that instruction completes, *within the same thread*, along any
//! architecturally possible path. Cross-lane reads (`SHFL`/`VOTE`/
//! `FSWZADD` read other lanes' operands) are covered separately by
//! [`dataflow::cross_lane_uses`], which callers must union into every
//! query. CFGs containing indirect branches or call/return
//! ([`Cfg::precise`] is `false`) must not be used for pruning.

pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod lint;
pub mod set;

pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{cross_lane_uses, divergent_slots, Liveness, ReachingDefs, UseInit};
pub use dom::Dominators;
pub use lint::{lint_kernel, lint_module, render_json, render_text, Finding, Severity};
pub use set::RegSet;
