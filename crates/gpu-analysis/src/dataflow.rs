//! Liveness, reaching definitions, divergence taint, and cross-lane uses.
//!
//! All fixpoints run at basic-block granularity over [`RegSet`] bitsets
//! and are then expanded to per-instruction precision, so the inner loops
//! are word-parallel and allocation-free.
//!
//! Guarded instructions never *kill*: a `@P0 MOV R1, ...` may be skipped
//! by some thread, so the old value of `R1` can survive the instruction.
//! This is the conservative direction for both analyses — liveness sets
//! only grow (sound for dead-fault pruning) and guarded definitions never
//! count as initializing on their own.

use crate::cfg::Cfg;
use crate::set::RegSet;
use gpu_isa::{ExecFamily, Kernel, Operand, Reg, RegSlot, Space, SpecialReg};

/// Per-instruction liveness: `live_out(pc)` is a superset of every
/// register unit any thread can read after instruction `pc` completes,
/// within the same thread, along any architecturally possible path.
///
/// Only meaningful for kernels whose [`Cfg::precise`] is `true`; with
/// indirect branches the successor relation (and hence this set) is not
/// statically known.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Run the backward fixpoint over `kernel`'s CFG.
    pub fn compute(kernel: &Kernel, cfg: &Cfg) -> Liveness {
        let n = kernel.len();
        let nb = cfg.blocks.len();
        let instrs = kernel.instrs();

        // Block summaries: gen (upward-exposed uses) and kill
        // (unconditional defs) via a backward walk within each block.
        let mut gen = vec![RegSet::empty(); nb];
        let mut kill = vec![RegSet::empty(); nb];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for pc in block.pcs().rev() {
                let instr = &instrs[pc as usize];
                if instr.guard.is_always() {
                    for d in instr.defs() {
                        gen[b].remove(d);
                        kill[b].insert(d);
                    }
                }
                for u in instr.uses() {
                    gen[b].insert(u);
                }
            }
        }

        // Backward fixpoint on block live-in/live-out. Iterating blocks in
        // reverse order converges quickly on mostly-forward CFGs.
        let mut bin = vec![RegSet::empty(); nb];
        let mut bout = vec![RegSet::empty(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = RegSet::empty();
                for &s in &cfg.blocks[b].succs {
                    out.union_with(&bin[s]);
                }
                let mut inn = out;
                inn.subtract(&kill[b]);
                inn.union_with(&gen[b]);
                changed |= bout[b] != out || bin[b] != inn;
                bout[b] = out;
                bin[b] = inn;
            }
        }

        // Expand to per-instruction sets by replaying each block backward.
        let mut live_in = vec![RegSet::empty(); n];
        let mut live_out = vec![RegSet::empty(); n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut live = bout[b];
            for pc in block.pcs().rev() {
                let instr = &instrs[pc as usize];
                live_out[pc as usize] = live;
                if instr.guard.is_always() {
                    for d in instr.defs() {
                        live.remove(d);
                    }
                }
                for u in instr.uses() {
                    live.insert(u);
                }
                live_in[pc as usize] = live;
            }
        }

        Liveness { live_in, live_out }
    }

    /// Register units possibly read at or after instruction `pc`.
    pub fn live_in(&self, pc: u32) -> &RegSet {
        &self.live_in[pc as usize]
    }

    /// Register units possibly read strictly after instruction `pc`
    /// completes — the set that decides whether a post-write corruption of
    /// `pc`'s destination can propagate.
    pub fn live_out(&self, pc: u32) -> &RegSet {
        &self.live_out[pc as usize]
    }
}

/// How a use relates to the definitions that can reach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseInit {
    /// Every path from entry passes an unconditional definition first.
    Initialized,
    /// Some paths are initialized, some are not (or only guarded
    /// definitions reach) — a *maybe*-uninitialized read.
    MaybeUninit,
    /// No real definition reaches: the read always observes the entry
    /// state.
    Uninit,
}

/// Reaching definitions, abstracted to the two facts the linter needs per
/// slot and program point: does the *synthetic entry definition* still
/// reach (the slot may hold its launch-time value), and does *any real
/// definition* reach (some instruction may have written it)?
///
/// Unconditional definitions kill the entry definition; guarded ones do
/// not (the guard may fail). Any definition, guarded or not, sets the
/// "really defined" fact.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Per-pc: slots whose entry definition reaches the instruction.
    maybe_uninit_in: Vec<RegSet>,
    /// Per-pc: slots some real definition of which reaches the instruction.
    maybe_init_in: Vec<RegSet>,
}

impl ReachingDefs {
    /// Run the forward fixpoint over `kernel`'s CFG.
    pub fn compute(kernel: &Kernel, cfg: &Cfg) -> ReachingDefs {
        let n = kernel.len();
        let nb = cfg.blocks.len();
        let instrs = kernel.instrs();

        let mut all = RegSet::empty();
        for r in 0..=254u8 {
            all.insert(RegSlot::Gpr(Reg(r)));
        }
        for p in 0..7u8 {
            all.insert(RegSlot::Pred(gpu_isa::PReg(p)));
        }

        // Block transfer summaries.
        let mut strong_defs = vec![RegSet::empty(); nb]; // kills entry defs
        let mut any_defs = vec![RegSet::empty(); nb];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for pc in block.pcs() {
                let instr = &instrs[pc as usize];
                for d in instr.defs() {
                    any_defs[b].insert(d);
                    if instr.guard.is_always() {
                        strong_defs[b].insert(d);
                    }
                }
            }
        }

        // Forward union fixpoint. Entry block starts with every slot
        // possibly-uninitialized and nothing really defined.
        let mut uninit_in = vec![RegSet::empty(); nb];
        let mut init_in = vec![RegSet::empty(); nb];
        if nb > 0 {
            uninit_in[0] = all;
        }
        let rpo = cfg.rpo();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let mut u_out = uninit_in[b];
                u_out.subtract(&strong_defs[b]);
                let mut i_out = init_in[b];
                i_out.union_with(&any_defs[b]);
                for &s in &cfg.blocks[b].succs {
                    changed |= uninit_in[s].union_with(&u_out);
                    changed |= init_in[s].union_with(&i_out);
                }
            }
        }

        // Per-instruction expansion.
        let mut maybe_uninit_in = vec![RegSet::empty(); n];
        let mut maybe_init_in = vec![RegSet::empty(); n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut uninit = uninit_in[b];
            let mut init = init_in[b];
            for pc in block.pcs() {
                maybe_uninit_in[pc as usize] = uninit;
                maybe_init_in[pc as usize] = init;
                let instr = &instrs[pc as usize];
                for d in instr.defs() {
                    init.insert(d);
                    if instr.guard.is_always() {
                        uninit.remove(d);
                    }
                }
            }
        }

        ReachingDefs { maybe_uninit_in, maybe_init_in }
    }

    /// Classify a read of `slot` by instruction `pc`.
    pub fn classify_use(&self, pc: u32, slot: RegSlot) -> UseInit {
        let uninit = self.maybe_uninit_in[pc as usize].contains(slot);
        let init = self.maybe_init_in[pc as usize].contains(slot);
        match (uninit, init) {
            (false, _) => UseInit::Initialized,
            (true, true) => UseInit::MaybeUninit,
            (true, false) => UseInit::Uninit,
        }
    }
}

/// `true` for opcodes that read *other lanes'* register operands
/// (`SHFL`, `VOTE`, `FSWZADD`).
pub fn is_cross_lane(family: ExecFamily) -> bool {
    matches!(family, ExecFamily::Shfl | ExecFamily::Vote | ExecFamily::FSwzAdd)
}

/// The union of the use sets of every cross-lane instruction in the
/// kernel.
///
/// Cross-lane opcodes read operands from *sibling lanes*, so per-thread
/// liveness alone under-approximates what a corrupted register can feed.
/// Callers performing dead-fault pruning must union this set into every
/// `live_out` query: a slot in here may be read by a `SHFL`/`VOTE`/
/// `FSWZADD` executed by *another* thread of the warp at any time, so it
/// is never considered dead. Coarse (whole-kernel, flow-insensitive) but
/// sound.
pub fn cross_lane_uses(kernel: &Kernel) -> RegSet {
    let mut set = RegSet::empty();
    for instr in kernel.instrs() {
        if is_cross_lane(instr.op.family()) {
            for u in instr.uses() {
                set.insert(u);
            }
        }
    }
    set
}

/// `true` if reading this special register can produce different values in
/// different threads of the same *block* (what barrier convergence cares
/// about).
fn special_is_divergent(sr: SpecialReg) -> bool {
    match sr {
        SpecialReg::TidX
        | SpecialReg::TidY
        | SpecialReg::TidZ
        | SpecialReg::LaneId
        | SpecialReg::WarpId
        | SpecialReg::GlobalTidX
        | SpecialReg::ClockLo => true,
        SpecialReg::CtaIdX
        | SpecialReg::CtaIdY
        | SpecialReg::CtaIdZ
        | SpecialReg::NTidX
        | SpecialReg::NTidY
        | SpecialReg::NTidZ
        | SpecialReg::NCtaIdX
        | SpecialReg::NCtaIdY
        | SpecialReg::NCtaIdZ
        | SpecialReg::SmId => false,
    }
}

/// Flow-insensitive thread-divergence taint: the register units that may
/// hold different values in different threads of a block.
///
/// Seeds: thread-indexed special registers, loads from non-constant
/// memory, atomics, and cross-lane results. Propagation: a definition is
/// divergent if any of its uses (including the guard) is divergent.
/// Flow-insensitivity over-taints (a register reused for a uniform value
/// later stays tainted), which can only create false *warnings*, never
/// missed ones.
pub fn divergent_slots(kernel: &Kernel) -> RegSet {
    let mut tainted = RegSet::empty();
    let mut changed = true;
    while changed {
        changed = false;
        for instr in kernel.instrs() {
            let defs = instr.defs();
            if defs.is_empty() {
                continue;
            }
            let source_divergent = instr
                .srcs
                .iter()
                .any(|s| matches!(s, Operand::Sr(sr) if special_is_divergent(*sr)))
                || matches!(instr.op.family(), ExecFamily::Atom)
                || is_cross_lane(instr.op.family())
                || instr.mem_ref().is_some_and(|m| {
                    m.space != Space::Const && matches!(instr.op.family(), ExecFamily::Ld)
                })
                || instr.uses().iter().any(|u| tainted.contains(*u));
            if source_divergent {
                for d in defs {
                    changed |= tainted.insert(d);
                }
            }
        }
    }
    tainted
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{CmpOp, Guard, Instr, Opcode, PReg};

    #[test]
    fn straight_line_liveness() {
        let mut k = KernelBuilder::new("sl");
        k.movi(Reg(0), 1); // 0
        k.movi(Reg(1), 2); // 1
        k.iadd(Reg(2), Reg(0), Reg(1)); // 2
        k.exit(); // 3
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let live = Liveness::compute(&kernel, &cfg);
        assert!(live.live_out(0).contains(RegSlot::Gpr(Reg(0))));
        assert!(live.live_out(1).contains(RegSlot::Gpr(Reg(1))));
        // R2 is written and never read: dead at its own def point.
        assert!(!live.live_out(2).contains(RegSlot::Gpr(Reg(2))));
        // Before the EXIT nothing is live.
        assert!(live.live_out(2).is_empty());
    }

    #[test]
    fn overwrite_kills_liveness() {
        let mut k = KernelBuilder::new("kill");
        k.movi(Reg(0), 1); // 0 — dead: overwritten at 1 before any read
        k.movi(Reg(0), 2); // 1
        k.iaddi(Reg(1), Reg(0), 0); // 2
        k.exit(); // 3
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let live = Liveness::compute(&kernel, &cfg);
        assert!(!live.live_out(0).contains(RegSlot::Gpr(Reg(0))));
        assert!(live.live_out(1).contains(RegSlot::Gpr(Reg(0))));
    }

    #[test]
    fn guarded_write_does_not_kill() {
        let mut k = KernelBuilder::new("guard");
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 0
        k.movi(Reg(1), 1); // 1
        let i = k.movi(Reg(1), 2); // 2 — guarded overwrite
        i.guard = Guard::if_true(PReg(0));
        k.iaddi(Reg(2), Reg(1), 0); // 3
        k.exit(); // 4
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let live = Liveness::compute(&kernel, &cfg);
        // R1 written at 1 must stay live across the guarded write at 2.
        assert!(live.live_out(1).contains(RegSlot::Gpr(Reg(1))));
    }

    #[test]
    fn branchy_liveness_joins_paths() {
        let mut k = KernelBuilder::new("branchy");
        let (else_, join) = (k.new_label(), k.new_label());
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 0
        k.bra_ifnot(PReg(0), else_); // 1
        k.iaddi(Reg(2), Reg(1), 1); // 2 — reads R1 on this path only
        k.bra(join); // 3
        k.bind(else_);
        k.movi(Reg(2), 0); // 4
        k.bind(join);
        k.stg(Reg(3), 0, Reg(2)); // 5
        k.exit(); // 6
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let live = Liveness::compute(&kernel, &cfg);
        // R1 live at entry (read on the taken path).
        assert!(live.live_in(0).contains(RegSlot::Gpr(Reg(1))));
        // R2 live at the join, dead above the branch.
        assert!(live.live_out(2).contains(RegSlot::Gpr(Reg(2))));
        assert!(live.live_out(4).contains(RegSlot::Gpr(Reg(2))));
        assert!(!live.live_in(0).contains(RegSlot::Gpr(Reg(2))));
        // P0 dead after the branch consumes it.
        assert!(live.live_in(1).contains(RegSlot::Pred(PReg(0))));
        assert!(!live.live_out(1).contains(RegSlot::Pred(PReg(0))));
    }

    #[test]
    fn reaching_defs_classify() {
        let mut k = KernelBuilder::new("rd");
        let (else_, join) = (k.new_label(), k.new_label());
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 0 — R0 read uninit
        k.bra_ifnot(PReg(0), else_); // 1
        k.movi(Reg(1), 1); // 2
        k.bra(join); // 3
        k.bind(else_);
        k.movi(Reg(2), 2); // 4
        k.bind(join);
        k.iadd(Reg(3), Reg(1), Reg(2)); // 5 — R1, R2 maybe-uninit
        k.iaddi(Reg(4), Reg(3), 0); // 6 — R3 initialized
        k.exit(); // 7
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let rd = ReachingDefs::compute(&kernel, &cfg);
        assert_eq!(rd.classify_use(0, RegSlot::Gpr(Reg(0))), UseInit::Uninit);
        assert_eq!(rd.classify_use(5, RegSlot::Gpr(Reg(1))), UseInit::MaybeUninit);
        assert_eq!(rd.classify_use(5, RegSlot::Gpr(Reg(2))), UseInit::MaybeUninit);
        assert_eq!(rd.classify_use(6, RegSlot::Gpr(Reg(3))), UseInit::Initialized);
        assert_eq!(rd.classify_use(1, RegSlot::Pred(PReg(0))), UseInit::Initialized);
    }

    #[test]
    fn guarded_def_initializes_only_maybe() {
        let mut k = KernelBuilder::new("gdef");
        k.isetp(PReg(0), CmpOp::Lt, Reg(0), 10); // 0
        let i = k.movi(Reg(1), 1); // 1 — guarded def of R1
        i.guard = Guard::if_true(PReg(0));
        k.iaddi(Reg(2), Reg(1), 0); // 2
        k.exit(); // 3
        let kernel = k.finish();
        let cfg = Cfg::build(&kernel);
        let rd = ReachingDefs::compute(&kernel, &cfg);
        assert_eq!(rd.classify_use(2, RegSlot::Gpr(Reg(1))), UseInit::MaybeUninit);
    }

    #[test]
    fn cross_lane_set_covers_shfl_sources() {
        let mut k = KernelBuilder::new("xl");
        k.movi(Reg(5), 3);
        k.push({
            let mut i = Instr::new(Opcode::SHFL);
            i.dsts[0] = gpu_isa::Dst::R(Reg(6));
            i.srcs[0] = Operand::R(Reg(5));
            i.srcs[1] = Operand::Imm(1);
            i
        });
        k.exit();
        let kernel = k.finish();
        let xl = cross_lane_uses(&kernel);
        assert!(xl.contains(RegSlot::Gpr(Reg(5))));
        assert!(!xl.contains(RegSlot::Gpr(Reg(6))));
    }

    #[test]
    fn divergence_taints_through_arithmetic() {
        let mut k = KernelBuilder::new("div");
        k.s2r(Reg(0), SpecialReg::TidX); // divergent seed
        k.s2r(Reg(1), SpecialReg::CtaIdX); // uniform
        k.iaddi(Reg(2), Reg(0), 4); // tainted via R0
        k.iaddi(Reg(3), Reg(1), 4); // uniform
        k.isetp(PReg(0), CmpOp::Lt, Reg(2), 10); // tainted predicate
        k.exit();
        let kernel = k.finish();
        let d = divergent_slots(&kernel);
        assert!(d.contains(RegSlot::Gpr(Reg(0))));
        assert!(!d.contains(RegSlot::Gpr(Reg(1))));
        assert!(d.contains(RegSlot::Gpr(Reg(2))));
        assert!(!d.contains(RegSlot::Gpr(Reg(3))));
        assert!(d.contains(RegSlot::Pred(PReg(0))));
    }
}
