#![warn(missing_docs)]

//! # nvbit — a dynamic binary-instrumentation framework (NVBit analog)
//!
//! The paper's NVBitFI is "a module built using the NVBit dynamic binary
//! instrumentation framework" (§III-C). This crate reproduces the NVBit
//! contract on top of [`gpu_runtime`]:
//!
//! * **instruction inspection** — [`InstrView`] exposes opcode, operand, and
//!   destination queries over *decoded binaries* (never source),
//! * **`insert_call`** — [`Inserter::insert_call`] attaches device callbacks
//!   (with constant bound arguments) before/after any instruction,
//! * **JIT-and-cache** — the first launch of each static kernel triggers
//!   [`NvBitTool::instrument_kernel`]; the result is cached and reused, and
//!   launches for which [`NvBitTool::launch_enabled`] returns `false` run
//!   the *unmodified* kernel — the selectivity NVBitFI uses to confine
//!   overhead to the one target dynamic kernel,
//! * **driver callbacks** — module-load, launch-complete, and program-exit
//!   events.
//!
//! Fault-injection tools (the profiler and injectors in the `nvbitfi`
//! crate) are written against this API, mirroring how the real NVBitFI is
//! layered on the real NVBit.

mod adapter;
mod insert;
mod instr_view;
pub mod tools;

pub use adapter::{instr_at, instr_views, CallSite, NvBit, NvBitStats, NvBitTool};
pub use insert::{CachedInstrumentation, InsertedCall, Inserter, When};
pub use instr_view::InstrView;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_runtime::{
        run_program, KernelLaunchInfo, Program, Runtime, RuntimeConfig, RuntimeError,
    };
    use gpu_sim::ThreadCtx;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn module_bytes() -> Vec<u8> {
        let mut k = KernelBuilder::new("work");
        let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
        k.ldc(out, 0);
        k.s2r(tid, SpecialReg::GlobalTidX);
        k.imad(Reg(2), tid, tid, Reg::RZ);
        k.shli(off, tid, 2);
        k.iadd(out, out, off);
        k.stg(out, 0, Reg(2));
        k.exit();
        encode::encode_module(&Module::new("m", vec![k.finish()]))
    }

    /// Launch `work` `n` times.
    struct App {
        n: usize,
    }
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let m = rt.load_module(&module_bytes())?;
            let k = rt.get_kernel(m, "work")?;
            let out = rt.alloc(32 * 4)?;
            for _ in 0..self.n {
                rt.launch(k, 1u32, 32u32, &[out.addr()])?;
            }
            rt.synchronize()?;
            Ok(())
        }
    }

    /// Counts opcode executions via an inserted call, and can restrict
    /// instrumentation to one dynamic instance.
    struct Counter {
        only_instance: Option<u64>,
        counts: Arc<Mutex<Vec<(String, u64)>>>,
        calls: Arc<Mutex<u64>>,
    }

    impl NvBitTool for Counter {
        fn instrument_kernel(&mut self, kernel: &gpu_isa::Kernel, ins: &mut Inserter<'_>) {
            assert_eq!(kernel.name(), "work");
            ins.insert_call_everywhere(When::After, 0);
        }
        fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
            self.only_instance.map(|i| i == info.instance).unwrap_or(true)
        }
        fn device_call(&mut self, site: &CallSite<'_>, _t: &mut ThreadCtx<'_>) {
            *self.calls.lock() += 1;
            self.counts.lock().push((site.instr.opcode_str().to_string(), site.kernel_instance));
        }
    }

    #[test]
    fn jit_once_then_cache() {
        let calls = Arc::new(Mutex::new(0));
        let counts = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(Counter {
            only_instance: None,
            counts: Arc::clone(&counts),
            calls: Arc::clone(&calls),
        });
        let stats = tool.stats_handle();
        let out = run_program(&App { n: 5 }, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let s = *stats.lock();
        assert_eq!(s.kernels_instrumented, 1, "one JIT compile for 5 launches");
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.launches_instrumented, 5);
        // 7 instructions × 32 threads × 5 launches
        assert_eq!(s.device_calls, 7 * 32 * 5);
        assert_eq!(*calls.lock(), 7 * 32 * 5);
    }

    #[test]
    fn selective_instance_runs_others_unmodified() {
        let calls = Arc::new(Mutex::new(0));
        let counts = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(Counter {
            only_instance: Some(3),
            counts: Arc::clone(&counts),
            calls: Arc::clone(&calls),
        });
        let stats = tool.stats_handle();
        let out = run_program(&App { n: 5 }, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let s = *stats.lock();
        assert_eq!(s.launches_instrumented, 1);
        assert_eq!(s.launches_unmodified, 4);
        assert_eq!(s.device_calls, 7 * 32, "only the target instance pays");
        // Every recorded call came from instance 3.
        assert!(counts.lock().iter().all(|(_, inst)| *inst == 3));
    }

    #[test]
    fn callback_args_are_delivered() {
        type SeenCalls = Arc<Mutex<Vec<(u32, Vec<u64>)>>>;
        struct ArgTool {
            seen: SeenCalls,
        }
        impl NvBitTool for ArgTool {
            fn instrument_kernel(&mut self, _k: &gpu_isa::Kernel, ins: &mut Inserter<'_>) {
                ins.insert_call(2, When::Before, 11, vec![0xAA, 0xBB]);
                ins.insert_call(2, When::After, 22, vec![0xCC]);
            }
            fn device_call(&mut self, site: &CallSite<'_>, _t: &mut ThreadCtx<'_>) {
                self.seen.lock().push((site.call.id, site.call.args.clone()));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tool = NvBit::new(ArgTool { seen: Arc::clone(&seen) });
        let out = run_program(&App { n: 1 }, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let seen = seen.lock();
        // 32 threads × 2 calls each.
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().any(|(id, args)| *id == 11 && args == &[0xAA, 0xBB]));
        assert!(seen.iter().any(|(id, args)| *id == 22 && args == &[0xCC]));
    }

    #[test]
    fn empty_instrumentation_is_never_enabled() {
        struct NullTool;
        impl NvBitTool for NullTool {
            fn device_call(&mut self, _s: &CallSite<'_>, _t: &mut ThreadCtx<'_>) {
                panic!("no calls were inserted");
            }
        }
        let tool = NvBit::new(NullTool);
        let stats = tool.stats_handle();
        let out = run_program(&App { n: 3 }, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let s = *stats.lock();
        assert_eq!(s.launches_unmodified, 3);
        assert_eq!(s.launches_instrumented, 0);
        assert_eq!(s.device_calls, 0);
    }
}
