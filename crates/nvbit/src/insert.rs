//! `insert_call`-style instrumentation: attaching device callbacks to
//! instructions.

use gpu_isa::Kernel;
use gpu_runtime::InstrMasks;
use serde::{Deserialize, Serialize};

/// When an inserted call fires relative to its instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum When {
    /// Before the instruction's effects are visible.
    Before,
    /// After the instruction's results are architecturally visible.
    After,
}

/// One inserted device call: an id the tool dispatches on plus constant
/// arguments bound at instrumentation time (NVBit's `nvbit_add_call_arg_*`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertedCall {
    /// Tool-chosen callback id.
    pub id: u32,
    /// Constant arguments bound when the call was inserted.
    pub args: Vec<u64>,
}

/// The instrumentation being built for one static kernel.
///
/// Obtained inside `NvBitTool::instrument_kernel`; every
/// [`Inserter::insert_call`] marks one instruction and registers the device
/// callback that will fire there.
#[derive(Debug)]
pub struct Inserter<'a> {
    kernel: &'a Kernel,
    before: Vec<Vec<InsertedCall>>,
    after: Vec<Vec<InsertedCall>>,
}

impl<'a> Inserter<'a> {
    pub(crate) fn new(kernel: &'a Kernel) -> Inserter<'a> {
        Inserter {
            kernel,
            before: vec![Vec::new(); kernel.len()],
            after: vec![Vec::new(); kernel.len()],
        }
    }

    /// The kernel being instrumented.
    pub fn kernel(&self) -> &Kernel {
        self.kernel
    }

    /// Attach a device call at instruction index `pc`.
    ///
    /// Out-of-range `pc` values are ignored (there is no instruction to
    /// instrument), matching NVBit's tolerance of empty instruction ranges.
    pub fn insert_call(&mut self, pc: usize, when: When, id: u32, args: Vec<u64>) {
        let slot = match when {
            When::Before => self.before.get_mut(pc),
            When::After => self.after.get_mut(pc),
        };
        if let Some(calls) = slot {
            calls.push(InsertedCall { id, args });
        }
    }

    /// Attach a call to *every* instruction (how exhaustive profilers
    /// instrument).
    pub fn insert_call_everywhere(&mut self, when: When, id: u32) {
        for pc in 0..self.kernel.len() {
            self.insert_call(pc, when, id, Vec::new());
        }
    }

    /// Number of instructions with at least one inserted call.
    pub fn instrumented_count(&self) -> usize {
        (0..self.kernel.len())
            .filter(|&pc| !self.before[pc].is_empty() || !self.after[pc].is_empty())
            .count()
    }

    pub(crate) fn finish(self) -> CachedInstrumentation {
        let masks = InstrMasks {
            before: self.before.iter().map(|c| !c.is_empty()).collect(),
            after: self.after.iter().map(|c| !c.is_empty()).collect(),
        };
        CachedInstrumentation { masks, before: self.before, after: self.after }
    }
}

/// The instrumented ("JIT-compiled") variant of a static kernel, cached so
/// subsequent launches reuse it (paper §III-C).
#[derive(Debug, Clone)]
pub struct CachedInstrumentation {
    pub(crate) masks: InstrMasks,
    pub(crate) before: Vec<Vec<InsertedCall>>,
    pub(crate) after: Vec<Vec<InsertedCall>>,
}

impl CachedInstrumentation {
    /// `true` if no instruction carries a call.
    pub fn is_empty(&self) -> bool {
        self.masks.marked() == 0
    }

    /// The per-instruction marks handed to the simulator.
    pub fn masks(&self) -> &InstrMasks {
        &self.masks
    }

    pub(crate) fn calls(&self, when: When, pc: u32) -> &[InsertedCall] {
        let table = match when {
            When::Before => &self.before,
            When::After => &self.after,
        };
        table.get(pc as usize).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::Reg;

    fn kernel() -> Kernel {
        let mut k = KernelBuilder::new("k");
        k.movi(Reg(0), 1);
        k.iaddi(Reg(0), Reg(0), 1);
        k.exit();
        k.finish()
    }

    #[test]
    fn insert_builds_masks_and_registry() {
        let k = kernel();
        let mut ins = Inserter::new(&k);
        ins.insert_call(1, When::After, 7, vec![42]);
        assert_eq!(ins.instrumented_count(), 1);
        let cached = ins.finish();
        assert_eq!(cached.masks().after, vec![false, true, false]);
        assert_eq!(cached.masks().before, vec![false, false, false]);
        let calls = cached.calls(When::After, 1);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].id, 7);
        assert_eq!(calls[0].args, vec![42]);
        assert!(cached.calls(When::Before, 1).is_empty());
        assert!(cached.calls(When::After, 99).is_empty());
    }

    #[test]
    fn insert_everywhere() {
        let k = kernel();
        let mut ins = Inserter::new(&k);
        ins.insert_call_everywhere(When::After, 1);
        assert_eq!(ins.instrumented_count(), 3);
        let cached = ins.finish();
        assert!(cached.masks().after.iter().all(|b| *b));
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let k = kernel();
        let mut ins = Inserter::new(&k);
        ins.insert_call(99, When::Before, 1, vec![]);
        assert_eq!(ins.instrumented_count(), 0);
        assert!(ins.finish().is_empty());
    }

    #[test]
    fn multiple_calls_per_site() {
        let k = kernel();
        let mut ins = Inserter::new(&k);
        ins.insert_call(0, When::Before, 1, vec![]);
        ins.insert_call(0, When::Before, 2, vec![]);
        let cached = ins.finish();
        assert_eq!(cached.calls(When::Before, 0).len(), 2);
    }
}
