//! Instruction inspection — NVBit's `Instr` API.
//!
//! Tools never see assembler structures; they inspect decoded binary
//! instructions through this view, mirroring `Instr::getOpcode()`,
//! `getNumOperands()`, destination queries, and SASS printing from NVBit.

use gpu_isa::{disasm, Instr, InstrClass, Opcode, PReg, Reg};

/// Read-only view of one decoded instruction at a known program counter.
#[derive(Debug, Clone, Copy)]
pub struct InstrView<'a> {
    pc: u32,
    instr: &'a Instr,
}

impl<'a> InstrView<'a> {
    /// Wrap an instruction at a program counter.
    pub fn new(pc: u32, instr: &'a Instr) -> InstrView<'a> {
        InstrView { pc, instr }
    }

    /// The instruction index within the kernel.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The raw instruction.
    pub fn instr(&self) -> &'a Instr {
        self.instr
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        self.instr.op
    }

    /// The opcode mnemonic, e.g. `"FFMA"`.
    pub fn opcode_str(&self) -> &'static str {
        self.instr.op.mnemonic()
    }

    /// The destination-based instruction class.
    pub fn class(&self) -> InstrClass {
        self.instr.op.class()
    }

    /// `true` if the instruction is predicated (`@P` / `@!P`).
    pub fn has_guard(&self) -> bool {
        !self.instr.guard.is_always()
    }

    /// Number of used source operands.
    pub fn num_srcs(&self) -> usize {
        self.instr.src_count()
    }

    /// General-purpose destination register units (pairs expanded, `RZ`
    /// excluded) — the candidates the transient injector's *destination
    /// register* parameter selects among.
    pub fn gpr_dests(&self) -> Vec<Reg> {
        self.instr.gpr_dests()
    }

    /// Predicate destination registers (excluding `PT`).
    pub fn pred_dests(&self) -> Vec<PReg> {
        self.instr.pred_dests()
    }

    /// `true` if the instruction has any architecturally visible
    /// destination.
    pub fn has_dest(&self) -> bool {
        self.instr.has_dest()
    }

    /// `true` if the instruction reads memory.
    pub fn is_load(&self) -> bool {
        self.class() == InstrClass::Ld
    }

    /// The SASS-style listing line (`/*0007*/  FFMA R4, R2, R3, R4`).
    pub fn sass(&self) -> String {
        disasm::line(self.pc as usize, self.instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{CmpOp, Reg};

    #[test]
    fn view_reports_instruction_facts() {
        let mut k = KernelBuilder::new("k");
        k.ffma(Reg(4), Reg(1), Reg(2), Reg(3));
        k.isetp(PReg(0), CmpOp::Lt, Reg(4), 10);
        k.ldg(Reg(5), Reg(6), 0);
        k.stg(Reg(6), 0, Reg(5));
        k.exit();
        let kernel = k.finish();
        let views: Vec<InstrView<'_>> = kernel
            .instrs()
            .iter()
            .enumerate()
            .map(|(pc, i)| InstrView::new(pc as u32, i))
            .collect();

        assert_eq!(views[0].opcode_str(), "FFMA");
        assert_eq!(views[0].gpr_dests(), vec![Reg(4)]);
        assert_eq!(views[0].num_srcs(), 3);
        assert!(views[0].has_dest());
        assert!(!views[0].is_load());

        assert_eq!(views[1].pred_dests(), vec![PReg(0)]);
        assert!(views[1].gpr_dests().is_empty());

        assert!(views[2].is_load());
        assert!(!views[3].has_dest());
        assert!(views[4].sass().contains("EXIT"));
        assert!(views[0].sass().starts_with("/*0000*/"));
    }
}
