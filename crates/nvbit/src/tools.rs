//! Ready-made instrumentation tools — analogs of the example tools the real
//! NVBit distribution ships (`instr_count`, `opcode_hist`, `mem_trace`),
//! which the paper's related work (SASSI/NVBit lineage) grew out of.
//!
//! Each tool follows the same pattern as the fault injectors: construct via
//! `new`, attach the returned [`NvBit`] adapter to a runtime, and read the
//! results through the returned handle after the run.

use crate::adapter::{CallSite, NvBit, NvBitTool};
use crate::insert::{Inserter, When};
use gpu_isa::{Kernel, Opcode};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// `instr_count`: total dynamic (thread-level) instructions, per kernel
/// name and overall.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrCounts {
    /// Per kernel-name totals.
    pub per_kernel: BTreeMap<String, u64>,
    /// Whole-program total.
    pub total: u64,
}

/// Handle to read [`InstrCounts`] after the run.
#[derive(Debug, Clone)]
pub struct InstrCountHandle(Arc<Mutex<InstrCounts>>);

impl InstrCountHandle {
    /// Snapshot the counts.
    pub fn get(&self) -> InstrCounts {
        self.0.lock().clone()
    }
}

/// The `instr_count` tool.
pub struct InstrCounter {
    counts: Arc<Mutex<InstrCounts>>,
}

impl InstrCounter {
    /// Create the tool and its result handle.
    pub fn new() -> (NvBit<InstrCounter>, InstrCountHandle) {
        let counts = Arc::new(Mutex::new(InstrCounts::default()));
        (NvBit::new(InstrCounter { counts: Arc::clone(&counts) }), InstrCountHandle(counts))
    }
}

impl NvBitTool for InstrCounter {
    fn instrument_kernel(&mut self, _kernel: &Kernel, inserter: &mut Inserter<'_>) {
        inserter.insert_call_everywhere(When::Before, 0);
    }

    fn device_call(&mut self, site: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {
        let mut c = self.counts.lock();
        *c.per_kernel.entry(site.kernel.to_string()).or_insert(0) += 1;
        c.total += 1;
    }
}

/// `opcode_hist`: dynamic execution counts per opcode, whole-program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeHist {
    /// Dynamic count per opcode.
    pub counts: BTreeMap<Opcode, u64>,
}

impl OpcodeHist {
    /// Opcodes sorted by descending dynamic count.
    pub fn hottest(&self) -> Vec<(Opcode, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(o, n)| (*o, *n)).collect();
        v.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        v
    }
}

/// Handle to read the [`OpcodeHist`] after the run.
#[derive(Debug, Clone)]
pub struct OpcodeHistHandle(Arc<Mutex<OpcodeHist>>);

impl OpcodeHistHandle {
    /// Snapshot the histogram.
    pub fn get(&self) -> OpcodeHist {
        self.0.lock().clone()
    }
}

/// The `opcode_hist` tool.
pub struct OpcodeHistogram {
    hist: Arc<Mutex<OpcodeHist>>,
}

impl OpcodeHistogram {
    /// Create the tool and its result handle.
    pub fn new() -> (NvBit<OpcodeHistogram>, OpcodeHistHandle) {
        let hist = Arc::new(Mutex::new(OpcodeHist::default()));
        (NvBit::new(OpcodeHistogram { hist: Arc::clone(&hist) }), OpcodeHistHandle(hist))
    }
}

impl NvBitTool for OpcodeHistogram {
    fn instrument_kernel(&mut self, _kernel: &Kernel, inserter: &mut Inserter<'_>) {
        inserter.insert_call_everywhere(When::Before, 0);
    }

    fn device_call(&mut self, site: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {
        *self.hist.lock().counts.entry(site.instr.opcode()).or_insert(0) += 1;
    }
}

/// One record from the `mem_trace` tool: a device memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The accessing opcode.
    pub opcode: Opcode,
    /// Program counter of the access.
    pub pc: u32,
    /// Effective byte address.
    pub addr: u32,
    /// Global thread id of the accessing thread.
    pub global_tid: u64,
    /// `true` for loads/atomics, `false` for stores.
    pub is_read: bool,
}

/// Handle to read the memory trace after the run.
#[derive(Debug, Clone)]
pub struct MemTraceHandle(Arc<Mutex<Vec<MemAccess>>>);

impl MemTraceHandle {
    /// Snapshot the trace (in deterministic execution order).
    pub fn get(&self) -> Vec<MemAccess> {
        self.0.lock().clone()
    }
}

/// The `mem_trace` tool: records the effective address of every global,
/// shared, local, and constant access (before the instruction executes,
/// like NVBit's `mem_trace` computing addresses from register values).
pub struct MemTracer {
    trace: Arc<Mutex<Vec<MemAccess>>>,
    limit: usize,
}

impl MemTracer {
    /// Create the tool, keeping at most `limit` records (traces grow fast).
    pub fn new(limit: usize) -> (NvBit<MemTracer>, MemTraceHandle) {
        let trace = Arc::new(Mutex::new(Vec::new()));
        (NvBit::new(MemTracer { trace: Arc::clone(&trace), limit }), MemTraceHandle(trace))
    }
}

impl NvBitTool for MemTracer {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if instr.mem_ref().is_some() {
                // Bind the signed offset as a constant call argument, the
                // way NVBit tools pass immutable operand facts to device
                // code.
                let off = instr.mem_ref().expect("checked").offset;
                inserter.insert_call(pc, When::Before, 0, vec![off as i64 as u64]);
            }
        }
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        let mut trace = self.trace.lock();
        if trace.len() >= self.limit {
            return;
        }
        let Some(m) = site.instr.instr().mem_ref() else {
            return;
        };
        let offset = site.call.args[0] as i64 as i32;
        let addr = thread.read_reg(m.base).wrapping_add(offset as u32);
        trace.push(MemAccess {
            opcode: site.instr.opcode(),
            pc: site.instr.pc(),
            addr,
            global_tid: thread.meta.global_tid(),
            is_read: site.instr.is_load(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};

    /// out[tid] = in[tid] * in[tid], 2 launches of 32 threads.
    struct App;
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let mut k = KernelBuilder::new("square");
            let (out, inp, tid, off) = (Reg(4), Reg(5), Reg(0), Reg(1));
            k.ldc(out, 0);
            k.ldc(inp, 4);
            k.s2r(tid, SpecialReg::TidX);
            k.shli(off, tid, 2);
            k.iadd(out, out, off);
            k.iadd(inp, inp, off);
            k.ldg(Reg(2), inp, 0);
            k.fmul(Reg(2), Reg(2), Reg(2));
            k.stg(out, 0, Reg(2));
            k.exit();
            let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
            let m = rt.load_module(&bytes)?;
            let k = rt.get_kernel(m, "square")?;
            let a = rt.alloc(32 * 4)?;
            let b = rt.alloc(32 * 4)?;
            rt.write_f32s(b, &[2.0; 32])?;
            for _ in 0..2 {
                rt.launch(k, 1u32, 32u32, &[a.addr(), b.addr()])?;
            }
            rt.synchronize()?;
            Ok(())
        }
    }

    #[test]
    fn instr_counter_matches_simulator_totals() {
        let (tool, handle) = InstrCounter::new();
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let counts = handle.get();
        // 10 instructions × 32 threads × 2 launches.
        assert_eq!(counts.total, 10 * 32 * 2);
        assert_eq!(counts.per_kernel["square"], 640);
        // Cross-check against the runtime's own statistics.
        assert_eq!(counts.total, out.summary.dyn_instrs);
    }

    #[test]
    fn opcode_hist_sees_the_right_mix() {
        let (tool, handle) = OpcodeHistogram::new();
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let hist = handle.get();
        assert_eq!(hist.counts[&Opcode::LDC], 2 * 32 * 2);
        assert_eq!(hist.counts[&Opcode::FMUL], 32 * 2);
        assert_eq!(hist.counts[&Opcode::EXIT], 32 * 2);
        let (hottest, n) = hist.hottest()[0];
        assert_eq!(n, 128);
        assert!(matches!(hottest, Opcode::LDC | Opcode::IADD), "{hottest}");
    }

    #[test]
    fn mem_trace_records_addresses_and_directions() {
        let (tool, handle) = MemTracer::new(10_000);
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let trace = handle.get();
        // Per launch: 2 LDC + 1 LDG + 1 STG per thread.
        assert_eq!(trace.len(), 4 * 32 * 2);
        let reads = trace.iter().filter(|a| a.is_read).count();
        assert_eq!(reads, 3 * 32 * 2, "LDC and LDG are reads");
        // Consecutive threads' LDG addresses are 4 bytes apart.
        let ldg: Vec<_> = trace.iter().filter(|a| a.opcode == Opcode::LDG).collect();
        for pair in ldg.windows(2) {
            if pair[1].global_tid == pair[0].global_tid + 1 {
                assert_eq!(pair[1].addr, pair[0].addr + 4);
            }
        }
    }

    #[test]
    fn mem_trace_respects_limit() {
        let (tool, handle) = MemTracer::new(7);
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert_eq!(handle.get().len(), 7);
    }
}
