//! The NVBit core: tool trait, per-static-kernel instrumentation cache, and
//! the adapter that attaches an [`NvBitTool`] to the runtime.

use crate::insert::{CachedInstrumentation, InsertedCall, Inserter, When};
use crate::instr_view::InstrView;
use gpu_isa::{Instr, Kernel, Module};
use gpu_runtime::{InstrMasks, KernelLaunchInfo, LaunchRecord, RunSummary, Tool};
use gpu_sim::{ExecHook, InstrSite, ThreadCtx};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Where a device callback fired, with its bound arguments.
#[derive(Debug)]
pub struct CallSite<'a> {
    /// The inserted call (tool-chosen id plus constant args).
    pub call: &'a InsertedCall,
    /// Before or after the instruction.
    pub when: When,
    /// Instruction view at the site.
    pub instr: InstrView<'a>,
    /// Kernel name.
    pub kernel: &'a str,
    /// Zero-based dynamic instance of the kernel name.
    pub kernel_instance: u64,
}

/// A dynamic binary-instrumentation tool in the NVBit style.
///
/// Lifecycle per the paper §III-C: the first launch of each static kernel
/// triggers [`NvBitTool::instrument_kernel`] (the JIT step) whose result is
/// cached; every launch then consults [`NvBitTool::launch_enabled`] — when
/// `false` the kernel executes completely unmodified, which is how NVBitFI
/// confines overhead to the single target dynamic kernel.
pub trait NvBitTool: Send {
    /// Decide instrumentation for a static kernel (called once per kernel
    /// name, at its first launch — the JIT-compile event).
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        let _ = (kernel, inserter);
    }

    /// Whether the cached instrumentation is *enabled* for this dynamic
    /// launch. Disabled launches run the original, unmodified kernel.
    fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
        let _ = info;
        true
    }

    /// A device callback inserted with [`Inserter::insert_call`] fired.
    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut ThreadCtx<'_>);

    /// A module binary was loaded.
    fn on_module_load(&mut self, module: &Module) {
        let _ = module;
    }

    /// A kernel launch completed (with statistics, trap, or skip flag).
    fn on_kernel_complete(&mut self, record: &LaunchRecord) {
        let _ = record;
    }

    /// The target program is exiting.
    fn on_exit(&mut self, summary: &RunSummary) {
        let _ = summary;
    }
}

/// Counters describing what the framework did — used by the overhead
/// benches and by tests asserting the caching behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvBitStats {
    /// Static kernels instrumented (JIT compilations).
    pub kernels_instrumented: u64,
    /// Launches that reused a cached instrumented kernel.
    pub cache_hits: u64,
    /// Launches that ran with instrumentation enabled.
    pub launches_instrumented: u64,
    /// Launches that ran the unmodified kernel.
    pub launches_unmodified: u64,
    /// Device callbacks delivered.
    pub device_calls: u64,
}

/// The framework adapter: wraps an [`NvBitTool`] into a runtime
/// [`Tool`], implementing the instrumentation cache and callback dispatch.
pub struct NvBit<T: NvBitTool> {
    tool: T,
    cache: HashMap<String, Arc<CachedInstrumentation>>,
    /// Instrumentation active for the imminent/ongoing launch.
    current: Option<Arc<CachedInstrumentation>>,
    current_kernel: String,
    current_instance: u64,
    stats: Arc<Mutex<NvBitStats>>,
}

impl<T: NvBitTool> std::fmt::Debug for NvBit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvBit")
            .field("cached_kernels", &self.cache.len())
            .field("stats", &*self.stats.lock())
            .finish_non_exhaustive()
    }
}

impl<T: NvBitTool> NvBit<T> {
    /// Wrap a tool.
    pub fn new(tool: T) -> NvBit<T> {
        NvBit {
            tool,
            cache: HashMap::new(),
            current: None,
            current_kernel: String::new(),
            current_instance: 0,
            stats: Arc::new(Mutex::new(NvBitStats::default())),
        }
    }

    /// A shared handle to the framework counters; clone it *before*
    /// attaching the adapter to a runtime so the numbers remain readable
    /// after the run.
    pub fn stats_handle(&self) -> Arc<Mutex<NvBitStats>> {
        Arc::clone(&self.stats)
    }

    /// Access the wrapped tool.
    pub fn tool(&self) -> &T {
        &self.tool
    }

    fn dispatch(&mut self, when: When, thread: &mut ThreadCtx<'_>, site: InstrSite<'_>) {
        let Some(cached) = self.current.as_ref() else {
            return;
        };
        let cached = Arc::clone(cached);
        let calls = cached.calls(when, site.pc);
        if calls.is_empty() {
            return;
        }
        self.stats.lock().device_calls += calls.len() as u64;
        for call in calls {
            let cs = CallSite {
                call,
                when,
                instr: InstrView::new(site.pc, site.instr),
                kernel: &self.current_kernel,
                kernel_instance: self.current_instance,
            };
            self.tool.device_call(&cs, thread);
        }
    }
}

impl<T: NvBitTool> ExecHook for NvBit<T> {
    fn before(&mut self, thread: &mut ThreadCtx<'_>, site: InstrSite<'_>) {
        self.dispatch(When::Before, thread, site);
    }

    fn after(&mut self, thread: &mut ThreadCtx<'_>, site: InstrSite<'_>) {
        self.dispatch(When::After, thread, site);
    }
}

impl<T: NvBitTool> Tool for NvBit<T> {
    fn on_module_load(&mut self, module: &Module) {
        self.tool.on_module_load(module);
    }

    fn instrument(&mut self, info: &KernelLaunchInfo<'_>) -> Option<InstrMasks> {
        let name = info.kernel.name().to_string();
        // JIT-and-cache: first launch of a static kernel instruments it;
        // later launches reuse the cached variant (paper §III-C).
        let cached = match self.cache.get(&name) {
            Some(c) => {
                self.stats.lock().cache_hits += 1;
                Arc::clone(c)
            }
            None => {
                let mut inserter = Inserter::new(info.kernel);
                self.tool.instrument_kernel(info.kernel, &mut inserter);
                let built = Arc::new(inserter.finish());
                if !built.is_empty() {
                    // Empty instrumentation is not a JIT compile: NVBit runs
                    // such kernels unmodified without building a variant.
                    self.stats.lock().kernels_instrumented += 1;
                }
                self.cache.insert(name.clone(), Arc::clone(&built));
                built
            }
        };

        let enabled = !cached.is_empty() && self.tool.launch_enabled(info);
        self.current_kernel = name;
        self.current_instance = info.instance;
        if enabled {
            self.stats.lock().launches_instrumented += 1;
            let masks = cached.masks().clone();
            self.current = Some(cached);
            Some(masks)
        } else {
            self.stats.lock().launches_unmodified += 1;
            self.current = None;
            None
        }
    }

    fn after_launch(&mut self, record: &LaunchRecord) {
        self.current = None;
        self.tool.on_kernel_complete(record);
    }

    fn on_exit(&mut self, summary: &RunSummary) {
        self.tool.on_exit(summary);
    }
}

/// Convenience: build instruction views for a whole kernel.
pub fn instr_views(kernel: &Kernel) -> impl Iterator<Item = InstrView<'_>> {
    kernel.instrs().iter().enumerate().map(|(pc, i)| InstrView::new(pc as u32, i))
}

/// Convenience: the raw instruction at a pc, if in range.
pub fn instr_at(kernel: &Kernel, pc: u32) -> Option<&Instr> {
    kernel.instrs().get(pc as usize)
}
