//! Shared plumbing for the experiment binaries.
//!
//! Every binary regenerates one table or figure from the paper's §IV (see
//! `DESIGN.md` §4 for the index). Common knobs come from environment
//! variables so the binaries stay flag-free:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `NVBITFI_INJECTIONS` | 100 | transient injections per program |
//! | `NVBITFI_SEED` | 0x5EED | campaign RNG seed |
//! | `NVBITFI_WORKERS` | all cores | injection-run fan-out |
//! | `NVBITFI_SCALE` | paper | `paper` or `test` problem sizes |
//! | `NVBITFI_PROGRAMS` | all | comma-separated program filter |
//!
//! Run binaries with `--release`; the interpreter is ~20× slower in debug
//! builds.

use nvbitfi::{CampaignConfig, PermanentCampaignConfig};
use workloads::{BenchEntry, Scale};

/// Knobs shared by all experiment binaries (see module docs).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Transient injections per program.
    pub injections: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Problem scale.
    pub scale: Scale,
    /// Program-name filter (empty = all).
    pub filter: Vec<String>,
}

impl BenchArgs {
    /// Read the environment.
    pub fn from_env() -> BenchArgs {
        let get = |k: &str| std::env::var(k).ok();
        BenchArgs {
            injections: get("NVBITFI_INJECTIONS").and_then(|v| v.parse().ok()).unwrap_or(100),
            seed: get("NVBITFI_SEED").and_then(|v| v.parse().ok()).unwrap_or(0x5EED),
            workers: get("NVBITFI_WORKERS").and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }),
            scale: match get("NVBITFI_SCALE").as_deref() {
                Some("test") => Scale::Test,
                _ => Scale::Paper,
            },
            filter: get("NVBITFI_PROGRAMS")
                .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                .unwrap_or_default(),
        }
    }

    /// The suite, filtered by `NVBITFI_PROGRAMS`.
    pub fn programs(&self) -> Vec<BenchEntry> {
        workloads::suite(self.scale)
            .into_iter()
            .filter(|e| {
                self.filter.is_empty()
                    || self.filter.iter().any(|f| e.name == *f || e.name.ends_with(f.as_str()))
            })
            .collect()
    }

    /// A transient campaign config from these knobs.
    pub fn campaign(&self, profiling: nvbitfi::ProfilingMode) -> CampaignConfig {
        CampaignConfig {
            injections: self.injections,
            seed: self.seed,
            workers: self.workers,
            profiling,
            ..CampaignConfig::default()
        }
    }

    /// A permanent campaign config from these knobs.
    pub fn permanent(&self) -> PermanentCampaignConfig {
        PermanentCampaignConfig {
            seed: self.seed,
            workers: self.workers,
            ..PermanentCampaignConfig::default()
        }
    }
}

/// Format a `Duration` in engineering style (`12.3ms`).
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Ratio formatted as `12.3x`.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "—".to_string()
    } else {
        format!("{:.1}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Not setting variables yields sane defaults.
        let a = BenchArgs {
            injections: 100,
            seed: 0x5EED,
            workers: 4,
            scale: Scale::Paper,
            filter: vec![],
        };
        assert_eq!(a.programs().len(), 15);
    }

    #[test]
    fn filter_restricts_programs() {
        let a = BenchArgs {
            injections: 1,
            seed: 1,
            workers: 1,
            scale: Scale::Test,
            filter: vec!["cg".into(), "350.md".into()],
        };
        let names: Vec<_> = a.programs().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["350.md", "354.cg"]);
    }

    #[test]
    fn formatting() {
        assert_eq!(dur(std::time::Duration::from_millis(1500)), "1.50s");
        assert_eq!(dur(std::time::Duration::from_micros(2300)), "2.3ms");
        assert_eq!(dur(std::time::Duration::from_nanos(900)), "1µs");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
