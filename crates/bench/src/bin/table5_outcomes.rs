//! Regenerates **Table V**: the error-propagation outcome taxonomy, by
//! *forcing* each outcome with a targeted fault and showing the classifier
//! label it earns:
//!
//! * Masked — a fault landing on an instruction with no writable
//!   destination,
//! * SDC — a single-bit flip in a stencil value that flows to the output,
//! * DUE (timeout) — a fault-dictionary entry that undoes a loop counter's
//!   increment (livelock, caught by the monitor),
//! * DUE (non-zero exit) — a flipped pointer in a program that *checks*
//!   device errors,
//! * potential DUE — the same flipped pointer in a program that never
//!   checks: the run is classified SDC/Masked but carries an unhandled
//!   device anomaly.

use gpu_runtime::{run_program, Program, RuntimeConfig};
use nvbitfi::ext::{CorruptionFn, DictEntry, DictInjector, FaultDictionary};
use nvbitfi::{
    classify, golden_run, BitFlipModel, InstrGroup, Outcome, SdcCheck, TransientInjector,
    TransientParams,
};
use workloads::Scale;

fn transient(kernel: &str, group: InstrGroup, icount: u64, dest: f64) -> TransientParams {
    TransientParams {
        group,
        bit_flip: BitFlipModel::FlipSingleBit,
        kernel_name: kernel.into(),
        kernel_count: 0,
        instruction_count: icount,
        destination_register: dest,
        bit_pattern: 0.03, // a low mantissa bit for value targets
    }
}

fn inject(program: &dyn Program, check: &dyn SdcCheck, params: TransientParams) -> Outcome {
    let cfg = RuntimeConfig { instr_budget: Some(20_000_000), ..RuntimeConfig::default() };
    let golden = golden_run(program, cfg.clone()).expect("golden");
    let (tool, _handle) = TransientInjector::new(params);
    let out = run_program(program, cfg, Some(Box::new(tool)));
    classify(&golden, &out, check)
}

fn main() {
    let mut rows = vec![vec![
        "forced scenario".to_string(),
        "symptom (Table V)".to_string(),
        "classified as".to_string(),
    ]];

    // -- Masked: a G_NODEST site has nothing to corrupt. -------------------
    let p = workloads::ostencil::Ostencil { scale: Scale::Test };
    let check = workloads::ostencil::Ostencil::check();
    let o = inject(&p, &check, transient("stencil_step", InstrGroup::NoDest, 40, 0.0));
    rows.push(vec![
        "fault on a no-destination instruction".into(),
        "no difference detected".into(),
        o.to_string(),
    ]);
    assert!(o.is_masked());

    // -- SDC: wreck a stencil value that reaches the output file. -----------
    // A RANDOM_VALUE write into an interior FP32 accumulator late in the
    // run (instance 8), when the whole field is non-trivial. (A single-bit
    // flip on a still-zero cell would turn into a denormal and mask.)
    let mut sdc_params = transient("stencil_step", InstrGroup::Fp32, 95, 0.0);
    sdc_params.kernel_count = 8;
    sdc_params.bit_flip = BitFlipModel::RandomValue;
    sdc_params.bit_pattern = 0.83;
    let o = inject(&p, &check, sdc_params);
    rows.push(vec![
        "bit flip in an interior stencil value".into(),
        "output file is different".into(),
        o.to_string(),
    ]);
    assert!(o.is_sdc(), "got {o}");

    // -- DUE by hang: livelock a device loop counter. -----------------------
    let ep = workloads::ep::Ep { scale: Scale::Test };
    let ep_check = workloads::ep::Ep::check();
    let cfg = RuntimeConfig { instr_budget: Some(2_000_000), ..RuntimeConfig::default() };
    let golden = golden_run(&ep, cfg.clone()).expect("golden");
    let mut dict = FaultDictionary::new();
    dict.insert(
        gpu_isa::Opcode::IADD32I,
        DictEntry { corruption: CorruptionFn::Xor(1), manifest_prob: 1.0 },
    );
    let (tool, _h) = DictInjector::new(dict, 0, 3, 7);
    let out = run_program(&ep, cfg, Some(Box::new(tool)));
    let o = classify(&golden, &out, &ep_check);
    rows.push(vec![
        "loop-counter increment undone every iteration".into(),
        "timeout, indicating a hang (monitor detection)".into(),
        o.to_string(),
    ]);
    assert!(o.is_due(), "got {o}");

    // -- DUE by exit status: pointer flip, host checks errors. ---------------
    // Group instruction 0 of ostencil's stencil_step is thread 0's LDC of
    // the output pointer.
    let o = inject(&p, &check, transient("stencil_step", InstrGroup::Ld, 0, 0.0));
    rows.push(vec![
        "flipped pointer, host checks cudaGetLastError".into(),
        "non-zero exit status (application detection)".into(),
        o.to_string(),
    ]);
    assert!(o.is_due(), "got {o}");

    // -- Potential DUE: pointer flip, host never checks. ---------------------
    let olbm = workloads::olbm::Olbm { scale: Scale::Test };
    let olbm_check = workloads::olbm::Olbm::check();
    let o = inject(&olbm, &olbm_check, transient("lbm_collide", InstrGroup::Ld, 0, 0.0));
    rows.push(vec![
        "flipped pointer, host never checks".into(),
        "(SDC or Masked) with CUDA error".into(),
        o.to_string(),
    ]);
    assert!(o.potential_due, "got {o}");

    println!("TABLE V — Possible error propagation outcomes (forced examples)\n");
    print!("{}", nvbitfi::report::table(&rows));
}
