//! Regenerates **Figure 4**: execution overheads of profiling and injection
//! relative to the uninstrumented program. The paper's shape: exact
//! profiling is by far the most expensive (up to 558×, on average 28× more
//! than approximate profiling), while injection runs stay within small
//! single-digit factors (≈2.9× transient, ≈4.8× permanent) because only
//! the target kernel is instrumented.
//!
//! Two overhead measures are reported:
//!
//! * **cycles** — simulated device cycles, which are deterministic and
//!   noise-free; this is the measure that isolates the instrumentation
//!   structure (the paper's GPU-side slowdown),
//! * **wall** — host wall-clock around the whole run, which additionally
//!   includes host work (allocation, kernel assembly) that this
//!   reproduction pays per run and a real GPU does not.

use gpu_runtime::{run_program, RuntimeConfig, Tool};
use nvbitfi::{
    golden_run, select_transient, BitFlipModel, InstrGroup, PermanentInjector, PermanentParams,
    Profiler, ProfilingMode, TransientInjector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Measure {
    cycles: u64,
    wall: std::time::Duration,
}

fn measure(
    program: &dyn gpu_runtime::Program,
    cfg: &RuntimeConfig,
    tool: Option<Box<dyn Tool>>,
) -> Measure {
    let t = Instant::now();
    let out = run_program(program, cfg.clone(), tool);
    Measure { cycles: out.summary.cycles.max(1), wall: t.elapsed() }
}

fn main() {
    let args = bench::BenchArgs::from_env();
    println!("FIGURE 4 — execution overheads relative to uninstrumented runs");
    println!("(cycles = simulated device time, deterministic; wall = host wall-clock)\n");

    let mut rows = vec![vec![
        "Program".to_string(),
        "golden".to_string(),
        "exact prof (cyc)".to_string(),
        "approx prof (cyc)".to_string(),
        "transient (cyc)".to_string(),
        "permanent (cyc)".to_string(),
        "exact (wall)".to_string(),
        "approx (wall)".to_string(),
    ]];
    let mut sums = [0.0f64; 4];
    let mut n = 0usize;
    for entry in args.programs() {
        let program = entry.program.as_ref();
        let golden = golden_run(program, RuntimeConfig::default()).expect("golden");
        let cfg = RuntimeConfig {
            instr_budget: Some(golden.suggested_budget()),
            ..RuntimeConfig::default()
        };

        let plain = measure(program, &cfg, None);

        let (exact_tool, _h) = Profiler::new(ProfilingMode::Exact);
        let exact = measure(program, &cfg, Some(Box::new(exact_tool)));

        let (approx_tool, approx_handle) = Profiler::new(ProfilingMode::Approximate);
        let approx = measure(program, &cfg, Some(Box::new(approx_tool)));
        let profile = approx_handle.take().expect("profile");

        // One representative transient injection: a mid-population G_GPPR
        // site selected from the profile.
        let mut rng = StdRng::seed_from_u64(args.seed);
        let params =
            select_transient(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, &mut rng)
                .expect("site");
        let (inj_tool, _h) = TransientInjector::new(params);
        let transient = measure(program, &cfg, Some(Box::new(inj_tool)));

        // One representative permanent injection: the program's
        // highest-dynamic-count opcode, zero mask so the run completes
        // identically (we measure instrumentation cost, not propagation).
        let hot_opcode = profile
            .executed_opcodes()
            .into_iter()
            .max_by_key(|op| profile.opcode_total(*op))
            .expect("nonempty profile");
        let (pf_tool, _h) = PermanentInjector::new(PermanentParams {
            sm_id: 0,
            lane_id: 0,
            bit_mask: 0,
            opcode_id: hot_opcode.encode(),
        });
        let permanent = measure(program, &cfg, Some(Box::new(pf_tool)));

        let pc = plain.cycles as f64;
        let ratios = [
            exact.cycles as f64 / pc,
            approx.cycles as f64 / pc,
            transient.cycles as f64 / pc,
            permanent.cycles as f64 / pc,
        ];
        let pw = plain.wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            entry.name.to_string(),
            bench::dur(plain.wall),
            format!("{:.1}x", ratios[0]),
            format!("{:.1}x", ratios[1]),
            format!("{:.2}x", ratios[2]),
            format!("{:.2}x", ratios[3]),
            format!("{:.1}x", exact.wall.as_secs_f64() / pw),
            format!("{:.1}x", approx.wall.as_secs_f64() / pw),
        ]);
        for (s, r) in sums.iter_mut().zip(ratios) {
            *s += r;
        }
        n += 1;
        eprintln!("  done {}", entry.name);
    }
    rows.push(vec![
        "AVERAGE".to_string(),
        String::new(),
        format!("{:.1}x", sums[0] / n as f64),
        format!("{:.1}x", sums[1] / n as f64),
        format!("{:.2}x", sums[2] / n as f64),
        format!("{:.2}x", sums[3] / n as f64),
        String::new(),
        String::new(),
    ]);
    print!("{}", nvbitfi::report::table(&rows));
    println!("\npaper (Fig. 4): exact profiling up to 558x (avg 28x more than approximate);");
    println!("transient injection ~2.9x, permanent injection ~4.8x. The shape to check:");
    println!("exact >> approximate >> injection ≈ uninstrumented, because instrumentation");
    println!("is confined to ever-smaller sets of dynamic kernels.");
}
