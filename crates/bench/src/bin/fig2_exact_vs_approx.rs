//! Regenerates **Figure 2**: SDC/DUE/Masked outcome fractions for transient
//! faults under *exact* vs *approximate* profiling, per program and
//! averaged — the paper reports averages of 32.5% vs 37.9% SDC, 4.2% vs
//! 4.5% DUE, and 63.3% vs 57.6% Masked, with most programs looking similar
//! between the two profiling modes.

use nvbitfi::{report, run_transient_campaign, stats, OutcomeCounts, ProfilingMode};

fn main() {
    let args = bench::BenchArgs::from_env();
    println!(
        "FIGURE 2 — exact vs approximate profiling, {} transient injections/program (seed {:#x})",
        args.injections, args.seed
    );
    println!(
        "worst-case error margin at 90% confidence: ±{:.1}%\n",
        stats::error_margin(args.injections, 0.90) * 100.0
    );

    let mut rows = vec![vec![
        "Program".to_string(),
        "SDC ex".to_string(),
        "DUE ex".to_string(),
        "Mask ex".to_string(),
        "SDC ap".to_string(),
        "DUE ap".to_string(),
        "Mask ap".to_string(),
        "fired ap".to_string(),
    ]];
    let mut totals = (OutcomeCounts::default(), OutcomeCounts::default());
    for entry in args.programs() {
        let exact = run_transient_campaign(
            entry.program.as_ref(),
            entry.check.as_ref(),
            &args.campaign(ProfilingMode::Exact),
        )
        .expect("exact campaign");
        let approx = run_transient_campaign(
            entry.program.as_ref(),
            entry.check.as_ref(),
            &args.campaign(ProfilingMode::Approximate),
        )
        .expect("approx campaign");
        let fired = approx.runs.iter().filter(|r| r.injected).count();
        let mut row = vec![entry.name.to_string()];
        row.extend(report::outcome_cells(&exact.counts));
        row.extend(report::outcome_cells(&approx.counts));
        row.push(format!("{fired}/{}", approx.runs.len()));
        rows.push(row);
        totals.0.merge(&exact.counts);
        totals.1.merge(&approx.counts);
        eprintln!("  done {}", entry.name);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    avg.extend(report::outcome_cells(&totals.0));
    avg.extend(report::outcome_cells(&totals.1));
    avg.push(String::new());
    rows.push(avg);
    print!("{}", report::table(&rows));
    println!(
        "\npaper (Fig. 2 averages): SDC 32.5% vs 37.9%, DUE 4.2% vs 4.5%, Masked 63.3% vs 57.6%"
    );
    println!("('fired' counts injections whose site was actually reached — approximate");
    println!(" profiles can name sites beyond an instance's real execution)");
}
