//! Regenerates **Table IV**: the benchmark programs with their static and
//! dynamic kernel counts — the paper's column values next to this
//! reproduction's (scaled) values measured from actual runs.

use gpu_runtime::{run_program, RuntimeConfig};
use std::collections::BTreeSet;

fn main() {
    let args = bench::BenchArgs::from_env();
    let mut rows = vec![vec![
        "Program".to_string(),
        "Description".to_string(),
        "Static (paper)".to_string(),
        "Static (ours)".to_string(),
        "Dynamic (paper)".to_string(),
        "Dynamic (ours)".to_string(),
        "Dyn instrs".to_string(),
    ]];
    for entry in args.programs() {
        let out = run_program(entry.program.as_ref(), RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "golden run of {} failed: {}", entry.name, out.stdout);
        let statics: BTreeSet<_> = out.summary.launches.iter().map(|l| l.kernel.clone()).collect();
        rows.push(vec![
            entry.name.to_string(),
            entry.description.to_string(),
            entry.paper_static.to_string(),
            statics.len().to_string(),
            entry.paper_dynamic.to_string(),
            out.summary.launches.len().to_string(),
            out.summary.dyn_instrs.to_string(),
        ]);
    }
    println!("TABLE IV — SpecACCEL-analog benchmark programs");
    println!("(\"ours\" uses simulator-scaled dynamic counts; static counts match the paper)\n");
    print!("{}", nvbitfi::report::table(&rows));
}
