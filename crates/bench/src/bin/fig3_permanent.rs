//! Regenerates **Figure 3**: relative SDC/DUE/Masked outcomes for
//! *permanent* faults, one experiment per executed opcode, each outcome
//! weighted by the opcode's share of dynamic instructions. The paper's
//! headline: permanent faults mask far less than transient ones
//! (17.4% vs 57.6% average Masked).

use nvbitfi::{report, run_permanent_campaign};

fn main() {
    let args = bench::BenchArgs::from_env();
    println!(
        "FIGURE 3 — permanent-fault outcomes, weighted by opcode dynamic count (seed {:#x})\n",
        args.seed
    );

    let mut rows = vec![vec![
        "Program".to_string(),
        "opcodes run".to_string(),
        "SDC".to_string(),
        "DUE".to_string(),
        "Masked".to_string(),
        "activations".to_string(),
    ]];
    let (mut wsdc, mut wdue, mut wmask) = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    for entry in args.programs() {
        let c =
            run_permanent_campaign(entry.program.as_ref(), entry.check.as_ref(), &args.permanent())
                .expect("permanent campaign");
        let activations: u64 = c.runs.iter().map(|r| r.activations).sum();
        rows.push(vec![
            entry.name.to_string(),
            format!("{}/171", c.runs.len()),
            report::pct(c.weighted.sdc),
            report::pct(c.weighted.due),
            report::pct(c.weighted.masked),
            activations.to_string(),
        ]);
        wsdc += c.weighted.sdc;
        wdue += c.weighted.due;
        wmask += c.weighted.masked;
        n += 1;
        eprintln!("  done {}", entry.name);
    }
    rows.push(vec![
        "AVERAGE".to_string(),
        String::new(),
        report::pct(wsdc / n as f64),
        report::pct(wdue / n as f64),
        report::pct(wmask / n as f64),
        String::new(),
    ]);
    print!("{}", report::table(&rows));
    println!("\npaper (Fig. 3): permanent faults average 17.4% Masked — far less masking");
    println!("than the 57.6% of transient faults, because a permanent fault activates");
    println!("on every dynamic instance of its opcode.");
    println!("'opcodes run' reflects profile pruning: only executed opcodes are injected");
    println!("(the paper's programs execute 16-41 of the 171 opcodes).");
}
