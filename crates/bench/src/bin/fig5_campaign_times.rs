//! Regenerates **Figure 5**: total campaign times — a transient campaign of
//! N faults (profiling + N injection runs) against a permanent campaign
//! that uses the profile to skip unused opcodes (one run per executed
//! opcode). The paper's shape: transient campaigns typically take about
//! twice as long as permanent ones, ranging from ~5× down to slightly
//! faster, with programs executing 16-41 of the 171 opcodes.

use nvbitfi::{run_permanent_campaign, run_transient_campaign, ProfilingMode};

fn main() {
    let args = bench::BenchArgs::from_env();
    println!(
        "FIGURE 5 — total campaign times ({} transient faults vs per-opcode permanent)\n",
        args.injections
    );
    let mut rows = vec![vec![
        "Program".to_string(),
        "transient total".to_string(),
        "permanent total".to_string(),
        "opcodes".to_string(),
        "transient/permanent".to_string(),
    ]];
    for entry in args.programs() {
        let transient = run_transient_campaign(
            entry.program.as_ref(),
            entry.check.as_ref(),
            &args.campaign(ProfilingMode::Approximate),
        )
        .expect("transient campaign");
        let permanent =
            run_permanent_campaign(entry.program.as_ref(), entry.check.as_ref(), &args.permanent())
                .expect("permanent campaign");
        let t = transient.timing.total();
        let p = permanent.total_time();
        rows.push(vec![
            entry.name.to_string(),
            bench::dur(t),
            bench::dur(p),
            format!("{}/171", permanent.runs.len()),
            bench::ratio(t.as_secs_f64(), p.as_secs_f64()),
        ]);
        eprintln!("  done {}", entry.name);
    }
    print!("{}", nvbitfi::report::table(&rows));
    println!("\npaper (Fig. 5): transient campaigns typically ~2x the permanent campaign");
    println!("time, at most ~5x, occasionally slightly faster; executed opcodes per");
    println!("program range 16-41 of 171.");
}
