//! Regenerates **Table II**: the transient fault parameters — the
//! instruction groups, bit-flip models, and the specific-target parameters,
//! with worked examples of every mask formula.

use gpu_isa::Opcode;
use nvbitfi::{BitFlipModel, InstrGroup, TransientParams};

fn main() {
    println!("TABLE II — Transient fault parameters\n");

    println!("arch state id (instruction group):");
    let mut rows = vec![vec![
        "id".to_string(),
        "group".to_string(),
        "opcodes".to_string(),
        "example members".to_string(),
    ]];
    for g in InstrGroup::ALL {
        let members: Vec<&str> =
            Opcode::ALL.iter().filter(|o| g.contains(**o)).map(|o| o.mnemonic()).collect();
        let sample = members.iter().take(4).cloned().collect::<Vec<_>>().join(" ");
        rows.push(vec![
            g.id().to_string(),
            g.name().to_string(),
            members.len().to_string(),
            sample,
        ]);
    }
    print!("{}", nvbitfi::report::table(&rows));

    println!("\nbit-flip model (mask formulas, original register value 0xdeadbeef):");
    let original = 0xDEAD_BEEFu32;
    let mut rows = vec![vec![
        "id".to_string(),
        "model".to_string(),
        "value".to_string(),
        "mask".to_string(),
        "corrupted".to_string(),
    ]];
    for m in BitFlipModel::ALL {
        for value in [0.0, 0.5, 0.97] {
            let mask = m.mask(value, original);
            rows.push(vec![
                m.id().to_string(),
                m.name().to_string(),
                format!("{value:.2}"),
                format!("{mask:#010x}"),
                format!("{:#010x}", original ^ mask),
            ]);
        }
    }
    print!("{}", nvbitfi::report::table(&rows));

    println!("\nspecific target (example parameter file, one value per line):");
    let p = TransientParams {
        group: InstrGroup::GpPr,
        bit_flip: BitFlipModel::FlipSingleBit,
        kernel_name: "stencil_step".into(),
        kernel_count: 3,
        instruction_count: 12911,
        destination_register: 0.42,
        bit_pattern: 0.77,
    };
    for (label, line) in [
        "arch state id",
        "bit-flip model",
        "kernel name",
        "kernel count",
        "instruction count",
        "destination register",
        "bit-pattern value",
    ]
    .iter()
    .zip(p.to_file().lines())
    {
        println!("  {line:<14} # {label}");
    }
    println!("\nround-trip parse: {}", TransientParams::from_file(&p.to_file()).expect("parse"));
}
