//! Opcode coverage of the suite — supporting data for §IV-C's observation
//! that "the number of executed opcodes for our programs ranges from 16 to
//! 41 opcodes per program (out of the total possible 171)", which is what
//! makes profile-pruned permanent campaigns cheap.

use gpu_isa::InstrClass;
use gpu_runtime::RuntimeConfig;
use nvbitfi::{profile_program, ProfilingMode};
use std::collections::BTreeSet;

fn main() {
    let args = bench::BenchArgs::from_env();
    let mut rows = vec![vec![
        "Program".to_string(),
        "opcodes".to_string(),
        "FP32".to_string(),
        "FP64".to_string(),
        "LD".to_string(),
        "PR".to_string(),
        "NODEST".to_string(),
        "OTHER".to_string(),
        "top-3 by dynamic count".to_string(),
    ]];
    let mut union: BTreeSet<gpu_isa::Opcode> = BTreeSet::new();
    for entry in args.programs() {
        let profile = profile_program(
            entry.program.as_ref(),
            RuntimeConfig::default(),
            ProfilingMode::Approximate,
        )
        .expect("profile");
        let executed = profile.executed_opcodes();
        union.extend(executed.iter().copied());
        let by_class = |c: InstrClass| executed.iter().filter(|o| o.class() == c).count();
        let mut hot: Vec<_> =
            executed.iter().map(|o| (profile.opcode_total(*o), o.mnemonic())).collect();
        hot.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
        let top: Vec<&str> = hot.iter().take(3).map(|(_, m)| *m).collect();
        rows.push(vec![
            entry.name.to_string(),
            format!("{}/171", executed.len()),
            by_class(InstrClass::Fp32).to_string(),
            by_class(InstrClass::Fp64).to_string(),
            by_class(InstrClass::Ld).to_string(),
            by_class(InstrClass::Pr).to_string(),
            by_class(InstrClass::NoDest).to_string(),
            by_class(InstrClass::Other).to_string(),
            top.join(" "),
        ]);
    }
    println!("OPCODE COVERAGE — executed opcodes per program (§IV-C supporting data)\n");
    print!("{}", nvbitfi::report::table(&rows));
    println!(
        "\nsuite-wide union: {} of 171 opcodes exercised; the paper reports 16-41 per program",
        union.len()
    );
}
