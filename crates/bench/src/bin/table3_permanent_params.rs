//! Regenerates **Table III**: the permanent fault parameters — SM id, lane
//! id, bit mask, and opcode id over the 171-opcode Volta-sized ISA.

use gpu_isa::{Opcode, OPCODE_COUNT};
use nvbitfi::PermanentParams;

fn main() {
    println!("TABLE III — Permanent fault parameters\n");
    let rows = vec![
        vec!["parameter".to_string(), "range".to_string(), "description".to_string()],
        vec![
            "SM id".to_string(),
            "0..80".to_string(),
            "which streaming multiprocessor to inject (Titan V default)".to_string(),
        ],
        vec![
            "Lane id".to_string(),
            "0..32".to_string(),
            "which hardware lane to inject".to_string(),
        ],
        vec![
            "Bit mask".to_string(),
            "u32".to_string(),
            "XOR mask applied to every destination register".to_string(),
        ],
        vec![
            "Opcode id".to_string(),
            format!("0..{OPCODE_COUNT}"),
            "the ISA contains exactly 171 opcodes, as the paper reports for Volta".to_string(),
        ],
    ];
    print!("{}", nvbitfi::report::table(&rows));
    assert_eq!(OPCODE_COUNT, 171);

    println!("\nopcode id space (first and last entries):");
    for id in [0u16, 1, 2, 168, 169, 170] {
        let op = Opcode::decode(id).expect("valid id");
        println!("  {id:>3} -> {:<10} class {}", op.mnemonic(), op.class());
    }

    let p = PermanentParams { sm_id: 17, lane_id: 5, bit_mask: 0x0000_8000, opcode_id: 3 };
    p.validate(80).expect("valid");
    println!("\nexample parameter file:");
    for line in p.to_file().lines() {
        println!("  {line}");
    }
    println!("\nround-trip parse: {}", PermanentParams::from_file(&p.to_file()).expect("parse"));
}
