//! Ablation for the §V *intermittent fault* extension: sweep the activation
//! probability of an intermittent fault from "almost transient" (one in a
//! thousand activations) to "permanent" (always active) and watch the
//! outcome distribution interpolate between the transient-like and
//! permanent-like regimes of Figures 2 and 3.

use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::ext::{ActivationPattern, CorruptionFn, ExtFault, ExtInjector};
use nvbitfi::{classify, golden_run, report, OutcomeCounts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = bench::BenchArgs::from_env();
    // One arithmetic-heavy program keeps the sweep readable.
    let entry = workloads::find(args.scale, "303.ostencil").expect("suite program");
    let program = entry.program.as_ref();
    let check = entry.check.as_ref();

    let golden = golden_run(program, RuntimeConfig::default()).expect("golden");
    let cfg =
        RuntimeConfig { instr_budget: Some(golden.suggested_budget()), ..RuntimeConfig::default() };

    let trials = 24usize;
    println!(
        "§V ABLATION — intermittent FADD fault on {}, {} (SM, lane, bit) samples per rate\n",
        entry.name, trials
    );
    let mut rows = vec![vec![
        "activation".to_string(),
        "SDC".to_string(),
        "DUE".to_string(),
        "Masked".to_string(),
        "mean activations".to_string(),
    ]];
    for (label, pattern) in [
        ("p=0.001", Some(0.001)),
        ("p=0.01", Some(0.01)),
        ("p=0.1", Some(0.1)),
        ("p=0.5", Some(0.5)),
        ("always (permanent)", None),
    ] {
        let mut counts = OutcomeCounts::default();
        let mut activations = 0u64;
        let mut rng = StdRng::seed_from_u64(args.seed);
        for t in 0..trials {
            let activation = match pattern {
                Some(p) => ActivationPattern::Random { prob: p, seed: args.seed ^ (t as u64) },
                None => ActivationPattern::Always,
            };
            let fault = ExtFault {
                opcodes: vec![gpu_isa::Opcode::FADD],
                sm_id: rng.gen_range(0..6),
                lane_id: rng.gen_range(0..16),
                corruption: CorruptionFn::Xor(1u32 << rng.gen_range(0u32..32)),
                activation,
            };
            let (tool, handle) = ExtInjector::new(fault);
            let out = run_program(program, cfg.clone(), Some(Box::new(tool)));
            counts.add(&classify(&golden, &out, check));
            activations += handle.get().activations;
        }
        let mut row = vec![label.to_string()];
        row.extend(report::outcome_cells(&counts));
        row.push(format!("{:.1}", activations as f64 / trials as f64));
        rows.push(row);
        eprintln!("  done {label}");
    }
    print!("{}", report::table(&rows));
    println!("\nexpected shape: masking falls monotonically as the activation rate rises —");
    println!("the §V intermittent model interpolates between the transient regime");
    println!("(rare activation, Fig. 2-like masking) and the permanent regime (Fig. 3).");
}
