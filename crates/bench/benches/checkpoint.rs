//! Checkpoint/fast-forward engine benchmarks: COW snapshot cost, single
//! injection runs with and without prefix fast-forwarding, and whole
//! campaigns with checkpoints on vs. `--no-checkpoint`. Writes the
//! measurements to `BENCH_checkpoint.json` for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_isa::{encode, Module};
use gpu_runtime::{
    run_program, run_program_fast_forward, Program, Runtime, RuntimeConfig, RuntimeError,
};
use gpu_sim::{GlobalMem, PAGE_SIZE};
use nvbitfi::{
    golden_run_recording, profile_program, select_transient, BitFlipModel, CampaignConfig,
    InstrGroup, ProfilingMode, TransientInjector, TransientParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use workloads::Scale;

/// Snapshot cost is a page-table clone plus a refcount bump per resident
/// page — no data pages are copied, so it stays flat as the working set
/// grows and never scales with the bytes resident on the device.
fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("cow_snapshot");
    for touched_pages in [1u32, 64, 1024] {
        let mut mem = GlobalMem::new(1 << 30);
        let buf = mem.alloc(touched_pages * PAGE_SIZE).expect("alloc");
        for p in 0..touched_pages {
            let page_start = gpu_sim::DevPtr(buf.addr() + p * PAGE_SIZE);
            mem.copy_from_host(page_start, &[1u8; 8]).expect("touch");
        }
        g.throughput(Throughput::Elements(u64::from(touched_pages)));
        g.bench_function(format!("1GiB_device_{touched_pages}_pages_touched"), |b| {
            b.iter(|| mem.snapshot())
        });
    }
    g.finish();
}

/// One fault site in the last dynamic kernel of a ≥4-launch workload:
/// fast-forward replays the whole prefix from checkpoints, full replay
/// re-simulates it.
fn last_instance_site(profile: &nvbitfi::Profile) -> TransientParams {
    let last = profile.kernels.last().expect("kernels");
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    loop {
        let p = select_transient(profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, &mut rng)
            .expect("site");
        if p.kernel_name == last.kernel && p.kernel_count == last.instance {
            return p;
        }
    }
}

fn bench_injection_run(c: &mut Criterion) {
    let entry = workloads::find(Scale::Test, "303.ostencil").expect("entry");
    let cfg = RuntimeConfig::default();
    let (golden, store) =
        golden_run_recording(entry.program.as_ref(), cfg.clone()).expect("golden");
    assert!(store.len() >= 4, "acceptance requires a >=4-launch workload");
    let profile = profile_program(entry.program.as_ref(), cfg.clone(), ProfilingMode::Exact)
        .expect("profile");
    let params = last_instance_site(&profile);
    let upto = store.find_instance(&params.kernel_name, params.kernel_count).expect("target ran");
    let store = Arc::new(store);
    let mut run_cfg = cfg;
    run_cfg.instr_budget = Some(golden.suggested_budget());

    let mut g = c.benchmark_group("injection_run_last_instance");
    g.bench_function("full_replay", |b| {
        b.iter(|| {
            let (tool, _h) = TransientInjector::new(params.clone());
            run_program(entry.program.as_ref(), run_cfg.clone(), Some(Box::new(tool)))
        })
    });
    g.bench_function("fast_forward", |b| {
        b.iter(|| {
            let (tool, _h) = TransientInjector::new(params.clone());
            run_program_fast_forward(
                entry.program.as_ref(),
                run_cfg.clone(),
                Some(Box::new(tool)),
                Arc::clone(&store),
                upto,
            )
        })
    });
    g.finish();
}

/// Sites drawn uniformly over all dynamic instructions (the paper's default
/// G_GPPR campaign): the expected skippable prefix is ~half the run.
fn bench_campaign_uniform_sites(c: &mut Criterion) {
    let entry = workloads::find(Scale::Test, "303.ostencil").expect("entry");
    let base = CampaignConfig {
        injections: 20,
        seed: 0x5EED,
        workers: 1, // serial: measure simulation work, not scheduling
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let mut g = c.benchmark_group("campaign_uniform_sites_20_injections");
    g.bench_function("checkpointed", |b| {
        let cfg = CampaignConfig { use_checkpoints: true, ..base.clone() };
        b.iter(|| {
            nvbitfi::run_transient_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg)
                .expect("campaign")
        })
    });
    g.bench_function("no_checkpoint", |b| {
        let cfg = CampaignConfig { use_checkpoints: false, ..base.clone() };
        b.iter(|| {
            nvbitfi::run_transient_campaign(entry.program.as_ref(), entry.check.as_ref(), &cfg)
                .expect("campaign")
        })
    });
    g.finish();
}

/// Eight integer-heavy scramble launches followed by one FP64 daxpy — the
/// "heavy prefix, late target" shape where checkpointing pays most. A
/// G_FP64 campaign can only select sites in the final launch, so every
/// injection run fast-forwards the whole scramble phase.
struct LateTarget;

impl LateTarget {
    const N: u32 = 1024;
    const PREFIX_LAUNCHES: u32 = 8;
}

impl Program for LateTarget {
    fn name(&self) -> &str {
        "bench.late_target"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let n = Self::N;
        let bytes = encode::encode_module(&Module::new(
            "late_target",
            vec![
                workloads::kernels::lcg_scramble("scramble"),
                workloads::kernels::daxpy_f64("daxpy"),
            ],
        ));
        let m = rt.load_module(&bytes)?;
        let scramble = rt.get_kernel(m, "scramble")?;
        let daxpy = rt.get_kernel(m, "daxpy")?;

        let data = rt.alloc(n * 4)?;
        rt.write_u32s(data, &(0..n).collect::<Vec<u32>>())?;
        for _ in 0..Self::PREFIX_LAUNCHES {
            rt.launch(scramble, n / 64, 64u32, &[data.addr(), n, 32u32])?;
        }

        let y = rt.alloc(n * 8)?;
        let x = rt.alloc(n * 8)?;
        rt.write_f64s(y, &vec![1.0; n as usize])?;
        rt.write_f64s(x, &vec![0.5; n as usize])?;
        let a = 3.0f64.to_bits();
        rt.launch(daxpy, n / 64, 64u32, &[y.addr(), x.addr(), a as u32, (a >> 32) as u32, n])?;
        rt.synchronize()?;

        let mixed = rt.read_u32s(data, n as usize)?.iter().fold(0u32, |acc, v| acc ^ v);
        let sum: f64 = rt.read_f64s(y, n as usize)?.iter().sum();
        rt.println(format!("mix {mixed:08x} sum {sum:.6}"));
        Ok(())
    }
}

/// The acceptance shape: a ≥4-launch workload where the checkpointed
/// campaign must be ≥3× faster than `--no-checkpoint` with identical
/// outcome counts. Verifies the counts once, then measures both modes.
fn bench_campaign_late_sites(c: &mut Criterion) {
    let base = CampaignConfig {
        injections: 10,
        seed: 0x5EED,
        group: InstrGroup::Fp64,
        workers: 1,
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let check = nvbitfi::ExactDiff;
    let with = nvbitfi::run_transient_campaign(
        &LateTarget,
        &check,
        &CampaignConfig { use_checkpoints: true, ..base.clone() },
    )
    .expect("checkpointed campaign");
    let without = nvbitfi::run_transient_campaign(
        &LateTarget,
        &check,
        &CampaignConfig { use_checkpoints: false, ..base.clone() },
    )
    .expect("full-replay campaign");
    assert_eq!(with.counts, without.counts, "same seed, same outcome tally");
    println!("late-site outcome counts (both modes): {}", with.counts);

    let mut g = c.benchmark_group("campaign_late_sites_10_injections");
    g.bench_function("checkpointed", |b| {
        let cfg = CampaignConfig { use_checkpoints: true, ..base.clone() };
        b.iter(|| nvbitfi::run_transient_campaign(&LateTarget, &check, &cfg).expect("campaign"))
    });
    g.bench_function("no_checkpoint", |b| {
        let cfg = CampaignConfig { use_checkpoints: false, ..base.clone() };
        b.iter(|| nvbitfi::run_transient_campaign(&LateTarget, &check, &cfg).expect("campaign"))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_checkpoint.json"));
    targets = bench_snapshot, bench_injection_run, bench_campaign_uniform_sites,
        bench_campaign_late_sites
}
criterion_main!(benches);
