//! Static dead-fault pruning benchmarks: the cost of the analyses
//! themselves (CFG + liveness + lint over real suite kernels, site
//! resolution) and whole campaigns with pruning on vs. `--no-static-prune`
//! on a dead-write-heavy workload. Writes the measurements to
//! `BENCH_static_prune.json` for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_isa::asm::KernelBuilder;
use gpu_isa::{encode, CmpOp, Module, PReg, Reg, SpecialReg};
use gpu_runtime::{Program, Runtime, RuntimeConfig, RuntimeError};
use nvbitfi::{CampaignConfig, InstrGroup, ProfilingMode, TransientParams};

/// A module of real suite kernels, as the linter sees them at load time.
fn suite_module() -> Module {
    Module::new(
        "bench_lint",
        vec![
            workloads::kernels::stencil5_f32("stencil"),
            workloads::kernels::lj_force_f64("lj"),
            workloads::kernels::reduce_sum_f32("reduce", 64),
            workloads::kernels::lbm_collide("collide"),
            workloads::kernels::spmv_gather("spmv"),
        ],
    )
}

/// Full-module lint (CFG, dominators, reaching defs, liveness, divergence)
/// over five real suite kernels.
fn bench_lint(c: &mut Criterion) {
    let module = suite_module();
    let instrs: u64 = module.kernels().iter().map(|k| k.len() as u64).sum();
    let mut g = c.benchmark_group("static_analysis");
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("lint_module_5_suite_kernels", |b| {
        b.iter(|| gpu_analysis::lint_module(&module))
    });
    let stencil = workloads::kernels::stencil5_f32("stencil");
    g.bench_function("liveness_fixpoint_stencil", |b| {
        b.iter(|| {
            let cfg = gpu_analysis::Cfg::build(&stencil);
            gpu_analysis::Liveness::compute(&stencil, &cfg)
        })
    });
    g.finish();
}

/// A single-launch program whose loop body writes three registers that are
/// never read: roughly 2/5 of a G_GP campaign's sites land on provably
/// dead destinations, and with only one launch no checkpoint can shorten
/// the simulated runs — the shape where static pruning pays most.
struct DeadHeavy;

impl Program for DeadHeavy {
    fn name(&self) -> &str {
        "bench.dead_heavy"
    }
    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let mut k = KernelBuilder::new("deadloop");
        let (out, tid, acc, i) = (Reg(8), Reg(9), Reg(0), Reg(1));
        k.ldc(out, 0);
        k.s2r(tid, SpecialReg::TidX);
        k.shli(Reg(10), tid, 2);
        k.iadd(out, out, Reg(10));
        k.movi(acc, 1);
        k.movi(i, 0);
        let top = k.new_label();
        k.bind(top);
        k.iadd(acc, acc, tid); // live
        k.movi(Reg(4), 0x123); // dead
        k.iaddi(Reg(5), acc, 5); // dead
        k.shli(Reg(6), tid, 3); // dead
        k.iaddi(i, i, 1);
        k.isetp(PReg(0), CmpOp::Lt, i, 200);
        k.bra_if(PReg(0), top);
        k.stg(out, 0, acc);
        k.exit();
        let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
        let m = rt.load_module(&bytes)?;
        let k = rt.get_kernel(m, "deadloop")?;
        let buf = rt.alloc(64 * 4)?;
        rt.launch(k, 2u32, 32u32, &[buf.addr()])?;
        rt.synchronize()?;
        let v = rt.read_u32s(buf, 64)?;
        rt.println(format!("sum={}", v.iter().fold(0u32, |s, x| s.wrapping_add(*x))));
        Ok(())
    }
}

/// Site-to-pc resolution alone: one instrumented run mapping 20 dynamic
/// site coordinates back to static pcs.
fn bench_site_resolution(c: &mut Criterion) {
    let sites: Vec<TransientParams> = (0..20u64)
        .map(|j| TransientParams {
            group: InstrGroup::Gp,
            bit_flip: nvbitfi::BitFlipModel::FlipSingleBit,
            kernel_name: "deadloop".into(),
            kernel_count: 0,
            instruction_count: j * 997,
            destination_register: 0.3,
            bit_pattern: 0.7,
        })
        .collect();
    let mut g = c.benchmark_group("static_analysis");
    g.bench_function("resolve_20_sites_dead_heavy", |b| {
        b.iter(|| {
            nvbitfi::prune_dead_sites(&DeadHeavy, RuntimeConfig::default(), InstrGroup::Gp, &sites)
        })
    });
    g.finish();
}

/// The acceptance shape: same seed, identical outcome tallies, pruning on
/// vs. off. Verifies the SDC/DUE counts match once, then measures both.
fn bench_campaign_dead_heavy(c: &mut Criterion) {
    let base = CampaignConfig {
        injections: 20,
        seed: 0x5EED,
        group: InstrGroup::Gp,
        workers: 1, // serial: measure simulation work, not scheduling
        profiling: ProfilingMode::Exact,
        ..CampaignConfig::default()
    };
    let check = nvbitfi::ExactDiff;
    let with = nvbitfi::run_transient_campaign(
        &DeadHeavy,
        &check,
        &CampaignConfig { use_static_prune: true, ..base.clone() },
    )
    .expect("pruned campaign");
    let without = nvbitfi::run_transient_campaign(
        &DeadHeavy,
        &check,
        &CampaignConfig { use_static_prune: false, ..base.clone() },
    )
    .expect("unpruned campaign");
    assert_eq!(with.counts, without.counts, "same seed, same outcome tally");
    assert!(with.statically_pruned() > 0, "dead-heavy workload must yield pruned sites");
    println!(
        "dead-heavy outcome counts (both modes): {} — {} of {} sites pruned",
        with.counts,
        with.statically_pruned(),
        with.runs.len()
    );

    let mut g = c.benchmark_group("campaign_dead_heavy_20_injections");
    g.bench_function("static_prune", |b| {
        let cfg = CampaignConfig { use_static_prune: true, ..base.clone() };
        b.iter(|| nvbitfi::run_transient_campaign(&DeadHeavy, &check, &cfg).expect("campaign"))
    });
    g.bench_function("no_static_prune", |b| {
        let cfg = CampaignConfig { use_static_prune: false, ..base.clone() };
        b.iter(|| nvbitfi::run_transient_campaign(&DeadHeavy, &check, &cfg).expect("campaign"))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_static_prune.json"));
    targets = bench_lint, bench_site_resolution, bench_campaign_dead_heavy
}
criterion_main!(benches);
