//! Criterion version of Figure 4's overhead measurement: the same program
//! run uninstrumented, under the exact profiler, under the approximate
//! profiler, and under a transient injector. The benchmark names group into
//! one Criterion report so the ratios are easy to read off.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_runtime::{run_program, RuntimeConfig};
use nvbitfi::{
    BitFlipModel, InstrGroup, Profiler, ProfilingMode, TransientInjector, TransientParams,
};
use workloads::Scale;

fn program() -> workloads::ostencil::Ostencil {
    workloads::ostencil::Ostencil { scale: Scale::Test }
}

fn bench_overheads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_overheads/ostencil");

    g.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let out = run_program(&program(), RuntimeConfig::default(), None);
            assert!(out.termination.is_clean());
        })
    });

    g.bench_function("exact_profiling", |b| {
        b.iter(|| {
            let (tool, _handle) = Profiler::new(ProfilingMode::Exact);
            let out = run_program(&program(), RuntimeConfig::default(), Some(Box::new(tool)));
            assert!(out.termination.is_clean());
        })
    });

    g.bench_function("approx_profiling", |b| {
        b.iter(|| {
            let (tool, _handle) = Profiler::new(ProfilingMode::Approximate);
            let out = run_program(&program(), RuntimeConfig::default(), Some(Box::new(tool)));
            assert!(out.termination.is_clean());
        })
    });

    g.bench_function("transient_injection", |b| {
        let params = TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "stencil_step".into(),
            kernel_count: 2,
            instruction_count: 50,
            destination_register: 0.5,
            bit_pattern: 0.1,
        };
        b.iter(|| {
            let (tool, _handle) = TransientInjector::new(params.clone());
            let out = run_program(&program(), RuntimeConfig::default(), Some(Box::new(tool)));
            std::hint::black_box(out);
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_overheads
}
criterion_main!(benches);
