//! Micro-benchmarks of the fault-injection primitives: mask computation,
//! module decode (the launch-time cost NVBit pays once per static kernel),
//! fault-site location in a profile, and raw simulator launch throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_isa::{encode, Module};
use gpu_sim::{Dim3, GlobalMem, Gpu, GpuConfig, Launch};
use nvbitfi::{select_transient, BitFlipModel, InstrGroup, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bitflip(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitflip_mask");
    for model in BitFlipModel::ALL {
        g.bench_function(model.name(), |b| {
            let mut v = 0.0f64;
            b.iter(|| {
                v = (v + 0.137) % 1.0;
                std::hint::black_box(model.mask(v, 0xDEAD_BEEF))
            })
        });
    }
    g.finish();
}

fn bench_module_decode(c: &mut Criterion) {
    let kernel = workloads::kernels::stencil5_f32("k");
    let bytes = encode::encode_module(&Module::new("m", vec![kernel]));
    let mut g = c.benchmark_group("module_decode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("stencil_kernel", |b| {
        b.iter(|| encode::decode_module(std::hint::black_box(&bytes)).expect("decode"))
    });
    g.finish();
}

fn bench_site_selection(c: &mut Criterion) {
    // A profile with many dynamic kernels, as a long-running app would have.
    let counts: std::collections::BTreeMap<gpu_isa::Opcode, u64> = [
        (gpu_isa::Opcode::FADD, 1000u64),
        (gpu_isa::Opcode::LDG, 400),
        (gpu_isa::Opcode::EXIT, 32),
    ]
    .into_iter()
    .collect();
    let profile = Profile {
        mode: nvbitfi::ProfilingMode::Exact,
        kernels: (0..1000)
            .map(|i| nvbitfi::KernelProfile {
                kernel: format!("k{}", i % 20),
                instance: i / 20,
                counts: counts.clone(),
            })
            .collect(),
    };
    let mut g = c.benchmark_group("fault_site_selection");
    g.bench_function("select_1000_dynamic_kernels", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            select_transient(&profile, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, &mut rng)
                .expect("select")
        })
    });
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let kernel = workloads::kernels::saxpy_f32("saxpy");
    let gpu = Gpu::new(GpuConfig::default());
    let n = 1024u32;
    let mut g = c.benchmark_group("simulator_throughput");
    g.bench_function("saxpy_1024_threads", |b| {
        b.iter(|| {
            let mut mem = GlobalMem::new(1 << 20);
            let y = mem.alloc(n * 4).expect("y");
            let x = mem.alloc(n * 4).expect("x");
            gpu.launch(
                &Launch {
                    kernel: &kernel,
                    grid: Dim3::from(n / 64),
                    block: Dim3::from(64),
                    params: &[y.addr(), x.addr(), 2.0f32.to_bits(), n],
                    instr_budget: None,
                },
                &mut mem,
                None,
            )
            .expect("launch")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_bitflip, bench_module_decode, bench_site_selection, bench_sim_throughput
}
criterion_main!(benches);
