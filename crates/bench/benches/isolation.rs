//! Isolation-mode overhead: the same small campaign run with in-process
//! worker threads vs supervised disposable worker processes. Process mode
//! pays for child spawns, per-worker golden-run replay, and frame-protocol
//! round-trips; the acceptance target is staying under 2x the thread-mode
//! wall clock on this smoke campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use nvbitfi::{CampaignConfig, IsolationMode, ProcessIsolation, ProfilingMode};
use std::path::PathBuf;
use workloads::Scale;

const PROGRAM: &str = "314.omriq";

fn cfg(isolation: IsolationMode) -> CampaignConfig {
    CampaignConfig {
        injections: 24,
        seed: 7,
        profiling: ProfilingMode::Exact,
        workers: 2,
        isolation,
        ..CampaignConfig::default()
    }
}

/// The `nvbitfi` binary next to this bench executable's `deps/` directory.
/// `cargo bench` does not build bin targets, so the binary may be absent —
/// the process-mode benchmark is then skipped rather than failed, keeping
/// `cargo bench` usable without a prior `cargo build`.
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.parent()?.join("nvbitfi");
    bin.exists().then_some(bin)
}

fn run(isolation: IsolationMode) {
    let entry = workloads::find(Scale::Test, PROGRAM).expect("known program");
    let c = nvbitfi::run_transient_campaign(
        entry.program.as_ref(),
        entry.check.as_ref(),
        &cfg(isolation),
    )
    .expect("campaign");
    assert_eq!(c.counts.infra, 0, "overhead comparison requires clean campaigns");
}

fn bench_isolation(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_isolation/omriq_24_injections");

    g.bench_function("thread", |b| b.iter(|| run(IsolationMode::Thread)));

    match worker_binary() {
        Some(bin) => {
            g.bench_function("process", |b| {
                b.iter(|| {
                    let iso = ProcessIsolation::new(
                        vec![bin.to_string_lossy().into_owned(), "worker".to_string()],
                        "test",
                    );
                    run(IsolationMode::Process(iso));
                })
            });
        }
        None => eprintln!(
            "campaign_isolation: nvbitfi binary not built; skipping process mode \
             (run `cargo build --release` first)"
        ),
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_isolation.json"));
    targets = bench_isolation
}
criterion_main!(benches);
