//! Text assembler: parse SASS-like listings back into kernels.
//!
//! The inverse of [`crate::disasm`]: the listing a tool dumps with
//! `nvbitfi disasm` (or [`disasm::kernel`](crate::disasm::kernel)) can be
//! edited and reassembled. Memory-operand address spaces are inferred from
//! the opcode (`LDG`→global, `LDS`→shared, `LDC`→const, `LDL`→local, …) —
//! exactly as in real SASS, where the space is part of the opcode, not the
//! operand.
//!
//! ```
//! use gpu_isa::{asm_text, disasm};
//! use gpu_isa::asm::KernelBuilder;
//! use gpu_isa::Reg;
//!
//! let mut k = KernelBuilder::new("roundtrip");
//! k.ldg(Reg(2), Reg(4), 8);
//! k.fadd(Reg(3), Reg(2), Reg(2));
//! k.stg(Reg(4), 8, Reg(3));
//! k.exit();
//! let kernel = k.finish();
//!
//! let listing = disasm::kernel(&kernel);
//! let back = asm_text::parse_kernel(&listing)?;
//! assert_eq!(back, kernel);
//! # Ok::<(), gpu_isa::IsaError>(())
//! ```

use crate::modifier::{AtomOp, BoolOp, CmpOp, MemWidth, MufuFunc, RoundMode, ShflMode};
use crate::{
    Dst, Guard, Instr, IsaError, Kernel, MemRef, Modifier, Module, Opcode, Operand, PReg, Reg,
    Space, SpecialReg,
};

fn err(line: usize, reason: impl Into<String>) -> IsaError {
    IsaError::ParseError { line, reason: reason.into() }
}

fn parse_preg(s: &str, line: usize) -> Result<PReg, IsaError> {
    if s == "PT" {
        return Ok(PReg::PT);
    }
    s.strip_prefix('P')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 8)
        .map(PReg)
        .ok_or_else(|| err(line, format!("bad predicate register `{s}`")))
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, IsaError> {
    if s == "RZ" {
        return Ok(Reg::RZ);
    }
    s.strip_prefix('R')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| err(line, format!("bad register `{s}`")))
}

fn parse_imm(s: &str, line: usize) -> Result<u32, IsaError> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u32>().ok()
    };
    v.ok_or_else(|| err(line, format!("bad immediate `{s}`")))
}

/// The address space an opcode's memory operands live in (as in real SASS,
/// where the space is part of the opcode).
pub fn opcode_space(op: Opcode) -> Space {
    use Opcode::*;
    match op {
        LDS | STS | ATOMS => Space::Shared,
        LDL | STL => Space::Local,
        LDC => Space::Const,
        _ => Space::Global,
    }
}

fn parse_operand(s: &str, op: Opcode, line: usize) -> Result<Operand, IsaError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| err(line, "unterminated `[`"))?;
        let (base_s, offset) = if let Some(pos) = inner.find('+') {
            (&inner[..pos], parse_imm(&inner[pos + 1..], line)? as i64)
        } else if let Some(pos) = inner.find('-') {
            (&inner[..pos], -(parse_imm(&inner[pos + 1..], line)? as i64))
        } else {
            (inner, 0)
        };
        let offset = i16::try_from(offset)
            .map_err(|_| err(line, format!("memory offset {offset} out of range")))?;
        return Ok(Operand::Mem(MemRef {
            base: parse_reg(base_s, line)?,
            offset,
            space: opcode_space(op),
        }));
    }
    if let Some(p) = s.strip_prefix('!') {
        return Ok(Operand::NotP(parse_preg(p, line)?));
    }
    if let Some(r) = s.strip_suffix(".64") {
        return Ok(Operand::R64(parse_reg(r, line)?));
    }
    let all_digits = |t: &str| !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit());
    if s == "PT" || (s.starts_with('P') && all_digits(&s[1..])) {
        return Ok(Operand::P(parse_preg(s, line)?));
    }
    if s == "RZ" || (s.starts_with('R') && all_digits(&s[1..])) {
        return Ok(Operand::R(parse_reg(s, line)?));
    }
    if s.starts_with("SR_") {
        return SpecialReg::ALL
            .iter()
            .copied()
            .find(|sr| sr.mnemonic() == s)
            .map(Operand::Sr)
            .ok_or_else(|| err(line, format!("unknown special register `{s}`")));
    }
    Ok(Operand::Imm(parse_imm(s, line)?))
}

fn parse_modifier(suffixes: &[&str], line: usize) -> Result<Modifier, IsaError> {
    let one = |s: &str| -> Option<Modifier> {
        if let Some(c) = CmpOp::ALL.iter().find(|c| c.suffix() == s) {
            return Some(Modifier::Cmp(*c));
        }
        if let Some(w) = MemWidth::ALL.iter().find(|w| w.suffix() == s) {
            return Some(Modifier::Width(*w));
        }
        if let Some(f) = MufuFunc::ALL.iter().find(|f| f.suffix() == s) {
            return Some(Modifier::Func(*f));
        }
        if let Some(r) = RoundMode::ALL.iter().find(|r| r.suffix() == s) {
            return Some(Modifier::Round(*r));
        }
        if let Some(m) = ShflMode::ALL.iter().find(|m| m.suffix() == s) {
            return Some(Modifier::Shfl(*m));
        }
        if let Some(a) = AtomOp::ALL.iter().find(|a| a.suffix() == s) {
            return Some(Modifier::AtomOp(*a));
        }
        if let Some(hex) = s.strip_prefix("LUT0x") {
            if let Ok(l) = u8::from_str_radix(hex, 16) {
                return Some(Modifier::Lut(l));
            }
        }
        None
    };
    match suffixes {
        [] => Ok(Modifier::None),
        [a] => one(a).ok_or_else(|| err(line, format!("unknown modifier `.{a}`"))),
        [a, b] => {
            // CMP.BOOL combination.
            let c = CmpOp::ALL
                .iter()
                .find(|c| c.suffix() == *a)
                .ok_or_else(|| err(line, format!("unknown comparison `.{a}`")))?;
            let bo = BoolOp::ALL
                .iter()
                .find(|x| x.suffix() == *b)
                .ok_or_else(|| err(line, format!("unknown boolean op `.{b}`")))?;
            Ok(Modifier::CmpBool(*c, *bo))
        }
        more => Err(err(line, format!("too many modifiers: {more:?}"))),
    }
}

/// How many leading operands of a listing line are destinations, given the
/// opcode. This mirrors how the builder emits code: at most one destination
/// in slot 0 (plus the implied high half of a pair).
fn dst_count(op: Opcode) -> usize {
    use crate::InstrClass::*;
    match op.class() {
        NoDest => 0,
        _ => 1,
    }
}

/// Parse one listing line (with or without the `/*NNNN*/` prefix).
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] describing the malformed field, with
/// `line` as the reported location.
pub fn parse_line(text: &str, line: usize) -> Result<Instr, IsaError> {
    let mut s = text.trim();
    // optional /*NNNN*/ index prefix
    if let Some(rest) = s.strip_prefix("/*") {
        let end = rest.find("*/").ok_or_else(|| err(line, "unterminated /* index"))?;
        s = rest[end + 2..].trim();
    }
    // optional guard
    let mut guard = Guard::ALWAYS;
    if let Some(rest) = s.strip_prefix("@!") {
        let (p, rest) = rest.split_once(' ').ok_or_else(|| err(line, "guard without opcode"))?;
        guard = Guard::if_false(parse_preg(p, line)?);
        s = rest.trim();
    } else if let Some(rest) = s.strip_prefix('@') {
        let (p, rest) = rest.split_once(' ').ok_or_else(|| err(line, "guard without opcode"))?;
        guard = Guard::if_true(parse_preg(p, line)?);
        s = rest.trim();
    }
    // opcode + dotted modifiers
    let (mnem_full, rest) = match s.find(' ') {
        Some(pos) => (&s[..pos], s[pos + 1..].trim()),
        None => (s, ""),
    };
    let mut parts = mnem_full.split('.');
    let mnemonic = parts.next().ok_or_else(|| err(line, "missing opcode"))?;
    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| err(line, format!("unknown opcode `{mnemonic}`")))?;
    let suffixes: Vec<&str> = parts.collect();
    let modifier = parse_modifier(&suffixes, line)?;

    // operands and optional ->target
    let (operand_text, target) = match rest.find("->") {
        Some(pos) => {
            let t = rest[pos + 2..]
                .trim()
                .parse::<u32>()
                .map_err(|e| err(line, format!("bad branch target: {e}")))?;
            (rest[..pos].trim_end().trim_end_matches(','), Some(t))
        }
        None => (rest, None),
    };
    let mut operands = Vec::new();
    if !operand_text.is_empty() {
        for piece in operand_text.split(',') {
            operands.push(parse_operand(piece, op, line)?);
        }
    }

    let mut instr = Instr::new(op);
    instr.guard = guard;
    instr.modifier = modifier;
    instr.target = target.unwrap_or(0);
    let ndst = dst_count(op).min(operands.len());
    for (slot, operand) in operands.drain(..ndst).enumerate() {
        instr.dsts[slot] = match operand {
            Operand::R(r) => Dst::R(r),
            Operand::R64(r) => Dst::R64(r),
            Operand::P(p) => Dst::P(p),
            other => return Err(err(line, format!("operand `{other}` cannot be a destination"))),
        };
    }
    if operands.len() > crate::instr::MAX_SRCS {
        return Err(err(line, format!("too many source operands ({})", operands.len())));
    }
    for (slot, operand) in operands.into_iter().enumerate() {
        instr.srcs[slot] = operand;
    }
    Ok(instr)
}

/// Parse a kernel listing produced by [`disasm::kernel`](crate::disasm::kernel).
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] for malformed headers or lines, and
/// propagates [`Kernel::new`] validation (e.g. out-of-range branches).
pub fn parse_kernel(text: &str) -> Result<Kernel, IsaError> {
    let mut lines = text.lines().enumerate();
    let (_, header) =
        lines.find(|(_, l)| !l.trim().is_empty()).ok_or_else(|| err(1, "empty kernel listing"))?;
    let header = header.trim();
    let rest = header.strip_prefix(".kernel ").ok_or_else(|| err(1, "missing `.kernel` header"))?;
    let (name, meta) = match rest.find("//") {
        Some(pos) => (rest[..pos].trim(), &rest[pos + 2..]),
        None => (rest.trim(), ""),
    };
    let shared_bytes = meta
        .split(',')
        .find_map(|part| {
            part.trim().strip_suffix(" shared bytes").and_then(|n| n.trim().parse::<u32>().ok())
        })
        .unwrap_or(0);

    let mut instrs = Vec::new();
    for (idx, l) in lines {
        if l.trim().is_empty() {
            continue;
        }
        instrs.push(parse_line(l, idx + 1)?);
    }
    Kernel::new(name, instrs, shared_bytes)
}

/// Parse a module listing produced by [`disasm::module`](crate::disasm::module).
///
/// # Errors
///
/// Returns [`IsaError::ParseError`] for malformed headers or lines.
pub fn parse_module(text: &str) -> Result<Module, IsaError> {
    let mut lines = text.lines().peekable();
    let header = loop {
        match lines.next() {
            Some(l) if l.trim().is_empty() => continue,
            Some(l) => break l.trim().to_string(),
            None => return Err(err(1, "empty module listing")),
        }
    };
    let rest = header.strip_prefix(".module ").ok_or_else(|| err(1, "missing `.module` header"))?;
    let name = match rest.find("//") {
        Some(pos) => rest[..pos].trim().to_string(),
        None => rest.trim().to_string(),
    };

    let mut kernels = Vec::new();
    let mut current: Vec<String> = Vec::new();
    for l in lines {
        if l.trim().starts_with(".kernel ") {
            if !current.is_empty() {
                kernels.push(parse_kernel(&current.join("\n"))?);
            }
            current = vec![l.to_string()];
        } else if !l.trim().is_empty() {
            if current.is_empty() {
                return Err(err(1, format!("instruction before any `.kernel` header: `{l}`")));
            }
            current.push(l.to_string());
        }
    }
    if !current.is_empty() {
        kernels.push(parse_kernel(&current.join("\n"))?);
    }
    Ok(Module::new(name, kernels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::KernelBuilder;
    use crate::disasm;

    #[test]
    fn parse_single_lines() {
        let i = parse_line("/*0001*/  FADD R3, R1, R2", 1).expect("parse");
        assert_eq!(i.op, Opcode::FADD);
        assert_eq!(i.dsts[0], Dst::R(Reg(3)));
        assert_eq!(i.srcs[0], Operand::R(Reg(1)));

        let i = parse_line("@!P1 ISETP.LT.AND P0, R5, 0x64, PT", 1).expect("parse");
        assert_eq!(i.guard, Guard::if_false(PReg(1)));
        assert_eq!(i.modifier, Modifier::CmpBool(CmpOp::Lt, BoolOp::And));
        assert_eq!(i.dsts[0], Dst::P(PReg(0)));
        assert_eq!(i.srcs[1], Operand::Imm(0x64));
        assert_eq!(i.srcs[2], Operand::P(PReg::PT));

        let i = parse_line("LDG.64 R10.64, [R4+0x8]", 3).expect("parse");
        assert_eq!(i.dsts[0], Dst::R64(Reg(10)));
        assert_eq!(
            i.srcs[0],
            Operand::Mem(MemRef { base: Reg(4), offset: 8, space: Space::Global })
        );

        let i = parse_line("LDS R1, [R2-0x10]", 4).expect("parse");
        assert_eq!(
            i.srcs[0],
            Operand::Mem(MemRef { base: Reg(2), offset: -16, space: Space::Shared })
        );

        let i = parse_line("BRA ->7", 5).expect("parse");
        assert_eq!(i.op, Opcode::BRA);
        assert_eq!(i.target, 7);

        let i = parse_line("S2R R0, SR_TID.X", 6).expect("parse");
        assert_eq!(i.srcs[0], Operand::Sr(SpecialReg::TidX));
    }

    #[test]
    fn parse_errors_are_located() {
        for (text, needle) in [
            ("WAT R0, R1", "unknown opcode"),
            ("FADD R0, R999", "bad register"),
            ("FADD.ZOOM R0, R1, R2", "unknown modifier"),
            ("STG [R4", "unterminated"),
            ("BRA ->banana", "bad branch target"),
            ("S2R R0, SR_NOPE", "unknown special register"),
        ] {
            let e = parse_line(text, 42).unwrap_err();
            match e {
                IsaError::ParseError { line, reason } => {
                    assert_eq!(line, 42, "{text}");
                    assert!(reason.contains(needle), "{text}: {reason}");
                }
                other => panic!("{text}: wrong error {other:?}"),
            }
        }
    }

    #[test]
    fn kernel_listing_roundtrip() {
        let mut k = KernelBuilder::new("rt");
        k.shared_bytes(128);
        let (a, b) = (Reg(2), Reg(4));
        k.ldc(a, 0);
        k.s2r(b, SpecialReg::GlobalTidX);
        k.isetp(PReg(0), CmpOp::Ge, b, 100);
        let end = k.new_label();
        k.bra_if(PReg(0), end);
        k.ldg(Reg(6), a, 4);
        k.ffma(Reg(6), Reg(6), Reg(6), Reg(6));
        k.stg(a, 4, Reg(6));
        k.bind(end);
        k.exit();
        let kernel = k.finish();
        let listing = disasm::kernel(&kernel);
        let back = parse_kernel(&listing).expect("parse");
        assert_eq!(back, kernel);
    }

    #[test]
    fn module_listing_roundtrip() {
        let mut k1 = KernelBuilder::new("alpha");
        k1.dadd(Reg(2), Reg(4), Reg(6));
        k1.exit();
        let mut k2 = KernelBuilder::new("beta");
        k2.mufu(MufuFunc::Sqrt, Reg(1), Reg(0));
        k2.exit();
        let module = Module::new("m", vec![k1.finish(), k2.finish()]);
        let listing = disasm::module(&module);
        let back = parse_module(&listing).expect("parse");
        assert_eq!(back, module);
    }

    #[test]
    fn shared_bytes_survive_roundtrip() {
        let mut k = KernelBuilder::new("sh");
        k.shared_bytes(4096);
        k.exit();
        let kernel = k.finish();
        let back = parse_kernel(&disasm::kernel(&kernel)).expect("parse");
        assert_eq!(back.shared_bytes(), 4096);
    }

    #[test]
    fn rejects_headerless_input() {
        assert!(parse_kernel("FADD R0, R1, R2").is_err());
        assert!(parse_module("FADD R0, R1, R2").is_err());
        assert!(parse_kernel("").is_err());
    }
}
