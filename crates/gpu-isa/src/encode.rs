//! Binary encoding of modules, kernels, and instructions.
//!
//! NVBitFI's central usability claim is that it needs *no source code*: it
//! operates on the binary the driver loads. To reproduce that usage model,
//! kernels in this workspace are shipped between the "compiler" (the
//! [`asm`](crate::asm) builder) and the runtime as opaque byte blobs in the
//! format defined here, and the NVBit layer *decodes those bytes* at kernel
//! launch — it never sees builder structures.
//!
//! The format is fixed-width per instruction (34 bytes) for simplicity; real
//! Volta SASS is 16 bytes per instruction, but nothing in the fault-injection
//! pipeline depends on encoding density.
//!
//! ```text
//! module  := magic:[u8;8] version:u16 name:str kernel_count:u32 kernel*
//! kernel  := name:str shared_bytes:u32 instr_count:u32 instr*
//! str     := len:u16 utf8-bytes
//! instr   := opcode:u16 guard:u8 mod_tag:u8 mod_payload:u16
//!            (dst_tag:u8 dst_payload:u8)*2 (src_tag:u8 src_payload:u32)*4
//!            target:u32
//! ```
//!
//! All integers are little-endian.

use crate::{
    Dst, Guard, Instr, IsaError, Kernel, MemRef, Modifier, Module, Opcode, Operand, PReg, Reg,
    Space, SpecialReg,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes at the start of every module binary.
pub const MAGIC: [u8; 8] = *b"GSASSMOD";

/// Current format version.
pub const VERSION: u16 = 1;

/// Encoded size of one instruction record, in bytes.
pub const INSTR_BYTES: usize = 34;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, context: &'static str) -> Result<String, IsaError> {
    if buf.remaining() < 2 {
        return Err(IsaError::Truncated { context });
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(IsaError::Truncated { context });
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| IsaError::BadKernelName)
}

fn encode_dst(d: Dst) -> (u8, u8) {
    match d {
        Dst::None => (0, 0),
        Dst::R(r) => (1, r.0),
        Dst::R64(r) => (2, r.0),
        Dst::P(p) => (3, p.0),
    }
}

fn decode_dst(tag: u8, payload: u8) -> Result<Dst, IsaError> {
    Ok(match tag {
        0 => Dst::None,
        1 => Dst::R(Reg(payload)),
        2 => Dst::R64(Reg(payload)),
        3 => Dst::P(PReg(payload & 0x7)),
        _ => return Err(IsaError::MalformedDest { tag }),
    })
}

fn encode_src(s: Operand) -> (u8, u32) {
    match s {
        Operand::None => (0, 0),
        Operand::R(r) => (1, r.0 as u32),
        Operand::R64(r) => (2, r.0 as u32),
        Operand::P(p) => (3, p.0 as u32),
        Operand::NotP(p) => (4, p.0 as u32),
        Operand::Imm(v) => (5, v),
        Operand::Mem(m) => {
            (6, (m.base.0 as u32) | ((m.space as u32) << 8) | ((m.offset as u16 as u32) << 16))
        }
        Operand::Sr(sr) => (7, sr.encode() as u32),
    }
}

fn decode_src(tag: u8, payload: u32) -> Result<Operand, IsaError> {
    Ok(match tag {
        0 => Operand::None,
        1 => Operand::R(Reg(payload as u8)),
        2 => Operand::R64(Reg(payload as u8)),
        3 => Operand::P(PReg(payload as u8 & 0x7)),
        4 => Operand::NotP(PReg(payload as u8 & 0x7)),
        5 => Operand::Imm(payload),
        6 => {
            let base = Reg(payload as u8);
            let space = *Space::ALL
                .get(((payload >> 8) & 0xff) as usize)
                .ok_or(IsaError::MalformedOperand { tag })?;
            let offset = (payload >> 16) as u16 as i16;
            Operand::Mem(MemRef { base, offset, space })
        }
        7 => Operand::Sr(
            SpecialReg::decode(payload as u8).ok_or(IsaError::MalformedOperand { tag })?,
        ),
        _ => return Err(IsaError::MalformedOperand { tag }),
    })
}

/// Encode a single instruction into `buf`.
pub fn encode_instr(i: &Instr, buf: &mut BytesMut) {
    buf.put_u16_le(i.op.encode());
    buf.put_u8(i.guard.encode());
    let (mtag, mpayload) = i.modifier.encode();
    buf.put_u8(mtag);
    buf.put_u16_le(mpayload);
    for d in i.dsts {
        let (t, p) = encode_dst(d);
        buf.put_u8(t);
        buf.put_u8(p);
    }
    for s in i.srcs {
        let (t, p) = encode_src(s);
        buf.put_u8(t);
        buf.put_u32_le(p);
    }
    buf.put_u32_le(i.target);
}

/// Decode a single instruction from `buf`.
///
/// # Errors
///
/// Returns [`IsaError::Truncated`] if fewer than [`INSTR_BYTES`] bytes remain
/// and other [`IsaError`] variants for malformed fields.
pub fn decode_instr(buf: &mut Bytes) -> Result<Instr, IsaError> {
    if buf.remaining() < INSTR_BYTES {
        return Err(IsaError::Truncated { context: "instruction record" });
    }
    let raw_op = buf.get_u16_le();
    let op = Opcode::decode(raw_op).ok_or(IsaError::UnknownOpcode { value: raw_op })?;
    let guard = Guard::decode(buf.get_u8());
    let mtag = buf.get_u8();
    let mpayload = buf.get_u16_le();
    let modifier = Modifier::decode(mtag, mpayload)?;
    let mut dsts = [Dst::None; crate::instr::MAX_DSTS];
    for d in &mut dsts {
        let t = buf.get_u8();
        let p = buf.get_u8();
        *d = decode_dst(t, p)?;
    }
    let mut srcs = [Operand::None; crate::instr::MAX_SRCS];
    for s in &mut srcs {
        let t = buf.get_u8();
        let p = buf.get_u32_le();
        *s = decode_src(t, p)?;
    }
    let target = buf.get_u32_le();
    Ok(Instr { guard, op, modifier, dsts, srcs, target })
}

/// Encode a whole module into a byte vector (the "cubin").
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(
        64 + m.kernels().iter().map(|k| 32 + k.len() * INSTR_BYTES).sum::<usize>(),
    );
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    put_str(&mut buf, m.name());
    buf.put_u32_le(m.kernels().len() as u32);
    for k in m.kernels() {
        put_str(&mut buf, k.name());
        buf.put_u32_le(k.shared_bytes());
        buf.put_u32_le(k.len() as u32);
        for i in k.instrs() {
            encode_instr(i, &mut buf);
        }
    }
    buf.to_vec()
}

/// Decode a module binary produced by [`encode_module`].
///
/// # Errors
///
/// Returns an [`IsaError`] describing the first malformed field: bad magic,
/// unsupported version, truncation, unknown opcodes, or malformed operands.
pub fn decode_module(bytes: &[u8]) -> Result<Module, IsaError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 8 {
        return Err(IsaError::Truncated { context: "module magic" });
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(IsaError::BadMagic { found: magic });
    }
    if buf.remaining() < 2 {
        return Err(IsaError::Truncated { context: "module version" });
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(IsaError::BadVersion { found: version });
    }
    let mod_name = get_str(&mut buf, "module name")?;
    if buf.remaining() < 4 {
        return Err(IsaError::Truncated { context: "kernel count" });
    }
    let nkernels = buf.get_u32_le();
    let mut kernels = Vec::with_capacity(nkernels as usize);
    for _ in 0..nkernels {
        let name = get_str(&mut buf, "kernel name")?;
        if buf.remaining() < 8 {
            return Err(IsaError::Truncated { context: "kernel header" });
        }
        let shared_bytes = buf.get_u32_le();
        let ninstr = buf.get_u32_le();
        let mut instrs = Vec::with_capacity(ninstr as usize);
        for _ in 0..ninstr {
            instrs.push(decode_instr(&mut buf)?);
        }
        kernels.push(Kernel::new(name, instrs, shared_bytes)?);
    }
    Ok(Module::new(mod_name, kernels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Modifier};

    fn sample_instr() -> Instr {
        let mut i = Instr::new(Opcode::ISETP);
        i.guard = Guard::if_false(PReg(3));
        i.modifier = Modifier::Cmp(CmpOp::Ge);
        i.dsts[0] = Dst::P(PReg(0));
        i.srcs[0] = Operand::R(Reg(5));
        i.srcs[1] = Operand::Imm(100);
        i
    }

    fn sample_module() -> Module {
        let mut load = Instr::new(Opcode::LDG);
        load.dsts[0] = Dst::R(Reg(2));
        load.srcs[0] = Operand::Mem(MemRef { base: Reg(4), offset: -8, space: Space::Global });
        let mut exit = Instr::new(Opcode::EXIT);
        exit.target = 0;
        let k1 = Kernel::new("alpha", vec![sample_instr(), load, exit], 128).expect("k1");
        let k2 = Kernel::new("beta", vec![Instr::new(Opcode::EXIT)], 0).expect("k2");
        Module::new("mymod", vec![k1, k2])
    }

    #[test]
    fn instr_record_is_fixed_width() {
        let mut buf = BytesMut::new();
        encode_instr(&sample_instr(), &mut buf);
        assert_eq!(buf.len(), INSTR_BYTES);
    }

    #[test]
    fn instr_roundtrip() {
        let i = sample_instr();
        let mut buf = BytesMut::new();
        encode_instr(&i, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_instr(&mut bytes).expect("decode");
        assert_eq!(back, i);
    }

    #[test]
    fn module_roundtrip() {
        let m = sample_module();
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_module(&sample_module());
        bytes[0] = b'X';
        assert!(matches!(decode_module(&bytes), Err(IsaError::BadMagic { .. })));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode_module(&sample_module());
        bytes[8] = 0xFF;
        assert!(matches!(decode_module(&bytes), Err(IsaError::BadVersion { .. })));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode_module(&sample_module());
        for cut in 0..bytes.len() {
            let res = decode_module(&bytes[..cut]);
            assert!(res.is_err(), "decode of {cut}-byte prefix should fail");
        }
        assert!(decode_module(&bytes).is_ok());
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut bytes = encode_module(&sample_module());
        // The first instruction record starts after magic(8)+version(2)+
        // modname(2+5)+kcount(4)+kname(2+5)+shared(4)+ninstr(4).
        let off = 8 + 2 + 7 + 4 + 7 + 4 + 4;
        bytes[off] = 0xFF;
        bytes[off + 1] = 0xFF;
        assert!(matches!(decode_module(&bytes), Err(IsaError::UnknownOpcode { value: 0xFFFF })));
    }

    #[test]
    fn mem_operand_negative_offset_roundtrip() {
        let m = MemRef { base: Reg(9), offset: -1234, space: Space::Shared };
        let (t, p) = encode_src(Operand::Mem(m));
        assert_eq!(decode_src(t, p).expect("decode"), Operand::Mem(m));
    }
}
