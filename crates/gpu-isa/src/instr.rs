//! The instruction, kernel, and module model.

use crate::{ExecFamily, IsaError, Modifier, Opcode, PReg, Reg, SpecialReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Space {
    /// Device-global memory, shared by all blocks.
    Global = 0,
    /// Per-block shared memory (scratchpad).
    Shared = 1,
    /// Per-thread local memory (register spills).
    Local = 2,
    /// Read-only constant memory (kernel parameters live here).
    Const = 3,
}

impl Space {
    /// All spaces in encoding order.
    pub const ALL: [Space; 4] = [Space::Global, Space::Shared, Space::Local, Space::Const];
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Const => "const",
        };
        f.write_str(s)
    }
}

/// A memory operand `[Rbase + offset]` in a given address space.
///
/// Addresses are 32-bit in this ISA (a documented simplification over real
/// SASS's 64-bit register pairs); the effective address is
/// `regs[base].wrapping_add(offset as u32)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Signed byte offset added to the base.
    pub offset: i16,
    /// Address space accessed.
    pub space: Space,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else if self.offset > 0 {
            write!(f, "[{}+{:#x}]", self.base, self.offset)
        } else {
            write!(f, "[{}-{:#x}]", self.base, -(self.offset as i32))
        }
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Operand {
    /// Unused source slot.
    #[default]
    None,
    /// General-purpose register.
    R(Reg),
    /// 64-bit register pair starting at an (even) register.
    R64(Reg),
    /// Predicate register read as 0/1.
    P(PReg),
    /// Negated predicate register.
    NotP(PReg),
    /// 32-bit immediate (also carries `f32` bit patterns).
    Imm(u32),
    /// Memory reference (loads, stores, atomics).
    Mem(MemRef),
    /// Special register (for `S2R`).
    Sr(SpecialReg),
}

impl Operand {
    /// `true` for [`Operand::None`].
    #[inline]
    pub fn is_none(self) -> bool {
        self == Operand::None
    }

    /// An `f32` immediate, stored as its bit pattern.
    #[inline]
    pub fn imm_f32(v: f32) -> Operand {
        Operand::Imm(v.to_bits())
    }

    /// An `i32` immediate, stored two's-complement.
    #[inline]
    pub fn imm_i32(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::None => write!(f, "<none>"),
            Operand::R(r) => write!(f, "{r}"),
            Operand::R64(r) => write!(f, "{r}.64"),
            Operand::P(p) => write!(f, "{p}"),
            Operand::NotP(p) => write!(f, "!{p}"),
            Operand::Imm(v) => write!(f, "{:#x}", v),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Sr(sr) => write!(f, "{sr}"),
        }
    }
}

/// A destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dst {
    /// Unused destination slot.
    #[default]
    None,
    /// 32-bit general-purpose register.
    R(Reg),
    /// 64-bit register pair starting at an (even) register.
    R64(Reg),
    /// Predicate register.
    P(PReg),
}

impl Dst {
    /// `true` for [`Dst::None`].
    #[inline]
    pub fn is_none(self) -> bool {
        self == Dst::None
    }

    /// The 32-bit general-purpose registers this destination writes
    /// (a register pair contributes both halves), excluding `RZ`.
    pub fn gpr_units(self) -> impl Iterator<Item = Reg> {
        let (a, b) = match self {
            Dst::R(r) if !r.is_zero_reg() => (Some(r), None),
            Dst::R64(r) if !r.is_zero_reg() => (Some(r), Some(r.pair_hi())),
            _ => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// The predicate register this destination writes, excluding `PT`.
    pub fn pred_unit(self) -> Option<PReg> {
        match self {
            Dst::P(p) if !p.is_true_reg() => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::None => write!(f, "<none>"),
            Dst::R(r) => write!(f, "{r}"),
            Dst::R64(r) => write!(f, "{r}.64"),
            Dst::P(p) => write!(f, "{p}"),
        }
    }
}

/// A predicate guard: `@P3` or `@!P3`.
///
/// Instructions whose guard evaluates false are skipped *and excluded from
/// the fault-injection profile* (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// Guarding predicate register.
    pub pred: PReg,
    /// If `true`, the guard passes when the predicate is *false* (`@!P`).
    pub negated: bool,
}

impl Guard {
    /// The unconditional guard `@PT`.
    pub const ALWAYS: Guard = Guard { pred: PReg::PT, negated: false };

    /// A positive guard `@P`.
    #[inline]
    pub fn if_true(pred: PReg) -> Guard {
        Guard { pred, negated: false }
    }

    /// A negative guard `@!P`.
    #[inline]
    pub fn if_false(pred: PReg) -> Guard {
        Guard { pred, negated: true }
    }

    /// `true` if the guard is statically unconditional (`@PT`).
    #[inline]
    pub fn is_always(self) -> bool {
        self.pred.is_true_reg() && !self.negated
    }

    /// Evaluate against a predicate value.
    #[inline]
    pub fn passes(self, pred_value: bool) -> bool {
        pred_value != self.negated
    }

    /// Encode into one byte for the module binary format.
    pub fn encode(self) -> u8 {
        (self.pred.0 & 0x7) | if self.negated { 0x8 } else { 0 }
    }

    /// Decode from the byte produced by [`Guard::encode`].
    pub fn decode(b: u8) -> Guard {
        Guard { pred: PReg(b & 0x7), negated: b & 0x8 != 0 }
    }
}

impl Default for Guard {
    fn default() -> Self {
        Guard::ALWAYS
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// One architectural register unit an instruction reads or writes: a
/// 32-bit GPR unit or a predicate register.
///
/// Register pairs contribute both halves; `RZ` and `PT` never appear in
/// def/use sets (reads of them are constants, writes to them are
/// discarded). This is the vocabulary of the dataflow analyses in
/// `gpu-analysis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegSlot {
    /// A general-purpose 32-bit register unit (`R0`–`R254`).
    Gpr(Reg),
    /// A predicate register (`P0`–`P6`).
    Pred(PReg),
}

impl fmt::Display for RegSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegSlot::Gpr(r) => write!(f, "{r}"),
            RegSlot::Pred(p) => write!(f, "{p}"),
        }
    }
}

fn push_slot(out: &mut Vec<RegSlot>, slot: RegSlot) {
    let hardwired = match slot {
        RegSlot::Gpr(r) => r.is_zero_reg(),
        RegSlot::Pred(p) => p.is_true_reg(),
    };
    if !hardwired && !out.contains(&slot) {
        out.push(slot);
    }
}

/// Maximum number of source operands per instruction.
pub const MAX_SRCS: usize = 4;

/// Maximum number of destination operands per instruction.
pub const MAX_DSTS: usize = 2;

/// A single SASS-like instruction.
///
/// Branch targets ([`Instr::target`]) are instruction indices within the
/// kernel, resolved by the assembler from labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Predicate guard (`@PT` when unconditional).
    pub guard: Guard,
    /// The opcode.
    pub op: Opcode,
    /// Opcode modifier (comparison, width, function, …).
    pub modifier: Modifier,
    /// Destination operands.
    pub dsts: [Dst; MAX_DSTS],
    /// Source operands.
    pub srcs: [Operand; MAX_SRCS],
    /// Branch target (instruction index) for control-flow opcodes.
    pub target: u32,
}

impl Instr {
    /// A new unguarded instruction with no operands.
    pub fn new(op: Opcode) -> Instr {
        Instr {
            guard: Guard::ALWAYS,
            op,
            modifier: Modifier::None,
            dsts: [Dst::None; MAX_DSTS],
            srcs: [Operand::None; MAX_SRCS],
            target: 0,
        }
    }

    /// All 32-bit GPR destination units (register pairs expand to both
    /// halves; `RZ` writes are excluded because they are discarded).
    ///
    /// This is the set the transient injector's *destination register*
    /// parameter (Table II) selects from for GPR-targeting groups.
    pub fn gpr_dests(&self) -> Vec<Reg> {
        self.dsts.iter().flat_map(|d| d.gpr_units()).collect()
    }

    /// All predicate destination units (excluding `PT`).
    pub fn pred_dests(&self) -> Vec<PReg> {
        self.dsts.iter().filter_map(|d| d.pred_unit()).collect()
    }

    /// `true` if the instruction has at least one architecturally visible
    /// destination (GPR or predicate).
    pub fn has_dest(&self) -> bool {
        !self.gpr_dests().is_empty() || !self.pred_dests().is_empty()
    }

    /// The number of used source slots.
    pub fn src_count(&self) -> usize {
        self.srcs.iter().filter(|s| !s.is_none()).count()
    }

    /// The memory reference, if any source is a [`Operand::Mem`].
    pub fn mem_ref(&self) -> Option<MemRef> {
        self.srcs.iter().find_map(|s| match s {
            Operand::Mem(m) => Some(*m),
            _ => None,
        })
    }

    /// The register units this instruction *writes* (its def set):
    /// GPR destinations with pairs expanded plus predicate destinations,
    /// excluding the hard-wired `RZ`/`PT`, deduplicated.
    pub fn defs(&self) -> Vec<RegSlot> {
        let mut out = Vec::new();
        for d in self.dsts {
            for r in d.gpr_units() {
                push_slot(&mut out, RegSlot::Gpr(r));
            }
            if let Some(p) = d.pred_unit() {
                push_slot(&mut out, RegSlot::Pred(p));
            }
        }
        out
    }

    /// The register units this instruction *reads* (its use set):
    /// source registers (pairs expanded), predicate sources, memory base
    /// addresses, and the guard predicate when the instruction is
    /// predicated — excluding `RZ`/`PT`, deduplicated.
    ///
    /// A 64-bit source contributes both pair halves even where an opcode's
    /// semantics only consume the low word, so the set over-approximates:
    /// it is a superset of the units any execution actually reads, which is
    /// the sound direction for liveness-based dead-fault pruning. `VOTE`
    /// without a predicate source contributes `R0`, matching the
    /// simulator's cross-lane fallback read.
    pub fn uses(&self) -> Vec<RegSlot> {
        let mut out = Vec::new();
        if !self.guard.is_always() {
            push_slot(&mut out, RegSlot::Pred(self.guard.pred));
        }
        for s in self.srcs {
            match s {
                Operand::R(r) => push_slot(&mut out, RegSlot::Gpr(r)),
                Operand::R64(r) => {
                    push_slot(&mut out, RegSlot::Gpr(r));
                    push_slot(&mut out, RegSlot::Gpr(r.pair_hi()));
                }
                Operand::P(p) | Operand::NotP(p) => push_slot(&mut out, RegSlot::Pred(p)),
                Operand::Mem(m) => push_slot(&mut out, RegSlot::Gpr(m.base)),
                Operand::Imm(_) | Operand::Sr(_) | Operand::None => {}
            }
        }
        if self.op.family() == ExecFamily::Vote
            && !matches!(self.srcs[0], Operand::P(_) | Operand::NotP(_))
        {
            push_slot(&mut out, RegSlot::Gpr(Reg(0)));
        }
        out
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always() {
            write!(f, "{} ", self.guard)?;
        }
        write!(f, "{}{}", self.op, self.modifier)?;
        let mut first = true;
        for d in self.dsts.iter().filter(|d| !d.is_none()) {
            write!(f, "{} {d}", if first { "" } else { "," })?;
            first = false;
        }
        for s in self.srcs.iter().filter(|s| !s.is_none()) {
            write!(f, "{} {s}", if first { "" } else { "," })?;
            first = false;
        }
        if matches!(self.op, Opcode::BRA | Opcode::JMP | Opcode::CALL | Opcode::JCAL) {
            write!(f, "{} ->{}", if first { "" } else { "," }, self.target)?;
        }
        Ok(())
    }
}

/// A compiled kernel: a name, an instruction stream, and resource needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    shared_bytes: u32,
}

impl Kernel {
    /// Assemble a kernel from parts.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadKernelName`] for an empty name and
    /// [`IsaError::BranchOutOfRange`] if any branch target exceeds the
    /// instruction count.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        shared_bytes: u32,
    ) -> Result<Kernel, IsaError> {
        let name = name.into();
        if name.is_empty() {
            return Err(IsaError::BadKernelName);
        }
        for i in &instrs {
            if matches!(i.op, Opcode::BRA | Opcode::JMP) && i.target as usize >= instrs.len() {
                return Err(IsaError::BranchOutOfRange { target: i.target, len: instrs.len() });
            }
        }
        Ok(Kernel { name, instrs, shared_bytes })
    }

    /// The kernel's (mangled) name — the identity used by the fault
    /// injector's *kernel name* parameter.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Bytes of shared memory the kernel requires per block.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Number of *static* instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the kernel has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A loadable module: a named collection of kernels, the unit shipped as a
/// binary (the analog of a `cubin`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    kernels: Vec<Kernel>,
}

impl Module {
    /// Create a module from kernels.
    pub fn new(name: impl Into<String>, kernels: Vec<Kernel>) -> Module {
        Module { name: name.into(), kernels }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernels in the module.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    fn fadd(dst: u8, a: u8, b: u8) -> Instr {
        let mut i = Instr::new(Opcode::FADD);
        i.dsts[0] = Dst::R(Reg(dst));
        i.srcs[0] = Operand::R(Reg(a));
        i.srcs[1] = Operand::R(Reg(b));
        i
    }

    #[test]
    fn gpr_dests_for_scalar_and_pair() {
        let i = fadd(3, 1, 2);
        assert_eq!(i.gpr_dests(), vec![Reg(3)]);

        let mut d = Instr::new(Opcode::DADD);
        d.dsts[0] = Dst::R64(Reg(4));
        assert_eq!(d.gpr_dests(), vec![Reg(4), Reg(5)]);
    }

    #[test]
    fn rz_dest_is_not_injectable() {
        let mut i = Instr::new(Opcode::FADD);
        i.dsts[0] = Dst::R(Reg::RZ);
        assert!(i.gpr_dests().is_empty());
        assert!(!i.has_dest());
    }

    #[test]
    fn pred_dests() {
        let mut i = Instr::new(Opcode::ISETP);
        i.dsts[0] = Dst::P(PReg(2));
        assert_eq!(i.pred_dests(), vec![PReg(2)]);
        assert!(i.gpr_dests().is_empty());
        assert!(i.has_dest());
    }

    #[test]
    fn defs_cover_gpr_and_pred_dests() {
        let i = fadd(3, 1, 2);
        assert_eq!(i.defs(), vec![RegSlot::Gpr(Reg(3))]);

        let mut d = Instr::new(Opcode::DADD);
        d.dsts[0] = Dst::R64(Reg(6));
        d.dsts[1] = Dst::P(PReg(1));
        assert_eq!(
            d.defs(),
            vec![RegSlot::Gpr(Reg(6)), RegSlot::Gpr(Reg(7)), RegSlot::Pred(PReg(1))]
        );

        let mut z = Instr::new(Opcode::FADD);
        z.dsts[0] = Dst::R(Reg::RZ);
        z.dsts[1] = Dst::P(PReg::PT);
        assert!(z.defs().is_empty());
    }

    #[test]
    fn uses_cover_sources_guard_and_mem_base() {
        let mut i = fadd(3, 1, 2);
        i.guard = Guard::if_false(PReg(2));
        assert_eq!(
            i.uses(),
            vec![RegSlot::Pred(PReg(2)), RegSlot::Gpr(Reg(1)), RegSlot::Gpr(Reg(2))]
        );

        // Pair source expands; RZ and PT never appear; duplicates collapse.
        let mut d = Instr::new(Opcode::DMUL);
        d.srcs[0] = Operand::R64(Reg(4));
        d.srcs[1] = Operand::R64(Reg(4));
        d.srcs[2] = Operand::R(Reg::RZ);
        d.srcs[3] = Operand::P(PReg::PT);
        assert_eq!(d.uses(), vec![RegSlot::Gpr(Reg(4)), RegSlot::Gpr(Reg(5))]);

        let mut l = Instr::new(Opcode::LDG);
        l.srcs[0] = Operand::Mem(MemRef { base: Reg(9), offset: 4, space: Space::Global });
        assert_eq!(l.uses(), vec![RegSlot::Gpr(Reg(9))]);
    }

    #[test]
    fn vote_without_pred_source_reads_r0() {
        // The simulator's cross-lane snapshot reads R0 as the vote
        // predicate when srcs[0] is not a predicate operand.
        let v = Instr::new(Opcode::VOTE);
        assert_eq!(v.uses(), vec![RegSlot::Gpr(Reg(0))]);

        let mut vp = Instr::new(Opcode::VOTE);
        vp.srcs[0] = Operand::NotP(PReg(3));
        assert_eq!(vp.uses(), vec![RegSlot::Pred(PReg(3))]);
    }

    #[test]
    fn guard_eval() {
        assert!(Guard::ALWAYS.passes(true));
        assert!(Guard::if_true(PReg(0)).passes(true));
        assert!(!Guard::if_true(PReg(0)).passes(false));
        assert!(Guard::if_false(PReg(0)).passes(false));
        assert!(!Guard::if_false(PReg(0)).passes(true));
    }

    #[test]
    fn guard_encode_roundtrip() {
        for p in 0..8u8 {
            for neg in [false, true] {
                let g = Guard { pred: PReg(p), negated: neg };
                assert_eq!(Guard::decode(g.encode()), g);
            }
        }
    }

    #[test]
    fn kernel_rejects_empty_name() {
        assert_eq!(Kernel::new("", vec![], 0), Err(IsaError::BadKernelName));
    }

    #[test]
    fn kernel_rejects_wild_branch() {
        let mut b = Instr::new(Opcode::BRA);
        b.target = 42;
        let err = Kernel::new("k", vec![b], 0).unwrap_err();
        assert!(matches!(err, IsaError::BranchOutOfRange { target: 42, len: 1 }));
    }

    #[test]
    fn module_lookup() {
        let k = Kernel::new("k1", vec![fadd(0, 1, 2)], 0).expect("kernel");
        let m = Module::new("m", vec![k]);
        assert!(m.kernel("k1").is_some());
        assert!(m.kernel("nope").is_none());
    }

    #[test]
    fn instr_display_contains_operands() {
        let i = fadd(3, 1, 2);
        let s = i.to_string();
        assert!(s.contains("FADD"), "{s}");
        assert!(s.contains("R3"), "{s}");
        assert!(s.contains("R1"), "{s}");
    }

    #[test]
    fn guarded_instr_display() {
        let mut i = fadd(3, 1, 2);
        i.guard = Guard::if_false(PReg(1));
        assert!(i.to_string().starts_with("@!P1 "));
    }
}
