//! Software IEEE 754 binary16 ("half") conversions.
//!
//! The packed-FP16 opcodes (`HADD2`, `HMUL2`, `HFMA2`, …) operate on two
//! halves packed into one 32-bit register, computing in f32 and rounding
//! back to f16 — the same model as the hardware's HFMA pipelines. These
//! conversions implement binary16 exactly, including subnormals, infinities,
//! NaN, and round-to-nearest-even.

/// Convert binary16 bits to `f32` (exact).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits >> 15) & 1) as u32;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x3FF) as u32;
    let out = match (exp, frac) {
        (0, 0) => sign << 31, // ±0
        (0, f) => {
            // subnormal: value = f × 2^-24; normalize into f32. The msb of
            // `f` sits at bit 31 − lz, so the f32 exponent is 134 − lz and
            // the mantissa needs that msb moved to (implicit) bit 23.
            let lz = f.leading_zeros();
            let frac32 = (f << (lz - 8)) & 0x007F_FFFF;
            let exp32 = 134 - lz;
            (sign << 31) | (exp32 << 23) | frac32
        }
        (0x1F, 0) => (sign << 31) | 0x7F80_0000, // ±inf
        (0x1F, f) => (sign << 31) | 0x7F80_0000 | (f << 13) | 0x0040_0000, // NaN (quiet)
        (e, f) => {
            let exp32 = e + 127 - 15;
            (sign << 31) | (exp32 << 23) | (f << 13)
        }
    };
    f32::from_bits(out)
}

/// Convert `f32` to binary16 bits, round-to-nearest-even; overflow → ±inf.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 31) & 1) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // inf / NaN
        return (sign << 15)
            | 0x7C00
            | if frac != 0 { 0x200 | ((frac >> 13) as u16 & 0x3FF) } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return (sign << 15) | 0x7C00; // overflow → inf
    }
    if unbiased >= -14 {
        // normal half
        let exp16 = (unbiased + 15) as u32;
        let mant = frac >> 13;
        let round_bits = frac & 0x1FFF;
        let mut h = ((sign as u32) << 15) | (exp16 << 10) | mant;
        // round to nearest even
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant & 1) == 1) {
            h += 1; // may carry into the exponent — that is correct rounding
        }
        return h as u16;
    }
    if unbiased >= -25 {
        // subnormal half: implicit 1 participates
        let mant = frac | 0x0080_0000;
        let shift = (-14 - unbiased + 13) as u32;
        let sub = mant >> shift;
        let round_bits = mant & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = ((sign as u32) << 15) | sub;
        if round_bits > halfway || (round_bits == halfway && (sub & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    sign << 15 // underflow → ±0
}

/// The low half of a packed register, as `f32`.
#[inline]
pub fn unpack_lo(packed: u32) -> f32 {
    f16_to_f32(packed as u16)
}

/// The high half of a packed register, as `f32`.
#[inline]
pub fn unpack_hi(packed: u32) -> f32 {
    f16_to_f32((packed >> 16) as u16)
}

/// Pack two `f32` values into half2 format (lo in bits 0..16).
#[inline]
pub fn pack(lo: f32, hi: f32) -> u32 {
    (f32_to_f16(lo) as u32) | ((f32_to_f16(hi) as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, 0.25, 1024.0, -2048.0, 65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "{v}");
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(f32_to_f16(1.0), 0x3C00);
        assert_eq!(f32_to_f16(-2.0), 0xC000);
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(65504.0), 0x7BFF, "f16 max");
        assert_eq!(f16_to_f32(0x3C00), 1.0);
        assert_eq!(f16_to_f32(0x7BFF), 65504.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16(70000.0), 0x7C00);
        assert_eq!(f32_to_f16(-70000.0), 0xFC00);
        assert_eq!(f16_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xFC00), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_propagates() {
        let h = f32_to_f16(f32::NAN);
        assert_eq!(h & 0x7C00, 0x7C00);
        assert_ne!(h & 0x3FF, 0);
        assert!(f16_to_f32(h).is_nan());
    }

    #[test]
    fn subnormals() {
        // smallest positive subnormal: 2^-24
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), 0x0001);
        assert_eq!(f16_to_f32(0x0001), tiny);
        // largest subnormal: (1023/1024) × 2^-14
        let big_sub = f16_to_f32(0x03FF);
        assert!((big_sub - (1023.0 / 1024.0) * 2.0f32.powi(-14)).abs() < 1e-12);
        assert_eq!(f32_to_f16(big_sub), 0x03FF);
        // underflow to zero
        assert_eq!(f32_to_f16(1e-30), 0x0000);
        assert_eq!(f32_to_f16(-1e-30), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between two halves; ties to even.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3C00, "ties to even (mantissa 0)");
        // 1.0 + 3×2^-11 is halfway with odd low bit; rounds up.
        let halfway_odd = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway_odd), 0x3C02);
        // rounding carry into the exponent
        let almost_two = 2.0 - 2.0f32.powi(-12);
        assert_eq!(f32_to_f16(almost_two), 0x4000, "carry yields exactly 2.0");
    }

    #[test]
    fn pack_unpack() {
        let p = pack(1.5, -2.0);
        assert_eq!(unpack_lo(p), 1.5);
        assert_eq!(unpack_hi(p), -2.0);
        assert_eq!(p, 0x3E00 | (0xC000 << 16));
    }

    #[test]
    fn every_f16_roundtrips_through_f32() {
        for bits in 0..=u16::MAX {
            let f = f16_to_f32(bits);
            if f.is_nan() {
                assert!(f16_to_f32(f32_to_f16(f)).is_nan());
            } else {
                assert_eq!(f32_to_f16(f), bits, "bits {bits:#06x} -> {f}");
            }
        }
    }
}
