//! The opcode table: 171 opcodes, their classes, and execution families.
//!
//! The NVBitFI paper (Table III) states that "the Volta ISA contains 171
//! opcodes", and its permanent-fault campaign runs one experiment per opcode.
//! This table therefore enumerates exactly 171 opcodes modeled after the
//! public Volta/Maxwell/Kepler SASS mnemonic lists. Each opcode carries:
//!
//! * an [`InstrClass`] — the destination-based classification that the
//!   transient-fault *instruction group id* (Table II) is built from, and
//! * an [`ExecFamily`] — the semantic family the simulator dispatches on.
//!   Opcodes the synthetic workloads never use map to
//!   [`ExecFamily::Unimplemented`]; executing one raises an
//!   illegal-instruction trap, exactly like running an unsupported encoding
//!   on real hardware.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Destination-based instruction classification.
///
/// This mirrors the grouping the paper's Table II builds its *arch state id*
/// (instruction group) parameter from: FP64 and FP32 arithmetic, memory
/// reads, predicate-only writers, instructions with no destination, and
/// everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// FP64 arithmetic writing a general-purpose register pair.
    Fp64,
    /// FP32 (or packed FP16) arithmetic writing a general-purpose register.
    Fp32,
    /// Instructions that read from memory (loads, atomics, texture reads).
    Ld,
    /// Instructions that write *only* predicate registers.
    Pr,
    /// Instructions with no destination register (stores, branches, barriers).
    NoDest,
    /// All remaining GPR-writing instructions (integer, moves, conversions).
    Other,
}

impl InstrClass {
    /// All classes, in a stable order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::Fp64,
        InstrClass::Fp32,
        InstrClass::Ld,
        InstrClass::Pr,
        InstrClass::NoDest,
        InstrClass::Other,
    ];
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Fp64 => "FP64",
            InstrClass::Fp32 => "FP32",
            InstrClass::Ld => "LD",
            InstrClass::Pr => "PR",
            InstrClass::NoDest => "NODEST",
            InstrClass::Other => "OTHER",
        };
        f.write_str(s)
    }
}

/// Semantic family an opcode executes as.
///
/// The simulator implements one interpreter routine per family; several
/// opcodes (e.g. `FADD` and `FADD32I`) share a family and differ only in
/// their operand kinds. Families the synthetic workloads cannot reach are
/// collapsed into [`ExecFamily::Unimplemented`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// The variant names *are* the semantics (FAdd = FP32 add, …); per-variant
// doc comments would only repeat them.
#[allow(missing_docs)]
pub enum ExecFamily {
    // FP32
    FAdd,
    FMul,
    FFma,
    FMnMx,
    FSel,
    FSet,
    FSetP,
    FChk,
    Mufu,
    FSwzAdd,
    FCmp,
    FRnd,
    // Packed FP16 (two halves per 32-bit register)
    HAdd2,
    HMul2,
    HFma2,
    HSet2,
    HSetP2,
    HMnMx2,
    // FP64 (register pairs)
    DAdd,
    DMul,
    DFma,
    DMnMx,
    DSet,
    DSetP,
    // Integer
    IAdd,
    ISub,
    IAdd3,
    IMad,
    IMul,
    IMnMx,
    IScAdd,
    Lea,
    ISet,
    ISetP,
    ICmp,
    ISad,
    IAbs,
    Lop,
    Lop3,
    Popc,
    Flo,
    Brev,
    Bmsk,
    Bfe,
    Bfi,
    Shf,
    Shl,
    Shr,
    Xmad,
    // Conversions
    F2F,
    F2I,
    I2F,
    I2I,
    // Data movement / predicates
    Mov,
    Sel,
    Prmt,
    Sgxt,
    Shfl,
    S2R,
    P2R,
    R2P,
    PSet,
    PSetP,
    PLop3,
    Vote,
    // Memory
    Ld,
    Atom,
    St,
    Red,
    // Control
    Bra,
    Brx,
    Exit,
    Bar,
    Call,
    Ret,
    Kill,
    Bpt,
    Nop,
    MemFence,
    NanoSleep,
    /// Convergence-management hints (`BSSY`, `SSY`, `WARPSYNC`, …): no-ops in
    /// this per-thread-PC execution model.
    ReconvHint,
    /// Executing this opcode raises an illegal-instruction trap.
    Unimplemented,
}

macro_rules! opcodes {
    ($(($variant:ident, $mnemonic:literal, $class:ident, $family:ident)),+ $(,)?) => {
        /// A SASS-like opcode. See the module documentation for the
        /// table's provenance; there are exactly `OPCODE_COUNT` (171)
        /// opcodes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        // Variants are the SASS mnemonics themselves; see the table below.
        #[allow(non_camel_case_types, missing_docs)]
        #[repr(u16)]
        pub enum Opcode {
            $($variant),+
        }

        /// Number of opcodes in the ISA (the paper's Volta count: 171).
        pub const OPCODE_COUNT: usize = [$(Opcode::$variant),+].len();

        impl Opcode {
            /// Every opcode, ordered by encoding value.
            pub const ALL: [Opcode; OPCODE_COUNT] = [$(Opcode::$variant),+];

            /// The SASS mnemonic, e.g. `"FADD"`.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic),+
                }
            }

            /// Destination-based class used for fault-injection grouping.
            pub fn class(self) -> InstrClass {
                match self {
                    $(Opcode::$variant => InstrClass::$class),+
                }
            }

            /// Semantic family the simulator dispatches on.
            pub fn family(self) -> ExecFamily {
                match self {
                    $(Opcode::$variant => ExecFamily::$family),+
                }
            }
        }
    };
}

opcodes! {
    // --- FP32 arithmetic ------------------------------------------------
    (FADD, "FADD", Fp32, FAdd),
    (FADD32I, "FADD32I", Fp32, FAdd),
    (FCMP, "FCMP", Fp32, FCmp),
    (FFMA, "FFMA", Fp32, FFma),
    (FFMA32I, "FFMA32I", Fp32, FFma),
    (FMNMX, "FMNMX", Fp32, FMnMx),
    (FMUL, "FMUL", Fp32, FMul),
    (FMUL32I, "FMUL32I", Fp32, FMul),
    (FSEL, "FSEL", Fp32, FSel),
    (FSET, "FSET", Fp32, FSet),
    (FSWZADD, "FSWZADD", Fp32, FSwzAdd),
    (MUFU, "MUFU", Fp32, Mufu),
    (RRO, "RRO", Fp32, Unimplemented),
    (IPA, "IPA", Fp32, Unimplemented),
    (FRND, "FRND", Fp32, FRnd),
    // Packed FP16 (unused by the synthetic workloads)
    (HADD2, "HADD2", Fp32, HAdd2),
    (HADD2_32I, "HADD2_32I", Fp32, HAdd2),
    (HFMA2, "HFMA2", Fp32, HFma2),
    (HFMA2_32I, "HFMA2_32I", Fp32, HFma2),
    (HMNMX2, "HMNMX2", Fp32, HMnMx2),
    (HMUL2, "HMUL2", Fp32, HMul2),
    (HMUL2_32I, "HMUL2_32I", Fp32, HMul2),
    (HSET2, "HSET2", Fp32, HSet2),
    (HMMA, "HMMA", Fp32, Unimplemented),
    // --- FP64 arithmetic ------------------------------------------------
    (DADD, "DADD", Fp64, DAdd),
    (DFMA, "DFMA", Fp64, DFma),
    (DMUL, "DMUL", Fp64, DMul),
    (DMNMX, "DMNMX", Fp64, DMnMx),
    (DSET, "DSET", Fp64, DSet),
    // --- Predicate-only writers ------------------------------------------
    (FCHK, "FCHK", Pr, FChk),
    (FSETP, "FSETP", Pr, FSetP),
    (HSETP2, "HSETP2", Pr, HSetP2),
    (DSETP, "DSETP", Pr, DSetP),
    (ISETP, "ISETP", Pr, ISetP),
    (VSETP, "VSETP", Pr, Unimplemented),
    (R2P, "R2P", Pr, R2P),
    (PLOP3, "PLOP3", Pr, PLop3),
    (PSETP, "PSETP", Pr, PSetP),
    // --- Integer arithmetic / bit manipulation ---------------------------
    (BMSK, "BMSK", Other, Bmsk),
    (BREV, "BREV", Other, Brev),
    (BFE, "BFE", Other, Bfe),
    (BFI, "BFI", Other, Bfi),
    (FLO, "FLO", Other, Flo),
    (IABS, "IABS", Other, IAbs),
    (IADD, "IADD", Other, IAdd),
    (IADD3, "IADD3", Other, IAdd3),
    (IADD32I, "IADD32I", Other, IAdd),
    (ISUB, "ISUB", Other, ISub),
    (ICMP, "ICMP", Other, ICmp),
    (IDP, "IDP", Other, Unimplemented),
    (IDP4A, "IDP4A", Other, Unimplemented),
    (IMAD, "IMAD", Other, IMad),
    (IMAD32I, "IMAD32I", Other, IMad),
    (IMADSP, "IMADSP", Other, Unimplemented),
    (IMNMX, "IMNMX", Other, IMnMx),
    (IMUL, "IMUL", Other, IMul),
    (IMUL32I, "IMUL32I", Other, IMul),
    (ISAD, "ISAD", Other, ISad),
    (ISCADD, "ISCADD", Other, IScAdd),
    (ISCADD32I, "ISCADD32I", Other, IScAdd),
    (ISET, "ISET", Other, ISet),
    (LEA, "LEA", Other, Lea),
    (LOP, "LOP", Other, Lop),
    (LOP3, "LOP3", Other, Lop3),
    (LOP32I, "LOP32I", Other, Lop),
    (POPC, "POPC", Other, Popc),
    (SHF, "SHF", Other, Shf),
    (SHL, "SHL", Other, Shl),
    (SHR, "SHR", Other, Shr),
    (VABSDIFF, "VABSDIFF", Other, Unimplemented),
    (VABSDIFF4, "VABSDIFF4", Other, Unimplemented),
    (VADD, "VADD", Other, Unimplemented),
    (VMAD, "VMAD", Other, Unimplemented),
    (VMNMX, "VMNMX", Other, Unimplemented),
    (VSET, "VSET", Other, Unimplemented),
    (VSHL, "VSHL", Other, Unimplemented),
    (VSHR, "VSHR", Other, Unimplemented),
    (XMAD, "XMAD", Other, Xmad),
    (IMMA, "IMMA", Other, Unimplemented),
    (BMMA, "BMMA", Other, Unimplemented),
    // --- Conversions ------------------------------------------------------
    (F2F, "F2F", Other, F2F),
    (F2I, "F2I", Other, F2I),
    (I2F, "I2F", Other, I2F),
    (I2I, "I2I", Other, I2I),
    (I2IP, "I2IP", Other, Unimplemented),
    // --- Data movement ----------------------------------------------------
    (MOV, "MOV", Other, Mov),
    (MOV32I, "MOV32I", Other, Mov),
    (MOVM, "MOVM", Other, Unimplemented),
    (PRMT, "PRMT", Other, Prmt),
    (SEL, "SEL", Other, Sel),
    (SGXT, "SGXT", Other, Sgxt),
    (SHFL, "SHFL", Other, Shfl),
    (CS2R, "CS2R", Other, S2R),
    (S2R, "S2R", Other, S2R),
    (B2R, "B2R", Other, Unimplemented),
    (GETLMEMBASE, "GETLMEMBASE", Other, Unimplemented),
    (LEPC, "LEPC", Other, Unimplemented),
    (P2R, "P2R", Other, P2R),
    (PSET, "PSET", Other, PSet),
    (MATCH, "MATCH", Other, Unimplemented),
    (QSPC, "QSPC", Other, Unimplemented),
    (VOTE, "VOTE", Other, Vote),
    (AL2P, "AL2P", Other, Unimplemented),
    (OUT, "OUT", Other, Unimplemented),
    (SUQ, "SUQ", Other, Unimplemented),
    // --- Memory reads -------------------------------------------------------
    (LD, "LD", Ld, Ld),
    (LDC, "LDC", Ld, Ld),
    (LDG, "LDG", Ld, Ld),
    (LDL, "LDL", Ld, Ld),
    (LDS, "LDS", Ld, Ld),
    (LDU, "LDU", Ld, Ld),
    (LDSM, "LDSM", Ld, Unimplemented),
    (ATOM, "ATOM", Ld, Atom),
    (ATOMS, "ATOMS", Ld, Atom),
    (ATOMG, "ATOMG", Ld, Atom),
    (TEX, "TEX", Ld, Unimplemented),
    (TLD, "TLD", Ld, Unimplemented),
    (TLD4, "TLD4", Ld, Unimplemented),
    (TMML, "TMML", Ld, Unimplemented),
    (TXA, "TXA", Ld, Unimplemented),
    (TXD, "TXD", Ld, Unimplemented),
    (TXQ, "TXQ", Ld, Unimplemented),
    (SUATOM, "SUATOM", Ld, Unimplemented),
    (SULD, "SULD", Ld, Unimplemented),
    (PIXLD, "PIXLD", Ld, Unimplemented),
    // --- Memory writes / cache control (no destination) --------------------
    (ST, "ST", NoDest, St),
    (STG, "STG", NoDest, St),
    (STL, "STL", NoDest, St),
    (STS, "STS", NoDest, St),
    (RED, "RED", NoDest, Red),
    (CCTL, "CCTL", NoDest, Nop),
    (CCTLL, "CCTLL", NoDest, Nop),
    (CCTLT, "CCTLT", NoDest, Nop),
    (ERRBAR, "ERRBAR", NoDest, Nop),
    (MEMBAR, "MEMBAR", NoDest, MemFence),
    (SURED, "SURED", NoDest, Unimplemented),
    (SUST, "SUST", NoDest, Unimplemented),
    (R2B, "R2B", NoDest, Unimplemented),
    // --- Control flow -------------------------------------------------------
    (BMOV, "BMOV", NoDest, Nop),
    (BPT, "BPT", NoDest, Bpt),
    (BRA, "BRA", NoDest, Bra),
    (BREAK, "BREAK", NoDest, ReconvHint),
    (BRX, "BRX", NoDest, Brx),
    (BSSY, "BSSY", NoDest, ReconvHint),
    (BSYNC, "BSYNC", NoDest, ReconvHint),
    (CALL, "CALL", NoDest, Call),
    (EXIT, "EXIT", NoDest, Exit),
    (JMP, "JMP", NoDest, Bra),
    (JMX, "JMX", NoDest, Brx),
    (KILL, "KILL", NoDest, Kill),
    (NANOSLEEP, "NANOSLEEP", NoDest, NanoSleep),
    (RET, "RET", NoDest, Ret),
    (RPCMOV, "RPCMOV", NoDest, Unimplemented),
    (RTT, "RTT", NoDest, Unimplemented),
    (WARPSYNC, "WARPSYNC", NoDest, ReconvHint),
    (YIELD, "YIELD", NoDest, ReconvHint),
    (SSY, "SSY", NoDest, ReconvHint),
    (PBK, "PBK", NoDest, ReconvHint),
    (PCNT, "PCNT", NoDest, ReconvHint),
    (CONT, "CONT", NoDest, ReconvHint),
    (SYNC, "SYNC", NoDest, ReconvHint),
    (PRET, "PRET", NoDest, Unimplemented),
    (PLONGJMP, "PLONGJMP", NoDest, Unimplemented),
    (JCAL, "JCAL", NoDest, Call),
    // --- Miscellaneous --------------------------------------------------------
    (BAR, "BAR", NoDest, Bar),
    (DEPBAR, "DEPBAR", NoDest, Nop),
    (NOP, "NOP", NoDest, Nop),
    (PMTRIG, "PMTRIG", NoDest, Nop),
    (SETCTAID, "SETCTAID", NoDest, Unimplemented),
    (SETLMEMBASE, "SETLMEMBASE", NoDest, Unimplemented),
    (VOTE_VTG, "VOTE_VTG", NoDest, Unimplemented),
}

impl Opcode {
    /// Decode from the `u16` produced by [`Opcode::encode`].
    ///
    /// Returns `None` for out-of-range values, which the module loader
    /// reports as a malformed binary.
    pub fn decode(v: u16) -> Option<Opcode> {
        Opcode::ALL.get(v as usize).copied()
    }

    /// Stable `u16` encoding used by the module binary format and by the
    /// permanent-fault *opcode id* parameter (Table III).
    #[inline]
    pub fn encode(self) -> u16 {
        self as u16
    }

    /// `true` if this opcode writes at least one general-purpose register.
    #[inline]
    pub fn writes_gpr(self) -> bool {
        matches!(
            self.class(),
            InstrClass::Fp32 | InstrClass::Fp64 | InstrClass::Ld | InstrClass::Other
        )
    }

    /// `true` if this opcode writes only predicate registers.
    #[inline]
    pub fn writes_pred_only(self) -> bool {
        self.class() == InstrClass::Pr
    }

    /// `true` if this opcode has no destination register at all.
    #[inline]
    pub fn has_no_dest(self) -> bool {
        self.class() == InstrClass::NoDest
    }

    /// `true` if the simulator implements real semantics for this opcode.
    #[inline]
    pub fn is_implemented(self) -> bool {
        self.family() != ExecFamily::Unimplemented
    }

    /// Look an opcode up by its mnemonic, e.g. `"FADD"`.
    pub fn from_mnemonic(m: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| op.mnemonic() == m)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_171_opcodes() {
        // The paper's Volta opcode count (Table III).
        assert_eq!(OPCODE_COUNT, 171);
        assert_eq!(Opcode::ALL.len(), 171);
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<_> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), OPCODE_COUNT);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::decode(op.encode()), Some(op));
        }
        assert_eq!(Opcode::decode(OPCODE_COUNT as u16), None);
        assert_eq!(Opcode::decode(u16::MAX), None);
    }

    #[test]
    fn from_mnemonic_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("NOT_AN_OPCODE"), None);
    }

    #[test]
    fn class_predicates_are_consistent() {
        for op in Opcode::ALL {
            let c = op.class();
            assert_eq!(op.writes_gpr(), !matches!(c, InstrClass::Pr | InstrClass::NoDest));
            assert_eq!(op.writes_pred_only(), c == InstrClass::Pr);
            assert_eq!(op.has_no_dest(), c == InstrClass::NoDest);
        }
    }

    #[test]
    fn every_class_is_populated() {
        for class in InstrClass::ALL {
            assert!(Opcode::ALL.iter().any(|o| o.class() == class), "no opcode in class {class}");
        }
    }

    #[test]
    fn core_workload_opcodes_are_implemented() {
        // The opcodes the synthetic SpecACCEL-like workloads rely on must
        // have real semantics.
        for m in [
            "FADD", "FMUL", "FFMA", "FSETP", "DADD", "DMUL", "DFMA", "DSETP", "IADD", "IADD3",
            "IMAD", "ISETP", "MOV", "S2R", "LDG", "STG", "LDS", "STS", "BRA", "EXIT", "BAR", "SHL",
            "SHR", "LOP3", "MUFU", "I2F", "F2I", "SEL", "SHFL", "ATOMG",
        ] {
            let op = Opcode::from_mnemonic(m).expect(m);
            assert!(op.is_implemented(), "{m} must be implemented");
        }
    }

    #[test]
    fn class_counts_match_design() {
        let count = |c: InstrClass| Opcode::ALL.iter().filter(|o| o.class() == c).count();
        assert_eq!(count(InstrClass::Fp32), 24);
        assert_eq!(count(InstrClass::Fp64), 5);
        assert_eq!(count(InstrClass::Pr), 9);
        assert_eq!(count(InstrClass::Ld), 20);
        assert_eq!(count(InstrClass::NoDest), 46);
        assert_eq!(count(InstrClass::Other), 67);
    }
}
