//! Error type for ISA-level operations (encoding, decoding, assembling).

use std::fmt;

/// Errors produced while encoding, decoding, or assembling kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The module binary did not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The module binary declares an unsupported format version.
    BadVersion {
        /// The version actually found.
        found: u16,
    },
    /// The binary ended in the middle of a record.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// An opcode value outside the 171-opcode table.
    UnknownOpcode {
        /// The raw encoding value.
        value: u16,
    },
    /// A modifier `(tag, payload)` pair that does not decode.
    MalformedModifier {
        /// The raw tag byte.
        tag: u8,
        /// The raw payload.
        payload: u16,
    },
    /// An operand tag byte that does not decode.
    MalformedOperand {
        /// The raw tag byte.
        tag: u8,
    },
    /// A destination tag byte that does not decode.
    MalformedDest {
        /// The raw tag byte.
        tag: u8,
    },
    /// A kernel name that is not valid UTF-8 or is empty.
    BadKernelName,
    /// A branch in the assembler references a label that was never placed.
    UnresolvedLabel {
        /// The label's name.
        label: String,
    },
    /// A label was defined twice in the same kernel.
    DuplicateLabel {
        /// The label's name.
        label: String,
    },
    /// A branch target instruction index is out of range for the kernel.
    BranchOutOfRange {
        /// The out-of-range target.
        target: u32,
        /// Number of instructions in the kernel.
        len: usize,
    },
    /// A text listing failed to parse.
    ParseError {
        /// 1-based line number within the listing.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadMagic { found } => {
                write!(f, "module binary has bad magic bytes {found:02x?}")
            }
            IsaError::BadVersion { found } => {
                write!(f, "unsupported module format version {found}")
            }
            IsaError::Truncated { context } => {
                write!(f, "module binary truncated while decoding {context}")
            }
            IsaError::UnknownOpcode { value } => write!(f, "unknown opcode encoding {value}"),
            IsaError::MalformedModifier { tag, payload } => {
                write!(f, "malformed modifier tag {tag} payload {payload:#x}")
            }
            IsaError::MalformedOperand { tag } => write!(f, "malformed operand tag {tag}"),
            IsaError::MalformedDest { tag } => write!(f, "malformed destination tag {tag}"),
            IsaError::BadKernelName => write!(f, "kernel name is empty or not valid UTF-8"),
            IsaError::UnresolvedLabel { label } => {
                write!(f, "branch references unplaced label `{label}`")
            }
            IsaError::DuplicateLabel { label } => write!(f, "label `{label}` defined twice"),
            IsaError::BranchOutOfRange { target, len } => {
                write!(f, "branch target {target} out of range for kernel of {len} instructions")
            }
            IsaError::ParseError { line, reason } => {
                write!(f, "listing line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let samples: Vec<IsaError> = vec![
            IsaError::BadMagic { found: [0; 8] },
            IsaError::BadVersion { found: 9 },
            IsaError::Truncated { context: "kernel header" },
            IsaError::UnknownOpcode { value: 9999 },
            IsaError::MalformedModifier { tag: 99, payload: 1 },
            IsaError::MalformedOperand { tag: 9 },
            IsaError::MalformedDest { tag: 9 },
            IsaError::BadKernelName,
            IsaError::UnresolvedLabel { label: "loop".into() },
            IsaError::DuplicateLabel { label: "loop".into() },
            IsaError::BranchOutOfRange { target: 10, len: 3 },
            IsaError::ParseError { line: 3, reason: "bad register".into() },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
