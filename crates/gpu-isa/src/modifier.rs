//! Instruction modifiers: comparison operators, boolean combiners, memory
//! widths, MUFU functions, and rounding modes.
//!
//! Real SASS packs these into opcode suffixes (`ISETP.GE.AND`,
//! `LDG.E.64`, `MUFU.RCP`). We model them as a single [`Modifier`] value per
//! instruction with a compact, stable binary encoding.

use crate::IsaError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator for `*SETP` / `*SET` / `*CMP` / `*MNMX` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CmpOp {
    /// Less than.
    Lt = 0,
    /// Equal.
    Eq = 1,
    /// Less than or equal.
    Le = 2,
    /// Greater than.
    Gt = 3,
    /// Not equal.
    Ne = 4,
    /// Greater than or equal.
    Ge = 5,
}

impl CmpOp {
    /// All comparison operators in encoding order.
    pub const ALL: [CmpOp; 6] = [CmpOp::Lt, CmpOp::Eq, CmpOp::Le, CmpOp::Gt, CmpOp::Ne, CmpOp::Ge];

    /// Evaluate on a pre-computed three-way ordering.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ne => ord != Equal,
            CmpOp::Ge => ord != Less,
        }
    }

    /// SASS-style suffix, e.g. `GE`.
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Eq => "EQ",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ne => "NE",
            CmpOp::Ge => "GE",
        }
    }
}

/// Boolean combiner for `SETP`-style instructions (`result = cmp BOOL pred`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum BoolOp {
    /// Logical AND.
    And = 0,
    /// Logical OR.
    Or = 1,
    /// Logical XOR.
    Xor = 2,
}

impl BoolOp {
    /// All boolean combiners in encoding order.
    pub const ALL: [BoolOp; 3] = [BoolOp::And, BoolOp::Or, BoolOp::Xor];

    /// Apply the combiner.
    #[inline]
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::And => a && b,
            BoolOp::Or => a || b,
            BoolOp::Xor => a != b,
        }
    }

    /// SASS-style suffix, e.g. `AND`.
    pub fn suffix(self) -> &'static str {
        match self {
            BoolOp::And => "AND",
            BoolOp::Or => "OR",
            BoolOp::Xor => "XOR",
        }
    }
}

/// Access width for memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MemWidth {
    /// 8-bit (zero-extended on load).
    B8 = 0,
    /// 16-bit (zero-extended on load).
    B16 = 1,
    /// 32-bit.
    B32 = 2,
    /// 64-bit (register pair).
    B64 = 3,
}

impl MemWidth {
    /// All widths in encoding order.
    pub const ALL: [MemWidth; 4] = [MemWidth::B8, MemWidth::B16, MemWidth::B32, MemWidth::B64];

    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B8 => 1,
            MemWidth::B16 => 2,
            MemWidth::B32 => 4,
            MemWidth::B64 => 8,
        }
    }

    /// SASS-style suffix, e.g. `64` in `LDG.E.64`.
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::B8 => "U8",
            MemWidth::B16 => "U16",
            MemWidth::B32 => "32",
            MemWidth::B64 => "64",
        }
    }
}

/// Transcendental function selector for `MUFU` (multi-function unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MufuFunc {
    /// Reciprocal `1/x`.
    Rcp = 0,
    /// Reciprocal square root.
    Rsq = 1,
    /// Square root.
    Sqrt = 2,
    /// Base-2 exponential.
    Ex2 = 3,
    /// Base-2 logarithm.
    Lg2 = 4,
    /// Sine (argument in radians).
    Sin = 5,
    /// Cosine (argument in radians).
    Cos = 6,
}

impl MufuFunc {
    /// All functions in encoding order.
    pub const ALL: [MufuFunc; 7] = [
        MufuFunc::Rcp,
        MufuFunc::Rsq,
        MufuFunc::Sqrt,
        MufuFunc::Ex2,
        MufuFunc::Lg2,
        MufuFunc::Sin,
        MufuFunc::Cos,
    ];

    /// Apply the function to an `f32`.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            MufuFunc::Rcp => 1.0 / x,
            MufuFunc::Rsq => 1.0 / x.sqrt(),
            MufuFunc::Sqrt => x.sqrt(),
            MufuFunc::Ex2 => x.exp2(),
            MufuFunc::Lg2 => x.log2(),
            MufuFunc::Sin => x.sin(),
            MufuFunc::Cos => x.cos(),
        }
    }

    /// SASS-style suffix, e.g. `RCP`.
    pub fn suffix(self) -> &'static str {
        match self {
            MufuFunc::Rcp => "RCP",
            MufuFunc::Rsq => "RSQ",
            MufuFunc::Sqrt => "SQRT",
            MufuFunc::Ex2 => "EX2",
            MufuFunc::Lg2 => "LG2",
            MufuFunc::Sin => "SIN",
            MufuFunc::Cos => "COS",
        }
    }
}

/// Rounding / conversion mode for `FRND`, `F2I`, `F2F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RoundMode {
    /// Round to nearest even.
    Rn = 0,
    /// Round toward zero (truncate).
    Rz = 1,
    /// Round toward negative infinity (floor).
    Rm = 2,
    /// Round toward positive infinity (ceiling).
    Rp = 3,
}

impl RoundMode {
    /// All rounding modes in encoding order.
    pub const ALL: [RoundMode; 4] = [RoundMode::Rn, RoundMode::Rz, RoundMode::Rm, RoundMode::Rp];

    /// Round an `f64` to an integral `f64` using this mode.
    #[inline]
    pub fn round_f64(self, x: f64) -> f64 {
        match self {
            RoundMode::Rn => {
                // round-half-to-even
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - (r - x).signum()
                } else {
                    r
                }
            }
            RoundMode::Rz => x.trunc(),
            RoundMode::Rm => x.floor(),
            RoundMode::Rp => x.ceil(),
        }
    }

    /// SASS-style suffix, e.g. `TRUNC` for round-toward-zero.
    pub fn suffix(self) -> &'static str {
        match self {
            RoundMode::Rn => "RN",
            RoundMode::Rz => "TRUNC",
            RoundMode::Rm => "FLOOR",
            RoundMode::Rp => "CEIL",
        }
    }
}

/// The full modifier attached to an instruction.
///
/// Most instructions carry [`Modifier::None`]. Comparison instructions carry
/// a [`CmpOp`] and optionally a [`BoolOp`]; memory instructions carry a
/// [`MemWidth`]; `MUFU` a [`MufuFunc`]; conversions a [`RoundMode`]; `LOP3` /
/// `PLOP3` an 8-bit truth table; `SHFL` a shuffle mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Modifier {
    /// No modifier.
    #[default]
    None,
    /// Comparison with an implicit `AND PT` combiner.
    Cmp(CmpOp),
    /// Comparison with an explicit boolean combiner.
    CmpBool(CmpOp, BoolOp),
    /// Memory access width.
    Width(MemWidth),
    /// Transcendental function selector.
    Func(MufuFunc),
    /// Rounding mode for conversions.
    Round(RoundMode),
    /// `LOP3`/`PLOP3` 8-bit truth table (`immLut`).
    Lut(u8),
    /// Warp-shuffle mode.
    Shfl(ShflMode),
    /// Atomic read-modify-write operation.
    AtomOp(AtomOp),
}

/// Warp shuffle source-lane computation for `SHFL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ShflMode {
    /// Source lane = absolute lane index.
    Idx = 0,
    /// Source lane = own lane − delta.
    Up = 1,
    /// Source lane = own lane + delta.
    Down = 2,
    /// Source lane = own lane XOR mask (butterfly).
    Bfly = 3,
}

impl ShflMode {
    /// All shuffle modes in encoding order.
    pub const ALL: [ShflMode; 4] = [ShflMode::Idx, ShflMode::Up, ShflMode::Down, ShflMode::Bfly];

    /// SASS-style suffix, e.g. `BFLY`.
    pub fn suffix(self) -> &'static str {
        match self {
            ShflMode::Idx => "IDX",
            ShflMode::Up => "UP",
            ShflMode::Down => "DOWN",
            ShflMode::Bfly => "BFLY",
        }
    }
}

/// Read-modify-write operation for `ATOM`/`ATOMS`/`ATOMG`/`RED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AtomOp {
    /// Integer add.
    Add = 0,
    /// Integer minimum.
    Min = 1,
    /// Integer maximum.
    Max = 2,
    /// Exchange.
    Exch = 3,
    /// Compare-and-swap (`srcs[1]` compare, `srcs[2]` swap).
    Cas = 4,
    /// Bitwise AND.
    And = 5,
    /// Bitwise OR.
    Or = 6,
    /// Bitwise XOR.
    Xor = 7,
    /// FP32 add.
    FAdd = 8,
}

impl AtomOp {
    /// All atomic operations in encoding order.
    pub const ALL: [AtomOp; 9] = [
        AtomOp::Add,
        AtomOp::Min,
        AtomOp::Max,
        AtomOp::Exch,
        AtomOp::Cas,
        AtomOp::And,
        AtomOp::Or,
        AtomOp::Xor,
        AtomOp::FAdd,
    ];

    /// SASS-style suffix, e.g. `CAS`.
    pub fn suffix(self) -> &'static str {
        match self {
            AtomOp::Add => "ADD",
            AtomOp::Min => "MIN",
            AtomOp::Max => "MAX",
            AtomOp::Exch => "EXCH",
            AtomOp::Cas => "CAS",
            AtomOp::And => "AND",
            AtomOp::Or => "OR",
            AtomOp::Xor => "XOR",
            AtomOp::FAdd => "FADD",
        }
    }
}

impl Modifier {
    /// Encode into a `(tag, payload)` pair for the module binary format.
    pub fn encode(self) -> (u8, u16) {
        match self {
            Modifier::None => (0, 0),
            Modifier::Cmp(c) => (1, c as u16),
            Modifier::CmpBool(c, b) => (2, (c as u16) | ((b as u16) << 8)),
            Modifier::Width(w) => (3, w as u16),
            Modifier::Func(f) => (4, f as u16),
            Modifier::Round(r) => (5, r as u16),
            Modifier::Lut(l) => (6, l as u16),
            Modifier::Shfl(m) => (7, m as u16),
            Modifier::AtomOp(a) => (8, a as u16),
        }
    }

    /// Decode from the `(tag, payload)` pair produced by [`Modifier::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MalformedModifier`] if the tag or payload is out
    /// of range.
    pub fn decode(tag: u8, payload: u16) -> Result<Modifier, IsaError> {
        let bad = || IsaError::MalformedModifier { tag, payload };
        Ok(match tag {
            0 => Modifier::None,
            1 => Modifier::Cmp(*CmpOp::ALL.get(payload as usize).ok_or_else(bad)?),
            2 => {
                let c = *CmpOp::ALL.get((payload & 0xff) as usize).ok_or_else(bad)?;
                let b = *BoolOp::ALL.get((payload >> 8) as usize).ok_or_else(bad)?;
                Modifier::CmpBool(c, b)
            }
            3 => Modifier::Width(*MemWidth::ALL.get(payload as usize).ok_or_else(bad)?),
            4 => Modifier::Func(*MufuFunc::ALL.get(payload as usize).ok_or_else(bad)?),
            5 => Modifier::Round(*RoundMode::ALL.get(payload as usize).ok_or_else(bad)?),
            6 => Modifier::Lut(u8::try_from(payload).map_err(|_| bad())?),
            7 => Modifier::Shfl(*ShflMode::ALL.get(payload as usize).ok_or_else(bad)?),
            8 => Modifier::AtomOp(*AtomOp::ALL.get(payload as usize).ok_or_else(bad)?),
            _ => return Err(bad()),
        })
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Modifier::None => Ok(()),
            Modifier::Cmp(c) => write!(f, ".{}", c.suffix()),
            Modifier::CmpBool(c, b) => write!(f, ".{}.{}", c.suffix(), b.suffix()),
            Modifier::Width(w) => write!(f, ".{}", w.suffix()),
            Modifier::Func(m) => write!(f, ".{}", m.suffix()),
            Modifier::Round(r) => write!(f, ".{}", r.suffix()),
            Modifier::Lut(l) => write!(f, ".LUT{l:#04x}"),
            Modifier::Shfl(m) => write!(f, ".{}", m.suffix()),
            Modifier::AtomOp(a) => write!(f, ".{}", a.suffix()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(!CmpOp::Lt.eval(Ordering::Equal));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Ge.eval(Ordering::Greater));
        assert!(CmpOp::Ne.eval(Ordering::Less));
        assert!(!CmpOp::Eq.eval(Ordering::Greater));
    }

    #[test]
    fn bool_op_eval() {
        assert!(BoolOp::And.eval(true, true));
        assert!(!BoolOp::And.eval(true, false));
        assert!(BoolOp::Or.eval(false, true));
        assert!(BoolOp::Xor.eval(true, false));
        assert!(!BoolOp::Xor.eval(true, true));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B8.bytes(), 1);
        assert_eq!(MemWidth::B16.bytes(), 2);
        assert_eq!(MemWidth::B32.bytes(), 4);
        assert_eq!(MemWidth::B64.bytes(), 8);
    }

    #[test]
    fn mufu_eval_sanity() {
        assert!((MufuFunc::Rcp.eval(4.0) - 0.25).abs() < 1e-6);
        assert!((MufuFunc::Sqrt.eval(9.0) - 3.0).abs() < 1e-6);
        assert!((MufuFunc::Ex2.eval(3.0) - 8.0).abs() < 1e-6);
        assert!((MufuFunc::Lg2.eval(8.0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn round_modes() {
        assert_eq!(RoundMode::Rz.round_f64(2.7), 2.0);
        assert_eq!(RoundMode::Rz.round_f64(-2.7), -2.0);
        assert_eq!(RoundMode::Rm.round_f64(2.7), 2.0);
        assert_eq!(RoundMode::Rm.round_f64(-2.1), -3.0);
        assert_eq!(RoundMode::Rp.round_f64(2.1), 3.0);
        assert_eq!(RoundMode::Rn.round_f64(2.5), 2.0);
        assert_eq!(RoundMode::Rn.round_f64(3.5), 4.0);
    }

    #[test]
    fn modifier_encode_decode_roundtrip() {
        let all = [
            Modifier::None,
            Modifier::Cmp(CmpOp::Ge),
            Modifier::CmpBool(CmpOp::Ne, BoolOp::Xor),
            Modifier::Width(MemWidth::B64),
            Modifier::Func(MufuFunc::Rsq),
            Modifier::Round(RoundMode::Rm),
            Modifier::Lut(0xE8),
            Modifier::Shfl(ShflMode::Bfly),
            Modifier::AtomOp(AtomOp::Cas),
        ];
        for m in all {
            let (tag, payload) = m.encode();
            assert_eq!(Modifier::decode(tag, payload).expect("roundtrip"), m);
        }
    }

    #[test]
    fn modifier_decode_rejects_garbage() {
        assert!(Modifier::decode(99, 0).is_err());
        assert!(Modifier::decode(1, 999).is_err());
        assert!(Modifier::decode(2, 0x0F0F).is_err());
        assert!(Modifier::decode(6, 0x1FF).is_err());
    }

    #[test]
    fn modifier_display() {
        assert_eq!(Modifier::Cmp(CmpOp::Ge).to_string(), ".GE");
        assert_eq!(Modifier::CmpBool(CmpOp::Lt, BoolOp::And).to_string(), ".LT.AND");
        assert_eq!(Modifier::Func(MufuFunc::Rcp).to_string(), ".RCP");
        assert_eq!(Modifier::None.to_string(), "");
    }
}
