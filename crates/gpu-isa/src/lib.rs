#![warn(missing_docs)]

//! # gpu-isa — a SASS-like GPU instruction-set architecture
//!
//! This crate defines the instruction-set architecture executed by the
//! [`gpu-sim`](https://docs.rs/gpu-sim) architectural simulator and targeted
//! by the NVBitFI reproduction. It models the *architecturally visible*
//! surface of an NVIDIA-style GPU ISA ("SASS"):
//!
//! * 256 general-purpose 32-bit registers per thread ([`Reg`]), with `R255`
//!   hard-wired to zero (`RZ`),
//! * 8 predicate registers ([`PReg`]), with `P7` hard-wired to true (`PT`),
//! * a table of **171 opcodes** ([`Opcode`]) — the opcode count the NVBitFI
//!   paper reports for the Volta ISA — each tagged with an instruction class
//!   used by fault-injection grouping,
//! * guarded (predicated) instructions ([`Instr`], [`Guard`]),
//! * a fixed-width binary encoding ([`encode`]) so that kernels can be
//!   shipped as *binaries* with no source, which is the usage model NVBitFI
//!   is built around,
//! * an assembler DSL ([`asm::KernelBuilder`]) and a disassembler
//!   ([`disasm`]).
//!
//! The ISA is deliberately simpler than real SASS (32-bit addresses, label
//! branch targets resolved to instruction indices) but preserves everything
//! fault injection at the SASS level observes: opcodes, destination
//! registers, predication, and memory accesses.
//!
//! ## Example
//!
//! ```
//! use gpu_isa::asm::KernelBuilder;
//! use gpu_isa::{Opcode, Reg, SpecialReg};
//!
//! let mut k = KernelBuilder::new("vecadd");
//! let [tid, a, b, c] = [Reg(0), Reg(1), Reg(2), Reg(3)];
//! k.s2r(tid, SpecialReg::TidX);
//! k.ldg(a, Reg(4), 0); // R4 holds the base address (set up by the host ABI)
//! let kernel = k.finish();
//! assert_eq!(kernel.name(), "vecadd");
//! assert!(kernel.instrs().len() >= 2);
//! assert_eq!(kernel.instrs()[1].op, Opcode::LDG);
//! ```

pub mod asm;
pub mod asm_text;
pub mod disasm;
pub mod encode;
mod error;
pub mod half;
mod instr;
mod modifier;
mod opcode;
mod reg;

pub use error::IsaError;
pub use instr::{Dst, Guard, Instr, Kernel, MemRef, Module, Operand, RegSlot, Space};
pub use modifier::{AtomOp, BoolOp, CmpOp, MemWidth, Modifier, MufuFunc, RoundMode, ShflMode};
pub use opcode::{ExecFamily, InstrClass, Opcode};
pub use reg::{PReg, Reg, SpecialReg};

/// Number of hardware lanes in a warp.
///
/// All NVIDIA architectures covered by the paper (Kepler through Ampere) use
/// 32-thread warps, and the permanent-fault model's *lane id* parameter is
/// defined over `0..32` (Table III).
pub const WARP_SIZE: usize = 32;

/// Total number of opcodes in the ISA.
///
/// Matches the paper's statement that "the Volta ISA contains 171 opcodes"
/// (Table III), so a permanent-fault campaign that sweeps every opcode runs
/// exactly 171 experiments per program.
pub const OPCODE_COUNT: usize = opcode::OPCODE_COUNT;
