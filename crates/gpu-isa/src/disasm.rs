//! Disassembler: render kernels back to SASS-like text.
//!
//! This is the analog of `nvdisasm` / `cuobjdump`: given only the *binary*
//! module, produce human-readable listings. The profiler and injector report
//! injection sites using these listings.

use crate::{encode, Instr, IsaError, Kernel, Module};
use std::fmt::Write as _;

/// Disassemble one instruction, with its index, in listing format.
///
/// ```
/// use gpu_isa::{disasm, Instr, Opcode};
/// let line = disasm::line(3, &Instr::new(Opcode::EXIT));
/// assert!(line.contains("EXIT"));
/// assert!(line.starts_with("/*0003*/"));
/// ```
pub fn line(index: usize, i: &Instr) -> String {
    format!("/*{index:04}*/  {i}")
}

/// Disassemble a whole kernel into a listing.
pub fn kernel(k: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".kernel {}  // {} instructions, {} shared bytes",
        k.name(),
        k.len(),
        k.shared_bytes()
    );
    for (idx, i) in k.instrs().iter().enumerate() {
        let _ = writeln!(out, "{}", line(idx, i));
    }
    out
}

/// Disassemble a whole module.
pub fn module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".module {}  // {} kernels", m.name(), m.kernels().len());
    for k in m.kernels() {
        out.push('\n');
        out.push_str(&kernel(k));
    }
    out
}

/// Disassemble a module *binary* — the `nvdisasm` workflow.
///
/// # Errors
///
/// Returns any [`IsaError`] from decoding the binary.
pub fn module_bytes(bytes: &[u8]) -> Result<String, IsaError> {
    Ok(module(&encode::decode_module(bytes)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::KernelBuilder;
    use crate::{Module, Reg};

    fn sample() -> Module {
        let mut k = KernelBuilder::new("k0");
        k.movi(Reg(0), 42);
        k.fadd(Reg(1), Reg(0), Reg(0));
        k.exit();
        Module::new("m0", vec![k.finish()])
    }

    #[test]
    fn kernel_listing_has_all_instructions() {
        let m = sample();
        let text = kernel(&m.kernels()[0]);
        assert!(text.contains(".kernel k0"));
        assert!(text.contains("MOV32I"));
        assert!(text.contains("FADD"));
        assert!(text.contains("EXIT"));
    }

    #[test]
    fn module_bytes_roundtrips_through_binary() {
        let m = sample();
        let bytes = encode::encode_module(&m);
        let text = module_bytes(&bytes).expect("disassemble");
        assert!(text.contains(".module m0"));
        assert!(text.contains("FADD"));
    }

    #[test]
    fn module_bytes_propagates_decode_errors() {
        assert!(module_bytes(b"garbage").is_err());
    }
}
