//! A small assembler DSL for building kernels.
//!
//! [`KernelBuilder`] plays the role of the compiler back-end: workloads are
//! written against it, and [`KernelBuilder::finish`] produces a [`Kernel`]
//! that is then *encoded to bytes* ([`crate::encode`]) before the runtime
//! ever sees it — preserving NVBitFI's "binary only, no source" contract.
//!
//! Labels are forward-referenceable and resolved at `finish` time:
//!
//! ```
//! use gpu_isa::asm::KernelBuilder;
//! use gpu_isa::{CmpOp, Reg, PReg};
//!
//! let mut k = KernelBuilder::new("count_to_ten");
//! let (i, one) = (Reg(0), Reg(1));
//! k.movi(i, 0);
//! k.movi(one, 1);
//! let top = k.new_label();
//! k.bind(top);
//! k.iadd(i, i, one);
//! k.isetp(PReg(0), CmpOp::Lt, i, 10);
//! k.bra_if(PReg(0), top);
//! k.exit();
//! let kernel = k.finish();
//! assert_eq!(kernel.name(), "count_to_ten");
//! ```

use crate::{
    AtomOp, BoolOp, CmpOp, Dst, Guard, Instr, IsaError, Kernel, MemRef, MemWidth, Modifier,
    MufuFunc, Opcode, Operand, PReg, Reg, RoundMode, ShflMode, Space, SpecialReg,
};

/// A forward-referenceable code label.
///
/// Created by [`KernelBuilder::new_label`], placed by [`KernelBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder for a [`Kernel`].
///
/// Every instruction-emitting method returns `&mut Instr` so callers can
/// attach a guard or tweak operands:
///
/// ```
/// use gpu_isa::asm::KernelBuilder;
/// use gpu_isa::{Guard, PReg, Reg};
///
/// let mut k = KernelBuilder::new("guarded");
/// k.movi(Reg(0), 7).guard = Guard::if_true(PReg(1));
/// k.exit();
/// # let _ = k.finish();
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    shared_bytes: u32,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            shared_bytes: 0,
        }
    }

    /// Declare the amount of per-block shared memory the kernel uses.
    pub fn shared_bytes(&mut self, bytes: u32) -> &mut Self {
        self.shared_bytes = bytes;
        self
    }

    /// Create a new, not-yet-placed label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Place a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (use [`KernelBuilder::try_finish`]
    /// to surface assembler errors as values instead).
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.instrs.len() as u32);
    }

    /// Current instruction index (useful for size assertions in tests).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Instr {
        self.instrs.push(i);
        self.instrs.last_mut().expect("just pushed")
    }

    fn emit(&mut self, op: Opcode, dsts: [Dst; 2], srcs: [Operand; 4]) -> &mut Instr {
        let mut i = Instr::new(op);
        i.dsts = dsts;
        i.srcs = srcs;
        self.push(i)
    }

    fn emit_branch(&mut self, op: Opcode, guard: Guard, label: Label) -> &mut Instr {
        let mut i = Instr::new(op);
        i.guard = guard;
        self.fixups.push((self.instrs.len(), label));
        self.push(i)
    }

    // --- data movement ---------------------------------------------------

    /// `MOV Rd, Ra`.
    pub fn mov(&mut self, d: Reg, a: Reg) -> &mut Instr {
        self.emit(
            Opcode::MOV,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        )
    }

    /// `MOV32I Rd, imm`.
    pub fn movi(&mut self, d: Reg, imm: u32) -> &mut Instr {
        self.emit(
            Opcode::MOV32I,
            [Dst::R(d), Dst::None],
            [Operand::Imm(imm), Operand::None, Operand::None, Operand::None],
        )
    }

    /// `MOV32I Rd, f32-bits`.
    pub fn movf(&mut self, d: Reg, v: f32) -> &mut Instr {
        self.movi(d, v.to_bits())
    }

    /// `S2R Rd, SR` — read a special register.
    pub fn s2r(&mut self, d: Reg, sr: SpecialReg) -> &mut Instr {
        self.emit(
            Opcode::S2R,
            [Dst::R(d), Dst::None],
            [Operand::Sr(sr), Operand::None, Operand::None, Operand::None],
        )
    }

    /// `SEL Rd, Ra, Rb, P` — `Rd = P ? Ra : Rb`.
    pub fn sel(&mut self, d: Reg, a: Reg, b: Reg, p: PReg) -> &mut Instr {
        self.emit(
            Opcode::SEL,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::P(p), Operand::None],
        )
    }

    /// `SHFL.mode Rd, Ra, lanes` — warp shuffle.
    pub fn shfl(&mut self, mode: ShflMode, d: Reg, a: Reg, lanes: u32) -> &mut Instr {
        let i = self.emit(
            Opcode::SHFL,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::Imm(lanes), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Shfl(mode);
        i
    }

    // --- FP32 -------------------------------------------------------------

    /// `FADD Rd, Ra, Rb`.
    pub fn fadd(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::FADD,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `FADD32I Rd, Ra, imm`.
    pub fn faddi(&mut self, d: Reg, a: Reg, v: f32) -> &mut Instr {
        self.emit(
            Opcode::FADD32I,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::imm_f32(v), Operand::None, Operand::None],
        )
    }

    /// `FMUL Rd, Ra, Rb`.
    pub fn fmul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::FMUL,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `FMUL32I Rd, Ra, imm`.
    pub fn fmuli(&mut self, d: Reg, a: Reg, v: f32) -> &mut Instr {
        self.emit(
            Opcode::FMUL32I,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::imm_f32(v), Operand::None, Operand::None],
        )
    }

    /// `FFMA Rd, Ra, Rb, Rc` — `Rd = Ra*Rb + Rc`.
    pub fn ffma(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::FFMA,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::R(c), Operand::None],
        )
    }

    /// `FMNMX Rd, Ra, Rb` (min when `min` is true).
    pub fn fmnmx(&mut self, d: Reg, a: Reg, b: Reg, min: bool) -> &mut Instr {
        let p = if min { Operand::P(PReg::PT) } else { Operand::NotP(PReg::PT) };
        self.emit(
            Opcode::FMNMX,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), p, Operand::None],
        )
    }

    /// `MUFU.func Rd, Ra`.
    pub fn mufu(&mut self, func: MufuFunc, d: Reg, a: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::MUFU,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Func(func);
        i
    }

    /// `FSETP.cmp Pd, Ra, Rb`.
    pub fn fsetp(&mut self, p: PReg, cmp: CmpOp, a: Reg, b: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::FSETP,
            [Dst::P(p), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Cmp(cmp);
        i
    }

    // --- packed FP16 (half2) --------------------------------------------------

    /// `HADD2 Rd, Ra, Rb` — per-half `f16` add.
    pub fn hadd2(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::HADD2,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `HMUL2 Rd, Ra, Rb` — per-half `f16` multiply.
    pub fn hmul2(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::HMUL2,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `HFMA2 Rd, Ra, Rb, Rc` — per-half `f16` fused multiply-add.
    pub fn hfma2(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::HFMA2,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::R(c), Operand::None],
        )
    }

    /// `HSETP2.cmp Pd, Ra, Rb` — compare both halves, AND-combined.
    pub fn hsetp2(&mut self, p: PReg, cmp: CmpOp, a: Reg, b: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::HSETP2,
            [Dst::P(p), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Cmp(cmp);
        i
    }

    // --- FP64 (register pairs) ---------------------------------------------

    /// `DADD Rd.64, Ra.64, Rb.64`.
    pub fn dadd(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::DADD,
            [Dst::R64(d), Dst::None],
            [Operand::R64(a), Operand::R64(b), Operand::None, Operand::None],
        )
    }

    /// `DMUL Rd.64, Ra.64, Rb.64`.
    pub fn dmul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::DMUL,
            [Dst::R64(d), Dst::None],
            [Operand::R64(a), Operand::R64(b), Operand::None, Operand::None],
        )
    }

    /// `DFMA Rd.64, Ra.64, Rb.64, Rc.64`.
    pub fn dfma(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::DFMA,
            [Dst::R64(d), Dst::None],
            [Operand::R64(a), Operand::R64(b), Operand::R64(c), Operand::None],
        )
    }

    /// `DSETP.cmp Pd, Ra.64, Rb.64`.
    pub fn dsetp(&mut self, p: PReg, cmp: CmpOp, a: Reg, b: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::DSETP,
            [Dst::P(p), Dst::None],
            [Operand::R64(a), Operand::R64(b), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Cmp(cmp);
        i
    }

    // --- integer -------------------------------------------------------------

    /// `IADD Rd, Ra, Rb`.
    pub fn iadd(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::IADD,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `IADD32I Rd, Ra, imm`.
    pub fn iaddi(&mut self, d: Reg, a: Reg, imm: i32) -> &mut Instr {
        self.emit(
            Opcode::IADD32I,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::imm_i32(imm), Operand::None, Operand::None],
        )
    }

    /// `ISUB Rd, Ra, Rb`.
    pub fn isub(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::ISUB,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `IADD3 Rd, Ra, Rb, Rc`.
    pub fn iadd3(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::IADD3,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::R(c), Operand::None],
        )
    }

    /// `IMAD Rd, Ra, Rb, Rc` — `Rd = Ra*Rb + Rc` (low 32 bits).
    pub fn imad(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::IMAD,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::R(c), Operand::None],
        )
    }

    /// `IMAD32I Rd, Ra, imm, Rc`.
    pub fn imadi(&mut self, d: Reg, a: Reg, imm: i32, c: Reg) -> &mut Instr {
        self.emit(
            Opcode::IMAD32I,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::imm_i32(imm), Operand::R(c), Operand::None],
        )
    }

    /// `IMUL Rd, Ra, Rb` (low 32 bits).
    pub fn imul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.emit(
            Opcode::IMUL,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        )
    }

    /// `SHL Rd, Ra, imm`.
    pub fn shli(&mut self, d: Reg, a: Reg, sh: u32) -> &mut Instr {
        self.emit(
            Opcode::SHL,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::Imm(sh), Operand::None, Operand::None],
        )
    }

    /// `SHR Rd, Ra, imm` (logical).
    pub fn shri(&mut self, d: Reg, a: Reg, sh: u32) -> &mut Instr {
        self.emit(
            Opcode::SHR,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::Imm(sh), Operand::None, Operand::None],
        )
    }

    /// `LOP3.LUT Rd, Ra, Rb, Rc` with an explicit truth table.
    pub fn lop3(&mut self, d: Reg, a: Reg, b: Reg, c: Reg, lut: u8) -> &mut Instr {
        let i = self.emit(
            Opcode::LOP3,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::R(c), Operand::None],
        );
        i.modifier = Modifier::Lut(lut);
        i
    }

    /// `LOP3` configured as bitwise AND of `Ra` and `Rb`.
    pub fn and(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.lop3(d, a, b, Reg::RZ, 0xC0)
    }

    /// `LOP3` configured as bitwise OR of `Ra` and `Rb`.
    pub fn or(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.lop3(d, a, b, Reg::RZ, 0xFC)
    }

    /// `LOP3` configured as bitwise XOR of `Ra` and `Rb`.
    pub fn xor(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Instr {
        self.lop3(d, a, b, Reg::RZ, 0x3C)
    }

    /// `ISETP.cmp Pd, Ra, imm`.
    pub fn isetp(&mut self, p: PReg, cmp: CmpOp, a: Reg, imm: i32) -> &mut Instr {
        let i = self.emit(
            Opcode::ISETP,
            [Dst::P(p), Dst::None],
            [Operand::R(a), Operand::imm_i32(imm), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Cmp(cmp);
        i
    }

    /// `ISETP.cmp Pd, Ra, Rb` (register compare).
    pub fn isetp_r(&mut self, p: PReg, cmp: CmpOp, a: Reg, b: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::ISETP,
            [Dst::P(p), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Cmp(cmp);
        i
    }

    /// `ISETP.cmp.bool Pd, Ra, Rb, Pc` (compare combined with a predicate).
    pub fn isetp_bool(
        &mut self,
        p: PReg,
        cmp: CmpOp,
        boolop: BoolOp,
        a: Reg,
        b: Reg,
        c: PReg,
    ) -> &mut Instr {
        let i = self.emit(
            Opcode::ISETP,
            [Dst::P(p), Dst::None],
            [Operand::R(a), Operand::R(b), Operand::P(c), Operand::None],
        );
        i.modifier = Modifier::CmpBool(cmp, boolop);
        i
    }

    // --- conversions -----------------------------------------------------------

    /// `I2F Rd, Ra` — `f32` from signed `i32`.
    pub fn i2f(&mut self, d: Reg, a: Reg) -> &mut Instr {
        self.emit(
            Opcode::I2F,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        )
    }

    /// `I2F.64 Rd.64, Ra` — `f64` from signed `i32`.
    pub fn i2d(&mut self, d: Reg, a: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::I2F,
            [Dst::R64(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B64);
        i
    }

    /// `F2I.round Rd, Ra` — signed `i32` from `f32`.
    pub fn f2i(&mut self, d: Reg, a: Reg, round: RoundMode) -> &mut Instr {
        let i = self.emit(
            Opcode::F2I,
            [Dst::R(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Round(round);
        i
    }

    /// `F2F.64 Rd.64, Ra` — widen `f32` to `f64`.
    pub fn f2d(&mut self, d: Reg, a: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::F2F,
            [Dst::R64(d), Dst::None],
            [Operand::R(a), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B64);
        i
    }

    /// `F2F.32 Rd, Ra.64` — narrow `f64` to `f32`.
    pub fn d2f(&mut self, d: Reg, a: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::F2F,
            [Dst::R(d), Dst::None],
            [Operand::R64(a), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    // --- memory -------------------------------------------------------------

    fn mem(base: Reg, offset: i16, space: Space) -> Operand {
        Operand::Mem(MemRef { base, offset, space })
    }

    /// `LDG Rd, [Ra+off]` — 32-bit global load.
    pub fn ldg(&mut self, d: Reg, base: Reg, off: i16) -> &mut Instr {
        let i = self.emit(
            Opcode::LDG,
            [Dst::R(d), Dst::None],
            [Self::mem(base, off, Space::Global), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    /// `LDG.64 Rd.64, [Ra+off]` — 64-bit global load into a register pair.
    pub fn ldg64(&mut self, d: Reg, base: Reg, off: i16) -> &mut Instr {
        let i = self.emit(
            Opcode::LDG,
            [Dst::R64(d), Dst::None],
            [Self::mem(base, off, Space::Global), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B64);
        i
    }

    /// `STG [Ra+off], Rb` — 32-bit global store.
    pub fn stg(&mut self, base: Reg, off: i16, v: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::STG,
            [Dst::None, Dst::None],
            [Self::mem(base, off, Space::Global), Operand::R(v), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    /// `STG.64 [Ra+off], Rb.64` — 64-bit global store of a register pair.
    pub fn stg64(&mut self, base: Reg, off: i16, v: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::STG,
            [Dst::None, Dst::None],
            [Self::mem(base, off, Space::Global), Operand::R64(v), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B64);
        i
    }

    /// `LDS Rd, [Ra+off]` — 32-bit shared-memory load.
    pub fn lds(&mut self, d: Reg, base: Reg, off: i16) -> &mut Instr {
        let i = self.emit(
            Opcode::LDS,
            [Dst::R(d), Dst::None],
            [Self::mem(base, off, Space::Shared), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    /// `STS [Ra+off], Rb` — 32-bit shared-memory store.
    pub fn sts(&mut self, base: Reg, off: i16, v: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::STS,
            [Dst::None, Dst::None],
            [Self::mem(base, off, Space::Shared), Operand::R(v), Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    /// `LDC Rd, [off]` — 32-bit constant load (kernel parameters).
    pub fn ldc(&mut self, d: Reg, off: i16) -> &mut Instr {
        let i = self.emit(
            Opcode::LDC,
            [Dst::R(d), Dst::None],
            [Self::mem(Reg::RZ, off, Space::Const), Operand::None, Operand::None, Operand::None],
        );
        i.modifier = Modifier::Width(MemWidth::B32);
        i
    }

    /// `ATOMG.op Rd, [Ra+off], Rb` — global atomic returning the old value.
    pub fn atomg(&mut self, op: AtomOp, d: Reg, base: Reg, off: i16, v: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::ATOMG,
            [Dst::R(d), Dst::None],
            [Self::mem(base, off, Space::Global), Operand::R(v), Operand::None, Operand::None],
        );
        i.modifier = Modifier::AtomOp(op);
        i
    }

    /// `RED.op [Ra+off], Rb` — global reduction, no return value.
    pub fn red(&mut self, op: AtomOp, base: Reg, off: i16, v: Reg) -> &mut Instr {
        let i = self.emit(
            Opcode::RED,
            [Dst::None, Dst::None],
            [Self::mem(base, off, Space::Global), Operand::R(v), Operand::None, Operand::None],
        );
        i.modifier = Modifier::AtomOp(op);
        i
    }

    // --- control flow ------------------------------------------------------

    /// Unconditional `BRA label`.
    pub fn bra(&mut self, label: Label) -> &mut Instr {
        self.emit_branch(Opcode::BRA, Guard::ALWAYS, label)
    }

    /// `@P BRA label`.
    pub fn bra_if(&mut self, p: PReg, label: Label) -> &mut Instr {
        self.emit_branch(Opcode::BRA, Guard::if_true(p), label)
    }

    /// `@!P BRA label`.
    pub fn bra_ifnot(&mut self, p: PReg, label: Label) -> &mut Instr {
        self.emit_branch(Opcode::BRA, Guard::if_false(p), label)
    }

    /// `BAR.SYNC` — block-wide barrier.
    pub fn bar(&mut self) -> &mut Instr {
        self.push(Instr::new(Opcode::BAR))
    }

    /// `EXIT` — thread termination.
    pub fn exit(&mut self) -> &mut Instr {
        self.push(Instr::new(Opcode::EXIT))
    }

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Instr {
        self.push(Instr::new(Opcode::NOP))
    }

    // --- finishing -----------------------------------------------------------

    /// Resolve labels and produce the [`Kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnresolvedLabel`] if a referenced label was never
    /// bound and propagates [`Kernel::new`] validation errors.
    pub fn try_finish(self) -> Result<Kernel, IsaError> {
        let KernelBuilder { name, mut instrs, labels, fixups, shared_bytes } = self;
        for (idx, label) in fixups {
            let target = labels[label.0]
                .ok_or_else(|| IsaError::UnresolvedLabel { label: format!("L{}", label.0) })?;
            instrs[idx].target = target;
        }
        Kernel::new(name, instrs, shared_bytes)
    }

    /// Resolve labels and produce the [`Kernel`].
    ///
    /// # Panics
    ///
    /// Panics on unresolved labels or invalid kernels; use
    /// [`KernelBuilder::try_finish`] to handle these as errors.
    pub fn finish(self) -> Kernel {
        match self.try_finish() {
            Ok(k) => k,
            Err(e) => panic!("kernel assembly failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn forward_branch_resolves() {
        let mut k = KernelBuilder::new("fwd");
        let end = k.new_label();
        k.bra(end);
        k.movi(Reg(0), 1);
        k.bind(end);
        k.exit();
        let kernel = k.finish();
        assert_eq!(kernel.instrs()[0].op, Opcode::BRA);
        assert_eq!(kernel.instrs()[0].target, 2);
    }

    #[test]
    fn backward_branch_resolves() {
        let mut k = KernelBuilder::new("bwd");
        let top = k.new_label();
        k.bind(top);
        k.iaddi(Reg(0), Reg(0), 1);
        k.bra(top);
        k.exit();
        let kernel = k.finish();
        assert_eq!(kernel.instrs()[1].target, 0);
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let mut k = KernelBuilder::new("bad");
        let nowhere = k.new_label();
        k.bra(nowhere);
        k.exit();
        assert!(matches!(k.try_finish(), Err(IsaError::UnresolvedLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut k = KernelBuilder::new("dup");
        let l = k.new_label();
        k.bind(l);
        k.bind(l);
    }

    #[test]
    fn ldc_reads_const_space() {
        let mut k = KernelBuilder::new("params");
        k.ldc(Reg(4), 0);
        k.exit();
        let kernel = k.finish();
        let m = kernel.instrs()[0].mem_ref().expect("mem ref");
        assert_eq!(m.space, Space::Const);
        assert_eq!(m.base, Reg::RZ);
    }

    #[test]
    fn shared_bytes_recorded() {
        let mut k = KernelBuilder::new("sh");
        k.shared_bytes(256);
        k.exit();
        assert_eq!(k.finish().shared_bytes(), 256);
    }

    #[test]
    fn guard_via_returned_instr() {
        let mut k = KernelBuilder::new("g");
        k.movi(Reg(0), 7).guard = Guard::if_true(PReg(2));
        k.exit();
        let kernel = k.finish();
        assert_eq!(kernel.instrs()[0].guard, Guard::if_true(PReg(2)));
    }

    #[test]
    fn logical_helpers_use_expected_luts() {
        let mut k = KernelBuilder::new("lut");
        k.and(Reg(0), Reg(1), Reg(2));
        k.or(Reg(0), Reg(1), Reg(2));
        k.xor(Reg(0), Reg(1), Reg(2));
        k.exit();
        let kernel = k.finish();
        assert_eq!(kernel.instrs()[0].modifier, Modifier::Lut(0xC0));
        assert_eq!(kernel.instrs()[1].modifier, Modifier::Lut(0xFC));
        assert_eq!(kernel.instrs()[2].modifier, Modifier::Lut(0x3C));
    }
}
