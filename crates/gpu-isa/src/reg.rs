//! Architectural registers: general-purpose, predicate, and special registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose 32-bit register, `R0`–`R255`.
///
/// `R255` is the zero register [`Reg::RZ`]: reads return `0` and writes are
/// discarded, mirroring real SASS. Fault injectors must therefore never pick
/// `RZ` as a destination (corrupting it is architecturally impossible).
///
/// ```
/// use gpu_isa::Reg;
/// assert!(Reg::RZ.is_zero_reg());
/// assert!(!Reg(0).is_zero_reg());
/// assert_eq!(Reg(13).to_string(), "R13");
/// assert_eq!(Reg::RZ.to_string(), "RZ");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register `R255`: reads as zero, writes are discarded.
    pub const RZ: Reg = Reg(255);

    /// Returns `true` for the hard-wired zero register.
    #[inline]
    pub fn is_zero_reg(self) -> bool {
        self.0 == 255
    }

    /// The odd register of the 64-bit pair starting at `self`.
    ///
    /// FP64 values occupy an aligned even/odd register pair, as on real
    /// hardware. For `RZ` the pair register is `RZ` itself.
    #[inline]
    pub fn pair_hi(self) -> Reg {
        if self.is_zero_reg() {
            Reg::RZ
        } else {
            Reg(self.0 + 1)
        }
    }

    /// Register index as `usize`, for register-file addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero_reg() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

/// A 1-bit predicate register, `P0`–`P7`.
///
/// `P7` is the true predicate [`PReg::PT`]: reads return `true` and writes
/// are discarded. Guards of the form `@PT` are unconditional.
///
/// ```
/// use gpu_isa::PReg;
/// assert!(PReg::PT.is_true_reg());
/// assert_eq!(PReg(2).to_string(), "P2");
/// assert_eq!(PReg::PT.to_string(), "PT");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PReg(pub u8);

impl PReg {
    /// The hard-wired true predicate `P7`.
    pub const PT: PReg = PReg(7);

    /// Returns `true` for the hard-wired true predicate.
    #[inline]
    pub fn is_true_reg(self) -> bool {
        self.0 == 7
    }

    /// Predicate index as `usize` (always `< 8`).
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0x7) as usize
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true_reg() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl From<u8> for PReg {
    fn from(v: u8) -> Self {
        PReg(v & 0x7)
    }
}

/// Special (read-only) registers exposed through `S2R`/`CS2R`.
///
/// These give kernels access to their position in the launch grid and to the
/// physical placement (lane, warp, SM) that the permanent-fault model keys
/// its *SM id* / *lane id* parameters on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SpecialReg {
    /// Thread index within the block, x dimension.
    TidX = 0,
    /// Thread index within the block, y dimension.
    TidY = 1,
    /// Thread index within the block, z dimension.
    TidZ = 2,
    /// Block index within the grid, x dimension.
    CtaIdX = 3,
    /// Block index within the grid, y dimension.
    CtaIdY = 4,
    /// Block index within the grid, z dimension.
    CtaIdZ = 5,
    /// Block dimension, x.
    NTidX = 6,
    /// Block dimension, y.
    NTidY = 7,
    /// Block dimension, z.
    NTidZ = 8,
    /// Grid dimension, x.
    NCtaIdX = 9,
    /// Grid dimension, y.
    NCtaIdY = 10,
    /// Grid dimension, z.
    NCtaIdZ = 11,
    /// Hardware lane within the warp (`0..32`).
    LaneId = 12,
    /// Warp slot within the SM.
    WarpId = 13,
    /// Streaming-multiprocessor id.
    SmId = 14,
    /// Monotonic cycle counter (low 32 bits).
    ClockLo = 15,
    /// Flat global thread id `blockIdx.x * blockDim.x + threadIdx.x`,
    /// a convenience not present on real hardware.
    GlobalTidX = 16,
}

impl SpecialReg {
    /// All special registers, in encoding order.
    pub const ALL: [SpecialReg; 17] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaIdX,
        SpecialReg::CtaIdY,
        SpecialReg::CtaIdZ,
        SpecialReg::NTidX,
        SpecialReg::NTidY,
        SpecialReg::NTidZ,
        SpecialReg::NCtaIdX,
        SpecialReg::NCtaIdY,
        SpecialReg::NCtaIdZ,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
        SpecialReg::SmId,
        SpecialReg::ClockLo,
        SpecialReg::GlobalTidX,
    ];

    /// Decode from the byte produced by [`SpecialReg::encode`].
    pub fn decode(v: u8) -> Option<SpecialReg> {
        Self::ALL.get(v as usize).copied()
    }

    /// Stable byte encoding used by the module binary format.
    #[inline]
    pub fn encode(self) -> u8 {
        self as u8
    }

    /// The SASS-style mnemonic, e.g. `SR_TID.X`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::CtaIdY => "SR_CTAID.Y",
            SpecialReg::CtaIdZ => "SR_CTAID.Z",
            SpecialReg::NTidX => "SR_NTID.X",
            SpecialReg::NTidY => "SR_NTID.Y",
            SpecialReg::NTidZ => "SR_NTID.Z",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::NCtaIdY => "SR_NCTAID.Y",
            SpecialReg::NCtaIdZ => "SR_NCTAID.Z",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
            SpecialReg::SmId => "SR_SMID",
            SpecialReg::ClockLo => "SR_CLOCKLO",
            SpecialReg::GlobalTidX => "SR_GTID.X",
        }
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rz_is_zero_reg() {
        assert!(Reg::RZ.is_zero_reg());
        assert!(!Reg(0).is_zero_reg());
        assert!(!Reg(254).is_zero_reg());
    }

    #[test]
    fn reg_pair_hi() {
        assert_eq!(Reg(4).pair_hi(), Reg(5));
        assert_eq!(Reg::RZ.pair_hi(), Reg::RZ);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(0).to_string(), "R0");
        assert_eq!(Reg(99).to_string(), "R99");
        assert_eq!(Reg::RZ.to_string(), "RZ");
    }

    #[test]
    fn preg_display_and_truth() {
        assert_eq!(PReg(0).to_string(), "P0");
        assert_eq!(PReg::PT.to_string(), "PT");
        assert!(PReg::PT.is_true_reg());
        assert!(!PReg(6).is_true_reg());
    }

    #[test]
    fn preg_from_masks_to_three_bits() {
        assert_eq!(PReg::from(15u8), PReg(7));
        assert_eq!(PReg::from(9u8), PReg(1));
    }

    #[test]
    fn special_reg_roundtrip() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::decode(sr.encode()), Some(sr));
        }
        assert_eq!(SpecialReg::decode(200), None);
    }

    #[test]
    fn special_reg_mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for sr in SpecialReg::ALL {
            assert!(seen.insert(sr.mnemonic()), "duplicate mnemonic {}", sr);
        }
    }
}
