//! Durable campaign artifacts: the append-only results journal and atomic
//! whole-file writes.
//!
//! A campaign that only writes its results log at the end loses every
//! classified run when the process dies — for long campaigns (the paper's
//! span hundreds of thousands of injections) that is hours of work. The
//! [`Journal`] instead appends one newline-terminated row per run and
//! flushes it to the OS immediately, so after a crash the log contains every
//! completed run plus at most one torn final line (which
//! [`crate::logfile::recover_results_log`] drops on resume).
//!
//! Whole-file artifacts that are rewritten — injection lists, profiles,
//! reports — go through [`atomic_write`], which stages the content in a
//! temporary file in the destination directory and renames it into place, so
//! a reader (or a crash) never observes a half-written file.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// An append-only, flush-per-record results journal.
///
/// Each [`Journal::append`] performs a single `write` of one complete,
/// newline-terminated record followed by a flush, which is what makes the
/// torn-tail recovery contract hold: a record either ends with `\n` (it is
/// complete) or it is the final, partial line of a crashed campaign.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create (or truncate) the journal at `path` and write `header`,
    /// flushed, before returning.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn create(path: impl AsRef<Path>, header: &str) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut journal = Journal { file, path };
        journal.write_flush(header)?;
        Ok(journal)
    }

    /// Open an existing journal for appending (the resume path). The caller
    /// is responsible for having truncated any torn tail first — appending
    /// after a partial line would corrupt the next record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the file.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Append one record and flush it to the OS before returning.
    ///
    /// `record` must be newline-terminated (and contain no interior torn
    /// state the reader could misparse); [`crate::logfile::results_log_row`]
    /// produces conforming records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the journal may hold a torn tail,
    /// which recovery handles like a crash.
    pub fn append(&mut self, record: &str) -> io::Result<()> {
        debug_assert!(record.ends_with('\n'), "journal records must be newline-terminated");
        self.write_flush(record)
    }

    /// The journal's path (for resume hints in user-facing messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_flush(&mut self, text: &str) -> io::Result<()> {
        self.file.write_all(text.as_bytes())?;
        self.file.flush()
    }
}

/// Write `contents` to `path` atomically: stage in a uniquely-named
/// temporary file in the same directory, then rename over the destination.
/// Readers see either the old file or the new one, never a prefix.
///
/// # Errors
///
/// Propagates I/O errors; the temporary file is removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let contents = contents.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("not a file path: {}", path.display()))
    })?;
    // Process-unique staging name: two nvbitfi processes writing the same
    // artifact race at the rename (last writer wins), never at the bytes.
    let tmp = dir.join(format!(".{}.tmp.{}", name.to_string_lossy(), std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.flush()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nvbitfi-journal-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn journal_appends_are_immediately_visible() {
        let dir = tmp_dir("append");
        let path = dir.join("results.log");
        let mut j = Journal::create(&path, "# header\n").expect("create");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "# header\n");
        j.append("row 1\n").expect("append");
        j.append("row 2\n").expect("append");
        // Visible without dropping the journal: each append was flushed.
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "# header\nrow 1\nrow 2\n");
        drop(j);

        let mut j = Journal::append_to(&path).expect("reopen");
        j.append("row 3\n").expect("append");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "# header\nrow 1\nrow 2\nrow 3\n"
        );
        assert_eq!(j.path(), path.as_path());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.txt");
        atomic_write(&path, "first\n").expect("write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "first\n");
        atomic_write(&path, "second\n").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second\n");
        // No staging files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging file leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_directory_path() {
        assert!(atomic_write(Path::new("/"), "x").is_err());
    }
}
