//! Supervisor half of the process-isolation protocol.
//!
//! Thread-mode campaigns isolate runs with `catch_unwind`, which contains
//! Rust panics but nothing stronger: a run that segfaults, aborts, or gets
//! OOM-killed takes the whole campaign process with it. Process mode
//! ([`IsolationMode::Process`]) restores the paper's deployment shape —
//! every injection executes in a disposable child process, so the blast
//! radius of the nastiest fault is one worker, never the campaign.
//!
//! The supervisor runs one coordinator thread per worker slot. Each thread
//! owns one child process speaking the [`crate::worker`] protocol, pulls
//! sites from a shared queue, and watches the child's frame stream with a
//! liveness timeout derived from the heartbeat interval. A worker that
//! dies — killed by a signal, crashed, wedged past the liveness window, or
//! emitting protocol garbage — is killed for certain, respawned with the
//! campaign's deterministic backoff, and the in-flight site is re-dispatched
//! under the existing `max_retries` budget. A site whose attempts run out is
//! recorded as [`InfraKind::WorkerDied`]: excluded from the paper's outcome
//! denominators, and re-run by `resume` like every infrastructure verdict.

use crate::campaign::{CampaignConfig, CampaignHooks, FaultHook, InjectionRun};
use crate::logfile::parse_outcome;
use crate::outcome::{InfraKind, Outcome, OutcomeClass};
use crate::params::TransientParams;
use crate::worker::{read_frame, write_frame, Msg, WorkerInit};
use parking_lot::Mutex;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver};
use std::time::{Duration, Instant};

/// How a campaign executes its injection runs.
#[derive(Debug, Clone, Default)]
pub enum IsolationMode {
    /// In-process worker threads with `catch_unwind` isolation (the
    /// default): fastest, but only panic-safe.
    #[default]
    Thread,
    /// One disposable child process per worker slot, supervised over the
    /// [`crate::worker`] frame protocol: survives segfaults, aborts,
    /// OOM-kills, and protocol corruption.
    Process(ProcessIsolation),
}

/// Configuration of the process-isolation backend.
#[derive(Debug, Clone)]
pub struct ProcessIsolation {
    /// The worker command line — typically `[<current exe>, "worker"]`.
    pub command: Vec<String>,
    /// Workload scale name forwarded to the worker's suite lookup.
    pub scale: String,
    /// Worker heartbeat interval; the supervisor's liveness window is a
    /// multiple of it (see [`ProcessIsolation::liveness`]).
    pub heartbeat: Duration,
    /// How long a fresh worker may take to replay its golden run and
    /// answer [`Msg::Ready`].
    pub ready_timeout: Duration,
    /// Test-only harness-fault injector: called with `(site_index,
    /// attempt)` right after a site is dispatched; returning `true`
    /// SIGKILLs the worker mid-run. `None` (always, outside tests)
    /// disables it.
    pub kill_hook: Option<FaultHook>,
}

impl ProcessIsolation {
    /// A process-isolation config with default heartbeat and timeouts.
    pub fn new(command: Vec<String>, scale: impl Into<String>) -> ProcessIsolation {
        ProcessIsolation {
            command,
            scale: scale.into(),
            heartbeat: Duration::from_millis(100),
            ready_timeout: Duration::from_secs(120),
            kill_hook: None,
        }
    }

    /// The liveness window: a dispatched worker silent (no heartbeat, no
    /// verdict) for this long is declared dead. Generous — 20 heartbeat
    /// intervals, floored at one second — because a false positive costs a
    /// respawn and a retry, while detection latency costs nothing (real
    /// deaths close the pipe and are noticed immediately).
    pub fn liveness(&self) -> Duration {
        self.heartbeat.saturating_mul(20).max(Duration::from_secs(1))
    }
}

const SIGTERM: i32 = 15;
const SIGKILL: i32 = 9;

#[cfg(unix)]
fn send_signal(pid: u32, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    if let Ok(pid) = i32::try_from(pid) {
        // Best effort: the worker may already be gone, which is fine.
        unsafe {
            kill(pid, sig);
        }
    }
}

#[cfg(not(unix))]
fn send_signal(_pid: u32, _sig: i32) {}

/// What the reader thread saw on the worker's stdout.
enum Event {
    Frame(Msg),
    /// A frame arrived but was not a protocol message.
    Corrupt,
    /// The stream ended (worker exit, kill, or torn frame).
    Eof,
}

/// One live child process plus the thread draining its stdout.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    events: Receiver<Event>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn dispatch(&mut self, id: u64, site: &str) -> bool {
        write_frame(&mut self.stdin, &Msg::Run { id, site: site.to_string() }.to_json()).is_ok()
    }

    /// Hard-kill the worker and reap it — the path for a worker declared
    /// dead (it may in fact be wedged rather than gone).
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }

    /// Graceful drain at end of campaign: shutdown frame, then SIGTERM,
    /// then SIGKILL, each with a short grace window.
    fn shutdown(mut self) {
        const GRACE: Duration = Duration::from_millis(500);
        let _ = write_frame(&mut self.stdin, &Msg::Shutdown.to_json());
        if !wait_with_grace(&mut self.child, GRACE) {
            send_signal(self.child.id(), SIGTERM);
            if !wait_with_grace(&mut self.child, GRACE) {
                let _ = self.child.kill();
            }
        }
        let _ = self.child.wait();
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

fn wait_with_grace(child: &mut Child, grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(_)) | Err(_) => return true,
            Ok(None) => {}
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Spawn one worker, run the init handshake, and wait for [`Msg::Ready`].
/// Returns `None` on any failure (command missing, instant exit, handshake
/// timeout) — the caller treats it as a worker death.
fn spawn_worker(iso: &ProcessIsolation, init: &WorkerInit) -> Option<Worker> {
    let (exe, args) = iso.command.split_first()?;
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .ok()?;
    let stdin = child.stdin.take()?;
    let mut stdout = child.stdout.take()?;
    let (tx, events) = channel();
    let reader = std::thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(Some(text)) => {
                let ev = Msg::parse(&text).map_or(Event::Corrupt, Event::Frame);
                let corrupt = matches!(ev, Event::Corrupt);
                if tx.send(ev).is_err() || corrupt {
                    break;
                }
            }
            // Clean EOF and a torn frame end the stream the same way: the
            // supervisor cannot tell a crash from corruption, and respawning
            // is the right answer to both.
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Eof);
                break;
            }
        }
    });
    let mut worker = Worker { child, stdin, events, reader: Some(reader) };

    if write_frame(&mut worker.stdin, &Msg::Init(init.clone()).to_json()).is_err() {
        worker.kill();
        return None;
    }
    let deadline = Instant::now() + iso.ready_timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match worker.events.recv_timeout(left) {
            Ok(Event::Frame(Msg::Ready)) => return Some(worker),
            Ok(Event::Frame(Msg::Heartbeat)) => {}
            _ => {
                worker.kill();
                return None;
            }
        }
    }
}

fn declare_dead(worker: &mut Option<Worker>) {
    if let Some(w) = worker.take() {
        w.kill();
    }
}

/// One dispatch attempt against the (possibly respawned) worker. Returns
/// the worker's verdict, or `None` if the worker died trying — in which
/// case it has already been killed and cleared for respawn.
fn try_once(
    iso: &ProcessIsolation,
    init: &WorkerInit,
    worker: &mut Option<Worker>,
    orig: usize,
    site: &str,
    attempt: u32,
) -> Option<(Outcome, bool, u64, u64)> {
    if worker.is_none() {
        *worker = spawn_worker(iso, init);
    }
    let w = worker.as_mut()?;
    if !w.dispatch(orig as u64, site) {
        declare_dead(worker);
        return None;
    }
    if let Some(hook) = &iso.kill_hook {
        if (hook.0)(orig, attempt) {
            send_signal(w.child.id(), SIGKILL);
        }
    }
    let liveness = iso.liveness();
    loop {
        match w.events.recv_timeout(liveness) {
            Ok(Event::Frame(Msg::Heartbeat)) => {}
            Ok(Event::Frame(Msg::Done { id, outcome, injected, wall_us, skip_instrs }))
                if id == orig as u64 =>
            {
                return match parse_outcome(&outcome) {
                    Some(o) => Some((o, injected, wall_us, skip_instrs)),
                    None => {
                        declare_dead(worker);
                        None
                    }
                };
            }
            // Anything else — an Error frame, a mismatched verdict id,
            // corruption, EOF, or liveness timeout — is a dead worker.
            Ok(_) | Err(_) => {
                declare_dead(worker);
                return None;
            }
        }
    }
}

/// Drive one site to a verdict, retrying through worker deaths and
/// worker-reported infra failures under the campaign's retry budget.
fn run_site(
    iso: &ProcessIsolation,
    cfg: &CampaignConfig,
    init: &WorkerInit,
    worker: &mut Option<Worker>,
    orig: usize,
    params: TransientParams,
) -> InjectionRun {
    let max_attempts = cfg.max_retries.saturating_add(1);
    let site = params.to_file();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let t = Instant::now();
        let verdict = try_once(iso, init, worker, orig, &site, attempts);
        match verdict {
            Some((outcome, injected, wall_us, skip_instrs))
                if !outcome.is_infra() || attempts >= max_attempts =>
            {
                break InjectionRun {
                    params,
                    outcome,
                    injected,
                    wall: Duration::from_micros(wall_us),
                    prefix_instrs_skipped: skip_instrs,
                    pruned: false,
                    attempts,
                    resumed: false,
                };
            }
            None if attempts >= max_attempts => {
                break InjectionRun {
                    params,
                    outcome: Outcome {
                        class: OutcomeClass::InfraError(InfraKind::WorkerDied),
                        potential_due: false,
                    },
                    injected: false,
                    wall: t.elapsed(),
                    prefix_instrs_skipped: 0,
                    pruned: false,
                    attempts,
                    resumed: false,
                };
            }
            // Worker death or worker-reported infra failure with attempts
            // remaining: back off and retry (a death also means the next
            // attempt gets a fresh worker).
            Some(_) | None => {}
        }
        if !cfg.retry_backoff.is_zero() {
            std::thread::sleep(cfg.retry_backoff * attempts);
        }
    }
}

/// Fan `work` out over a pool of supervised worker processes. Returns the
/// completed `(site index, run)` pairs (unordered) plus whether the pool
/// stopped early via `stop`. Infallible by design: every failure mode
/// downgrades to a per-site [`InfraKind::WorkerDied`] verdict.
pub(crate) fn run_pool(
    iso: &ProcessIsolation,
    cfg: &CampaignConfig,
    program_name: &str,
    work: Vec<(usize, TransientParams)>,
    stop: &(dyn Fn() -> bool + Sync),
    hooks: &dyn CampaignHooks,
) -> (Vec<(usize, InjectionRun)>, bool) {
    let init = WorkerInit {
        program: program_name.to_string(),
        scale: iso.scale.clone(),
        use_checkpoints: cfg.use_checkpoints,
        deadline_ms: cfg.run_deadline.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        heartbeat_ms: u64::try_from(iso.heartbeat.as_millis()).unwrap_or(u64::MAX).max(1),
    };
    let total = work.len();
    let slots = cfg.workers.max(1).min(total.max(1));
    let queue = Mutex::new(work.into_iter());
    let results: Mutex<Vec<(usize, InjectionRun)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..slots {
            s.spawn(|| {
                let mut worker: Option<Worker> = None;
                loop {
                    if stop() {
                        break;
                    }
                    let next = queue.lock().next();
                    let Some((orig, params)) = next else { break };
                    let run = run_site(iso, cfg, &init, &mut worker, orig, params);
                    hooks.on_run(&run);
                    results.lock().push((orig, run));
                }
                if let Some(w) = worker.take() {
                    w.shutdown();
                }
            });
        }
    });
    let out = results.into_inner();
    let stopped = out.len() < total;
    (out, stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitflip::BitFlipModel;
    use crate::campaign::NoHooks;
    use crate::igid::InstrGroup;

    fn site(i: u64) -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "k".into(),
            kernel_count: 0,
            instruction_count: i,
            destination_register: 0.5,
            bit_pattern: 0.5,
        }
    }

    /// A worker command that exits immediately can never produce verdicts:
    /// every site must come back as InfraError(WorkerDied) with the full
    /// retry budget spent — and the pool itself must not error or hang.
    #[test]
    #[cfg(unix)]
    fn dead_worker_command_degrades_to_infra_verdicts() {
        let iso = ProcessIsolation::new(vec!["/bin/false".into()], "test");
        let cfg = CampaignConfig {
            workers: 2,
            max_retries: 1,
            retry_backoff: Duration::ZERO,
            ..CampaignConfig::default()
        };
        let work = vec![(0, site(0)), (1, site(1)), (2, site(2))];
        let (out, stopped) = run_pool(&iso, &cfg, "tiny", work, &|| false, &NoHooks);
        assert!(!stopped);
        assert_eq!(out.len(), 3);
        for (_, run) in &out {
            assert_eq!(run.outcome.class, OutcomeClass::InfraError(InfraKind::WorkerDied));
            assert_eq!(run.attempts, 2, "retry budget spent before giving up");
            assert!(!run.injected);
        }
    }

    /// A missing worker binary is the same story via the spawn-failure path.
    #[test]
    fn missing_worker_binary_degrades_to_infra_verdicts() {
        let iso = ProcessIsolation::new(vec!["/nonexistent/nvbitfi-worker-binary".into()], "test");
        let cfg = CampaignConfig {
            workers: 1,
            max_retries: 0,
            retry_backoff: Duration::ZERO,
            ..CampaignConfig::default()
        };
        let (out, stopped) = run_pool(&iso, &cfg, "tiny", vec![(0, site(0))], &|| false, &NoHooks);
        assert!(!stopped);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.outcome.class, OutcomeClass::InfraError(InfraKind::WorkerDied));
        assert_eq!(out[0].1.attempts, 1);
    }

    #[test]
    fn liveness_window_scales_with_heartbeat() {
        let mut iso = ProcessIsolation::new(vec!["x".into()], "test");
        assert_eq!(iso.liveness(), Duration::from_secs(2), "20 × 100ms default");
        iso.heartbeat = Duration::from_millis(10);
        assert_eq!(iso.liveness(), Duration::from_secs(1), "floored at 1s");
    }
}
