//! Worker half of the process-isolation protocol.
//!
//! A process-isolated campaign ([`crate::pool`]) runs each injection in a
//! child process — the paper's actual deployment shape, where every
//! experiment is its own CUDA process and a fault that kills the victim
//! (segfault, abort, OOM-kill) cannot take the campaign down with it. The
//! supervisor and its workers speak a minimal framed protocol over the
//! child's stdin/stdout:
//!
//! * **Framing** — each message is a 4-byte big-endian length prefix
//!   followed by that many bytes of UTF-8 JSON ([`write_frame`],
//!   [`read_frame`]). Frames are capped at [`MAX_FRAME`] bytes; a longer
//!   prefix is protocol corruption, not a large message.
//! * **Messages** — flat JSON objects with a `type` tag ([`Msg`]). The JSON
//!   codec is hand-rolled here (the workspace vendors no JSON crate) and
//!   deliberately tiny: flat objects of strings, integers, booleans and
//!   `null` are all the protocol needs.
//! * **Session** — supervisor sends [`Msg::Init`]; the worker resolves the
//!   workload, replays its own golden run (simulation is deterministic, so
//!   the worker's golden is bit-identical to the supervisor's) and answers
//!   [`Msg::Ready`]. Each [`Msg::Run`] is answered by one [`Msg::Done`];
//!   while a run is executing the worker emits [`Msg::Heartbeat`] frames so
//!   the supervisor can tell a long simulation from a wedged process.
//!   [`Msg::Shutdown`] (or stdin EOF) ends the session.
//!
//! Anything unexpected — an unparseable frame, an unknown workload, a
//! malformed site — earns a [`Msg::Error`] reply and a clean exit: the
//! supervisor treats the worker as dead and respawns, which is exactly the
//! recovery path real corruption would need anyway.

use crate::golden::{golden_run, golden_run_recording, GoldenOutput};
use crate::logfile::outcome_code;
use crate::outcome::{classify, SdcCheck};
use crate::params::TransientParams;
use crate::transient::TransientInjector;
use gpu_runtime::{run_program, run_program_fast_forward, CheckpointStore, Program, RuntimeConfig};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum frame payload size. Frames are small control messages; a length
/// prefix beyond this is protocol corruption (e.g. a worker that wrote raw
/// text into the frame stream) and fails the read immediately instead of
/// attempting a giant allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Write one length-prefixed frame and flush it.
///
/// # Errors
///
/// Returns an [`io::Error`] if the payload exceeds [`MAX_FRAME`] or the
/// underlying write fails (e.g. the peer closed the pipe).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds the {MAX_FRAME}-byte cap", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer hung up between messages).
///
/// # Errors
///
/// Returns an [`io::Error`] on a torn frame (EOF mid-prefix or mid-payload),
/// an oversized length prefix, or payload bytes that are not UTF-8 — all
/// treated by the supervisor as worker death.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame: EOF inside the length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_be_bytes(len);
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// Everything a worker needs to set itself up: which workload to load and
/// the knobs that must match the supervisor's campaign configuration so the
/// worker's runs are bit-identical to thread-mode runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInit {
    /// Workload name (e.g. `"314.omriq"`), resolved by the worker's own
    /// suite lookup.
    pub program: String,
    /// Workload scale name (e.g. `"test"`).
    pub scale: String,
    /// Mirror of [`crate::CampaignConfig::use_checkpoints`]: the worker
    /// records its own checkpoint store during its golden run.
    pub use_checkpoints: bool,
    /// Per-run wall-clock deadline in milliseconds (`None` disables it).
    pub deadline_ms: Option<u64>,
    /// Heartbeat interval in milliseconds while a run executes.
    pub heartbeat_ms: u64,
}

/// One protocol message. See the module docs for the session shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Supervisor → worker: session setup. Answered by [`Msg::Ready`] or
    /// [`Msg::Error`].
    Init(WorkerInit),
    /// Worker → supervisor: golden run complete, ready for work.
    Ready,
    /// Supervisor → worker: execute one injection. `site` is the 7-line
    /// parameter-file serialization ([`TransientParams::to_file`]).
    Run {
        /// Supervisor-side site index, echoed back in [`Msg::Done`].
        id: u64,
        /// The fault parameters, in parameter-file form.
        site: String,
    },
    /// Worker → supervisor: still alive, run in progress.
    Heartbeat,
    /// Worker → supervisor: one injection's verdict.
    Done {
        /// The site index from the matching [`Msg::Run`].
        id: u64,
        /// The verdict as an [`outcome_code`] string (carries `+pdue`).
        outcome: String,
        /// Whether the fault actually fired.
        injected: bool,
        /// Run duration in microseconds, measured worker-side.
        wall_us: u64,
        /// Dynamic instructions skipped by checkpoint fast-forward.
        skip_instrs: u64,
    },
    /// Worker → supervisor: the session is broken (unknown workload, failed
    /// golden run, corrupt frame). The worker exits after sending it.
    Error {
        /// Human-readable diagnosis.
        message: String,
    },
    /// Supervisor → worker: drain and exit cleanly.
    Shutdown,
}

// ---------------------------------------------------------------------------
// Minimal JSON codec: flat objects of strings / u64 / bool / null.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn object(fields: &[(&str, Json)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        out.push_str("\":");
        match v {
            Json::Str(s) => {
                out.push('"');
                escape_into(&mut out, s);
                out.push('"');
            }
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
        }
    }
    out.push('}');
    out
}

/// Parse one flat JSON object. Returns `None` on anything else — nesting,
/// trailing garbage, bad escapes — because the protocol never produces it.
fn parse_flat_object(text: &str) -> Option<Vec<(String, Json)>> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < chars.len() && chars[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Option<String> {
        if chars.get(*i) != Some(&'"') {
            return None;
        }
        *i += 1;
        let mut out = String::new();
        loop {
            let c = *chars.get(*i)?;
            *i += 1;
            match c {
                '"' => return Some(out),
                '\\' => {
                    let e = *chars.get(*i)?;
                    *i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex4 = |i: &mut usize| -> Option<u32> {
                                let mut v = 0u32;
                                for _ in 0..4 {
                                    v = v * 16 + chars.get(*i)?.to_digit(16)?;
                                    *i += 1;
                                }
                                Some(v)
                            };
                            let hi = hex4(i)?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if chars.get(*i) != Some(&'\\') || chars.get(*i + 1) != Some(&'u') {
                                    return None;
                                }
                                *i += 2;
                                let lo = hex4(i)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return None;
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c if (c as u32) < 0x20 => return None,
                c => out.push(c),
            }
        }
    };

    skip_ws(&mut i);
    if chars.get(i) != Some(&'{') {
        return None;
    }
    i += 1;
    let mut fields = Vec::new();
    skip_ws(&mut i);
    if chars.get(i) == Some(&'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(&mut i)?;
            skip_ws(&mut i);
            if chars.get(i) != Some(&':') {
                return None;
            }
            i += 1;
            skip_ws(&mut i);
            let value = match chars.get(i)? {
                '"' => Json::Str(parse_string(&mut i)?),
                't' if chars[i..].starts_with(&['t', 'r', 'u', 'e']) => {
                    i += 4;
                    Json::Bool(true)
                }
                'f' if chars[i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                    i += 5;
                    Json::Bool(false)
                }
                'n' if chars[i..].starts_with(&['n', 'u', 'l', 'l']) => {
                    i += 4;
                    Json::Null
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let lexeme: String = chars[start..i].iter().collect();
                    Json::Num(lexeme.parse().ok()?)
                }
                _ => return None,
            };
            fields.push((key, value));
            skip_ws(&mut i);
            match chars.get(i) {
                Some(',') => i += 1,
                Some('}') => {
                    i += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    skip_ws(&mut i);
    if i != chars.len() {
        return None;
    }
    Some(fields)
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(fields: &[(String, Json)], key: &str) -> Option<String> {
    match get(fields, key)? {
        Json::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn get_num(fields: &[(String, Json)], key: &str) -> Option<u64> {
    match get(fields, key)? {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn get_bool(fields: &[(String, Json)], key: &str) -> Option<bool> {
    match get(fields, key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

impl Msg {
    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> String {
        match self {
            Msg::Init(init) => object(&[
                ("type", Json::Str("init".into())),
                ("program", Json::Str(init.program.clone())),
                ("scale", Json::Str(init.scale.clone())),
                ("use_checkpoints", Json::Bool(init.use_checkpoints)),
                ("deadline_ms", init.deadline_ms.map_or(Json::Null, Json::Num)),
                ("heartbeat_ms", Json::Num(init.heartbeat_ms)),
            ]),
            Msg::Ready => object(&[("type", Json::Str("ready".into()))]),
            Msg::Run { id, site } => object(&[
                ("type", Json::Str("run".into())),
                ("id", Json::Num(*id)),
                ("site", Json::Str(site.clone())),
            ]),
            Msg::Heartbeat => object(&[("type", Json::Str("heartbeat".into()))]),
            Msg::Done { id, outcome, injected, wall_us, skip_instrs } => object(&[
                ("type", Json::Str("done".into())),
                ("id", Json::Num(*id)),
                ("outcome", Json::Str(outcome.clone())),
                ("injected", Json::Bool(*injected)),
                ("wall_us", Json::Num(*wall_us)),
                ("skip_instrs", Json::Num(*skip_instrs)),
            ]),
            Msg::Error { message } => object(&[
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
            Msg::Shutdown => object(&[("type", Json::Str("shutdown".into()))]),
        }
    }

    /// Parse a wire JSON message. Returns `None` for anything that is not a
    /// well-formed protocol message — the caller treats that as corruption.
    pub fn parse(text: &str) -> Option<Msg> {
        let fields = parse_flat_object(text)?;
        match get_str(&fields, "type")?.as_str() {
            "init" => Some(Msg::Init(WorkerInit {
                program: get_str(&fields, "program")?,
                scale: get_str(&fields, "scale")?,
                use_checkpoints: get_bool(&fields, "use_checkpoints")?,
                deadline_ms: match get(&fields, "deadline_ms")? {
                    Json::Null => None,
                    Json::Num(n) => Some(*n),
                    _ => return None,
                },
                heartbeat_ms: get_num(&fields, "heartbeat_ms")?,
            })),
            "ready" => Some(Msg::Ready),
            "run" => {
                Some(Msg::Run { id: get_num(&fields, "id")?, site: get_str(&fields, "site")? })
            }
            "heartbeat" => Some(Msg::Heartbeat),
            "done" => Some(Msg::Done {
                id: get_num(&fields, "id")?,
                outcome: get_str(&fields, "outcome")?,
                injected: get_bool(&fields, "injected")?,
                wall_us: get_num(&fields, "wall_us")?,
                skip_instrs: get_num(&fields, "skip_instrs")?,
            }),
            "error" => Some(Msg::Error { message: get_str(&fields, "message")? }),
            "shutdown" => Some(Msg::Shutdown),
            _ => None,
        }
    }
}

/// A workload resolver: `(program name, scale name)` → the program and its
/// SDC check. The CLI wires this to the workload suite; tests wire it to
/// whatever program they need.
pub type Resolver =
    dyn Fn(&str, &str) -> Option<(Box<dyn Program + Send + Sync>, Box<dyn SdcCheck + Send + Sync>)>;

/// Run `work` on a scoped thread while the calling thread writes
/// [`Msg::Heartbeat`] frames every `interval` — proof of life during a long
/// (or fault-wedged-but-progressing) simulation. Returns the work's result.
fn run_with_heartbeat<R: Send>(
    interval: Duration,
    output: &mut impl Write,
    work: impl FnOnce() -> R + Send,
) -> io::Result<R> {
    std::thread::scope(|s| {
        let handle = s.spawn(work);
        let slice = Duration::from_millis(2).min(interval);
        let mut since_beat = Duration::ZERO;
        while !handle.is_finished() {
            std::thread::sleep(slice);
            since_beat += slice;
            if since_beat >= interval && !handle.is_finished() {
                write_frame(output, &Msg::Heartbeat.to_json())?;
                since_beat = Duration::ZERO;
            }
        }
        Ok(handle.join().expect("worker run thread catches its own panics"))
    })
}

/// Serve one worker session: read frames from `input`, write replies to
/// `output`, executing injections for the workload named by the
/// [`Msg::Init`] frame. This is the body of the hidden `nvbitfi worker`
/// subcommand; it returns when the supervisor shuts the session down (or
/// the session breaks, after a best-effort [`Msg::Error`] reply).
///
/// The worker replays its own golden run (and checkpoint store) at init
/// time: simulation is deterministic, so the result is identical to the
/// supervisor's and nothing large ever crosses the pipe.
///
/// # Errors
///
/// Returns an [`io::Error`] only for transport failures; protocol-level
/// problems are reported in-band via [`Msg::Error`].
pub fn serve<R: Read, W: Write>(mut input: R, mut output: W, resolve: &Resolver) -> io::Result<()> {
    let bail = |output: &mut W, message: String| -> io::Result<()> {
        write_frame(output, &Msg::Error { message }.to_json())
    };

    let init = match read_frame(&mut input)? {
        None => return Ok(()),
        Some(text) => match Msg::parse(&text) {
            Some(Msg::Init(init)) => init,
            _ => return bail(&mut output, "expected an init frame".into()),
        },
    };
    let Some((program, check)) = resolve(&init.program, &init.scale) else {
        return bail(
            &mut output,
            format!("unknown workload `{}` at scale `{}`", init.program, init.scale),
        );
    };

    let base_cfg = RuntimeConfig::default();
    let golden_result: Result<(GoldenOutput, Option<Arc<CheckpointStore>>), _> = if init
        .use_checkpoints
    {
        golden_run_recording(&*program, base_cfg.clone()).map(|(g, s)| (g, Some(s.into_shared())))
    } else {
        golden_run(&*program, base_cfg.clone()).map(|g| (g, None))
    };
    let (golden, store) = match golden_result {
        Ok(v) => v,
        Err(e) => return bail(&mut output, format!("golden run failed: {e}")),
    };
    let mut inj_cfg = base_cfg;
    inj_cfg.instr_budget = Some(golden.suggested_budget());
    inj_cfg.wall_deadline = init.deadline_ms.map(Duration::from_millis);
    let heartbeat = Duration::from_millis(init.heartbeat_ms.max(1));

    write_frame(&mut output, &Msg::Ready.to_json())?;

    loop {
        let Some(text) = read_frame(&mut input)? else { return Ok(()) };
        match Msg::parse(&text) {
            Some(Msg::Shutdown) => return Ok(()),
            Some(Msg::Run { id, site }) => {
                let params = match TransientParams::from_file(&site) {
                    Ok(p) => p,
                    Err(e) => return bail(&mut output, format!("bad site parameters: {e}")),
                };
                let upto = store.as_ref().map(|s| {
                    s.find_instance(&params.kernel_name, params.kernel_count)
                        .unwrap_or(s.len() as u64)
                });
                let t = Instant::now();
                let attempt = run_with_heartbeat(heartbeat, &mut output, || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let (tool, handle) = TransientInjector::new(params.clone());
                        let out = match (&store, upto) {
                            (Some(s), Some(upto)) => run_program_fast_forward(
                                &*program,
                                inj_cfg.clone(),
                                Some(Box::new(tool)),
                                Arc::clone(s),
                                upto,
                            ),
                            _ => run_program(&*program, inj_cfg.clone(), Some(Box::new(tool))),
                        };
                        let outcome = classify(&golden, &out, &*check);
                        (outcome, handle.get().injected, out.prefix_instrs_skipped)
                    }))
                })?;
                let wall_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                let done = match attempt {
                    Ok((outcome, injected, skip_instrs)) => Msg::Done {
                        id,
                        outcome: outcome_code(&outcome),
                        injected,
                        wall_us,
                        skip_instrs,
                    },
                    // A panic inside the run stays inside the worker: report
                    // it as the same infra verdict thread-mode isolation uses
                    // and keep serving (the supervisor decides about retries).
                    Err(_) => Msg::Done {
                        id,
                        outcome: "INFRA:panic".into(),
                        injected: false,
                        wall_us,
                        skip_instrs: 0,
                    },
                };
                write_frame(&mut output, &done.to_json())?;
            }
            // A stray heartbeat is harmless; anything else means the two
            // sides disagree about the protocol — stop before guessing.
            Some(Msg::Heartbeat) => {}
            _ => return bail(&mut output, "unexpected or unparseable frame".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitflip::BitFlipModel;
    use crate::igid::InstrGroup;
    use crate::outcome::ExactDiff;
    use gpu_runtime::{Runtime, RuntimeError};
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some("hello".into()));
        assert_eq!(read_frame(&mut r).unwrap(), Some("".into()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn torn_and_oversized_frames_error() {
        // EOF inside the length prefix.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload.
        let mut r = Cursor::new(vec![0, 0, 0, 10, b'x']);
        assert!(read_frame(&mut r).is_err());
        // Length prefix beyond the cap.
        let mut r = Cursor::new((MAX_FRAME + 1).to_be_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());
        // Writing an oversized payload is refused up front.
        let huge = "x".repeat(MAX_FRAME as usize + 1);
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn messages_roundtrip() {
        let msgs = [
            Msg::Init(WorkerInit {
                program: "314.omriq".into(),
                scale: "test".into(),
                use_checkpoints: true,
                deadline_ms: Some(5000),
                heartbeat_ms: 100,
            }),
            Msg::Init(WorkerInit {
                program: "weird \"name\"\n\twith\\escapes\u{1}".into(),
                scale: "test".into(),
                use_checkpoints: false,
                deadline_ms: None,
                heartbeat_ms: 1,
            }),
            Msg::Ready,
            Msg::Run { id: 7, site: "1\n0\nkernel\n0\n42\n0.5\n0.25\n".into() },
            Msg::Heartbeat,
            Msg::Done {
                id: 7,
                outcome: "SDC:stdout+pdue".into(),
                injected: true,
                wall_us: 1234,
                skip_instrs: 99,
            },
            Msg::Error { message: "golden run failed: boom".into() },
            Msg::Shutdown,
        ];
        for m in msgs {
            let json = m.to_json();
            assert_eq!(Msg::parse(&json), Some(m.clone()), "roundtrip of {json}");
        }
    }

    #[test]
    fn garbage_never_parses_as_a_message() {
        for text in [
            "",
            "{",
            "nonsense",
            "{\"type\":\"run\"}",                     // missing fields
            "{\"type\":\"launch-missiles\"}",         // unknown type
            "{\"type\":\"done\",\"id\":\"seven\"}",   // wrong field type
            "{\"type\":\"ready\"} trailing",          // trailing garbage
            "{\"type\":\"ready\",\"x\":{\"y\":1}}",   // nested object
            "{\"type\":\"ready\",\"x\":\"\\ud800\"}", // lone surrogate
        ] {
            assert_eq!(Msg::parse(text), None, "must reject: {text}");
        }
    }

    struct Tiny;
    impl Program for Tiny {
        fn name(&self) -> &str {
            "tiny"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            rt.println("result 42");
            Ok(())
        }
    }

    fn resolve_tiny(
        program: &str,
        scale: &str,
    ) -> Option<(Box<dyn Program + Send + Sync>, Box<dyn SdcCheck + Send + Sync>)> {
        (program == "tiny" && scale == "test").then(|| {
            let p: Box<dyn Program + Send + Sync> = Box::new(Tiny);
            let c: Box<dyn SdcCheck + Send + Sync> = Box::new(ExactDiff);
            (p, c)
        })
    }

    fn session(frames: &[Msg]) -> Vec<Msg> {
        let mut input = Vec::new();
        for m in frames {
            write_frame(&mut input, &m.to_json()).unwrap();
        }
        let mut output = Vec::new();
        serve(Cursor::new(input), &mut output, &resolve_tiny).unwrap();
        let mut r = Cursor::new(output);
        let mut replies = Vec::new();
        while let Some(text) = read_frame(&mut r).unwrap() {
            replies.push(Msg::parse(&text).expect("worker emits well-formed frames"));
        }
        replies
    }

    #[test]
    fn serve_runs_a_session_end_to_end() {
        let site = TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "nonexistent".into(),
            kernel_count: 0,
            instruction_count: 0,
            destination_register: 0.5,
            bit_pattern: 0.5,
        };
        let replies = session(&[
            Msg::Init(WorkerInit {
                program: "tiny".into(),
                scale: "test".into(),
                use_checkpoints: true,
                deadline_ms: None,
                heartbeat_ms: 1000,
            }),
            Msg::Run { id: 3, site: site.to_file() },
            Msg::Shutdown,
        ]);
        assert_eq!(replies[0], Msg::Ready);
        // The target kernel never launches, so the fault cannot fire and the
        // run is Masked — what matters here is the protocol, not the fault.
        match &replies[1] {
            Msg::Done { id: 3, outcome, injected: false, .. } => assert_eq!(outcome, "MASKED"),
            other => panic!("expected a Done frame, got {other:?}"),
        }
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn serve_rejects_unknown_workloads_and_bad_frames() {
        let replies = session(&[Msg::Init(WorkerInit {
            program: "no-such-benchmark".into(),
            scale: "test".into(),
            use_checkpoints: false,
            deadline_ms: None,
            heartbeat_ms: 1000,
        })]);
        assert!(matches!(&replies[0], Msg::Error { message } if message.contains("unknown")));

        // A non-init first frame is an immediate protocol error.
        let replies = session(&[Msg::Heartbeat]);
        assert!(matches!(&replies[0], Msg::Error { .. }));

        // A malformed site is reported in-band, after Ready.
        let replies = session(&[
            Msg::Init(WorkerInit {
                program: "tiny".into(),
                scale: "test".into(),
                use_checkpoints: false,
                deadline_ms: None,
                heartbeat_ms: 1000,
            }),
            Msg::Run { id: 0, site: "not a parameter file".into() },
        ]);
        assert_eq!(replies[0], Msg::Ready);
        assert!(matches!(&replies[1], Msg::Error { .. }));
    }
}
