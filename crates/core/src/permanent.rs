//! The permanent-fault injector — NVBitFI's `pf_injector.so`.
//!
//! A permanent fault "affects all dynamic instances of an instruction type"
//! (§III-B): every execution of the target opcode on the target SM and
//! hardware lane has its destination registers XORed with the same bit
//! mask. No profile is required, but one makes campaigns efficient by
//! skipping opcodes the program never executes.

use crate::params::PermanentParams;
use gpu_isa::{Kernel, Opcode};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What a permanent-fault run did (readable after the run).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermanentRecord {
    /// Times the target opcode executed on the target SM and lane (each one
    /// corrupted).
    pub activations: u64,
    /// Times the target opcode executed anywhere (activation opportunity).
    pub executions: u64,
}

/// Handle to read the [`PermanentRecord`] after the run.
#[derive(Debug, Clone)]
pub struct PermanentHandle(Arc<Mutex<PermanentRecord>>);

impl PermanentHandle {
    /// Snapshot the record.
    pub fn get(&self) -> PermanentRecord {
        self.0.lock().clone()
    }
}

/// The permanent injector tool (attachable via [`nvbit::NvBit`]).
pub struct PermanentInjector {
    params: PermanentParams,
    opcode: Opcode,
    record: Arc<Mutex<PermanentRecord>>,
}

impl PermanentInjector {
    /// Create an injector for one permanent fault, plus its record handle.
    ///
    /// # Panics
    ///
    /// Panics if `params.opcode_id` is not a valid opcode; call
    /// [`PermanentParams::validate`] first.
    pub fn new(params: PermanentParams) -> (NvBit<PermanentInjector>, PermanentHandle) {
        let opcode = params.opcode();
        let record = Arc::new(Mutex::new(PermanentRecord::default()));
        let inj = PermanentInjector { params, opcode, record: Arc::clone(&record) };
        (NvBit::new(inj), PermanentHandle(record))
    }
}

impl NvBitTool for PermanentInjector {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if instr.op == self.opcode {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        let mut rec = self.record.lock();
        rec.executions += 1;
        // The fault lives at one physical (SM, lane): only threads that map
        // there activate it (Table III).
        if thread.meta.sm != self.params.sm_id || thread.meta.lane != self.params.lane_id {
            return;
        }
        rec.activations += 1;
        drop(rec);
        for reg in site.instr.gpr_dests() {
            thread.corrupt_reg(reg, self.params.bit_mask);
        }
        if self.params.bit_mask != 0 {
            for p in site.instr.pred_dests() {
                thread.corrupt_pred(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};
    use gpu_sim::GpuConfig;

    /// out[gtid] = gtid + 1 across 4 blocks of 32 threads.
    struct App;
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let mut k = KernelBuilder::new("inc");
            let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
            k.ldc(out, 0);
            k.s2r(tid, SpecialReg::GlobalTidX);
            k.iaddi(Reg(2), tid, 1);
            k.shli(off, tid, 2);
            k.iadd(out, out, off);
            k.stg(out, 0, Reg(2));
            k.exit();
            let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
            let m = rt.load_module(&bytes)?;
            let k = rt.get_kernel(m, "inc")?;
            let out_buf = rt.alloc(128 * 4)?;
            rt.launch(k, 4u32, 32u32, &[out_buf.addr()])?;
            rt.synchronize()?;
            let v = rt.read_u32s(out_buf, 128)?;
            for (i, x) in v.iter().enumerate() {
                rt.println(format!("{i} {x}"));
            }
            Ok(())
        }
    }

    fn cfg(num_sms: u32) -> RuntimeConfig {
        RuntimeConfig {
            gpu: GpuConfig { num_sms, ..GpuConfig::default() },
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn corrupts_every_instance_on_target_sm_and_lane() {
        // 2 SMs: blocks 0,2 on SM 0; blocks 1,3 on SM 1. Target SM 1,
        // lane 7 → threads 39 and 103 (gtid = block*32 + 7).
        let params = PermanentParams {
            sm_id: 1,
            lane_id: 7,
            bit_mask: 0x1,
            opcode_id: Opcode::IADD32I.encode(),
        };
        let (tool, handle) = PermanentInjector::new(params);
        let out = run_program(&App, cfg(2), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        // IADD32I executes once per thread: 128 executions, 2 activations.
        assert_eq!(rec.executions, 128);
        assert_eq!(rec.activations, 2);
        // Affected threads: 1*32+7=39 → (39+1)^1 = 41; 3*32+7=103 → 105.
        assert!(out.stdout.contains("39 41"), "{}", out.stdout);
        assert!(out.stdout.contains("103 105"));
        // An unaffected lane on the same SM is untouched.
        assert!(out.stdout.contains("38 39"));
    }

    #[test]
    fn unused_opcode_never_activates() {
        let params = PermanentParams {
            sm_id: 0,
            lane_id: 0,
            bit_mask: 0xFFFF_FFFF,
            opcode_id: Opcode::DFMA.encode(),
        };
        let (tool, handle) = PermanentInjector::new(params);
        let stats = tool.stats_handle();
        let out = run_program(&App, cfg(2), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert_eq!(handle.get().executions, 0);
        // No DFMA in the kernel → empty instrumentation → unmodified run.
        assert_eq!(stats.lock().launches_instrumented, 0);
    }

    #[test]
    fn zero_mask_records_but_does_not_corrupt() {
        let params = PermanentParams {
            sm_id: 0,
            lane_id: 0,
            bit_mask: 0,
            opcode_id: Opcode::IADD32I.encode(),
        };
        let (tool, handle) = PermanentInjector::new(params);
        let out = run_program(&App, cfg(2), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert!(handle.get().activations > 0);
        assert!(out.stdout.contains("0 1"), "mask 0 leaves values intact");
    }
}
