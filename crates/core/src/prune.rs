//! Static dead-fault pruning.
//!
//! The transient fault model corrupts the destination register of one
//! dynamic instruction, *after* its result is written. If that register
//! unit is dead at that point — never read again before being overwritten
//! or the thread exiting, and not readable by a sibling lane through a
//! cross-lane instruction — the injected run is bit-identical to the
//! golden run, so its outcome is **Masked** with no device anomaly, and
//! simulating it is wasted work. `gpu-analysis`' liveness fixpoint answers
//! exactly this question statically.
//!
//! Mapping a fault site's *dynamic* coordinates (`kernel name`, `kernel
//! count`, `instruction count`) back to a *static* program counter needs
//! one extra instrumented run: the [`SiteResolver`] tool instruments the
//! target kernels exactly as the injector would and records which static
//! pc each watched dynamic index lands on. Because the simulator executes
//! deterministically, this resolution is exact, not approximate.
//!
//! Everything here fails conservative: an unresolved site, a kernel with
//! an imprecise CFG (indirect branches), a mismatched group, or an
//! unclean resolver run all mean "don't prune" — the site is simulated as
//! usual.

use crate::igid::InstrGroup;
use crate::params::TransientParams;
use crate::transient::select_destination;
use gpu_analysis::{cross_lane_uses, Cfg, Liveness, RegSet};
use gpu_isa::{Kernel, RegSlot};
use gpu_runtime::{run_program, KernelLaunchInfo, Program, RuntimeConfig};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The liveness facts needed to decide deadness of an injection site in
/// one kernel.
pub struct KernelAnalysis {
    kernel: Kernel,
    live: Option<Liveness>,
    cross_lane: RegSet,
    precise: bool,
}

impl KernelAnalysis {
    /// Analyze a kernel. Kernels with imprecise CFGs (indirect branches,
    /// call/return) get a `None` liveness and never report sites as dead.
    pub fn new(kernel: &Kernel) -> KernelAnalysis {
        let cfg = Cfg::build(kernel);
        let precise = cfg.precise;
        let live = precise.then(|| Liveness::compute(kernel, &cfg));
        KernelAnalysis {
            kernel: kernel.clone(),
            live,
            cross_lane: cross_lane_uses(kernel),
            precise,
        }
    }

    /// The analyzed kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// `true` if the CFG was statically enumerable (pruning is allowed).
    pub fn precise(&self) -> bool {
        self.precise
    }

    /// `true` if corrupting `slot` right after instruction `pc` completes
    /// provably cannot propagate: the unit is dead in the thread and no
    /// cross-lane instruction in the kernel can read it from a sibling
    /// lane.
    pub fn dest_is_dead(&self, pc: u32, slot: RegSlot) -> bool {
        match &self.live {
            Some(live) => !live.live_out(pc).contains(slot) && !self.cross_lane.contains(slot),
            None => false,
        }
    }
}

#[derive(Default)]
struct ResolverState {
    /// `(kernel, instance, group index)` → static pc.
    resolved: HashMap<(String, u64, u64), u32>,
    /// Kernels that carried watched sites, as loaded.
    kernels: HashMap<String, Kernel>,
}

/// An NVBit tool that maps watched dynamic group indices to static pcs.
///
/// Instrumentation placement mirrors [`crate::TransientInjector`] exactly
/// (an `After` callback at every group instruction of a target kernel), so
/// the dynamic index sequence observed here is the same one the injector
/// counts — resolution is exact for any site the run reaches.
struct SiteResolver {
    group: InstrGroup,
    /// kernel → instance → watched group indices.
    wanted: HashMap<String, HashMap<u64, BTreeSet<u64>>>,
    /// Per (kernel, instance) running group-instruction count.
    counters: HashMap<(String, u64), u64>,
    state: Arc<Mutex<ResolverState>>,
}

impl NvBitTool for SiteResolver {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        if !self.wanted.contains_key(kernel.name()) {
            return;
        }
        self.state.lock().kernels.insert(kernel.name().to_string(), kernel.clone());
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if self.group.contains(instr.op) {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
        self.wanted
            .get(info.kernel.name())
            .is_some_and(|instances| instances.contains_key(&info.instance))
    }

    fn device_call(&mut self, site: &CallSite<'_>, _thread: &mut gpu_sim::ThreadCtx<'_>) {
        let key = (site.kernel.to_string(), site.kernel_instance);
        let counter = self.counters.entry(key).or_insert(0);
        let index = *counter;
        *counter += 1;
        let watched = self
            .wanted
            .get(site.kernel)
            .and_then(|m| m.get(&site.kernel_instance))
            .is_some_and(|set| set.contains(&index));
        if watched {
            self.state
                .lock()
                .resolved
                .insert((site.kernel.to_string(), site.kernel_instance, index), site.instr.pc());
        }
    }
}

/// Decide, for each selected fault site, whether it is *statically dead*:
/// provably Masked without simulation. Returns one flag per site, in
/// order.
///
/// Runs the program once with the [`SiteResolver`] attached to map dynamic
/// site coordinates to static pcs, then consults per-kernel liveness. The
/// extra run is the entire cost of pruning; it replaces however many
/// injection runs the flags disable.
pub fn prune_dead_sites(
    program: &dyn Program,
    run_cfg: RuntimeConfig,
    group: InstrGroup,
    sites: &[TransientParams],
) -> Vec<bool> {
    if sites.is_empty() {
        return Vec::new();
    }
    let mut wanted: HashMap<String, HashMap<u64, BTreeSet<u64>>> = HashMap::new();
    for s in sites {
        if s.group == group {
            wanted
                .entry(s.kernel_name.clone())
                .or_default()
                .entry(s.kernel_count)
                .or_default()
                .insert(s.instruction_count);
        }
    }
    let state = Arc::new(Mutex::new(ResolverState::default()));
    let resolver =
        SiteResolver { group, wanted, counters: HashMap::new(), state: Arc::clone(&state) };
    let out = run_program(program, run_cfg, Some(Box::new(NvBit::new(resolver))));
    if !out.termination.is_clean() || out.has_anomaly() {
        // The golden run was validated clean, so this is unexpected; fail
        // open and prune nothing.
        return vec![false; sites.len()];
    }
    let state = state.lock();
    let analyses: HashMap<&str, KernelAnalysis> =
        state.kernels.iter().map(|(name, k)| (name.as_str(), KernelAnalysis::new(k))).collect();
    sites
        .iter()
        .map(|s| {
            if s.group != group {
                return false;
            }
            let Some(analysis) = analyses.get(s.kernel_name.as_str()) else {
                return false;
            };
            if !analysis.precise() {
                return false;
            }
            let key = (s.kernel_name.clone(), s.kernel_count, s.instruction_count);
            let Some(&pc) = state.resolved.get(&key) else {
                // Site beyond the instance's real execution (possible with
                // approximate profiles) — leave it to the simulator.
                return false;
            };
            let instr = &analysis.kernel().instrs()[pc as usize];
            match select_destination(instr, s.group, s.destination_register) {
                // No writable destination: the injector fires but writes
                // nothing — the run is the golden run.
                None => true,
                Some(slot) => analysis.dest_is_dead(pc, slot),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitflip::BitFlipModel;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_runtime::{Runtime, RuntimeError};

    /// out[tid] = tid + 1 — with one write (R7) that is provably dead.
    fn inc_kernel() -> gpu_isa::Kernel {
        let mut k = KernelBuilder::new("inc");
        let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
        k.ldc(out, 0); // out = param — live (read by the IADD)
        k.s2r(tid, SpecialReg::TidX); // live
        k.iaddi(Reg(2), tid, 1); // live (stored)
        k.iaddi(Reg(7), tid, 9); // DEAD — R7 is never read
        k.shli(off, tid, 2); // live (read by the IADD)
        k.iadd(out, out, off); // live (base of the STG)
        k.stg(out, 0, Reg(2));
        k.exit();
        k.finish()
    }

    struct App;
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let bytes = encode::encode_module(&Module::new("m", vec![inc_kernel()]));
            let m = rt.load_module(&bytes)?;
            let k = rt.get_kernel(m, "inc")?;
            let buf = rt.alloc(32 * 4)?;
            rt.launch(k, 1u32, 32u32, &[buf.addr()])?;
            rt.synchronize()?;
            let v = rt.read_u32s(buf, 32)?;
            rt.println(format!("sum={}", v.iter().sum::<u32>()));
            Ok(())
        }
    }

    /// Group-instruction ordinal of the instruction at `pc`, for a
    /// single-warp straight-line kernel: sites are numbered per lane in
    /// lane order, so ordinal `j` covers dynamic indices `j*32..j*32+32`.
    fn gp_ordinal(kernel: &gpu_isa::Kernel, pc: usize) -> usize {
        kernel.instrs()[..pc].iter().filter(|i| InstrGroup::Gp.contains(i.op)).count()
    }

    fn site(instruction_count: u64) -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "inc".into(),
            kernel_count: 0,
            instruction_count,
            destination_register: 0.0,
            bit_pattern: 0.0,
        }
    }

    #[test]
    fn dead_and_live_sites_are_told_apart() {
        let kernel = inc_kernel();
        // Verify the kernel is what the comments claim: pc 3 writes R7.
        assert_eq!(kernel.instrs()[3].gpr_dests(), vec![Reg(7)]);
        let dead = gp_ordinal(&kernel, 3) * 32; // lane 0's dead IADD32I
        let live_shl = gp_ordinal(&kernel, 4) * 32 + 5; // lane 5's SHL
        let live_iadd = gp_ordinal(&kernel, 5) * 32 + 31; // lane 31's IADD
        let sites = vec![site(dead as u64), site(live_shl as u64), site(live_iadd as u64)];
        let flags = prune_dead_sites(&App, RuntimeConfig::default(), InstrGroup::Gp, &sites);
        assert_eq!(flags, vec![true, false, false]);
    }

    #[test]
    fn unresolved_site_is_not_pruned() {
        // An instruction count past what the instance actually executes
        // (possible with approximate profiles) never resolves to a pc, so
        // it must be left to the simulator rather than assumed dead.
        let flags = prune_dead_sites(&App, RuntimeConfig::default(), InstrGroup::Gp, &[site(5000)]);
        assert_eq!(flags, vec![false], "unreachable sites are left to the simulator");
    }

    #[test]
    fn mismatched_group_is_not_pruned() {
        let mut s = site(0);
        s.group = InstrGroup::Ld;
        let flags = prune_dead_sites(&App, RuntimeConfig::default(), InstrGroup::Gp, &[s]);
        assert_eq!(flags, vec![false]);
    }

    #[test]
    fn kernel_analysis_liveness_matches_hand_analysis() {
        let mut k = KernelBuilder::new("t");
        k.movi(Reg(0), 1); // pc 0 — R0 read at pc 1: live
        k.iaddi(Reg(1), Reg(0), 1); // pc 1 — R1 never read: dead
        k.exit(); // pc 2
        let a = KernelAnalysis::new(&k.finish());
        assert!(a.precise());
        assert!(!a.dest_is_dead(0, RegSlot::Gpr(Reg(0))));
        assert!(a.dest_is_dead(1, RegSlot::Gpr(Reg(1))));
    }
}
