//! Bit-flip models — the bit-level corruption patterns of Table II.
//!
//! Each model turns the *bit-pattern value* (a float in `[0, 1)`) into an
//! XOR mask, using the paper's formulas verbatim:
//!
//! 1. `FLIP_SINGLE_BIT`: `0x1 << (32 × value)`
//! 2. `FLIP_TWO_BITS`:   `0x3 << (31 × value)`
//! 3. `RANDOM_VALUE`:    `0xffffffff × value`
//! 4. `ZERO_VALUE`:      mask = the original register value, so the XOR
//!    produces `0x0`

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bit-level corruption pattern (Table II *bit-flip model*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum BitFlipModel {
    /// Flip a single bit.
    FlipSingleBit = 1,
    /// Flip two adjacent bits.
    FlipTwoBits = 2,
    /// Write a (value-derived) random value.
    RandomValue = 3,
    /// Write zero.
    ZeroValue = 4,
}

impl BitFlipModel {
    /// All models, in Table II order.
    pub const ALL: [BitFlipModel; 4] = [
        BitFlipModel::FlipSingleBit,
        BitFlipModel::FlipTwoBits,
        BitFlipModel::RandomValue,
        BitFlipModel::ZeroValue,
    ];

    /// The integer id (1-based, Table II).
    #[inline]
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Decode a Table II id.
    pub fn from_id(id: u8) -> Option<BitFlipModel> {
        BitFlipModel::ALL.get((id as usize).wrapping_sub(1)).copied()
    }

    /// The paper's name, e.g. `FLIP_SINGLE_BIT`.
    pub fn name(self) -> &'static str {
        match self {
            BitFlipModel::FlipSingleBit => "FLIP_SINGLE_BIT",
            BitFlipModel::FlipTwoBits => "FLIP_TWO_BITS",
            BitFlipModel::RandomValue => "RANDOM_VALUE",
            BitFlipModel::ZeroValue => "ZERO_VALUE",
        }
    }

    /// The XOR mask for a register currently holding `original`, driven by
    /// the bit-pattern `value`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value` is outside `[0, 1)`; release builds
    /// clamp.
    pub fn mask(self, value: f64, original: u32) -> u32 {
        debug_assert!((0.0..1.0).contains(&value), "bit-pattern value must be in [0,1)");
        let v = value.clamp(0.0, f64::from_bits((1.0f64).to_bits() - 1));
        match self {
            BitFlipModel::FlipSingleBit => 0x1u32 << ((32.0 * v) as u32).min(31),
            BitFlipModel::FlipTwoBits => 0x3u32 << ((31.0 * v) as u32).min(30),
            BitFlipModel::RandomValue => (u32::MAX as f64 * v) as u32,
            BitFlipModel::ZeroValue => original,
        }
    }

    /// Apply the corruption: the post-fault register value.
    pub fn corrupt(self, value: f64, original: u32) -> u32 {
        original ^ self.mask(value, original)
    }
}

impl fmt::Display for BitFlipModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for m in BitFlipModel::ALL {
            assert_eq!(BitFlipModel::from_id(m.id()), Some(m));
        }
        assert_eq!(BitFlipModel::from_id(0), None);
        assert_eq!(BitFlipModel::from_id(5), None);
    }

    #[test]
    fn single_bit_covers_all_positions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            let v = (i as f64 + 0.5) / 32.0;
            let mask = BitFlipModel::FlipSingleBit.mask(v, 0);
            assert_eq!(mask.count_ones(), 1);
            seen.insert(mask);
        }
        assert_eq!(seen.len(), 32, "every bit position reachable");
    }

    #[test]
    fn two_bits_are_adjacent() {
        for i in 0..31 {
            let v = (i as f64 + 0.5) / 31.0;
            let mask = BitFlipModel::FlipTwoBits.mask(v, 0);
            assert_eq!(mask.count_ones(), 2);
            let low = mask.trailing_zeros();
            assert_eq!(mask, 0b11 << low, "bits adjacent");
        }
    }

    #[test]
    fn zero_value_produces_zero() {
        for original in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(BitFlipModel::ZeroValue.corrupt(0.5, original), 0);
        }
    }

    #[test]
    fn random_value_scales() {
        assert_eq!(BitFlipModel::RandomValue.mask(0.0, 7), 0);
        let hi = BitFlipModel::RandomValue.mask(0.999_999_9, 7);
        assert!(hi > 0xFFFF_0000, "{hi:#x}");
    }

    #[test]
    fn corruption_changes_value_except_degenerate() {
        // A single-bit flip always changes the value.
        let c = BitFlipModel::FlipSingleBit.corrupt(0.4, 123);
        assert_ne!(c, 123);
        // ZERO_VALUE on an already-zero register is the identity.
        assert_eq!(BitFlipModel::ZeroValue.corrupt(0.4, 0), 0);
    }

    #[test]
    fn boundary_values_do_not_overshift() {
        // value arbitrarily close to 1.0 must not shift past the word.
        let v = 0.999_999_999;
        assert_eq!(BitFlipModel::FlipSingleBit.mask(v, 0).count_ones(), 1);
        assert_eq!(BitFlipModel::FlipTwoBits.mask(v, 0).count_ones(), 2);
    }
}
