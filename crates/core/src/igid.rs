//! Instruction groups — the *arch state id* parameter of Table II.
//!
//! The transient fault model injects into a chosen subset of instructions.
//! The paper defines eight groups; the first six partition the ISA by
//! destination kind, and the last two are derived unions:
//!
//! | id | group     | contents                                            |
//! |----|-----------|-----------------------------------------------------|
//! | 1  | G_FP64    | FP64 arithmetic                                      |
//! | 2  | G_FP32    | FP32 arithmetic                                      |
//! | 3  | G_LD      | instructions that read memory                        |
//! | 4  | G_PR      | instructions writing predicate registers only        |
//! | 5  | G_NODEST  | instructions with no destination register            |
//! | 6  | G_OTHERS  | everything else                                      |
//! | 7  | G_GPPR    | all − G_NODEST (writes GP *or* predicate registers)  |
//! | 8  | G_GP      | all − G_NODEST − G_PR (writes GP registers)          |

use gpu_isa::{InstrClass, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction group (Table II *arch state id*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstrGroup {
    /// FP64 arithmetic instructions.
    Fp64 = 1,
    /// FP32 arithmetic instructions.
    Fp32 = 2,
    /// Instructions that read from memory.
    Ld = 3,
    /// Instructions that write to predicate registers only.
    Pr = 4,
    /// Instructions with no destination register.
    NoDest = 5,
    /// All remaining instructions.
    Others = 6,
    /// Instructions that write general-purpose *or* predicate registers
    /// (`all − G_NODEST`).
    GpPr = 7,
    /// Instructions that write general-purpose registers
    /// (`all − G_NODEST − G_PR`).
    Gp = 8,
}

impl InstrGroup {
    /// All groups, in Table II order.
    pub const ALL: [InstrGroup; 8] = [
        InstrGroup::Fp64,
        InstrGroup::Fp32,
        InstrGroup::Ld,
        InstrGroup::Pr,
        InstrGroup::NoDest,
        InstrGroup::Others,
        InstrGroup::GpPr,
        InstrGroup::Gp,
    ];

    /// The integer *arch state id* (1-based, Table II).
    #[inline]
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Decode a Table II *arch state id*.
    pub fn from_id(id: u8) -> Option<InstrGroup> {
        InstrGroup::ALL.get((id as usize).wrapping_sub(1)).copied()
    }

    /// The paper's group name, e.g. `G_FP32`.
    pub fn name(self) -> &'static str {
        match self {
            InstrGroup::Fp64 => "G_FP64",
            InstrGroup::Fp32 => "G_FP32",
            InstrGroup::Ld => "G_LD",
            InstrGroup::Pr => "G_PR",
            InstrGroup::NoDest => "G_NODEST",
            InstrGroup::Others => "G_OTHERS",
            InstrGroup::GpPr => "G_GPPR",
            InstrGroup::Gp => "G_GP",
        }
    }

    /// Does `op` belong to this group?
    pub fn contains(self, op: Opcode) -> bool {
        let c = op.class();
        match self {
            InstrGroup::Fp64 => c == InstrClass::Fp64,
            InstrGroup::Fp32 => c == InstrClass::Fp32,
            InstrGroup::Ld => c == InstrClass::Ld,
            InstrGroup::Pr => c == InstrClass::Pr,
            InstrGroup::NoDest => c == InstrClass::NoDest,
            InstrGroup::Others => c == InstrClass::Other,
            InstrGroup::GpPr => c != InstrClass::NoDest,
            InstrGroup::Gp => c != InstrClass::NoDest && c != InstrClass::Pr,
        }
    }

    /// `true` if injections in this group may target predicate registers.
    pub fn targets_predicates(self) -> bool {
        matches!(self, InstrGroup::Pr | InstrGroup::GpPr)
    }

    /// `true` if injections in this group may target general-purpose
    /// registers.
    pub fn targets_gprs(self) -> bool {
        !matches!(self, InstrGroup::Pr | InstrGroup::NoDest)
    }
}

impl fmt::Display for InstrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_table_ii() {
        assert_eq!(InstrGroup::Fp64.id(), 1);
        assert_eq!(InstrGroup::Gp.id(), 8);
        for g in InstrGroup::ALL {
            assert_eq!(InstrGroup::from_id(g.id()), Some(g));
        }
        assert_eq!(InstrGroup::from_id(0), None);
        assert_eq!(InstrGroup::from_id(9), None);
    }

    #[test]
    fn first_six_groups_partition_the_isa() {
        for op in Opcode::ALL {
            let n = InstrGroup::ALL[..6].iter().filter(|g| g.contains(op)).count();
            assert_eq!(n, 1, "{op} must be in exactly one base group");
        }
    }

    #[test]
    fn derived_groups_match_formulas() {
        for op in Opcode::ALL {
            // G_GPPR = all − G_NODEST
            assert_eq!(InstrGroup::GpPr.contains(op), !InstrGroup::NoDest.contains(op), "{op}");
            // G_GP = all − G_NODEST − G_PR
            assert_eq!(
                InstrGroup::Gp.contains(op),
                !InstrGroup::NoDest.contains(op) && !InstrGroup::Pr.contains(op),
                "{op}"
            );
        }
    }

    #[test]
    fn spot_check_membership() {
        let op = |m: &str| Opcode::from_mnemonic(m).expect(m);
        assert!(InstrGroup::Fp64.contains(op("DFMA")));
        assert!(InstrGroup::Fp32.contains(op("FFMA")));
        assert!(InstrGroup::Ld.contains(op("LDG")));
        assert!(InstrGroup::Pr.contains(op("ISETP")));
        assert!(InstrGroup::NoDest.contains(op("STG")));
        assert!(InstrGroup::NoDest.contains(op("BRA")));
        assert!(InstrGroup::Others.contains(op("IADD")));
        assert!(InstrGroup::Gp.contains(op("LDG")));
        assert!(!InstrGroup::Gp.contains(op("ISETP")));
        assert!(InstrGroup::GpPr.contains(op("ISETP")));
    }
}
