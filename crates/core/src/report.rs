//! Plain-text reporting helpers used by the benchmark harness and examples.

use crate::campaign::{PermanentCampaign, TransientCampaign};
use crate::outcome::OutcomeCounts;
use std::fmt::Write as _;

/// Render rows as a fixed-width text table. The first row is the header.
///
/// ```
/// let t = nvbitfi::report::table(&[
///     vec!["program".into(), "SDC".into()],
///     vec!["303.ostencil".into(), "32.5%".into()],
/// ]);
/// assert!(t.contains("303.ostencil"));
/// ```
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            let pad = widths[c];
            if c + 1 == row.len() {
                let _ = write!(out, "{cell:<pad$}");
            } else {
                let _ = write!(out, "{cell:<pad$}  ");
            }
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Percentage with one decimal, e.g. `32.5%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// An `OutcomeCounts` row: `[sdc, due, masked]` percentages.
pub fn outcome_cells(c: &OutcomeCounts) -> Vec<String> {
    let (sdc, due, masked) = c.fractions();
    vec![pct(sdc), pct(due), pct(masked)]
}

/// One-paragraph summary of a transient campaign, followed by the
/// robustness line from [`robustness_line`] and the per-phase wall-clock
/// breakdown from [`phase_breakdown`].
pub fn transient_summary(c: &TransientCampaign) -> String {
    let injected = c.runs.iter().filter(|r| r.injected).count();
    format!(
        "{}: {} over {} injections ({} fired, {} statically pruned); profile: {} dynamic \
         kernels, {} dynamic instructions ({} profiling); median injection run {:?}, \
         campaign total {:?}\n{}\n{}",
        c.program,
        c.counts,
        c.runs.len(),
        injected,
        c.statically_pruned(),
        c.profile.kernels.len(),
        c.profile.total(),
        c.profile.mode,
        c.timing.median_injection(),
        c.timing.total(),
        robustness_line(c),
        phase_breakdown(&c.timing),
    )
}

/// One-line robustness accounting for a campaign: how many verdicts were
/// executed fresh vs reloaded by `resume`, how many runs needed retries,
/// how many ended as infrastructure errors (and of those, how many were
/// worker-process deaths), and whether the campaign was interrupted before
/// covering every selected site.
pub fn robustness_line(c: &TransientCampaign) -> String {
    let resumed = c.resumed_runs();
    let mut line = format!(
        "robustness: {} fresh, {} resumed, {} retried, {} infra errors, {} worker deaths",
        c.runs.len() - resumed,
        resumed,
        c.retried_runs(),
        c.counts.infra,
        c.worker_deaths(),
    );
    if c.interrupted {
        line.push_str(" — INTERRUPTED (partial results)");
    }
    line
}

/// Per-phase wall-clock table for a campaign (golden / profiling / static
/// analysis / injections), plus the dynamic instructions the injection
/// runs avoided by fast-forwarding their pre-injection prefixes from
/// checkpoints.
pub fn phase_breakdown(t: &crate::campaign::CampaignTiming) -> String {
    let injections: std::time::Duration = t.injections.iter().sum();
    let mut out = table(&[
        vec!["phase".into(), "wall-clock".into()],
        vec!["golden run".into(), format!("{:?}", t.golden)],
        vec!["profiling".into(), format!("{:?}", t.profiling)],
        vec!["static analysis".into(), format!("{:?}", t.analysis)],
        vec![format!("injections (x{})", t.injections.len()), format!("{injections:?}")],
    ]);
    let _ = write!(out, "prefix instructions skipped via checkpoints: {}", t.prefix_instrs_skipped);
    out
}

/// One-paragraph summary of a permanent campaign.
pub fn permanent_summary(c: &PermanentCampaign) -> String {
    format!(
        "{}: weighted SDC {} DUE {} Masked {} over {} opcode experiments; \
         unweighted {}; campaign total {:?}",
        c.program,
        pct(c.weighted.sdc),
        pct(c.weighted.due),
        pct(c.weighted.masked),
        c.runs.len(),
        c.counts,
        c.total_time(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t =
            table(&[vec!["a".into(), "long-header".into()], vec!["wider-cell".into(), "x".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        // Both data columns start at the same offset.
        assert_eq!(lines[0].find("long-header"), lines[2].find("x"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.325), "32.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn empty_table() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn robustness_line_counts_resume_retry_and_infra() {
        use crate::campaign::{InjectionRun, TransientCampaign};
        use crate::outcome::{InfraKind, Outcome, OutcomeClass, OutcomeCounts};
        let run = |resumed: bool, attempts: u32, infra: bool| InjectionRun {
            params: crate::params::TransientParams {
                group: crate::igid::InstrGroup::Gp,
                bit_flip: crate::bitflip::BitFlipModel::FlipSingleBit,
                kernel_name: "k".into(),
                kernel_count: 0,
                instruction_count: 0,
                destination_register: 0.1,
                bit_pattern: 0.1,
            },
            outcome: if infra {
                Outcome {
                    class: OutcomeClass::InfraError(InfraKind::WorkerPanic),
                    potential_due: false,
                }
            } else {
                Outcome { class: OutcomeClass::Masked, potential_due: false }
            },
            injected: !infra,
            wall: std::time::Duration::ZERO,
            prefix_instrs_skipped: 0,
            pruned: false,
            attempts,
            resumed,
        };
        let mut runs = vec![run(false, 1, false), run(true, 1, false), run(false, 3, true)];
        let mut died = run(false, 2, true);
        died.outcome.class = OutcomeClass::InfraError(InfraKind::WorkerDied);
        runs.push(died);
        let mut counts = OutcomeCounts::default();
        for r in &runs {
            counts.add(&r.outcome);
        }
        let c = TransientCampaign {
            program: "p".into(),
            profile: crate::profile::Profile {
                mode: crate::profile::ProfilingMode::Exact,
                kernels: vec![],
            },
            golden: crate::golden::GoldenOutput {
                stdout: String::new(),
                files: Default::default(),
                summary: Default::default(),
            },
            counts,
            runs,
            timing: Default::default(),
            interrupted: false,
        };
        let line = robustness_line(&c);
        assert!(line.contains("3 fresh"), "{line}");
        assert!(line.contains("1 resumed"), "{line}");
        assert!(line.contains("2 retried"), "{line}");
        assert!(line.contains("2 infra errors"), "{line}");
        assert!(line.contains("1 worker deaths"), "{line}");
        assert!(!line.contains("INTERRUPTED"), "{line}");

        let mut c = c;
        c.interrupted = true;
        assert!(robustness_line(&c).contains("INTERRUPTED"));
        assert!(transient_summary(&c).contains("robustness:"));
    }

    #[test]
    fn phase_breakdown_reports_all_phases_and_skips() {
        use std::time::Duration;
        let t = crate::campaign::CampaignTiming {
            golden: Duration::from_millis(5),
            profiling: Duration::from_millis(7),
            analysis: Duration::from_millis(3),
            injections: vec![Duration::from_millis(2); 4],
            prefix_instrs_skipped: 1234,
        };
        let text = phase_breakdown(&t);
        assert!(text.contains("golden run"), "{text}");
        assert!(text.contains("profiling"), "{text}");
        assert!(text.contains("static analysis"), "{text}");
        assert!(text.contains("injections (x4)"), "{text}");
        assert!(text.contains("8ms"), "sums the injection phase: {text}");
        assert!(text.contains("skipped via checkpoints: 1234"), "{text}");
    }
}
