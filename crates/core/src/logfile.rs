//! Campaign log files — the analog of the upstream scripts' `logs/`
//! directory: an *injection list* enumerating the selected faults before a
//! campaign runs, and a *results log* with one line per classified run.
//!
//! Both formats are plain text, tab-separated, order-preserving, and
//! round-trip exactly, so campaigns can be split across machines (ship the
//! injection list, gather the result logs) the way the paper's
//! `run_injections.py` does.

use crate::bitflip::BitFlipModel;
use crate::campaign::{InjectionRun, TransientCampaign};
use crate::error::FiError;
use crate::igid::InstrGroup;
use crate::outcome::{DueKind, InfraKind, Outcome, OutcomeClass, OutcomeCounts, SdcReason};
use crate::params::TransientParams;
use std::collections::BTreeMap;

/// Serialize an injection list: a header plus one fault per line.
pub fn write_injection_list(sites: &[TransientParams]) -> String {
    let mut out = String::from(
        "# nvbitfi injection list v1\n# igid\tbfm\tkernel\tkcount\ticount\tdreg\tbitpat\n",
    );
    for p in sites {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            p.group.id(),
            p.bit_flip.id(),
            p.kernel_name,
            p.kernel_count,
            p.instruction_count,
            p.destination_register,
            p.bit_pattern
        ));
    }
    out
}

/// Parse an injection list produced by [`write_injection_list`].
///
/// # Errors
///
/// Returns [`FiError::BadParamFile`] naming the first offending line.
pub fn read_injection_list(text: &str) -> Result<Vec<TransientParams>, FiError> {
    let bad = |line: usize, reason: String| FiError::BadParamFile { line, reason };
    let mut sites = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(bad(lineno, format!("expected 7 fields, got {}", fields.len())));
        }
        let group = fields[0]
            .parse::<u8>()
            .ok()
            .and_then(InstrGroup::from_id)
            .ok_or_else(|| bad(lineno, format!("bad igid `{}`", fields[0])))?;
        let bit_flip = fields[1]
            .parse::<u8>()
            .ok()
            .and_then(BitFlipModel::from_id)
            .ok_or_else(|| bad(lineno, format!("bad bfm `{}`", fields[1])))?;
        let parse_u64 = |s: &str, what: &str| {
            s.parse::<u64>().map_err(|e| bad(lineno, format!("bad {what}: {e}")))
        };
        let parse_f64 = |s: &str, what: &str| {
            s.parse::<f64>().map_err(|e| bad(lineno, format!("bad {what}: {e}")))
        };
        let p = TransientParams {
            group,
            bit_flip,
            kernel_name: fields[2].to_string(),
            kernel_count: parse_u64(fields[3], "kernel count")?,
            instruction_count: parse_u64(fields[4], "instruction count")?,
            destination_register: parse_f64(fields[5], "destination register")?,
            bit_pattern: parse_f64(fields[6], "bit pattern")?,
        };
        p.validate().map_err(|e| bad(lineno, e.to_string()))?;
        sites.push(p);
    }
    Ok(sites)
}

/// The compact outcome code a results-log row (and the worker protocol's
/// `done` frame) carries, e.g. `MASKED`, `SDC:stdout`, `DUE:crash+pdue`.
pub fn outcome_code(o: &Outcome) -> String {
    let base = match &o.class {
        OutcomeClass::Masked => "MASKED".to_string(),
        OutcomeClass::Sdc(reasons) => {
            let tag = match reasons.first() {
                Some(SdcReason::Stdout) => "stdout",
                Some(SdcReason::File(_)) => "file",
                Some(SdcReason::AppCheck(_)) => "appcheck",
                None => "unspecified",
            };
            format!("SDC:{tag}")
        }
        OutcomeClass::Due(DueKind::Timeout) => "DUE:timeout".to_string(),
        OutcomeClass::Due(DueKind::Crash) => "DUE:crash".to_string(),
        OutcomeClass::Due(DueKind::NonZeroExit) => "DUE:exit".to_string(),
        OutcomeClass::InfraError(InfraKind::WorkerPanic) => "INFRA:panic".to_string(),
        OutcomeClass::InfraError(InfraKind::Deadline) => "INFRA:deadline".to_string(),
        OutcomeClass::InfraError(InfraKind::WorkerDied) => "INFRA:died".to_string(),
    };
    if o.potential_due {
        format!("{base}+pdue")
    } else {
        base
    }
}

/// Parse an [`outcome_code`] back into an [`Outcome`] (SDC reasons carry
/// placeholder payloads — the code stores only the reason *kind*).
pub fn parse_outcome(code: &str) -> Option<Outcome> {
    let (base, potential_due) = match code.strip_suffix("+pdue") {
        Some(b) => (b, true),
        None => (code, false),
    };
    let class = match base {
        "MASKED" => OutcomeClass::Masked,
        "SDC:stdout" => OutcomeClass::Sdc(vec![SdcReason::Stdout]),
        "SDC:file" => OutcomeClass::Sdc(vec![SdcReason::File("<from-log>".into())]),
        "SDC:appcheck" => OutcomeClass::Sdc(vec![SdcReason::AppCheck("<from-log>".into())]),
        "SDC:unspecified" => OutcomeClass::Sdc(vec![]),
        "DUE:timeout" => OutcomeClass::Due(DueKind::Timeout),
        "DUE:crash" => OutcomeClass::Due(DueKind::Crash),
        "DUE:exit" => OutcomeClass::Due(DueKind::NonZeroExit),
        "INFRA:panic" => OutcomeClass::InfraError(InfraKind::WorkerPanic),
        "INFRA:deadline" => OutcomeClass::InfraError(InfraKind::Deadline),
        "INFRA:died" => OutcomeClass::InfraError(InfraKind::WorkerDied),
        _ => return None,
    };
    Some(Outcome { class, potential_due })
}

/// One parsed results-log row.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRow {
    /// The fault injected.
    pub params: TransientParams,
    /// Its classified outcome (SDC reasons carry placeholder payloads —
    /// the log stores only the reason *kind*).
    pub outcome: Outcome,
    /// Whether the fault actually fired.
    pub injected: bool,
    /// Run duration in microseconds.
    pub wall_us: u64,
    /// Dynamic instructions the run skipped via checkpoint fast-forward
    /// (0 in v1 logs, which predate the column).
    pub prefix_instrs_skipped: u64,
    /// Whether the outcome came from static dead-fault pruning rather
    /// than simulation (`false` in v1/v2 logs, which predate the column).
    pub pruned: bool,
    /// Execution attempts this verdict took, counting retries after worker
    /// panics or deadline overruns (`1` in v1–v3 logs, which predate the
    /// column).
    pub attempts: u32,
}

/// Parsed results-log header: the program name and any `# meta key=value`
/// lines recorded when the log was started.
///
/// Meta lines carry the campaign configuration a `resume` needs to rebuild
/// the identical (seed-deterministic) injection selection; the core reader
/// treats keys as opaque.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHeader {
    /// `program=` from the version line, if present.
    pub program: Option<String>,
    /// `key=value` pairs from `# meta` lines, in first-seen order per key.
    pub meta: BTreeMap<String, String>,
}

/// Parse the comment header of a results log (version line and `# meta`
/// lines). Data rows are ignored; unknown comment lines are skipped.
pub fn parse_log_header(text: &str) -> LogHeader {
    let mut header = LogHeader::default();
    for line in text.lines() {
        let Some(comment) = line.strip_prefix('#') else { continue };
        let comment = comment.trim();
        if let Some(rest) = comment.strip_prefix("nvbitfi results log ") {
            if let Some(program) = rest.split_whitespace().find_map(|w| w.strip_prefix("program="))
            {
                header.program = Some(program.to_string());
            }
        } else if let Some(pair) = comment.strip_prefix("meta ") {
            if let Some((k, v)) = pair.split_once('=') {
                header.meta.entry(k.trim().to_string()).or_insert_with(|| v.trim().to_string());
            }
        }
    }
    header
}

/// The results-log header: version line, one `# meta key=value` line per
/// pair, and the column-name comment. This is what a journaling campaign
/// writes before its first row; [`write_results_log`] uses it with empty
/// meta.
///
/// Keys and values must not contain newlines (they are written verbatim).
pub fn results_log_header(program: &str, meta: &[(&str, String)]) -> String {
    let mut out = format!("# nvbitfi results log v5 program={program}\n");
    for (k, v) in meta {
        out.push_str(&format!("# meta {k}={v}\n"));
    }
    out.push_str(
        "# igid\tbfm\tkernel\tkcount\ticount\tdreg\tbitpat\tfired\toutcome\twall_us\tskip_instrs\tpruned\tattempts\n",
    );
    out
}

/// One newline-terminated v4 results row — the unit a durable journal
/// appends and flushes as each run completes.
pub fn results_log_row(run: &InjectionRun) -> String {
    let p = &run.params;
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        p.group.id(),
        p.bit_flip.id(),
        p.kernel_name,
        p.kernel_count,
        p.instruction_count,
        p.destination_register,
        p.bit_pattern,
        if run.injected { 1 } else { 0 },
        outcome_code(&run.outcome),
        run.wall.as_micros(),
        run.prefix_instrs_skipped,
        if run.pruned { "static" } else { "-" },
        run.attempts
    )
}

/// Serialize a campaign's per-run results, one line per injection. The v2
/// format appended a `skip_instrs` column (dynamic instructions skipped by
/// checkpoint fast-forward); v3 appended a `pruned` column (`static` for
/// statically-pruned sites, `-` for simulated runs); v4 appended an
/// `attempts` column (executions the verdict took, counting retries) and
/// admitted `# meta key=value` header lines; v5 adds no columns but admits
/// the `isolation=` meta key and the `INFRA:died` outcome code recorded by
/// process-isolated campaigns. The reader still accepts v1–v4 rows.
pub fn write_results_log(c: &TransientCampaign) -> String {
    let mut out = results_log_header(&c.program, &[]);
    for run in &c.runs {
        out.push_str(&results_log_row(run));
    }
    out
}

/// Parse a results log produced by [`write_results_log`].
///
/// # Errors
///
/// Returns [`FiError::BadParamFile`] naming the first offending line.
pub fn read_results_log(text: &str) -> Result<Vec<LogRow>, FiError> {
    let bad = |line: usize, reason: String| FiError::BadParamFile { line, reason };
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if !(10..=13).contains(&fields.len()) {
            return Err(bad(lineno, format!("expected 10 to 13 fields, got {}", fields.len())));
        }
        let head = fields[..7].join("\t");
        let params = read_injection_list(&head)
            .map_err(|e| bad(lineno, e.to_string()))?
            .pop()
            .ok_or_else(|| bad(lineno, "empty params".into()))?;
        let injected = match fields[7] {
            "1" => true,
            "0" => false,
            other => return Err(bad(lineno, format!("bad fired flag `{other}`"))),
        };
        let outcome = parse_outcome(fields[8])
            .ok_or_else(|| bad(lineno, format!("bad outcome `{}`", fields[8])))?;
        let wall_us =
            fields[9].parse::<u64>().map_err(|e| bad(lineno, format!("bad wall_us: {e}")))?;
        let prefix_instrs_skipped = match fields.get(10) {
            Some(s) => {
                s.parse::<u64>().map_err(|e| bad(lineno, format!("bad skip_instrs: {e}")))?
            }
            None => 0, // v1 row
        };
        let pruned = match fields.get(11) {
            Some(&"static") => true,
            Some(&"-") => false,
            Some(other) => return Err(bad(lineno, format!("bad pruned flag `{other}`"))),
            None => false, // v1/v2 row
        };
        let attempts = match fields.get(12) {
            Some(s) => {
                let n = s.parse::<u32>().map_err(|e| bad(lineno, format!("bad attempts: {e}")))?;
                if n == 0 {
                    return Err(bad(lineno, "attempts must be >= 1".into()));
                }
                n
            }
            None => 1, // v1-v3 row
        };
        rows.push(LogRow {
            params,
            outcome,
            injected,
            wall_us,
            prefix_instrs_skipped,
            pruned,
            attempts,
        });
    }
    Ok(rows)
}

/// Parse a possibly crash-truncated results log, tolerating a torn final
/// line.
///
/// A journaling campaign appends each row as one newline-terminated write,
/// so only the *last* line of a crashed campaign's log can be incomplete —
/// recognizable by the missing terminator. The torn tail is dropped (its run
/// simply re-executes on resume) and reported via the second return value.
///
/// # Errors
///
/// Returns [`FiError::BadParamFile`] for malformed *complete* lines — those
/// indicate real corruption, not a crash mid-append.
pub fn recover_results_log(text: &str) -> Result<(Vec<LogRow>, bool), FiError> {
    let (intact, torn) = match text.rfind('\n') {
        _ if text.is_empty() || text.ends_with('\n') => (text, false),
        Some(last) => (&text[..=last], true),
        None => ("", true),
    };
    Ok((read_results_log(intact)?, torn))
}

/// Re-aggregate outcome counts from parsed log rows (the gather step of a
/// split campaign).
pub fn tally(rows: &[LogRow]) -> OutcomeCounts {
    let mut counts = OutcomeCounts::default();
    for r in rows {
        counts.add(&r.outcome);
    }
    counts
}

/// Reconstruct [`InjectionRun`]s from log rows (timings restored at
/// microsecond granularity).
pub fn to_runs(rows: Vec<LogRow>) -> Vec<InjectionRun> {
    rows.into_iter()
        .map(|r| InjectionRun {
            params: r.params,
            outcome: r.outcome,
            injected: r.injected,
            wall: std::time::Duration::from_micros(r.wall_us),
            prefix_instrs_skipped: r.prefix_instrs_skipped,
            pruned: r.pruned,
            attempts: r.attempts,
            resumed: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u64) -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipTwoBits,
            kernel_name: format!("kern_{}", i % 3),
            kernel_count: i % 5,
            instruction_count: i * 97,
            destination_register: (i as f64 * 0.37) % 1.0,
            bit_pattern: (i as f64 * 0.61) % 1.0,
        }
    }

    #[test]
    fn injection_list_roundtrips() {
        let sites: Vec<_> = (0..20).map(site).collect();
        let text = write_injection_list(&sites);
        assert_eq!(read_injection_list(&text).expect("parse"), sites);
    }

    #[test]
    fn injection_list_rejects_garbage() {
        assert!(matches!(
            read_injection_list("1\t2\tk"),
            Err(FiError::BadParamFile { line: 1, .. })
        ));
        assert!(matches!(
            read_injection_list("9\t1\tk\t0\t0\t0.5\t0.5"),
            Err(FiError::BadParamFile { .. })
        ));
        // out-of-range float caught by validation
        assert!(read_injection_list("1\t1\tk\t0\t0\t1.5\t0.5").is_err());
    }

    #[test]
    fn outcome_codes_roundtrip() {
        let outcomes = [
            Outcome { class: OutcomeClass::Masked, potential_due: false },
            Outcome { class: OutcomeClass::Masked, potential_due: true },
            Outcome { class: OutcomeClass::Sdc(vec![SdcReason::Stdout]), potential_due: false },
            Outcome {
                class: OutcomeClass::Sdc(vec![SdcReason::File("x".into())]),
                potential_due: true,
            },
            Outcome { class: OutcomeClass::Due(DueKind::Timeout), potential_due: false },
            Outcome { class: OutcomeClass::Due(DueKind::Crash), potential_due: false },
            Outcome { class: OutcomeClass::Due(DueKind::NonZeroExit), potential_due: false },
            Outcome {
                class: OutcomeClass::InfraError(InfraKind::WorkerPanic),
                potential_due: false,
            },
            Outcome { class: OutcomeClass::InfraError(InfraKind::Deadline), potential_due: false },
            Outcome {
                class: OutcomeClass::InfraError(InfraKind::WorkerDied),
                potential_due: false,
            },
        ];
        for o in outcomes {
            let code = outcome_code(&o);
            let back = parse_outcome(&code).expect("parse");
            assert_eq!(back.potential_due, o.potential_due, "{code}");
            // class kinds survive (payload strings are placeholders)
            assert_eq!(
                std::mem::discriminant(&back.class),
                std::mem::discriminant(&o.class),
                "{code}"
            );
        }
        assert!(parse_outcome("NONSENSE").is_none());
    }

    #[test]
    fn results_log_roundtrips_and_tallies() {
        let runs: Vec<InjectionRun> = (0..10)
            .map(|i| InjectionRun {
                params: site(i),
                outcome: if i % 3 == 0 {
                    Outcome {
                        class: OutcomeClass::Sdc(vec![SdcReason::Stdout]),
                        potential_due: false,
                    }
                } else {
                    Outcome { class: OutcomeClass::Masked, potential_due: i % 4 == 1 }
                },
                injected: i % 7 != 0,
                wall: std::time::Duration::from_micros(1000 + i),
                prefix_instrs_skipped: i * 1000,
                pruned: i == 4,
                attempts: 1 + (i % 3) as u32,
                resumed: false,
            })
            .collect();
        let campaign = TransientCampaign {
            program: "test.prog".into(),
            profile: crate::profile::Profile {
                mode: crate::profile::ProfilingMode::Exact,
                kernels: vec![],
            },
            golden: crate::golden::GoldenOutput {
                stdout: String::new(),
                files: Default::default(),
                summary: Default::default(),
            },
            counts: {
                let mut c = OutcomeCounts::default();
                for r in &runs {
                    c.add(&r.outcome);
                }
                c
            },
            runs,
            timing: Default::default(),
            interrupted: false,
        };
        let text = write_results_log(&campaign);
        assert!(text.starts_with("# nvbitfi results log v5 program=test.prog"));
        let rows = read_results_log(&text).expect("parse");
        assert_eq!(rows.len(), 10);
        assert_eq!(tally(&rows), campaign.counts);
        let back = to_runs(rows);
        for (a, b) in back.iter().zip(&campaign.runs) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.injected, b.injected);
            assert_eq!(a.wall, b.wall);
            assert_eq!(a.prefix_instrs_skipped, b.prefix_instrs_skipped);
            assert_eq!(a.pruned, b.pruned);
            assert_eq!(a.attempts, b.attempts);
        }
    }

    #[test]
    fn results_log_accepts_v3_rows_without_attempts_column() {
        let header = "# nvbitfi results log v3 program=x\n";
        let rows =
            read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t42\t-"))
                .expect("v3 row parses");
        assert_eq!(rows[0].attempts, 1);
        let v4 = format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tINFRA:panic\t5\t42\t-\t3");
        let rows = read_results_log(&v4).expect("v4 row parses");
        assert_eq!(rows[0].attempts, 3);
        assert!(rows[0].outcome.is_infra());
        let zero = format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t42\t-\t0");
        assert!(read_results_log(&zero).is_err());
    }

    #[test]
    fn header_meta_roundtrips() {
        let header = results_log_header(
            "p.x",
            &[("seed", "42".to_string()), ("injections", "100".to_string())],
        );
        let parsed = parse_log_header(&header);
        assert_eq!(parsed.program.as_deref(), Some("p.x"));
        assert_eq!(parsed.meta.get("seed").map(String::as_str), Some("42"));
        assert_eq!(parsed.meta.get("injections").map(String::as_str), Some("100"));
        // Headers without meta lines parse to an empty map; data rows and
        // unknown comments are ignored.
        let plain = format!(
            "{}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\n# random note\n",
            results_log_header("q", &[])
        );
        let parsed = parse_log_header(&plain);
        assert_eq!(parsed.program.as_deref(), Some("q"));
        assert!(parsed.meta.is_empty());
    }

    #[test]
    fn recovery_drops_torn_final_line_only() {
        let mut text = results_log_header("p", &[]);
        text.push_str("1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t0\t-\t1\n");
        text.push_str("1\t1\tk\t0\t1\t0.1\t0.1\t1\tSDC:stdout\t6\t0\t-\t1\n");

        let (rows, torn) = recover_results_log(&text).expect("clean log");
        assert_eq!(rows.len(), 2);
        assert!(!torn);

        // A crash mid-append leaves an unterminated fragment: dropped.
        let torn_text = format!("{text}1\t1\tk\t0\t2\t0.1\t0.1\t1\tMAS");
        let (rows, torn) = recover_results_log(&torn_text).expect("torn log");
        assert_eq!(rows.len(), 2);
        assert!(torn);

        // Header-only fragment (crash before the first complete row).
        let (rows, torn) = recover_results_log("# nvbitfi results").expect("fragment");
        assert!(rows.is_empty());
        assert!(torn);

        // A malformed *complete* line is corruption, not a torn tail.
        let corrupt = format!("{text}1\tgarbage\n");
        assert!(recover_results_log(&corrupt).is_err());
    }

    #[test]
    fn results_log_accepts_v1_rows_without_skip_column() {
        let header = "# nvbitfi results log v1 program=x\n";
        let rows = read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5"))
            .expect("v1 row parses");
        assert_eq!(rows[0].prefix_instrs_skipped, 0);
        assert_eq!(rows[0].wall_us, 5);
        assert!(!rows[0].pruned);
    }

    #[test]
    fn results_log_accepts_v2_rows_without_pruned_column() {
        let header = "# nvbitfi results log v2 program=x\n";
        let rows = read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t42"))
            .expect("v2 row parses");
        assert_eq!(rows[0].prefix_instrs_skipped, 42);
        assert!(!rows[0].pruned);
        let v3 = format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t42\tstatic");
        assert!(read_results_log(&v3).expect("v3 row parses")[0].pruned);
        let junk = format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED\t5\t42\tmaybe");
        assert!(read_results_log(&junk).is_err());
    }

    #[test]
    fn results_log_rejects_bad_rows() {
        let header = "# nvbitfi results log v1 program=x\n";
        assert!(
            read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t2\tMASKED\t5")).is_err()
        );
        assert!(read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tWAT\t5")).is_err());
        assert!(read_results_log(&format!("{header}1\t1\tk\t0\t0\t0.1\t0.1\t1\tMASKED")).is_err());
    }
}
