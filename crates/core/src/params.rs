//! Fault parameter files — Tables II and III.
//!
//! NVBitFI drives each injection experiment from a small text parameter
//! file, one value per line. This module defines both parameter sets and
//! their (de)serialization, preserving the paper's conventions:
//!
//! * `kernel count` / `instruction count` are **0-based**: the value `n`
//!   names the *(n+1)-th* dynamic instance,
//! * `destination register` and `bit-pattern value` are floats in `[0, 1)`
//!   mapped onto the candidate set at injection time.

use crate::bitflip::BitFlipModel;
use crate::error::FiError;
use crate::igid::InstrGroup;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters for one transient fault (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientParams {
    /// Instruction subset to inject (*arch state id*).
    pub group: InstrGroup,
    /// Bit-level corruption pattern.
    pub bit_flip: BitFlipModel,
    /// Target kernel name.
    pub kernel_name: String,
    /// 0-based dynamic instance of the kernel name.
    pub kernel_count: u64,
    /// 0-based dynamic instance of the target instruction, counted over the
    /// group's instructions within the target kernel instance.
    pub instruction_count: u64,
    /// Selects which destination register to corrupt, in `[0, 1)`.
    pub destination_register: f64,
    /// Drives the bit-error mask, in `[0, 1)`.
    pub bit_pattern: f64,
}

impl TransientParams {
    /// Validate value ranges.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::BadParam`] if a float parameter is outside
    /// `[0, 1)` or the kernel name is empty.
    pub fn validate(&self) -> Result<(), FiError> {
        if self.kernel_name.is_empty() {
            return Err(FiError::BadParam { name: "kernel name", reason: "empty".into() });
        }
        for (name, v) in [
            ("destination register", self.destination_register),
            ("bit-pattern value", self.bit_pattern),
        ] {
            if !(0.0..1.0).contains(&v) {
                return Err(FiError::BadParam {
                    name: match name {
                        "destination register" => "destination register",
                        _ => "bit-pattern value",
                    },
                    reason: format!("{v} outside [0,1)"),
                });
            }
        }
        Ok(())
    }

    /// Serialize in the one-parameter-per-line file format.
    pub fn to_file(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n{}\n",
            self.group.id(),
            self.bit_flip.id(),
            self.kernel_name,
            self.kernel_count,
            self.instruction_count,
            self.destination_register,
            self.bit_pattern,
        )
    }

    /// Parse the one-parameter-per-line file format.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::BadParamFile`] naming the first offending line.
    pub fn from_file(text: &str) -> Result<TransientParams, FiError> {
        let mut lines = text.lines();
        let mut next = |line: usize, what: &str| {
            lines
                .next()
                .ok_or_else(|| FiError::BadParamFile { line, reason: format!("missing {what}") })
        };
        let bad = |line: usize, reason: String| FiError::BadParamFile { line, reason };

        let group_raw = next(1, "arch state id")?;
        let group = group_raw
            .trim()
            .parse::<u8>()
            .ok()
            .and_then(InstrGroup::from_id)
            .ok_or_else(|| bad(1, format!("bad arch state id `{group_raw}`")))?;
        let bf_raw = next(2, "bit-flip model")?;
        let bit_flip = bf_raw
            .trim()
            .parse::<u8>()
            .ok()
            .and_then(BitFlipModel::from_id)
            .ok_or_else(|| bad(2, format!("bad bit-flip model `{bf_raw}`")))?;
        let kernel_name = next(3, "kernel name")?.trim().to_string();
        let kernel_count = next(4, "kernel count")?
            .trim()
            .parse::<u64>()
            .map_err(|e| bad(4, format!("bad kernel count: {e}")))?;
        let instruction_count = next(5, "instruction count")?
            .trim()
            .parse::<u64>()
            .map_err(|e| bad(5, format!("bad instruction count: {e}")))?;
        let destination_register = next(6, "destination register")?
            .trim()
            .parse::<f64>()
            .map_err(|e| bad(6, format!("bad destination register: {e}")))?;
        let bit_pattern = next(7, "bit-pattern value")?
            .trim()
            .parse::<f64>()
            .map_err(|e| bad(7, format!("bad bit-pattern value: {e}")))?;

        let p = TransientParams {
            group,
            bit_flip,
            kernel_name,
            kernel_count,
            instruction_count,
            destination_register,
            bit_pattern,
        };
        p.validate().map_err(|e| bad(6, e.to_string()))?;
        Ok(p)
    }
}

impl fmt::Display for TransientParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} into `{}` instance {} instruction {} (dst {:.4}, pattern {:.4})",
            self.group,
            self.bit_flip,
            self.kernel_name,
            self.kernel_count,
            self.instruction_count,
            self.destination_register,
            self.bit_pattern
        )
    }
}

/// Parameters for one permanent fault (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermanentParams {
    /// Which SM to inject (`0..num_sms`).
    pub sm_id: u32,
    /// Which hardware lane to inject (`0..32`).
    pub lane_id: u32,
    /// The XOR bit mask applied to destination registers.
    pub bit_mask: u32,
    /// The opcode to corrupt, as its stable encoding (`0..171`).
    pub opcode_id: u16,
}

impl PermanentParams {
    /// Validate value ranges against the device.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::BadParam`] if the lane, SM, or opcode id is out of
    /// range.
    pub fn validate(&self, num_sms: u32) -> Result<(), FiError> {
        if self.sm_id >= num_sms {
            return Err(FiError::BadParam {
                name: "SM id",
                reason: format!("{} >= {num_sms}", self.sm_id),
            });
        }
        if self.lane_id >= gpu_isa::WARP_SIZE as u32 {
            return Err(FiError::BadParam {
                name: "lane id",
                reason: format!("{} >= 32", self.lane_id),
            });
        }
        if gpu_isa::Opcode::decode(self.opcode_id).is_none() {
            return Err(FiError::BadParam {
                name: "opcode id",
                reason: format!("{} >= {}", self.opcode_id, gpu_isa::OPCODE_COUNT),
            });
        }
        Ok(())
    }

    /// The targeted opcode.
    ///
    /// # Panics
    ///
    /// Panics if the opcode id is invalid; call
    /// [`PermanentParams::validate`] first.
    pub fn opcode(&self) -> gpu_isa::Opcode {
        gpu_isa::Opcode::decode(self.opcode_id).expect("validated opcode id")
    }

    /// Serialize in the one-parameter-per-line file format.
    pub fn to_file(&self) -> String {
        format!("{}\n{}\n{:#010x}\n{}\n", self.sm_id, self.lane_id, self.bit_mask, self.opcode_id)
    }

    /// Parse the one-parameter-per-line file format.
    ///
    /// # Errors
    ///
    /// Returns [`FiError::BadParamFile`] naming the first offending line.
    pub fn from_file(text: &str) -> Result<PermanentParams, FiError> {
        let mut lines = text.lines();
        let mut field = |line: usize, what: &str| -> Result<String, FiError> {
            lines
                .next()
                .map(|s| s.trim().to_string())
                .ok_or_else(|| FiError::BadParamFile { line, reason: format!("missing {what}") })
        };
        let sm_id = field(1, "SM id")?
            .parse::<u32>()
            .map_err(|e| FiError::BadParamFile { line: 1, reason: e.to_string() })?;
        let lane_id = field(2, "lane id")?
            .parse::<u32>()
            .map_err(|e| FiError::BadParamFile { line: 2, reason: e.to_string() })?;
        let mask_s = field(3, "bit mask")?;
        let bit_mask = if let Some(hex) = mask_s.strip_prefix("0x") {
            u32::from_str_radix(hex, 16)
                .map_err(|e| FiError::BadParamFile { line: 3, reason: e.to_string() })?
        } else {
            mask_s
                .parse::<u32>()
                .map_err(|e| FiError::BadParamFile { line: 3, reason: e.to_string() })?
        };
        let opcode_id = field(4, "opcode id")?
            .parse::<u16>()
            .map_err(|e| FiError::BadParamFile { line: 4, reason: e.to_string() })?;
        Ok(PermanentParams { sm_id, lane_id, bit_mask, opcode_id })
    }
}

impl fmt::Display for PermanentParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op =
            gpu_isa::Opcode::decode(self.opcode_id).map(|o| o.mnemonic()).unwrap_or("<invalid>");
        write!(
            f,
            "permanent fault on {op} (opcode {}) at SM {}, lane {}, mask {:#010x}",
            self.opcode_id, self.sm_id, self.lane_id, self.bit_mask
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "stencil_step".into(),
            kernel_count: 3,
            instruction_count: 12345,
            destination_register: 0.25,
            bit_pattern: 0.75,
        }
    }

    #[test]
    fn transient_file_roundtrip() {
        let p = sample();
        let text = p.to_file();
        assert_eq!(TransientParams::from_file(&text).expect("parse"), p);
        // One parameter per line, 7 lines (Table II's "specific target" +
        // "fault type" parameters).
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn transient_file_errors_name_the_line() {
        let mut lines: Vec<String> = sample().to_file().lines().map(String::from).collect();
        lines[1] = "99".into(); // invalid bit-flip model
        let err = TransientParams::from_file(&lines.join("\n")).unwrap_err();
        assert!(matches!(err, FiError::BadParamFile { line: 2, .. }));

        let err = TransientParams::from_file("1\n1\nk\n0\n").unwrap_err();
        assert!(matches!(err, FiError::BadParamFile { line: 5, .. }));
    }

    #[test]
    fn transient_validation() {
        let mut p = sample();
        p.destination_register = 1.5;
        assert!(p.validate().is_err());
        p.destination_register = 0.0;
        p.kernel_name.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn permanent_file_roundtrip() {
        let p = PermanentParams { sm_id: 7, lane_id: 31, bit_mask: 0x0000_8000, opcode_id: 42 };
        let text = p.to_file();
        assert_eq!(PermanentParams::from_file(&text).expect("parse"), p);
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn permanent_validation() {
        let ok = PermanentParams { sm_id: 0, lane_id: 0, bit_mask: 1, opcode_id: 0 };
        ok.validate(80).expect("valid");
        assert!(PermanentParams { sm_id: 80, ..ok }.validate(80).is_err());
        assert!(PermanentParams { lane_id: 32, ..ok }.validate(80).is_err());
        assert!(PermanentParams { opcode_id: 171, ..ok }.validate(80).is_err());
    }

    #[test]
    fn permanent_accepts_decimal_mask() {
        let p = PermanentParams::from_file("0\n0\n255\n1\n").expect("parse");
        assert_eq!(p.bit_mask, 255);
    }
}
