#![warn(missing_docs)]

//! # nvbitfi — dynamic fault injection for (simulated) GPUs
//!
//! A Rust reproduction of **"NVBitFI: Dynamic Fault Injection for GPUs"**
//! (Tsai, Hari, Sullivan, Villa, Keckler — DSN 2021), built on the
//! workspace's NVBit-analog instrumentation stack ([`nvbit`],
//! [`gpu_runtime`], [`gpu_sim`], [`gpu_isa`]).
//!
//! The crate implements the complete injection pipeline of the paper's
//! Figure 1:
//!
//! 1. **Profile** ([`profile`]) — attach the profiler to an unmodified
//!    program binary and count every dynamic instruction per opcode per
//!    dynamic kernel, exactly (`profiler.so`) or approximately (first
//!    instance of each static kernel),
//! 2. **Select** ([`select_transient`]) — draw fault sites uniformly over
//!    the profiled population of an instruction group ([`InstrGroup`],
//!    Table II),
//! 3. **Inject** — run the program with the transient injector
//!    ([`transient`], `injector.so`) or the permanent injector
//!    ([`permanent`], `pf_injector.so`) attached; corruption follows the
//!    bit-flip models of Table II ([`BitFlipModel`]) or the XOR mask of
//!    Table III,
//! 4. **Classify** ([`outcome`]) — compare against the golden run
//!    ([`golden_run`]) and classify SDC / DUE / Masked / potential DUE
//!    (Table V).
//!
//! [`campaign`] orchestrates all four steps across many injections with
//! worker-thread fan-out; [`stats`] provides the confidence-interval
//! arithmetic behind the paper's 100- vs 1000-injection guidance; [`ext`]
//! implements the §V extensions (intermittent faults, richer corruption
//! functions, multi-opcode permanent faults, and a fault dictionary).
//!
//! ## Quick start
//!
//! ```
//! use nvbitfi::{
//!     run_transient_campaign, CampaignConfig, ExactDiff, InstrGroup, ProfilingMode,
//! };
//! use gpu_runtime::{Program, Runtime, RuntimeError};
//!
//! // A trivial GPU program (real workloads live in the `workloads` crate).
//! struct Saxpy;
//! impl Program for Saxpy {
//!     fn name(&self) -> &str { "saxpy" }
//!     fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
//!         use gpu_isa::{asm::KernelBuilder, encode, Module, Reg, SpecialReg};
//!         let mut k = KernelBuilder::new("saxpy");
//!         let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
//!         k.ldc(out, 0);
//!         k.s2r(tid, SpecialReg::GlobalTidX);
//!         k.i2f(Reg(2), tid);
//!         k.fmuli(Reg(2), Reg(2), 2.0);
//!         k.shli(off, tid, 2);
//!         k.iadd(out, out, off);
//!         k.stg(out, 0, Reg(2));
//!         k.exit();
//!         let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
//!         let m = rt.load_module(&bytes)?;
//!         let h = rt.get_kernel(m, "saxpy")?;
//!         let buf = rt.alloc(64 * 4)?;
//!         rt.launch(h, 2u32, 32u32, &[buf.addr()])?;
//!         rt.synchronize()?;
//!         let sum: f32 = rt.read_f32s(buf, 64)?.iter().sum();
//!         rt.println(format!("checksum {sum}"));
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = CampaignConfig {
//!     injections: 10,
//!     group: InstrGroup::Gp,
//!     profiling: ProfilingMode::Exact,
//!     workers: 2,
//!     ..CampaignConfig::default()
//! };
//! let result = run_transient_campaign(&Saxpy, &ExactDiff, &cfg)?;
//! assert_eq!(result.counts.total(), 10);
//! println!("{}", result.counts);
//! # Ok(())
//! # }
//! ```

pub mod avf;
mod bitflip;
pub mod campaign;
mod error;
pub mod ext;
mod golden;
mod igid;
pub mod journal;
pub mod logfile;
pub mod multi;
pub mod outcome;
mod params;
pub mod permanent;
pub mod pool;
pub mod profile;
pub mod prune;
pub mod report;
mod select;
pub mod stats;
pub mod transient;
pub mod worker;

pub use avf::{AvfEstimate, GroupAvf};
pub use bitflip::BitFlipModel;
pub use campaign::{
    run_permanent_campaign, run_transient_campaign, run_transient_campaign_with, CampaignConfig,
    CampaignHooks, CampaignTiming, FaultHook, InjectionRun, NoHooks, PermanentCampaign,
    PermanentCampaignConfig, PermanentRun, TransientCampaign, WeightedOutcomes,
};
pub use error::FiError;
pub use golden::{golden_run, golden_run_recording, GoldenOutput};
pub use igid::InstrGroup;
pub use journal::{atomic_write, Journal};
pub use multi::{earliest_target_launch, MultiHandle, MultiRecord, MultiTransientInjector};
pub use outcome::{
    classify, DueKind, ExactDiff, InfraKind, Outcome, OutcomeClass, OutcomeCounts, SdcCheck,
    SdcReason, SdcVerdict,
};
pub use params::{PermanentParams, TransientParams};
pub use permanent::{PermanentHandle, PermanentInjector, PermanentRecord};
pub use pool::{IsolationMode, ProcessIsolation};
pub use profile::{
    profile_program, FaultSite, KernelProfile, Profile, ProfileHandle, Profiler, ProfilingMode,
};
pub use prune::{prune_dead_sites, KernelAnalysis};
pub use select::{select_campaign, select_transient};
pub use transient::{
    select_destination, CorruptedTarget, InjectionDetail, InjectionHandle, InjectionRecord,
    TransientInjector,
};
pub use worker::{serve, Msg, WorkerInit, MAX_FRAME};
