//! Errors raised by the fault-injection layer.

use std::fmt;

/// Errors from profiles, parameter files, and campaign setup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FiError {
    /// A parameter file line did not parse.
    BadParamFile {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A profile file line did not parse.
    BadProfileFile {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A fault-site selection was requested from an empty population.
    EmptyPopulation {
        /// The group that had no dynamic instructions.
        group: String,
    },
    /// The golden (fault-free) run did not complete cleanly.
    GoldenRunFailed {
        /// Program name.
        program: String,
        /// How it ended.
        reason: String,
    },
    /// A parameter value was out of its documented range.
    BadParam {
        /// Parameter name.
        name: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::BadParamFile { line, reason } => {
                write!(f, "parameter file line {line}: {reason}")
            }
            FiError::BadProfileFile { line, reason } => {
                write!(f, "profile file line {line}: {reason}")
            }
            FiError::EmptyPopulation { group } => {
                write!(f, "no dynamic instructions in group {group}")
            }
            FiError::GoldenRunFailed { program, reason } => {
                write!(f, "golden run of `{program}` failed: {reason}")
            }
            FiError::BadParam { name, reason } => write!(f, "parameter `{name}`: {reason}"),
        }
    }
}

impl std::error::Error for FiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            FiError::BadParamFile { line: 3, reason: "x".into() },
            FiError::BadProfileFile { line: 1, reason: "y".into() },
            FiError::EmptyPopulation { group: "G_FP64".into() },
            FiError::GoldenRunFailed { program: "p".into(), reason: "hang".into() },
            FiError::BadParam { name: "kernel count", reason: "negative".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
