//! Campaign statistics: confidence intervals for outcome fractions.
//!
//! §IV-B: "100 injections provide results with 90% confidence intervals and
//! ±8% error margins; 1000 injections are necessary to obtain results with
//! 95% confidence intervals and ±3% error margins." Both follow from the
//! normal approximation at worst case `p = 0.5`; these helpers reproduce
//! that arithmetic.

/// Two-sided z-score for a confidence level in `(0, 1)`.
///
/// Uses the Beasley-Springer-Moro rational approximation of the inverse
/// normal CDF (accurate to ~1e-7 over the range campaigns use).
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)`.
pub fn z_score(confidence: f64) -> f64 {
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
    let p = 0.5 + confidence / 2.0; // upper-tail quantile of the two-sided interval
    inverse_normal_cdf(p)
}

fn inverse_normal_cdf(p: f64) -> f64 {
    // Beasley-Springer-Moro.
    const A: [f64; 4] = [2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637];
    const B: [f64; 4] = [-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rk = 1.0;
        for c in &C[1..] {
            rk *= r;
            x += c * rk;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

/// Worst-case (`p = 0.5`) error margin for an outcome fraction estimated
/// from `n` injections at the given confidence level.
///
/// # Panics
///
/// Panics if `n` is zero or `confidence` is not in `(0, 1)`.
pub fn error_margin(n: usize, confidence: f64) -> f64 {
    assert!(n > 0, "need at least one injection");
    z_score(confidence) * (0.25 / n as f64).sqrt()
}

/// Error margin for a specific observed fraction `p` (tighter than the
/// worst case when `p` is far from 0.5).
///
/// # Panics
///
/// Panics if `n` is zero, `confidence` is not in `(0, 1)`, or `p` is outside
/// `[0, 1]`.
pub fn error_margin_at(p: f64, n: usize, confidence: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    assert!(n > 0, "need at least one injection");
    z_score(confidence) * (p * (1.0 - p) / n as f64).sqrt()
}

/// Minimum injections for a worst-case error margin at a confidence level.
///
/// # Panics
///
/// Panics if `margin` is not positive or `confidence` is not in `(0, 1)`.
pub fn injections_needed(margin: f64, confidence: f64) -> usize {
    assert!(margin > 0.0, "margin must be positive");
    let z = z_score(confidence);
    (0.25 * (z / margin).powi(2)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_scores_match_tables() {
        assert!((z_score(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_score(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_score(0.99) - 2.5758).abs() < 1e-3);
    }

    #[test]
    fn paper_claim_100_injections() {
        // "100 injections provide results with 90% confidence intervals and
        // ±8% error margins"
        let m = error_margin(100, 0.90);
        assert!((0.078..0.086).contains(&m), "got {m}");
    }

    #[test]
    fn paper_claim_1000_injections() {
        // "1000 injections ... 95% confidence ... ±3% error margins"
        let m = error_margin(1000, 0.95);
        assert!((0.029..0.032).contains(&m), "got {m}");
    }

    #[test]
    fn needed_inverts_margin() {
        let n = injections_needed(0.031, 0.95);
        assert!((900..=1100).contains(&n), "got {n}");
        let n = injections_needed(0.0823, 0.90);
        assert!((95..=105).contains(&n), "got {n}");
    }

    #[test]
    fn margin_at_extremes_is_tighter() {
        assert!(error_margin_at(0.1, 100, 0.90) < error_margin(100, 0.90));
        assert_eq!(error_margin_at(0.0, 100, 0.90), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        let _ = z_score(1.5);
    }
}
