//! Campaign orchestration — Figure 1 end to end, many times over.
//!
//! A transient campaign runs: golden run → profile → select N faults →
//! N injection runs → classify each against golden. A permanent campaign
//! runs one experiment per *executed* opcode (the profile prunes unused
//! opcodes, as §IV-C describes) and weights outcomes by each opcode's
//! dynamic instruction share (Figure 3).
//!
//! Injection runs are independent processes in the paper; here they are
//! independent simulator instances, fanned out across worker threads.

use crate::bitflip::BitFlipModel;
use crate::error::FiError;
use crate::golden::{golden_run, golden_run_recording, GoldenOutput};
use crate::igid::InstrGroup;
use crate::outcome::{classify, InfraKind, Outcome, OutcomeClass, OutcomeCounts, SdcCheck};
use crate::params::{PermanentParams, TransientParams};
use crate::permanent::PermanentInjector;
use crate::pool::{self, IsolationMode};
use crate::profile::{profile_program, Profile, ProfilingMode};
use crate::prune::prune_dead_sites;
use crate::select::select_campaign;
use crate::transient::TransientInjector;
use gpu_runtime::{run_program, run_program_fast_forward, CheckpointStore, Program, RuntimeConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a transient-fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base runtime configuration for every run.
    pub runtime: RuntimeConfig,
    /// Number of injections (the paper uses 100 per program; 1000 tightens
    /// the confidence interval, see [`crate::stats`]).
    pub injections: usize,
    /// Instruction group to inject.
    pub group: InstrGroup,
    /// Bit-flip model.
    pub bit_flip: BitFlipModel,
    /// Exact or approximate profiling.
    pub profiling: ProfilingMode,
    /// RNG seed for fault selection (campaigns are reproducible).
    pub seed: u64,
    /// Worker threads for injection runs.
    pub workers: usize,
    /// When `true` (the default), the golden run records launch-boundary
    /// checkpoints and every injection run fast-forwards its pre-injection
    /// prefix from them instead of re-simulating it. `false` reproduces the
    /// paper's full-replay cost (the `--no-checkpoint` escape hatch).
    pub use_checkpoints: bool,
    /// When `true` (the default), sites whose corrupted destination is
    /// provably dead at the injection point (per `gpu-analysis` liveness)
    /// are classified Masked without simulation. Sound by construction —
    /// see [`crate::prune`] — and disabled by `--no-static-prune`.
    pub use_static_prune: bool,
    /// Extra execution attempts granted to a run whose worker panicked or
    /// whose wall-clock deadline expired, before the site is recorded as
    /// [`OutcomeClass::InfraError`]. `0` records the first failure.
    pub max_retries: u32,
    /// Pause between retry attempts, scaled linearly by the attempt number
    /// (deterministic backoff). `Duration::ZERO` retries immediately.
    pub retry_backoff: Duration,
    /// Per-run wall-clock deadline. A run that outlives it is killed by the
    /// simulator's deadline poll, retried per `max_retries`, and ultimately
    /// recorded as [`OutcomeClass::InfraError`] — the backstop against
    /// runaway runs the instruction budget cannot catch (e.g. host-side
    /// loops). `None` disables the deadline.
    pub run_deadline: Option<Duration>,
    /// Test-only fault injector for the harness itself: called before each
    /// execution attempt with `(site_index, attempt)`; returning `true`
    /// panics the worker at that point. `None` (always, outside tests)
    /// disables it. Honored by thread isolation only; process isolation has
    /// its own knob ([`crate::pool::ProcessIsolation::kill_hook`]).
    pub fault_hook: Option<FaultHook>,
    /// How injection runs execute: in-process worker threads (the default)
    /// or supervised disposable worker processes — see [`IsolationMode`].
    pub isolation: IsolationMode,
}

/// A harness-fault injector for testing worker isolation: `(site_index,
/// attempt)` → `true` panics the worker before that execution attempt.
#[derive(Clone)]
pub struct FaultHook(pub Arc<dyn Fn(usize, u32) -> bool + Send + Sync>);

impl FaultHook {
    /// Wrap a predicate as a hook.
    pub fn new(f: impl Fn(usize, u32) -> bool + Send + Sync + 'static) -> FaultHook {
        FaultHook(Arc::new(f))
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runtime: RuntimeConfig::default(),
            injections: 100,
            group: InstrGroup::GpPr,
            bit_flip: BitFlipModel::FlipSingleBit,
            profiling: ProfilingMode::Exact,
            seed: 0x5EED,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            use_checkpoints: true,
            use_static_prune: true,
            max_retries: 1,
            retry_backoff: Duration::from_millis(50),
            run_deadline: None,
            fault_hook: None,
            isolation: IsolationMode::Thread,
        }
    }
}

/// One classified injection run.
#[derive(Debug, Clone)]
pub struct InjectionRun {
    /// The fault parameters.
    pub params: TransientParams,
    /// The classified outcome.
    pub outcome: Outcome,
    /// `true` if the fault actually fired (with approximate profiling, a
    /// selected site may lie beyond the instance's real execution).
    pub injected: bool,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Dynamic instructions skipped by checkpoint fast-forwarding (0 when
    /// checkpoints are disabled).
    pub prefix_instrs_skipped: u64,
    /// `true` if the outcome came from static dead-fault pruning rather
    /// than a simulated run (always Masked, `wall` is zero).
    pub pruned: bool,
    /// Execution attempts this verdict took (`1` for a clean first run;
    /// `> 1` means the worker panicked or overran its deadline and was
    /// retried).
    pub attempts: u32,
    /// `true` if this run's verdict was reloaded from a prior campaign's
    /// journal by `resume` rather than executed in this campaign.
    pub resumed: bool,
}

/// Wall-clock accounting for overhead analysis (Figures 4 and 5).
#[derive(Debug, Clone, Default)]
pub struct CampaignTiming {
    /// Duration of the uninstrumented golden run.
    pub golden: Duration,
    /// Duration of the profiling run.
    pub profiling: Duration,
    /// Duration of the static-analysis pass (site resolution plus
    /// liveness), zero when pruning is disabled.
    pub analysis: Duration,
    /// Durations of the individual injection runs.
    pub injections: Vec<Duration>,
    /// Total dynamic instructions the injection runs skipped by
    /// fast-forwarding pre-injection prefixes from checkpoints.
    pub prefix_instrs_skipped: u64,
}

impl CampaignTiming {
    /// Median injection-run duration (the statistic Figure 4 reports).
    pub fn median_injection(&self) -> Duration {
        if self.injections.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.injections.clone();
        v.sort();
        v[v.len() / 2]
    }

    /// Total campaign time: profiling, static analysis, and all
    /// injections (Figure 5).
    pub fn total(&self) -> Duration {
        self.profiling + self.analysis + self.injections.iter().sum::<Duration>()
    }
}

/// Result of a transient campaign.
#[derive(Debug)]
pub struct TransientCampaign {
    /// Program name.
    pub program: String,
    /// The profile used for site selection.
    pub profile: Profile,
    /// Golden reference.
    pub golden: GoldenOutput,
    /// Aggregate outcome tally.
    pub counts: OutcomeCounts,
    /// Per-injection details, in selection order. After an interrupted
    /// campaign this holds only the sites that completed.
    pub runs: Vec<InjectionRun>,
    /// Timing for overhead analysis.
    pub timing: CampaignTiming,
    /// `true` if the campaign stopped early ([`CampaignHooks::should_stop`])
    /// with sites still unclassified; `counts` and `runs` cover only the
    /// completed portion.
    pub interrupted: bool,
}

impl TransientCampaign {
    /// Number of sites classified by static dead-fault pruning instead of
    /// simulation.
    pub fn statically_pruned(&self) -> usize {
        self.runs.iter().filter(|r| r.pruned).count()
    }

    /// Number of verdicts reloaded from a prior journal by `resume`.
    pub fn resumed_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.resumed).count()
    }

    /// Number of runs that needed more than one execution attempt.
    pub fn retried_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.attempts > 1).count()
    }

    /// Number of sites whose verdict is [`InfraKind::WorkerDied`] — a
    /// process-isolated worker vanished mid-run and the retry budget ran
    /// out (always 0 under thread isolation).
    pub fn worker_deaths(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcome.class == OutcomeClass::InfraError(InfraKind::WorkerDied))
            .count()
    }
}

/// Observation points a caller can attach to a running campaign.
///
/// Methods are invoked from worker threads, so implementations must be
/// `Sync` and use interior mutability.
pub trait CampaignHooks: Sync {
    /// Called once per completed run, as it completes (dispatch order, not
    /// selection order) — the durable journal's append point. Not called
    /// for verdicts reloaded from a prior journal.
    fn on_run(&self, run: &InjectionRun) {
        let _ = run;
    }

    /// Polled before each site is dispatched; returning `true` stops the
    /// campaign gracefully: in-flight runs finish (and reach
    /// [`CampaignHooks::on_run`]), undispatched sites are dropped, and the
    /// result is marked [`TransientCampaign::interrupted`].
    fn should_stop(&self) -> bool {
        false
    }
}

/// The no-op hooks [`run_transient_campaign`] uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl CampaignHooks for NoHooks {}

fn fan_out<T: Send, R: Send>(
    workers: usize,
    items: Vec<T>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    fan_out_until(workers, items, &|| false, f).0
}

/// Fan `items` out over `workers` threads, polling `stop` before each
/// dispatch. Returns the completed results in item order plus whether the
/// run was cut short. A stopped fan-out still waits for in-flight items.
fn fan_out_until<T: Send, R: Send>(
    workers: usize,
    items: Vec<T>,
    stop: &(dyn Fn() -> bool + Sync),
    f: impl Fn(usize, T) -> R + Sync,
) -> (Vec<R>, bool) {
    let total = items.len();
    let todo: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let input = Mutex::new(todo.into_iter());
    let output: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let workers = workers.max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if stop() {
                    break;
                }
                let next = input.lock().next();
                let Some((idx, item)) = next else { break };
                let r = f(idx, item);
                output.lock().push((idx, r));
            });
        }
    });
    let mut out = output.into_inner();
    out.sort_by_key(|(i, _)| *i);
    let stopped = out.len() < total;
    (out.into_iter().map(|(_, r)| r).collect(), stopped)
}

/// Key identifying a fault site for resume matching: exactly the parameter
/// columns a results-log row serializes, so a reloaded row matches a
/// reselected site iff their log lines would be identical.
fn site_key(p: &TransientParams) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}",
        p.group.id(),
        p.bit_flip.id(),
        p.kernel_name,
        p.kernel_count,
        p.instruction_count,
        p.destination_register,
        p.bit_pattern
    )
}

/// One execution attempt's result, as seen through the isolation boundary.
enum Attempt<R> {
    Finished(R),
    Panicked,
}

/// Run `f` with worker-panic isolation: a panic unwinds to here instead of
/// taking down the fan-out scope (and with it every in-flight run).
fn isolate<R>(f: impl FnOnce() -> R) -> Attempt<R> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Attempt::Finished(r),
        Err(_) => Attempt::Panicked,
    }
}

/// Run a complete transient-fault campaign on one program.
///
/// # Errors
///
/// Returns [`FiError`] if the golden or profiling run fails, or if the
/// selected instruction group has no dynamic instructions in the profile.
pub fn run_transient_campaign(
    program: &dyn Program,
    check: &dyn SdcCheck,
    cfg: &CampaignConfig,
) -> Result<TransientCampaign, FiError> {
    run_transient_campaign_with(program, check, cfg, Vec::new(), &NoHooks)
}

/// Run a transient campaign, resuming past any `prior` verdicts and
/// reporting progress through `hooks`.
///
/// `prior` rows (reloaded from a crashed campaign's journal via
/// [`crate::logfile::recover_results_log`] and [`crate::logfile::to_runs`])
/// are matched against the freshly-selected sites by parameter equality;
/// matched sites keep their recorded verdict (marked
/// [`InjectionRun::resumed`]) and are not re-executed. Prior
/// [`OutcomeClass::InfraError`] verdicts are *not* honored — the harness
/// failed those runs, so a resume gives them a fresh chance. Because
/// selection is seed-deterministic, resuming an interrupted campaign with
/// its original configuration completes exactly the missing sites and
/// reproduces the uninterrupted campaign's outcome counts.
///
/// # Errors
///
/// Returns [`FiError`] if the golden or profiling run fails, or if the
/// selected instruction group has no dynamic instructions in the profile.
pub fn run_transient_campaign_with(
    program: &dyn Program,
    check: &dyn SdcCheck,
    cfg: &CampaignConfig,
    prior: Vec<InjectionRun>,
    hooks: &dyn CampaignHooks,
) -> Result<TransientCampaign, FiError> {
    // Step 0: golden run (also calibrates the hang monitor). With
    // checkpoints enabled it additionally records the launch-boundary
    // state every injection run fast-forwards from.
    let t0 = Instant::now();
    let (golden, checkpoints): (GoldenOutput, Option<Arc<CheckpointStore>>) = if cfg.use_checkpoints
    {
        let (g, store) = golden_run_recording(program, cfg.runtime.clone())?;
        (g, Some(store.into_shared()))
    } else {
        (golden_run(program, cfg.runtime.clone())?, None)
    };
    let golden_wall = t0.elapsed();
    let mut run_cfg = cfg.runtime.clone();
    run_cfg.instr_budget = Some(golden.suggested_budget());

    // Step 1: profile.
    let t0 = Instant::now();
    let profile = profile_program(program, run_cfg.clone(), cfg.profiling)?;
    let profiling_wall = t0.elapsed();

    // Step 2: select fault sites. Selection consumes the RNG before any
    // pruning happens, so a seed picks the same sites with pruning on or
    // off — the two configurations differ only in how sites are resolved.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sites = select_campaign(&profile, cfg.group, cfg.bit_flip, cfg.injections, &mut rng)?;

    // Step 2b: static dead-fault pruning. One extra resolver run maps
    // each site to its static pc; sites whose corrupted destination is
    // dead there are provably Masked and skip simulation entirely.
    let t0 = Instant::now();
    let pruned_flags = if cfg.use_static_prune {
        prune_dead_sites(program, run_cfg.clone(), cfg.group, &sites)
    } else {
        vec![false; sites.len()]
    };
    let analysis_wall = if cfg.use_static_prune { t0.elapsed() } else { Duration::ZERO };

    // Resolve each site's target to a global launch index and group sites
    // by it: runs sharing a target restore the same checkpoint, so the
    // store's pages stay warm across consecutive work items. A site the
    // golden run never reached (possible with approximate profiles) can
    // never fire, so its run fast-forwards through every recorded launch.
    let mut work: Vec<(usize, TransientParams, Option<u64>, bool)> = sites
        .into_iter()
        .zip(pruned_flags)
        .enumerate()
        .map(|(i, (p, pruned))| {
            let upto = checkpoints
                .as_ref()
                .map(|s| s.find_instance(&p.kernel_name, p.kernel_count).unwrap_or(s.len() as u64));
            (i, p, upto, pruned)
        })
        .collect();
    work.sort_by_key(|&(i, _, upto, _)| (upto.unwrap_or(0), i));

    // Resume: match prior verdicts to the freshly-selected sites by
    // parameter equality (multiset semantics — duplicate selections consume
    // one prior row each). Matched sites skip execution; prior InfraError
    // verdicts are discarded so the harness's own failures get re-run.
    let mut unused_prior: Vec<Option<InjectionRun>> =
        prior.into_iter().map(|r| if r.outcome.is_infra() { None } else { Some(r) }).collect();
    let mut reloaded: Vec<(usize, InjectionRun)> = Vec::new();
    work.retain(|&(orig, ref params, _, _)| {
        let key = site_key(params);
        let hit = unused_prior
            .iter_mut()
            .find(|slot| slot.as_ref().is_some_and(|r| site_key(&r.params) == key));
        match hit {
            Some(slot) => {
                let mut run = slot.take().expect("slot checked above");
                run.resumed = true;
                reloaded.push((orig, run));
                false
            }
            None => true,
        }
    });

    // The per-run deadline applies to injection runs only: the golden,
    // profiling, and resolver runs above are campaign prerequisites, not
    // experiments the harness may abandon.
    let mut inj_cfg = run_cfg.clone();
    inj_cfg.wall_deadline = cfg.run_deadline;

    // Steps 3-4: inject and classify, fanned out over workers sharing the
    // immutable checkpoint store. Pruned sites short-circuit: the fault
    // provably cannot propagate, so the run is synthesized as Masked.
    //
    // Each site executes behind an isolation boundary: a worker panic or a
    // deadline overrun costs (after `max_retries` further attempts) only
    // that site's verdict — recorded as InfraError — never the campaign.
    let (mut tagged, interrupted) = if let IsolationMode::Process(iso) = &cfg.isolation {
        // Process isolation: live sites cross the process boundary to a
        // supervised worker pool; pruned sites never touch a worker — their
        // Masked verdict is synthesized supervisor-side, exactly as in
        // thread mode.
        let mut synthesized: Vec<(usize, InjectionRun)> = Vec::new();
        let mut live: Vec<(usize, TransientParams)> = Vec::new();
        for (orig, params, _upto, pruned) in work {
            if pruned {
                let run = InjectionRun {
                    params,
                    outcome: Outcome { class: OutcomeClass::Masked, potential_due: false },
                    injected: true,
                    wall: Duration::ZERO,
                    prefix_instrs_skipped: 0,
                    pruned: true,
                    attempts: 1,
                    resumed: false,
                };
                hooks.on_run(&run);
                synthesized.push((orig, run));
            } else {
                live.push((orig, params));
            }
        }
        let (mut done, stopped) =
            pool::run_pool(iso, cfg, program.name(), live, &|| hooks.should_stop(), hooks);
        done.extend(synthesized);
        (done, stopped)
    } else {
        fan_out_until(
            cfg.workers,
            work,
            &|| hooks.should_stop(),
            |_, (orig, params, upto, pruned): (usize, TransientParams, _, bool)| {
                if pruned {
                    let run = InjectionRun {
                        params,
                        outcome: Outcome { class: OutcomeClass::Masked, potential_due: false },
                        injected: true,
                        wall: Duration::ZERO,
                        prefix_instrs_skipped: 0,
                        pruned: true,
                        attempts: 1,
                        resumed: false,
                    };
                    hooks.on_run(&run);
                    return (orig, run);
                }
                let max_attempts = cfg.max_retries.saturating_add(1);
                let mut attempts = 0u32;
                let run = loop {
                    attempts += 1;
                    let t = Instant::now();
                    let attempt = isolate(|| {
                        if let Some(hook) = &cfg.fault_hook {
                            if (hook.0)(orig, attempts) {
                                panic!("fault-hook: injected worker panic");
                            }
                        }
                        let (tool, handle) = TransientInjector::new(params.clone());
                        let out = match (&checkpoints, upto) {
                            (Some(store), Some(upto)) => run_program_fast_forward(
                                program,
                                inj_cfg.clone(),
                                Some(Box::new(tool)),
                                Arc::clone(store),
                                upto,
                            ),
                            _ => run_program(program, inj_cfg.clone(), Some(Box::new(tool))),
                        };
                        let outcome = classify(&golden, &out, check);
                        (outcome, handle.get().injected, out.prefix_instrs_skipped)
                    });
                    let wall = t.elapsed();
                    match attempt {
                        Attempt::Finished((outcome, injected, skipped))
                            if !outcome.is_infra() || attempts >= max_attempts =>
                        {
                            break InjectionRun {
                                params,
                                outcome,
                                injected,
                                wall,
                                prefix_instrs_skipped: skipped,
                                pruned: false,
                                attempts,
                                resumed: false,
                            };
                        }
                        Attempt::Panicked if attempts >= max_attempts => {
                            break InjectionRun {
                                params,
                                outcome: Outcome {
                                    class: OutcomeClass::InfraError(InfraKind::WorkerPanic),
                                    potential_due: false,
                                },
                                injected: false,
                                wall,
                                prefix_instrs_skipped: 0,
                                pruned: false,
                                attempts,
                                resumed: false,
                            };
                        }
                        // Deadline overrun or panic with attempts remaining.
                        Attempt::Finished(_) | Attempt::Panicked => {}
                    }
                    if !cfg.retry_backoff.is_zero() {
                        std::thread::sleep(cfg.retry_backoff * attempts);
                    }
                };
                hooks.on_run(&run);
                (orig, run)
            },
        )
    };
    // fan_out preserved dispatch (grouped) order; report in selection order,
    // with reloaded prior verdicts merged back in.
    tagged.extend(reloaded);
    tagged.sort_by_key(|&(orig, _)| orig);
    let runs: Vec<InjectionRun> = tagged.into_iter().map(|(_, r)| r).collect();

    let mut counts = OutcomeCounts::default();
    for r in &runs {
        counts.add(&r.outcome);
    }
    let timing = CampaignTiming {
        golden: golden_wall,
        profiling: profiling_wall,
        analysis: analysis_wall,
        injections: runs.iter().map(|r| r.wall).collect(),
        prefix_instrs_skipped: runs.iter().map(|r| r.prefix_instrs_skipped).sum(),
    };
    Ok(TransientCampaign {
        program: program.name().to_string(),
        profile,
        golden,
        counts,
        runs,
        timing,
        interrupted,
    })
}

/// Configuration of a permanent-fault campaign.
#[derive(Debug, Clone)]
pub struct PermanentCampaignConfig {
    /// Base runtime configuration for every run.
    pub runtime: RuntimeConfig,
    /// RNG seed (SM, lane, and mask bit are drawn per opcode).
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// When `true` (the default), opcodes with zero dynamic count are
    /// skipped, "further simplifying the campaign" (§IV-C). When `false`,
    /// all 171 opcodes run, as in the paper's Figure 3 experiment.
    pub skip_unused: bool,
    /// Extra attempts for a panicked or deadline-killed experiment before
    /// it is recorded as [`OutcomeClass::InfraError`].
    pub max_retries: u32,
    /// Pause between retry attempts, scaled by the attempt number.
    pub retry_backoff: Duration,
    /// Per-experiment wall-clock deadline (`None` disables it).
    pub run_deadline: Option<Duration>,
}

impl Default for PermanentCampaignConfig {
    fn default() -> Self {
        PermanentCampaignConfig {
            runtime: RuntimeConfig::default(),
            seed: 0x5EED,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            skip_unused: true,
            max_retries: 1,
            retry_backoff: Duration::from_millis(50),
            run_deadline: None,
        }
    }
}

/// One permanent-fault experiment (one opcode).
#[derive(Debug, Clone)]
pub struct PermanentRun {
    /// The fault parameters.
    pub params: PermanentParams,
    /// The classified outcome.
    pub outcome: Outcome,
    /// The opcode's dynamic instruction count in the profile — the
    /// outcome's weight in Figure 3's aggregation.
    pub weight: u64,
    /// Fault activations during the run.
    pub activations: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Execution attempts the verdict took (`> 1` means retries after a
    /// worker panic or deadline overrun).
    pub attempts: u32,
}

/// Dynamic-count-weighted outcome fractions (Figure 3's y-axis).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedOutcomes {
    /// Weighted SDC fraction.
    pub sdc: f64,
    /// Weighted DUE fraction.
    pub due: f64,
    /// Weighted Masked fraction.
    pub masked: f64,
}

/// Result of a permanent campaign.
#[derive(Debug)]
pub struct PermanentCampaign {
    /// Program name.
    pub program: String,
    /// The profile used for pruning and weighting.
    pub profile: Profile,
    /// Unweighted tally over the runs.
    pub counts: OutcomeCounts,
    /// Weighted fractions (Figure 3).
    pub weighted: WeightedOutcomes,
    /// Per-opcode runs.
    pub runs: Vec<PermanentRun>,
    /// Duration of the profiling step.
    pub profiling_wall: Duration,
}

impl PermanentCampaign {
    /// Total campaign time: profiling plus all per-opcode runs.
    pub fn total_time(&self) -> Duration {
        self.profiling_wall + self.runs.iter().map(|r| r.wall).sum::<Duration>()
    }
}

/// Run a complete permanent-fault campaign on one program: one experiment
/// per (executed) opcode, outcomes weighted by dynamic count.
///
/// # Errors
///
/// Returns [`FiError`] if the golden or profiling run fails.
pub fn run_permanent_campaign(
    program: &dyn Program,
    check: &dyn SdcCheck,
    cfg: &PermanentCampaignConfig,
) -> Result<PermanentCampaign, FiError> {
    let golden = golden_run(program, cfg.runtime.clone())?;
    let mut run_cfg = cfg.runtime.clone();
    run_cfg.instr_budget = Some(golden.suggested_budget());
    let mut exp_cfg = run_cfg.clone();
    exp_cfg.wall_deadline = cfg.run_deadline;

    let t0 = Instant::now();
    let profile = profile_program(program, run_cfg.clone(), ProfilingMode::Approximate)?;
    let profiling_wall = t0.elapsed();

    let executed = profile.executed_opcodes();
    let opcodes: Vec<gpu_isa::Opcode> = if cfg.skip_unused {
        executed.iter().copied().collect()
    } else {
        gpu_isa::Opcode::ALL.to_vec()
    };

    // Draw fault placement from the SMs and lanes the program actually
    // occupies. With the paper's full-scale workloads every SM and lane is
    // busy, so this coincides with Table III's full 0..N-1 ranges; with
    // simulator-scaled grids it avoids trivially-masked dead placements.
    let num_sms = run_cfg.gpu.num_sms;
    let max_blocks =
        golden.summary.launches.iter().map(|l| l.stats.blocks).max().unwrap_or(1).max(1);
    let used_sms = num_sms.min(max_blocks.min(u32::MAX as u64) as u32).max(1);
    let max_tpb =
        golden.summary.launches.iter().map(|l| l.stats.threads_per_block).max().unwrap_or(1).max(1);
    let used_lanes = (gpu_isa::WARP_SIZE as u64).min(max_tpb).max(1) as u32;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let experiments: Vec<(PermanentParams, u64)> = opcodes
        .iter()
        .map(|op| {
            let params = PermanentParams {
                sm_id: rng.gen_range(0..used_sms),
                lane_id: rng.gen_range(0..used_lanes),
                bit_mask: 1u32 << rng.gen_range(0..32),
                opcode_id: op.encode(),
            };
            (params, profile.opcode_total(*op))
        })
        .collect();

    // Same isolation contract as the transient campaign: a panicked or
    // deadline-killed experiment is retried, then recorded as InfraError —
    // one opcode's verdict, not the campaign, is what a runaway run costs.
    let runs = fan_out(cfg.workers, experiments, |_, (params, weight)| {
        let max_attempts = cfg.max_retries.saturating_add(1);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let t = Instant::now();
            let attempt = isolate(|| {
                let (tool, handle) = PermanentInjector::new(params);
                let out = run_program(program, exp_cfg.clone(), Some(Box::new(tool)));
                let outcome = classify(&golden, &out, check);
                (outcome, handle.get().activations)
            });
            let wall = t.elapsed();
            match attempt {
                Attempt::Finished((outcome, activations))
                    if !outcome.is_infra() || attempts >= max_attempts =>
                {
                    break PermanentRun { params, outcome, weight, activations, wall, attempts };
                }
                Attempt::Panicked if attempts >= max_attempts => {
                    break PermanentRun {
                        params,
                        outcome: Outcome {
                            class: OutcomeClass::InfraError(InfraKind::WorkerPanic),
                            potential_due: false,
                        },
                        weight,
                        activations: 0,
                        wall,
                        attempts,
                    };
                }
                Attempt::Finished(_) | Attempt::Panicked => {}
            }
            if !cfg.retry_backoff.is_zero() {
                std::thread::sleep(cfg.retry_backoff * attempts);
            }
        }
    });

    let mut counts = OutcomeCounts::default();
    let mut w = WeightedOutcomes::default();
    // Infra errors carry no verdict: their weight leaves the denominator
    // entirely rather than biasing any class.
    let total_weight: u64 = runs.iter().filter(|r| !r.outcome.is_infra()).map(|r| r.weight).sum();
    for r in &runs {
        counts.add(&r.outcome);
        if total_weight > 0 && !r.outcome.is_infra() {
            let share = r.weight as f64 / total_weight as f64;
            if r.outcome.is_sdc() {
                w.sdc += share;
            } else if r.outcome.is_due() {
                w.due += share;
            } else {
                w.masked += share;
            }
        }
    }

    Ok(PermanentCampaign {
        program: program.name().to_string(),
        profile,
        counts,
        weighted: w,
        runs,
        profiling_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_order_and_runs_everything() {
        let out = fan_out(4, (0..100).collect(), |idx, item: i32| {
            assert_eq!(idx as i32, item);
            item * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_single_worker() {
        let out = fan_out(1, vec![1, 2, 3], |_, x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn fan_out_until_stops_between_items_and_keeps_completed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        // Single worker, stop after 3 completions: the 4th..10th items must
        // never run, and the completed prefix is returned in order.
        let (out, stopped) = fan_out_until(
            1,
            (0..10).collect(),
            &|| done.load(Ordering::SeqCst) >= 3,
            |_, x: i32| {
                done.fetch_add(1, Ordering::SeqCst);
                x * 10
            },
        );
        assert_eq!(out, vec![0, 10, 20]);
        assert!(stopped);

        let (out, stopped) = fan_out_until(2, (0..5).collect(), &|| false, |_, x: i32| x);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(!stopped);
    }

    #[test]
    fn isolate_catches_panics() {
        assert!(matches!(isolate(|| 7), Attempt::Finished(7)));
        assert!(matches!(isolate(|| -> i32 { panic!("boom") }), Attempt::Panicked));
    }

    #[test]
    fn site_key_distinguishes_every_field() {
        let base = TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "k".into(),
            kernel_count: 1,
            instruction_count: 2,
            destination_register: 0.25,
            bit_pattern: 0.5,
        };
        let mut other = base.clone();
        other.instruction_count = 3;
        assert_eq!(site_key(&base), site_key(&base.clone()));
        assert_ne!(site_key(&base), site_key(&other));
    }

    #[test]
    fn timing_median_and_total() {
        let t = CampaignTiming {
            golden: Duration::from_millis(1),
            profiling: Duration::from_millis(10),
            analysis: Duration::from_millis(4),
            injections: vec![
                Duration::from_millis(3),
                Duration::from_millis(1),
                Duration::from_millis(2),
            ],
            prefix_instrs_skipped: 0,
        };
        assert_eq!(t.median_injection(), Duration::from_millis(2));
        assert_eq!(t.total(), Duration::from_millis(20));
        assert_eq!(CampaignTiming::default().median_injection(), Duration::ZERO);
    }
}
