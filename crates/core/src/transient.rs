//! The transient-fault injector — NVBitFI's `injector.so`.
//!
//! Driven by a [`TransientParams`] file, the injector:
//!
//! 1. instruments *only* the target kernel, and only instructions in the
//!    selected group (everything else runs unmodified — the selectivity the
//!    paper credits for NVBitFI's low injection overhead),
//! 2. enables instrumentation only for the target *dynamic instance*
//!    (`kernel count`),
//! 3. counts group instructions as they execute, thread-level, in the
//!    simulator's deterministic order, and
//! 4. when the count reaches `instruction count`, corrupts one destination
//!    register of that dynamic instruction — after its result is written —
//!    using the bit-flip model's XOR mask.

use crate::bitflip::BitFlipModel;
use crate::igid::InstrGroup;
use crate::params::TransientParams;
use gpu_isa::{Instr, Kernel, Opcode, PReg, Reg, RegSlot};
use gpu_runtime::KernelLaunchInfo;
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the injector corrupted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptedTarget {
    /// A general-purpose register was XORed.
    Gpr {
        /// The register.
        reg: u8,
        /// Value before corruption.
        old: u32,
        /// The XOR mask applied.
        mask: u32,
        /// Value after corruption.
        new: u32,
    },
    /// A predicate register was overwritten.
    Pred {
        /// The predicate register.
        reg: u8,
        /// Value before corruption.
        old: bool,
        /// Value after corruption.
        new: bool,
    },
    /// The selected dynamic instruction had no writable destination
    /// (e.g. a `G_NODEST` site, or all destinations were `RZ`).
    NoWritableDest,
}

/// A record of one performed injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionDetail {
    /// Kernel the fault landed in.
    pub kernel: String,
    /// Dynamic instance of the kernel.
    pub instance: u64,
    /// Static instruction index.
    pub pc: u32,
    /// The instruction's opcode.
    pub opcode: Opcode,
    /// Global thread id of the corrupted thread.
    pub global_tid: u64,
    /// What was corrupted.
    pub target: CorruptedTarget,
}

/// Outcome of the injector's attempt (readable after the run).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// `true` once the fault was injected.
    pub injected: bool,
    /// Details, when injected.
    pub detail: Option<InjectionDetail>,
    /// Group instructions observed in the target kernel instance (even if
    /// the target index was never reached — diagnostic for approximate
    /// profiles that overestimate a kernel's length).
    pub group_instrs_seen: u64,
}

/// Handle to read the [`InjectionRecord`] after the run.
#[derive(Debug, Clone)]
pub struct InjectionHandle(Arc<Mutex<InjectionRecord>>);

impl InjectionHandle {
    /// Snapshot the record.
    pub fn get(&self) -> InjectionRecord {
        self.0.lock().clone()
    }
}

/// The destination register unit the *destination register* parameter
/// (Table II) selects for `instr` under `group` targeting, or `None` when
/// the instruction has no writable destination for the group.
///
/// This is the single source of truth shared by the injector (which
/// corrupts the unit) and static dead-fault pruning (which asks whether
/// the unit is dead at the injection point): GPR candidates order before
/// predicate candidates, and `destination_register ∈ [0,1)` indexes the
/// combined list.
pub fn select_destination(
    instr: &Instr,
    group: InstrGroup,
    destination_register: f64,
) -> Option<RegSlot> {
    let gprs: Vec<Reg> = if group.targets_gprs() { instr.gpr_dests() } else { Vec::new() };
    let preds: Vec<PReg> = if group.targets_predicates() { instr.pred_dests() } else { Vec::new() };
    let total = gprs.len() + preds.len();
    if total == 0 {
        return None;
    }
    let idx = ((destination_register * total as f64) as usize).min(total - 1);
    Some(if idx < gprs.len() {
        RegSlot::Gpr(gprs[idx])
    } else {
        RegSlot::Pred(preds[idx - gprs.len()])
    })
}

/// The transient injector tool (attachable via [`nvbit::NvBit`]).
pub struct TransientInjector {
    params: TransientParams,
    seen: u64,
    record: Arc<Mutex<InjectionRecord>>,
}

impl TransientInjector {
    /// Create an injector for one fault, plus the handle to its record.
    pub fn new(params: TransientParams) -> (NvBit<TransientInjector>, InjectionHandle) {
        let record = Arc::new(Mutex::new(InjectionRecord::default()));
        let inj = TransientInjector { params, seen: 0, record: Arc::clone(&record) };
        (NvBit::new(inj), InjectionHandle(record))
    }

    fn corrupt(&self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) -> CorruptedTarget {
        // Table II: destination register ∈ [0,1) selects among candidates.
        let selected = select_destination(
            site.instr.instr(),
            self.params.group,
            self.params.destination_register,
        );
        match selected {
            None => CorruptedTarget::NoWritableDest,
            Some(RegSlot::Gpr(reg)) => {
                let old = thread.read_reg(reg);
                let mask = self.params.bit_flip.mask(self.params.bit_pattern, old);
                let new = thread.corrupt_reg(reg, mask) ^ mask;
                CorruptedTarget::Gpr { reg: reg.0, old, mask, new }
            }
            Some(RegSlot::Pred(p)) => {
                let old = thread.read_pred(p);
                let new = match self.params.bit_flip {
                    BitFlipModel::ZeroValue => false,
                    BitFlipModel::RandomValue => self.params.bit_pattern >= 0.5,
                    BitFlipModel::FlipSingleBit | BitFlipModel::FlipTwoBits => !old,
                };
                if new != old {
                    thread.corrupt_pred(p);
                }
                CorruptedTarget::Pred { reg: p.0, old, new }
            }
        }
    }
}

impl NvBitTool for TransientInjector {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        // Only the target kernel is instrumented, and only the group's
        // instructions within it.
        if kernel.name() != self.params.kernel_name {
            return;
        }
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if self.params.group.contains(instr.op) {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
        info.kernel.name() == self.params.kernel_name && info.instance == self.params.kernel_count
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        let index = self.seen;
        self.seen += 1;
        self.record.lock().group_instrs_seen = self.seen;
        if self.record.lock().injected || index != self.params.instruction_count {
            return;
        }
        let target = self.corrupt(site, thread);
        let mut rec = self.record.lock();
        rec.injected = true;
        rec.detail = Some(InjectionDetail {
            kernel: site.kernel.to_string(),
            instance: site.kernel_instance,
            pc: site.instr.pc(),
            opcode: site.instr.opcode(),
            global_tid: thread.meta.global_tid(),
            target,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igid::InstrGroup;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, SpecialReg};
    use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};

    /// out[tid] = tid + 1, launched twice.
    struct App;
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let mut k = KernelBuilder::new("inc");
            let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
            k.ldc(out, 0);
            k.s2r(tid, SpecialReg::TidX);
            k.iaddi(Reg(2), tid, 1);
            k.shli(off, tid, 2);
            k.iadd(out, out, off);
            k.stg(out, 0, Reg(2));
            k.exit();
            let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
            let m = rt.load_module(&bytes)?;
            let k = rt.get_kernel(m, "inc")?;
            let out0 = rt.alloc(32 * 4)?;
            let out1 = rt.alloc(32 * 4)?;
            rt.launch(k, 1u32, 32u32, &[out0.addr()])?;
            rt.launch(k, 1u32, 32u32, &[out1.addr()])?;
            rt.synchronize()?;
            let v0 = rt.read_u32s(out0, 32)?;
            let v1 = rt.read_u32s(out1, 32)?;
            rt.println(format!("sum0={} sum1={}", v0.iter().sum::<u32>(), v1.iter().sum::<u32>()));
            Ok(())
        }
    }

    fn params(kernel_count: u64, instruction_count: u64) -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "inc".into(),
            kernel_count,
            instruction_count,
            destination_register: 0.0,
            bit_pattern: 0.0, // flips bit 0
        }
    }

    #[test]
    fn pointer_corruption_becomes_a_detected_error() {
        // Group index 0 is thread 0's LDC — the output *pointer*. A single
        // bit flip there sends the store to a misaligned address: the
        // kernel traps, the checking host sees the sticky error, and the
        // process exits non-zero (an application-detected DUE).
        let (tool, handle) = TransientInjector::new(params(0, 0));
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(handle.get().injected);
        assert_eq!(
            out.termination,
            gpu_runtime::Termination::Normal { exit_code: 1 },
            "{}",
            out.stdout
        );
        assert!(out.has_anomaly());
    }

    #[test]
    fn injects_exactly_one_fault_in_target_instance() {
        // G_GP instructions per thread in `inc`: LDC, S2R, IADD32I, SHL,
        // IADD = 5 of 7 (STG and EXIT are NODEST). 32 threads step in
        // lockstep, so group indices 0..32 are the LDCs, 32..64 the S2Rs,
        // 64..96 the IADD32Is, … Target index 74: thread 10's IADD32I in
        // the second launch (instance 1) — a value, not a pointer, so the
        // program completes and the corruption flows to the output.
        let (tool, handle) = TransientInjector::new(params(1, 74));
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        assert!(rec.injected);
        let detail = rec.detail.expect("detail");
        assert_eq!(detail.instance, 1);
        assert_eq!(detail.kernel, "inc");
        match detail.target {
            CorruptedTarget::Gpr { mask, old, new, .. } => {
                assert_eq!(mask, 1);
                assert_eq!(new, old ^ 1);
            }
            other => panic!("expected GPR corruption, got {other:?}"),
        }
        // The fault flipped bit 0 of some intermediate — output may or may
        // not change, but the uncorrupted first launch must be identical.
        assert!(out.stdout.contains("sum0=528"), "first launch untouched: {}", out.stdout);
        assert!(!out.stdout.contains("sum1=528"), "bit flip must surface: {}", out.stdout);
    }

    #[test]
    fn unreachable_instruction_count_never_injects() {
        // Only 160 group instructions exist per instance; target #5000.
        let (tool, handle) = TransientInjector::new(params(0, 5000));
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        assert!(!rec.injected, "site beyond execution must be a no-op");
        assert_eq!(rec.group_instrs_seen, 160);
        assert!(out.stdout.contains("sum0=528 sum1=528"));
    }

    #[test]
    fn wrong_kernel_name_is_never_instrumented() {
        let mut p = params(0, 0);
        p.kernel_name = "other_kernel".into();
        let (tool, handle) = TransientInjector::new(p);
        let stats = tool.stats_handle();
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert!(!handle.get().injected);
        assert_eq!(stats.lock().launches_instrumented, 0);
        assert_eq!(stats.lock().device_calls, 0);
    }

    #[test]
    fn non_target_instance_runs_unmodified() {
        let (tool, _handle) = TransientInjector::new(params(1, 70));
        let stats = tool.stats_handle();
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let s = *stats.lock();
        assert_eq!(s.launches_instrumented, 1, "only instance 1");
        assert_eq!(s.launches_unmodified, 1, "instance 0 untouched");
    }

    #[test]
    fn zero_value_model_zeroes_destination() {
        let mut p = params(0, 67); // thread 3's IADD32I result
        p.bit_flip = BitFlipModel::ZeroValue;
        let (tool, handle) = TransientInjector::new(p);
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        match handle.get().detail.expect("detail").target {
            CorruptedTarget::Gpr { new, .. } => assert_eq!(new, 0),
            other => panic!("expected GPR, got {other:?}"),
        }
    }
}
