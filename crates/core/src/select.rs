//! Random fault-site selection — Figure 1, step 2.
//!
//! "A dynamic instruction will be selected from the set of executed
//! instructions by choosing a random number *n* from the set `1..N`, where
//! `N` is the total number of profiled dynamic instructions. This *n*-th
//! instruction is then translated into a tuple of `<kernel_name,
//! kernel_count, instruction_count>` values" (§III-A).

use crate::bitflip::BitFlipModel;
use crate::error::FiError;
use crate::igid::InstrGroup;
use crate::params::TransientParams;
use crate::profile::Profile;
use rand::Rng;

/// Draw one transient fault uniformly over the group's dynamic instructions.
///
/// The destination-register and bit-pattern values are drawn uniformly from
/// `[0, 1)` as Table II specifies.
///
/// # Errors
///
/// Returns [`FiError::EmptyPopulation`] if the profile contains no dynamic
/// instructions in `group`.
pub fn select_transient(
    profile: &Profile,
    group: InstrGroup,
    bit_flip: BitFlipModel,
    rng: &mut impl Rng,
) -> Result<TransientParams, FiError> {
    let total = profile.total_in_group(group);
    if total == 0 {
        return Err(FiError::EmptyPopulation { group: group.name().to_string() });
    }
    let n = rng.gen_range(0..total);
    let site = profile.locate(group, n).expect("n < total");
    Ok(TransientParams {
        group,
        bit_flip,
        kernel_name: site.kernel,
        kernel_count: site.kernel_count,
        instruction_count: site.instruction_count,
        destination_register: rng.gen_range(0.0..1.0),
        bit_pattern: rng.gen_range(0.0..1.0),
    })
}

/// Draw `count` independent transient faults (one injection campaign's
/// worth, e.g. the paper's 100 per program).
///
/// # Errors
///
/// Returns [`FiError::EmptyPopulation`] if the group is empty in the
/// profile.
pub fn select_campaign(
    profile: &Profile,
    group: InstrGroup,
    bit_flip: BitFlipModel,
    count: usize,
    rng: &mut impl Rng,
) -> Result<Vec<TransientParams>, FiError> {
    (0..count).map(|_| select_transient(profile, group, bit_flip, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{KernelProfile, ProfilingMode};
    use gpu_isa::Opcode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn profile() -> Profile {
        let mut counts = BTreeMap::new();
        counts.insert(Opcode::FADD, 60u64);
        counts.insert(Opcode::EXIT, 40);
        let mut counts2 = BTreeMap::new();
        counts2.insert(Opcode::FADD, 40u64);
        Profile {
            mode: ProfilingMode::Exact,
            kernels: vec![
                KernelProfile { kernel: "k".into(), instance: 0, counts },
                KernelProfile { kernel: "k".into(), instance: 1, counts: counts2 },
            ],
        }
    }

    #[test]
    fn selection_is_deterministic_for_a_seed() {
        let p = profile();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = select_transient(&p, InstrGroup::Fp32, BitFlipModel::FlipSingleBit, &mut r1)
            .expect("select");
        let b = select_transient(&p, InstrGroup::Fp32, BitFlipModel::FlipSingleBit, &mut r2)
            .expect("select");
        assert_eq!(a, b);
    }

    #[test]
    fn selection_respects_group_population() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = select_transient(&p, InstrGroup::Fp32, BitFlipModel::RandomValue, &mut rng)
                .expect("select");
            assert_eq!(s.kernel_name, "k");
            // FP32 population: 60 in instance 0, 40 in instance 1.
            match s.kernel_count {
                0 => assert!(s.instruction_count < 60),
                1 => assert!(s.instruction_count < 40),
                other => panic!("unexpected instance {other}"),
            }
            assert!((0.0..1.0).contains(&s.destination_register));
            assert!((0.0..1.0).contains(&s.bit_pattern));
        }
    }

    #[test]
    fn selection_is_roughly_uniform_across_instances() {
        // 60% of FP32 instructions are in instance 0.
        let p = profile();
        let mut rng = StdRng::seed_from_u64(11);
        let mut inst0 = 0;
        let n = 2000;
        for _ in 0..n {
            let s = select_transient(&p, InstrGroup::Fp32, BitFlipModel::FlipSingleBit, &mut rng)
                .expect("select");
            if s.kernel_count == 0 {
                inst0 += 1;
            }
        }
        let frac = inst0 as f64 / n as f64;
        assert!((0.55..0.65).contains(&frac), "got {frac}");
    }

    #[test]
    fn empty_population_is_an_error() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(1);
        let err = select_transient(&p, InstrGroup::Fp64, BitFlipModel::FlipSingleBit, &mut rng)
            .unwrap_err();
        assert!(matches!(err, FiError::EmptyPopulation { .. }));
    }

    #[test]
    fn campaign_draws_requested_count() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(5);
        let sites =
            select_campaign(&p, InstrGroup::GpPr, BitFlipModel::FlipSingleBit, 100, &mut rng)
                .expect("campaign");
        assert_eq!(sites.len(), 100);
    }
}
