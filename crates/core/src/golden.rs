//! The golden (fault-free) reference run — Figure 1's "golden output state".

use crate::error::FiError;
use gpu_runtime::{
    run_program, run_program_recording, CheckpointStore, Program, ProgramOutput, RunSummary,
    RuntimeConfig,
};
use std::collections::BTreeMap;

/// The reference outputs every injection run is compared against.
#[derive(Debug, Clone)]
pub struct GoldenOutput {
    /// Golden standard output.
    pub stdout: String,
    /// Golden output files.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Launch statistics of the clean run.
    pub summary: RunSummary,
}

impl GoldenOutput {
    /// The largest single-launch dynamic instruction count observed.
    pub fn max_launch_instrs(&self) -> u64 {
        self.summary.launches.iter().map(|l| l.stats.dyn_instrs).max().unwrap_or(0)
    }

    /// A per-launch hang-detection budget: 10× the longest golden launch
    /// (with a floor), the usual timeout-multiplier convention for fault
    /// injection monitors.
    pub fn suggested_budget(&self) -> u64 {
        (self.max_launch_instrs() * 10).max(100_000)
    }
}

/// Run the program with no tool attached and capture its golden output.
///
/// # Errors
///
/// Returns [`FiError::GoldenRunFailed`] if the clean run hangs, exits
/// non-zero, or records any device anomaly — a fault-injection campaign
/// against a program that misbehaves on its own is meaningless.
pub fn golden_run(program: &dyn Program, cfg: RuntimeConfig) -> Result<GoldenOutput, FiError> {
    let out: ProgramOutput = run_program(program, cfg, None);
    validate(program, out)
}

/// Like [`golden_run`], but also record a launch-boundary
/// [`CheckpointStore`] for injection runs to fast-forward from.
///
/// # Errors
///
/// Same as [`golden_run`].
pub fn golden_run_recording(
    program: &dyn Program,
    cfg: RuntimeConfig,
) -> Result<(GoldenOutput, CheckpointStore), FiError> {
    let (out, store) = run_program_recording(program, cfg);
    Ok((validate(program, out)?, store))
}

fn validate(program: &dyn Program, out: ProgramOutput) -> Result<GoldenOutput, FiError> {
    if !out.termination.is_clean() {
        return Err(FiError::GoldenRunFailed {
            program: program.name().to_string(),
            reason: format!("terminated with {:?}", out.termination),
        });
    }
    if out.has_anomaly() {
        return Err(FiError::GoldenRunFailed {
            program: program.name().to_string(),
            reason: format!("clean run recorded {} device anomalies", out.anomalies.len()),
        });
    }
    Ok(GoldenOutput { stdout: out.stdout, files: out.files, summary: out.summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{Runtime, RuntimeError};

    struct Good;
    impl gpu_runtime::Program for Good {
        fn name(&self) -> &str {
            "good"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            rt.println("result 42");
            rt.write_file("o.dat", vec![4, 2]);
            Ok(())
        }
    }

    struct Bad;
    impl gpu_runtime::Program for Bad {
        fn name(&self) -> &str {
            "bad"
        }
        fn run(&self, _rt: &mut Runtime) -> Result<(), RuntimeError> {
            Err(RuntimeError::LaunchConfig("broken".into()))
        }
    }

    #[test]
    fn golden_captures_outputs() {
        let g = golden_run(&Good, RuntimeConfig::default()).expect("golden");
        assert_eq!(g.stdout, "result 42\n");
        assert_eq!(g.files["o.dat"], vec![4, 2]);
        assert_eq!(g.max_launch_instrs(), 0);
        assert_eq!(g.suggested_budget(), 100_000, "floor applies");
    }

    #[test]
    fn golden_rejects_failing_program() {
        let err = golden_run(&Bad, RuntimeConfig::default()).unwrap_err();
        assert!(matches!(err, FiError::GoldenRunFailed { .. }));
    }
}
