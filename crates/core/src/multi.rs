//! Multi-fault injection — Figure 1's "selection of one or more injection
//! points for a particular experiment".
//!
//! A [`MultiTransientInjector`] carries several [`TransientParams`] and
//! injects each when its site is reached, all within a single run. Sites
//! may live in different kernels, different instances of the same kernel,
//! or the same dynamic kernel. The counting semantics are identical to the
//! single-fault injector: each fault's `instruction count` indexes the
//! *group's* dynamic instructions within that fault's target kernel
//! instance.

use crate::params::TransientParams;
use crate::transient::{CorruptedTarget, InjectionDetail};
use gpu_isa::{Kernel, PReg, Reg};
use gpu_runtime::{CheckpointStore, KernelLaunchInfo};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The record of a multi-fault run: per-fault injection details, in the
/// order the faults were given.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiRecord {
    /// `details[i]` is `Some` once fault `i` fired.
    pub details: Vec<Option<InjectionDetail>>,
}

impl MultiRecord {
    /// Number of faults that fired.
    pub fn injected_count(&self) -> usize {
        self.details.iter().filter(|d| d.is_some()).count()
    }
}

/// Handle to read the [`MultiRecord`] after the run.
#[derive(Debug, Clone)]
pub struct MultiHandle(Arc<Mutex<MultiRecord>>);

impl MultiHandle {
    /// Snapshot the record.
    pub fn get(&self) -> MultiRecord {
        self.0.lock().clone()
    }
}

struct Pending {
    /// Index into the original fault list.
    index: usize,
    params: TransientParams,
    /// Group instructions seen so far in the target instance.
    seen: u64,
    done: bool,
}

/// A transient injector carrying several faults for one run.
pub struct MultiTransientInjector {
    /// Faults grouped by target kernel name.
    by_kernel: HashMap<String, Vec<Pending>>,
    record: Arc<Mutex<MultiRecord>>,
}

impl MultiTransientInjector {
    /// Create an injector for `faults`, plus the handle to its record.
    pub fn new(faults: Vec<TransientParams>) -> (NvBit<MultiTransientInjector>, MultiHandle) {
        let record = Arc::new(Mutex::new(MultiRecord { details: vec![None; faults.len()] }));
        let mut by_kernel: HashMap<String, Vec<Pending>> = HashMap::new();
        for (index, params) in faults.into_iter().enumerate() {
            by_kernel.entry(params.kernel_name.clone()).or_default().push(Pending {
                index,
                params,
                seen: 0,
                done: false,
            });
        }
        let inj = MultiTransientInjector { by_kernel, record: Arc::clone(&record) };
        (NvBit::new(inj), MultiHandle(record))
    }

    fn corrupt(
        p: &TransientParams,
        site: &CallSite<'_>,
        thread: &mut gpu_sim::ThreadCtx<'_>,
    ) -> CorruptedTarget {
        let gprs: Vec<Reg> =
            if p.group.targets_gprs() { site.instr.gpr_dests() } else { Vec::new() };
        let preds: Vec<PReg> =
            if p.group.targets_predicates() { site.instr.pred_dests() } else { Vec::new() };
        let total = gprs.len() + preds.len();
        if total == 0 {
            return CorruptedTarget::NoWritableDest;
        }
        let idx = ((p.destination_register * total as f64) as usize).min(total - 1);
        if idx < gprs.len() {
            let reg = gprs[idx];
            let old = thread.read_reg(reg);
            let mask = p.bit_flip.mask(p.bit_pattern, old);
            let new = thread.corrupt_reg(reg, mask) ^ mask;
            CorruptedTarget::Gpr { reg: reg.0, old, mask, new }
        } else {
            let preg = preds[idx - gprs.len()];
            let old = thread.read_pred(preg);
            let new = match p.bit_flip {
                crate::bitflip::BitFlipModel::ZeroValue => false,
                crate::bitflip::BitFlipModel::RandomValue => p.bit_pattern >= 0.5,
                _ => !old,
            };
            if new != old {
                thread.corrupt_pred(preg);
            }
            CorruptedTarget::Pred { reg: preg.0, old, new }
        }
    }
}

/// The earliest global launch index any of `faults` targets — the safe
/// fast-forward bound for a multi-fault run. Launches before it carry no
/// injection site and can be replayed from `store`'s checkpoints. Faults
/// whose target instance never ran in the golden run don't constrain the
/// bound; if *no* fault has a reachable target, every recorded launch may
/// be fast-forwarded (`store.len()`).
pub fn earliest_target_launch(faults: &[TransientParams], store: &CheckpointStore) -> u64 {
    faults
        .iter()
        .filter_map(|p| store.find_instance(&p.kernel_name, p.kernel_count))
        .min()
        .unwrap_or(store.len() as u64)
}

impl NvBitTool for MultiTransientInjector {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        let Some(pendings) = self.by_kernel.get(kernel.name()) else {
            return;
        };
        // Instrument the union of the faults' groups within this kernel.
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if pendings.iter().any(|p| p.params.group.contains(instr.op)) {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
        self.by_kernel
            .get(info.kernel.name())
            .map(|ps| ps.iter().any(|p| !p.done && p.params.kernel_count == info.instance))
            .unwrap_or(false)
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        let Some(pendings) = self.by_kernel.get_mut(site.kernel) else {
            return;
        };
        let op = site.instr.opcode();
        for p in pendings.iter_mut() {
            if p.params.kernel_count != site.kernel_instance || !p.params.group.contains(op) {
                continue;
            }
            let index = p.seen;
            p.seen += 1;
            if p.done || index != p.params.instruction_count {
                continue;
            }
            p.done = true;
            let target = Self::corrupt(&p.params, site, thread);
            self.record.lock().details[p.index] = Some(InjectionDetail {
                kernel: site.kernel.to_string(),
                instance: site.kernel_instance,
                pc: site.instr.pc(),
                opcode: op,
                global_tid: thread.meta.global_tid(),
                target,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitflip::BitFlipModel;
    use crate::igid::InstrGroup;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, SpecialReg};
    use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};

    /// out[tid] = tid + 1, launched three times into separate buffers.
    struct App;
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let mut k = KernelBuilder::new("inc");
            let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
            k.ldc(out, 0);
            k.s2r(tid, SpecialReg::TidX);
            k.iaddi(Reg(2), tid, 1);
            k.shli(off, tid, 2);
            k.iadd(out, out, off);
            k.stg(out, 0, Reg(2));
            k.exit();
            let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
            let m = rt.load_module(&bytes)?;
            let k = rt.get_kernel(m, "inc")?;
            let mut sums = Vec::new();
            for _ in 0..3 {
                let buf = rt.alloc(32 * 4)?;
                rt.launch(k, 1u32, 32u32, &[buf.addr()])?;
                sums.push(rt.read_u32s(buf, 32)?.iter().sum::<u32>());
            }
            rt.synchronize()?;
            rt.println(format!("{sums:?}"));
            Ok(())
        }
    }

    fn fault(instance: u64, icount: u64) -> TransientParams {
        TransientParams {
            group: InstrGroup::Gp,
            bit_flip: BitFlipModel::FlipSingleBit,
            kernel_name: "inc".into(),
            kernel_count: instance,
            // IADD32I results occupy group indices 64..96 per instance.
            instruction_count: icount,
            destination_register: 0.0,
            bit_pattern: 0.0,
        }
    }

    #[test]
    fn injects_multiple_faults_in_one_run() {
        // Two faults in different instances, one more in the same instance
        // as the first.
        let faults = vec![fault(0, 64), fault(2, 70), fault(0, 80)];
        let (tool, handle) = MultiTransientInjector::new(faults);
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean(), "{}", out.stdout);
        let rec = handle.get();
        assert_eq!(rec.injected_count(), 3, "{rec:?}");
        let d0 = rec.details[0].as_ref().expect("fault 0");
        let d1 = rec.details[1].as_ref().expect("fault 1");
        let d2 = rec.details[2].as_ref().expect("fault 2");
        assert_eq!(d0.instance, 0);
        assert_eq!(d1.instance, 2);
        assert_eq!(d2.instance, 0);
        assert_eq!(d0.global_tid, 0, "index 64 is thread 0's IADD32I");
        assert_eq!(d1.global_tid, 6);
        assert_eq!(d2.global_tid, 16);
        // Instance 1 untouched; instances 0 and 2 each off by ±1 per flip.
        assert!(out.stdout.contains(", 528,"), "{}", out.stdout);
    }

    #[test]
    fn unreached_faults_stay_pending() {
        let faults = vec![fault(0, 64), fault(1, 500_000)];
        let (tool, handle) = MultiTransientInjector::new(faults);
        let out = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        assert_eq!(rec.injected_count(), 1);
        assert!(rec.details[0].is_some());
        assert!(rec.details[1].is_none());
    }

    #[test]
    fn fast_forward_multi_fault_matches_full_run() {
        use gpu_runtime::{run_program_fast_forward, run_program_recording};
        use std::sync::Arc;

        let (golden, store) = run_program_recording(&App, RuntimeConfig::default());
        assert!(golden.termination.is_clean());
        assert_eq!(store.len(), 3);

        // Faults in instances 1 and 2: launch 0 is pure prefix.
        let faults = vec![fault(1, 64), fault(2, 70)];
        let upto = earliest_target_launch(&faults, &store);
        assert_eq!(upto, 1);

        let (tool, full_handle) = MultiTransientInjector::new(faults.clone());
        let full = run_program(&App, RuntimeConfig::default(), Some(Box::new(tool)));

        let (tool, ff_handle) = MultiTransientInjector::new(faults);
        let ff = run_program_fast_forward(
            &App,
            RuntimeConfig::default(),
            Some(Box::new(tool)),
            Arc::new(store),
            upto,
        );
        assert_eq!(ff.stdout, full.stdout);
        assert_eq!(ff.files, full.files);
        assert_eq!(ff_handle.get(), full_handle.get(), "identical architectural events");
        assert!(ff.prefix_instrs_skipped > 0, "prefix launch was replayed, not simulated");
        assert_eq!(full.prefix_instrs_skipped, 0);
    }

    #[test]
    fn earliest_target_launch_bounds() {
        use gpu_runtime::run_program_recording;
        let (_, store) = run_program_recording(&App, RuntimeConfig::default());
        // No reachable target: the whole run may be fast-forwarded.
        assert_eq!(earliest_target_launch(&[fault(9, 0)], &store), 3);
        assert_eq!(earliest_target_launch(&[], &store), 3);
        // A fault in instance 0 pins the bound to the first launch.
        assert_eq!(earliest_target_launch(&[fault(2, 0), fault(0, 0)], &store), 0);
    }

    #[test]
    fn multi_with_one_fault_matches_single_injector() {
        let p = fault(1, 64 + 9);
        let (multi_tool, multi_handle) = MultiTransientInjector::new(vec![p.clone()]);
        let multi_out = run_program(&App, RuntimeConfig::default(), Some(Box::new(multi_tool)));
        let (single_tool, single_handle) = crate::transient::TransientInjector::new(p);
        let single_out = run_program(&App, RuntimeConfig::default(), Some(Box::new(single_tool)));
        assert_eq!(multi_out.stdout, single_out.stdout);
        let m = multi_handle.get().details[0].clone().expect("fired");
        let s = single_handle.get().detail.expect("fired");
        assert_eq!(m, s, "identical architectural event");
    }
}
