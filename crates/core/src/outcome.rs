//! Outcome classification — Table V.
//!
//! Every injection run is classified against the golden run:
//!
//! * **SDC** — the user-provided check fails: standard output differs,
//!   an output file differs, or an application-specific check (e.g. a
//!   numeric-tolerance comparison) fails (§IV-A),
//! * **DUE** — the run was visibly interrupted: hang (monitor detection),
//!   process crash (OS detection), or non-zero exit status (application
//!   detection),
//! * **Masked** — no difference detected,
//! * **potential DUE** — an SDC or Masked outcome where the device latched
//!   an anomaly (a non-fatal CUDA error / dmesg entry) the host never acted
//!   on. As in §IV-A, headline numbers fold potential DUEs into SDC/Masked;
//!   the flag is reported separately,
//! * **infrastructure error** — the *harness* failed the run (a worker
//!   panicked, or the run outlived its wall-clock deadline), so no verdict
//!   about the fault's effect exists. Infrastructure errors are recorded —
//!   they must survive a resume so the site is not silently dropped — but
//!   they are excluded from SDC/DUE/Masked rate denominators
//!   ([`OutcomeCounts::classified`]).

use crate::golden::GoldenOutput;
use gpu_runtime::{ProgramOutput, Termination};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run was declared SDC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdcReason {
    /// Standard output differs from golden.
    Stdout,
    /// A named output file differs from golden (or is missing/extra).
    File(String),
    /// The application-specific check failed.
    AppCheck(String),
}

impl fmt::Display for SdcReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdcReason::Stdout => write!(f, "standard output differs"),
            SdcReason::File(name) => write!(f, "output file `{name}` differs"),
            SdcReason::AppCheck(msg) => write!(f, "application check failed: {msg}"),
        }
    }
}

/// How a DUE was detected (Table V's DUE symptoms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DueKind {
    /// Timeout, indicating a hang (monitor detection).
    Timeout,
    /// Process crash (OS detection).
    Crash,
    /// Non-zero exit status (application detection).
    NonZeroExit,
}

impl fmt::Display for DueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DueKind::Timeout => write!(f, "timeout (hang)"),
            DueKind::Crash => write!(f, "process crash"),
            DueKind::NonZeroExit => write!(f, "non-zero exit status"),
        }
    }
}

/// Why the harness — not the program — failed an injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InfraKind {
    /// The injection worker panicked while driving the run.
    WorkerPanic,
    /// The run outlived its wall-clock deadline and was killed
    /// ([`gpu_runtime::RuntimeConfig::wall_deadline`]).
    Deadline,
    /// A process-isolated worker died (segfault, abort, OOM-kill, or
    /// protocol corruption) and kept dying after respawn retries. Unlike
    /// [`InfraKind::WorkerPanic`] — a caught Rust panic inside a live
    /// worker — this is the supervisor's verdict on a worker whose process
    /// vanished mid-run.
    WorkerDied,
}

impl fmt::Display for InfraKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfraKind::WorkerPanic => write!(f, "worker panic"),
            InfraKind::Deadline => write!(f, "wall-clock deadline exceeded"),
            InfraKind::WorkerDied => write!(f, "worker process died"),
        }
    }
}

/// The top-level outcome class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeClass {
    /// No difference detected.
    Masked,
    /// Silent data corruption.
    Sdc(Vec<SdcReason>),
    /// Detected, unrecoverable error.
    Due(DueKind),
    /// The harness failed the run after exhausting retries; no verdict about
    /// the fault exists. Never folded into the DUE taxonomy.
    InfraError(InfraKind),
}

/// A classified run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// The outcome class.
    pub class: OutcomeClass,
    /// `true` when an SDC/Masked run carried an unhandled device anomaly.
    pub potential_due: bool,
}

impl Outcome {
    /// `true` for a masked outcome.
    pub fn is_masked(&self) -> bool {
        matches!(self.class, OutcomeClass::Masked)
    }

    /// `true` for an SDC outcome.
    pub fn is_sdc(&self) -> bool {
        matches!(self.class, OutcomeClass::Sdc(_))
    }

    /// `true` for a DUE outcome.
    pub fn is_due(&self) -> bool {
        matches!(self.class, OutcomeClass::Due(_))
    }

    /// `true` for an infrastructure-error outcome.
    pub fn is_infra(&self) -> bool {
        matches!(self.class, OutcomeClass::InfraError(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.class {
            OutcomeClass::Masked => write!(f, "Masked")?,
            OutcomeClass::Sdc(reasons) => {
                write!(f, "SDC")?;
                if let Some(r) = reasons.first() {
                    write!(f, " ({r})")?;
                }
            }
            OutcomeClass::Due(kind) => write!(f, "DUE ({kind})")?,
            OutcomeClass::InfraError(kind) => write!(f, "InfraError ({kind})")?,
        }
        if self.potential_due {
            write!(f, " [potential DUE]")?;
        }
        Ok(())
    }
}

/// The verdict of an SDC-checking script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdcVerdict {
    /// Outputs acceptable.
    Pass,
    /// Outputs corrupted, for these reasons.
    Fail(Vec<SdcReason>),
}

/// An application's SDC-checking script.
///
/// "The determination of what constitutes an SDC is both application and
/// user dependent, so SDC checking scripts must always be provided by the
/// user" (§IV-A). [`ExactDiff`] is the generic byte-exact script; programs
/// with tolerance-based acceptance provide their own.
pub trait SdcCheck: Sync {
    /// Compare a run's outputs against golden.
    fn check(&self, golden: &GoldenOutput, run: &ProgramOutput) -> SdcVerdict;
}

/// Byte-exact comparison of standard output and every output file.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactDiff;

impl SdcCheck for ExactDiff {
    fn check(&self, golden: &GoldenOutput, run: &ProgramOutput) -> SdcVerdict {
        let mut reasons = Vec::new();
        if run.stdout != golden.stdout {
            reasons.push(SdcReason::Stdout);
        }
        for (name, bytes) in &golden.files {
            if run.files.get(name) != Some(bytes) {
                reasons.push(SdcReason::File(name.clone()));
            }
        }
        for name in run.files.keys() {
            if !golden.files.contains_key(name) {
                reasons.push(SdcReason::File(name.clone()));
            }
        }
        if reasons.is_empty() {
            SdcVerdict::Pass
        } else {
            SdcVerdict::Fail(reasons)
        }
    }
}

/// Classify one injection run against the golden run (Figure 1, step 4).
pub fn classify(golden: &GoldenOutput, run: &ProgramOutput, check: &dyn SdcCheck) -> Outcome {
    let class = match &run.termination {
        Termination::Hang => OutcomeClass::Due(DueKind::Timeout),
        Termination::Crash => OutcomeClass::Due(DueKind::Crash),
        // The harness gave up, the program didn't fail: without the run's
        // natural ending there is no Table V verdict to assign.
        Termination::DeadlineExceeded => OutcomeClass::InfraError(InfraKind::Deadline),
        Termination::Normal { exit_code } if *exit_code != 0 => {
            OutcomeClass::Due(DueKind::NonZeroExit)
        }
        Termination::Normal { .. } => match check.check(golden, run) {
            SdcVerdict::Pass => OutcomeClass::Masked,
            SdcVerdict::Fail(reasons) => OutcomeClass::Sdc(reasons),
        },
    };
    let potential_due =
        matches!(class, OutcomeClass::Masked | OutcomeClass::Sdc(_)) && run.has_anomaly();
    Outcome { class, potential_due }
}

/// Aggregated outcome counts for a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Masked runs.
    pub masked: u64,
    /// SDC runs.
    pub sdc: u64,
    /// DUEs detected by timeout.
    pub due_timeout: u64,
    /// DUEs detected by crash.
    pub due_crash: u64,
    /// DUEs detected by non-zero exit.
    pub due_nonzero: u64,
    /// SDC/Masked runs flagged as potential DUEs.
    pub potential_due: u64,
    /// Runs the harness failed (worker panic, deadline) after retries.
    /// Counted in [`OutcomeCounts::total`] but excluded from
    /// [`OutcomeCounts::classified`] and every rate denominator.
    #[serde(default)]
    pub infra: u64,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn add(&mut self, o: &Outcome) {
        match &o.class {
            OutcomeClass::Masked => self.masked += 1,
            OutcomeClass::Sdc(_) => self.sdc += 1,
            OutcomeClass::Due(DueKind::Timeout) => self.due_timeout += 1,
            OutcomeClass::Due(DueKind::Crash) => self.due_crash += 1,
            OutcomeClass::Due(DueKind::NonZeroExit) => self.due_nonzero += 1,
            OutcomeClass::InfraError(_) => self.infra += 1,
        }
        if o.potential_due {
            self.potential_due += 1;
        }
    }

    /// Total DUEs of any kind.
    pub fn due(&self) -> u64 {
        self.due_timeout + self.due_crash + self.due_nonzero
    }

    /// Total recorded runs, including infrastructure errors.
    pub fn total(&self) -> u64 {
        self.classified() + self.infra
    }

    /// Runs with a real Table V verdict — the denominator for every
    /// SDC/DUE/Masked rate. Infrastructure errors carry no verdict and would
    /// bias the rates toward zero if counted.
    pub fn classified(&self) -> u64 {
        self.masked + self.sdc + self.due()
    }

    /// `(sdc, due, masked)` fractions of the classified runs.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.classified() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.sdc as f64 / t, self.due() as f64 / t, self.masked as f64 / t)
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.due_timeout += other.due_timeout;
        self.due_crash += other.due_crash;
        self.due_nonzero += other.due_nonzero;
        self.potential_due += other.potential_due;
        self.infra += other.infra;
    }
}

impl fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sdc, due, masked) = self.fractions();
        write!(
            f,
            "SDC {:.1}%, DUE {:.1}%, Masked {:.1}% ({} classified runs, {} potential DUEs",
            sdc * 100.0,
            due * 100.0,
            masked * 100.0,
            self.classified(),
            self.potential_due
        )?;
        if self.infra > 0 {
            write!(f, ", {} infra errors excluded", self.infra)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::RunSummary;
    use gpu_sim::{TrapInfo, TrapKind};
    use std::collections::BTreeMap;

    fn golden() -> GoldenOutput {
        let mut files = BTreeMap::new();
        files.insert("out.dat".to_string(), vec![1, 2, 3]);
        GoldenOutput { stdout: "hello\n".into(), files, summary: RunSummary::default() }
    }

    fn run(stdout: &str, termination: Termination) -> ProgramOutput {
        let mut files = BTreeMap::new();
        files.insert("out.dat".to_string(), vec![1, 2, 3]);
        ProgramOutput {
            stdout: stdout.into(),
            files,
            termination,
            anomalies: Vec::new(),
            summary: RunSummary::default(),
            prefix_instrs_skipped: 0,
        }
    }

    fn anomaly() -> TrapInfo {
        TrapInfo {
            kind: TrapKind::IllegalInstruction,
            kernel: "k".into(),
            pc: None,
            block: None,
            thread: None,
        }
    }

    #[test]
    fn masked_when_identical() {
        let o =
            classify(&golden(), &run("hello\n", Termination::Normal { exit_code: 0 }), &ExactDiff);
        assert!(o.is_masked());
        assert!(!o.potential_due);
    }

    #[test]
    fn sdc_on_stdout_diff() {
        let o =
            classify(&golden(), &run("helXo\n", Termination::Normal { exit_code: 0 }), &ExactDiff);
        assert!(o.is_sdc());
        match &o.class {
            OutcomeClass::Sdc(r) => assert_eq!(r, &vec![SdcReason::Stdout]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sdc_on_file_diff_missing_and_extra() {
        let g = golden();
        let mut r = run("hello\n", Termination::Normal { exit_code: 0 });
        r.files.insert("out.dat".into(), vec![9, 9, 9]);
        assert!(classify(&g, &r, &ExactDiff).is_sdc());

        let mut r = run("hello\n", Termination::Normal { exit_code: 0 });
        r.files.clear();
        assert!(classify(&g, &r, &ExactDiff).is_sdc());

        let mut r = run("hello\n", Termination::Normal { exit_code: 0 });
        r.files.insert("extra.dat".into(), vec![1]);
        assert!(classify(&g, &r, &ExactDiff).is_sdc());
    }

    #[test]
    fn due_on_hang_and_exit() {
        let o = classify(&golden(), &run("hello\n", Termination::Hang), &ExactDiff);
        assert_eq!(o.class, OutcomeClass::Due(DueKind::Timeout));
        let o = classify(&golden(), &run("x\n", Termination::Normal { exit_code: 1 }), &ExactDiff);
        assert_eq!(o.class, OutcomeClass::Due(DueKind::NonZeroExit));
    }

    #[test]
    fn potential_due_flags_unhandled_anomaly() {
        let mut r = run("hello\n", Termination::Normal { exit_code: 0 });
        r.anomalies.push(anomaly());
        let o = classify(&golden(), &r, &ExactDiff);
        assert!(o.is_masked(), "folded into Masked per §IV-A");
        assert!(o.potential_due);

        // A DUE is never also a potential DUE.
        let mut r = run("hello\n", Termination::Normal { exit_code: 2 });
        r.anomalies.push(anomaly());
        let o = classify(&golden(), &r, &ExactDiff);
        assert!(o.is_due());
        assert!(!o.potential_due);
    }

    #[test]
    fn deadline_classifies_as_infra_error_not_due() {
        let o = classify(&golden(), &run("hello\n", Termination::DeadlineExceeded), &ExactDiff);
        assert_eq!(o.class, OutcomeClass::InfraError(InfraKind::Deadline));
        assert!(o.is_infra());
        assert!(!o.is_due());
        assert!(o.to_string().contains("InfraError"));

        // Even with a latched anomaly, an infra error is not a potential
        // DUE — the run never reached a verdict the flag could qualify.
        let mut r = run("hello\n", Termination::DeadlineExceeded);
        r.anomalies.push(anomaly());
        let o = classify(&golden(), &r, &ExactDiff);
        assert!(o.is_infra());
        assert!(!o.potential_due);
    }

    #[test]
    fn infra_errors_excluded_from_rate_denominators() {
        let mut c = OutcomeCounts::default();
        c.add(&Outcome { class: OutcomeClass::Masked, potential_due: false });
        c.add(&Outcome { class: OutcomeClass::Sdc(vec![SdcReason::Stdout]), potential_due: false });
        c.add(&Outcome {
            class: OutcomeClass::InfraError(InfraKind::WorkerPanic),
            potential_due: false,
        });
        c.add(&Outcome {
            class: OutcomeClass::InfraError(InfraKind::Deadline),
            potential_due: false,
        });
        assert_eq!(c.total(), 4);
        assert_eq!(c.classified(), 2);
        assert_eq!(c.infra, 2);
        let (sdc, due, masked) = c.fractions();
        assert_eq!(sdc, 0.5, "denominator is classified runs, not total");
        assert_eq!(due, 0.0);
        assert_eq!(masked, 0.5);
        assert!(c.to_string().contains("2 infra errors excluded"));

        let mut d = OutcomeCounts::default();
        d.merge(&c);
        assert_eq!(d.infra, 2);
    }

    #[test]
    fn custom_check_overrides_byte_diff() {
        struct Tolerant;
        impl SdcCheck for Tolerant {
            fn check(&self, _g: &GoldenOutput, _r: &ProgramOutput) -> SdcVerdict {
                SdcVerdict::Pass
            }
        }
        // Different bytes, but the app's checker accepts them.
        let o = classify(
            &golden(),
            &run("close enough\n", Termination::Normal { exit_code: 0 }),
            &Tolerant,
        );
        assert!(o.is_masked());
    }

    #[test]
    fn counts_aggregate_and_fraction() {
        let mut c = OutcomeCounts::default();
        c.add(&Outcome { class: OutcomeClass::Masked, potential_due: false });
        c.add(&Outcome { class: OutcomeClass::Sdc(vec![SdcReason::Stdout]), potential_due: true });
        c.add(&Outcome { class: OutcomeClass::Due(DueKind::Timeout), potential_due: false });
        c.add(&Outcome { class: OutcomeClass::Due(DueKind::NonZeroExit), potential_due: false });
        assert_eq!(c.total(), 4);
        assert_eq!(c.due(), 2);
        assert_eq!(c.potential_due, 1);
        let (sdc, due, masked) = c.fractions();
        assert_eq!(sdc, 0.25);
        assert_eq!(due, 0.5);
        assert_eq!(masked, 0.25);

        let mut d = OutcomeCounts::default();
        d.merge(&c);
        d.merge(&c);
        assert_eq!(d.total(), 8);
    }
}
