//! The instruction profiler — NVBitFI's `profiler.so`.
//!
//! The profiler builds "a profile containing one line for every dynamic
//! kernel and the total dynamic instruction counts for every opcode in every
//! thread in that dynamic kernel" (§III-A). Predicated-off instructions are
//! excluded (the simulator never delivers callbacks for them). The profile
//! is the uniform population transient fault sites are drawn from, and it
//! also tells permanent campaigns which opcodes a program actually executes.
//!
//! Two modes, as in the paper:
//!
//! * **exact** — instruments every dynamic kernel (expensive, Figure 4),
//! * **approximate** — instruments only the *first* instance of each static
//!   kernel and assumes later instances repeat its counts (cheap, but the
//!   profile can drift from reality — the divergence studied in Figure 2).

use crate::error::FiError;
use crate::igid::InstrGroup;
use gpu_isa::{Kernel, Opcode, OPCODE_COUNT};
use gpu_runtime::{
    run_program, KernelLaunchInfo, LaunchRecord, Program, RunSummary, RuntimeConfig,
};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Exact or approximate profiling (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfilingMode {
    /// Count every dynamic instruction of every dynamic kernel.
    Exact,
    /// Count only the first instance of each static kernel; extrapolate.
    Approximate,
}

impl std::fmt::Display for ProfilingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProfilingMode::Exact => "exact",
            ProfilingMode::Approximate => "approximate",
        })
    }
}

/// Per-opcode dynamic instruction counts of one dynamic kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub kernel: String,
    /// 0-based dynamic instance of the kernel name.
    pub instance: u64,
    /// Thread-level dynamic instruction counts per opcode.
    pub counts: BTreeMap<Opcode, u64>,
}

impl KernelProfile {
    /// Total dynamic instructions in this dynamic kernel.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Dynamic instructions belonging to `group`.
    pub fn total_in_group(&self, group: InstrGroup) -> u64 {
        self.counts.iter().filter(|(op, _)| group.contains(**op)).map(|(_, n)| n).sum()
    }
}

/// A fault site located by [`Profile::locate`]: the paper's
/// `<kernel name, kernel count, instruction count>` tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSite {
    /// Target kernel name.
    pub kernel: String,
    /// 0-based dynamic instance of the kernel name.
    pub kernel_count: u64,
    /// 0-based index among the group's dynamic instructions within that
    /// kernel instance.
    pub instruction_count: u64,
}

/// A program's instruction profile: one entry per dynamic kernel, in launch
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// How the profile was produced.
    pub mode: ProfilingMode,
    /// Per-dynamic-kernel counts, in launch order.
    pub kernels: Vec<KernelProfile>,
}

impl Profile {
    /// Total dynamic instructions across the program.
    pub fn total(&self) -> u64 {
        self.kernels.iter().map(|k| k.total()).sum()
    }

    /// Total dynamic instructions in `group` across the program — the `N`
    /// that transient fault selection draws from.
    pub fn total_in_group(&self, group: InstrGroup) -> u64 {
        self.kernels.iter().map(|k| k.total_in_group(group)).sum()
    }

    /// Opcodes with a nonzero dynamic count — the set a permanent-fault
    /// campaign needs to cover (§III-A: unused opcodes can be skipped).
    pub fn executed_opcodes(&self) -> BTreeSet<Opcode> {
        let mut set = BTreeSet::new();
        for k in &self.kernels {
            for (op, n) in &k.counts {
                if *n > 0 {
                    set.insert(*op);
                }
            }
        }
        set
    }

    /// Total dynamic count of one opcode across the program.
    pub fn opcode_total(&self, op: Opcode) -> u64 {
        self.kernels.iter().map(|k| k.counts.get(&op).copied().unwrap_or(0)).sum()
    }

    /// Map the `n`-th dynamic group instruction (0-based, program order)
    /// onto its `<kernel, kernel count, instruction count>` fault site.
    ///
    /// Returns `None` if `n` is at or beyond the group's population.
    pub fn locate(&self, group: InstrGroup, n: u64) -> Option<FaultSite> {
        let mut before = 0u64;
        for k in &self.kernels {
            let here = k.total_in_group(group);
            if n < before + here {
                return Some(FaultSite {
                    kernel: k.kernel.clone(),
                    kernel_count: k.instance,
                    instruction_count: n - before,
                });
            }
            before += here;
        }
        None
    }

    // --- file format --------------------------------------------------------

    /// Serialize in the profiler's text format: a header followed by one
    /// line per dynamic kernel.
    pub fn to_file(&self) -> String {
        let mut out = format!("# nvbitfi profile mode={}\n", self.mode);
        for k in &self.kernels {
            let counts: Vec<String> = k
                .counts
                .iter()
                .filter(|(_, n)| **n > 0)
                .map(|(op, n)| format!("{op}={n}"))
                .collect();
            out.push_str(&format!("{}:{}: {}\n", k.kernel, k.instance, counts.join(",")));
        }
        out
    }

    /// Parse the text format produced by [`Profile::to_file`].
    ///
    /// # Errors
    ///
    /// Returns [`FiError::BadProfileFile`] naming the offending line.
    pub fn from_file(text: &str) -> Result<Profile, FiError> {
        let bad = |line: usize, reason: String| FiError::BadProfileFile { line, reason };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| bad(1, "empty profile".into()))?;
        let mode = if header.contains("mode=exact") {
            ProfilingMode::Exact
        } else if header.contains("mode=approximate") {
            ProfilingMode::Approximate
        } else {
            return Err(bad(1, format!("bad header `{header}`")));
        };
        let mut kernels = Vec::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            // kernel:instance: OP=count,OP=count
            let (head, rest) = line
                .rsplit_once(": ")
                .ok_or_else(|| bad(lineno, "missing `: ` separator".into()))?;
            let (kernel, instance_s) = head
                .rsplit_once(':')
                .ok_or_else(|| bad(lineno, "missing kernel:instance".into()))?;
            let instance =
                instance_s.parse::<u64>().map_err(|e| bad(lineno, format!("bad instance: {e}")))?;
            let mut counts = BTreeMap::new();
            for item in rest.split(',').filter(|s| !s.trim().is_empty()) {
                let (op_s, n_s) = item
                    .split_once('=')
                    .ok_or_else(|| bad(lineno, format!("bad count `{item}`")))?;
                let op = Opcode::from_mnemonic(op_s.trim())
                    .ok_or_else(|| bad(lineno, format!("unknown opcode `{op_s}`")))?;
                let n = n_s
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| bad(lineno, format!("bad count for {op_s}: {e}")))?;
                counts.insert(op, n);
            }
            kernels.push(KernelProfile { kernel: kernel.to_string(), instance, counts });
        }
        Ok(Profile { mode, kernels })
    }
}

/// The profiler tool (attachable via [`nvbit::NvBit`]).
pub struct Profiler {
    mode: ProfilingMode,
    current: Box<[u64; OPCODE_COUNT]>,
    /// Counts of the first instance of each static kernel (approximate mode).
    first_instance: HashMap<String, BTreeMap<Opcode, u64>>,
    /// Dynamic kernels in launch order.
    kernels: Vec<KernelProfile>,
    sink: Arc<Mutex<Option<Profile>>>,
}

/// Handle to retrieve the [`Profile`] after the profiled run exits.
#[derive(Debug, Clone)]
pub struct ProfileHandle(Arc<Mutex<Option<Profile>>>);

impl ProfileHandle {
    /// Take the finished profile (available after the program exits).
    pub fn take(&self) -> Option<Profile> {
        self.0.lock().take()
    }
}

impl Profiler {
    /// Create a profiler and the handle its profile will be delivered to.
    pub fn new(mode: ProfilingMode) -> (NvBit<Profiler>, ProfileHandle) {
        let sink = Arc::new(Mutex::new(None));
        let p = Profiler {
            mode,
            current: Box::new([0; OPCODE_COUNT]),
            first_instance: HashMap::new(),
            kernels: Vec::new(),
            sink: Arc::clone(&sink),
        };
        (NvBit::new(p), ProfileHandle(sink))
    }

    fn drain_current(&mut self) -> BTreeMap<Opcode, u64> {
        let mut counts = BTreeMap::new();
        for (idx, n) in self.current.iter_mut().enumerate() {
            if *n > 0 {
                counts.insert(Opcode::decode(idx as u16).expect("valid index"), *n);
                *n = 0;
            }
        }
        counts
    }
}

impl NvBitTool for Profiler {
    fn instrument_kernel(&mut self, _kernel: &Kernel, inserter: &mut Inserter<'_>) {
        inserter.insert_call_everywhere(When::Before, 0);
    }

    fn launch_enabled(&mut self, info: &KernelLaunchInfo<'_>) -> bool {
        match self.mode {
            ProfilingMode::Exact => true,
            ProfilingMode::Approximate => info.instance == 0,
        }
    }

    fn device_call(&mut self, site: &CallSite<'_>, _t: &mut gpu_sim::ThreadCtx<'_>) {
        self.current[site.instr.opcode().encode() as usize] += 1;
    }

    fn on_kernel_complete(&mut self, record: &LaunchRecord) {
        let counts = match self.mode {
            ProfilingMode::Exact => self.drain_current(),
            ProfilingMode::Approximate => {
                if record.instance == 0 {
                    let counts = self.drain_current();
                    self.first_instance.insert(record.kernel.clone(), counts.clone());
                    counts
                } else {
                    // Extrapolate: assume this instance repeats the first.
                    self.first_instance.get(&record.kernel).cloned().unwrap_or_default()
                }
            }
        };
        self.kernels.push(KernelProfile {
            kernel: record.kernel.clone(),
            instance: record.instance,
            counts,
        });
    }

    fn on_exit(&mut self, _summary: &RunSummary) {
        *self.sink.lock() =
            Some(Profile { mode: self.mode, kernels: std::mem::take(&mut self.kernels) });
    }
}

/// Run `program` under the profiler and return its profile (Figure 1,
/// step 1).
///
/// # Errors
///
/// Returns [`FiError::GoldenRunFailed`] if the profiled run does not
/// terminate cleanly (profiling assumes a fault-free program).
pub fn profile_program(
    program: &dyn Program,
    cfg: RuntimeConfig,
    mode: ProfilingMode,
) -> Result<Profile, FiError> {
    let (tool, handle) = Profiler::new(mode);
    let out = run_program(program, cfg, Some(Box::new(tool)));
    if !out.termination.is_clean() {
        return Err(FiError::GoldenRunFailed {
            program: program.name().to_string(),
            reason: format!("profiled run ended with {:?}", out.termination),
        });
    }
    handle.take().ok_or_else(|| FiError::GoldenRunFailed {
        program: program.name().to_string(),
        reason: "profiler produced no profile".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(kernel: &str, instance: u64, counts: &[(&str, u64)]) -> KernelProfile {
        KernelProfile {
            kernel: kernel.into(),
            instance,
            counts: counts.iter().map(|(m, n)| (Opcode::from_mnemonic(m).expect(m), *n)).collect(),
        }
    }

    fn sample() -> Profile {
        Profile {
            mode: ProfilingMode::Exact,
            kernels: vec![
                kp("alpha", 0, &[("FADD", 100), ("LDG", 50), ("EXIT", 32)]),
                kp("beta", 0, &[("DFMA", 10), ("ISETP", 20)]),
                kp("alpha", 1, &[("FADD", 80), ("LDG", 40), ("EXIT", 32)]),
            ],
        }
    }

    #[test]
    fn totals() {
        let p = sample();
        assert_eq!(p.total(), 100 + 50 + 32 + 10 + 20 + 80 + 40 + 32);
        assert_eq!(p.total_in_group(InstrGroup::Fp32), 180);
        assert_eq!(p.total_in_group(InstrGroup::Ld), 90);
        assert_eq!(p.total_in_group(InstrGroup::Fp64), 10);
        assert_eq!(p.total_in_group(InstrGroup::Pr), 20);
        assert_eq!(p.total_in_group(InstrGroup::NoDest), 64);
        assert_eq!(p.total_in_group(InstrGroup::GpPr), p.total() - 64);
        assert_eq!(p.total_in_group(InstrGroup::Gp), p.total() - 64 - 20);
    }

    #[test]
    fn executed_opcodes_and_totals() {
        let p = sample();
        let ops = p.executed_opcodes();
        assert_eq!(ops.len(), 5);
        assert_eq!(p.opcode_total(Opcode::from_mnemonic("FADD").expect("op")), 180);
        assert_eq!(p.opcode_total(Opcode::from_mnemonic("HMMA").expect("op")), 0);
    }

    #[test]
    fn locate_walks_kernels_in_order() {
        let p = sample();
        // G_FP32 population: alpha#0 has 100 (indices 0..100), alpha#1 has
        // 80 (indices 100..180).
        let s = p.locate(InstrGroup::Fp32, 0).expect("site");
        assert_eq!((s.kernel.as_str(), s.kernel_count, s.instruction_count), ("alpha", 0, 0));
        let s = p.locate(InstrGroup::Fp32, 99).expect("site");
        assert_eq!((s.kernel.as_str(), s.kernel_count, s.instruction_count), ("alpha", 0, 99));
        let s = p.locate(InstrGroup::Fp32, 100).expect("site");
        assert_eq!((s.kernel.as_str(), s.kernel_count, s.instruction_count), ("alpha", 1, 0));
        let s = p.locate(InstrGroup::Fp32, 179).expect("site");
        assert_eq!((s.kernel.as_str(), s.kernel_count, s.instruction_count), ("alpha", 1, 79));
        assert_eq!(p.locate(InstrGroup::Fp32, 180), None);
        // FP64 population lives in beta.
        let s = p.locate(InstrGroup::Fp64, 5).expect("site");
        assert_eq!((s.kernel.as_str(), s.kernel_count), ("beta", 0));
    }

    #[test]
    fn file_roundtrip() {
        let p = sample();
        let text = p.to_file();
        assert!(text.starts_with("# nvbitfi profile mode=exact"));
        assert_eq!(Profile::from_file(&text).expect("parse"), p);
    }

    #[test]
    fn file_parse_errors_name_lines() {
        assert!(matches!(Profile::from_file(""), Err(FiError::BadProfileFile { line: 1, .. })));
        assert!(matches!(
            Profile::from_file("# nvbitfi profile mode=exact\ngarbage-without-separator"),
            Err(FiError::BadProfileFile { line: 2, .. })
        ));
        assert!(matches!(
            Profile::from_file("# nvbitfi profile mode=exact\nk:0: NOTANOP=5"),
            Err(FiError::BadProfileFile { line: 2, .. })
        ));
    }

    #[test]
    fn empty_kernel_line_roundtrips() {
        let p = Profile { mode: ProfilingMode::Approximate, kernels: vec![kp("quiet", 0, &[])] };
        let back = Profile::from_file(&p.to_file()).expect("parse");
        assert_eq!(back, p);
    }
}
