//! Fault-model extensions — the paper's §V "future directions", implemented.
//!
//! * **Intermittent faults**: a permanent-style fault that activates only on
//!   a subset of dynamic instances — a random process or a bursty window.
//! * **More complex fault models**: corruption functions beyond XOR
//!   ([`CorruptionFn`]), multi-register corruption, and permanent faults
//!   spanning *multiple opcodes* (e.g. every opcode sharing an ALU).
//! * **Fault dictionary**: a per-opcode table of corruption behaviours
//!   ([`FaultDictionary`]), standing in for a dictionary derived from
//!   circuit/microarchitectural simulation.

use gpu_isa::{Kernel, Opcode};
use nvbit::{CallSite, Inserter, NvBit, NvBitTool, When};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A corruption function applied to a destination register (§V: "supporting
/// corruption functions beyond the current set of XOR, random, and zero").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionFn {
    /// XOR with a mask (the baseline model).
    Xor(u32),
    /// AND with a mask (models stuck-at-0 bits).
    And(u32),
    /// OR with a mask (models stuck-at-1 bits).
    Or(u32),
    /// Overwrite with a constant.
    Set(u32),
}

impl CorruptionFn {
    /// Apply to a register value.
    #[inline]
    pub fn apply(self, v: u32) -> u32 {
        match self {
            CorruptionFn::Xor(m) => v ^ m,
            CorruptionFn::And(m) => v & m,
            CorruptionFn::Or(m) => v | m,
            CorruptionFn::Set(c) => c,
        }
    }
}

/// When an intermittent/extended fault is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivationPattern {
    /// Active on every opportunity (a permanent fault).
    Always,
    /// Active independently with probability `prob` per opportunity
    /// (a random intermittent process, seeded for reproducibility).
    Random {
        /// Activation probability in `[0, 1]`.
        prob: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Active for opportunities `start .. start + len` (a burst).
    Burst {
        /// First active opportunity (0-based).
        start: u64,
        /// Number of active opportunities.
        len: u64,
    },
}

/// An extended fault: one or more opcodes at one (SM, lane), with a chosen
/// corruption function and activation pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtFault {
    /// Opcodes affected (§V: "allowing a permanent fault to affect multiple
    /// opcodes").
    pub opcodes: Vec<Opcode>,
    /// Target SM.
    pub sm_id: u32,
    /// Target hardware lane.
    pub lane_id: u32,
    /// How destination registers are corrupted.
    pub corruption: CorruptionFn,
    /// When the fault is active.
    pub activation: ActivationPattern,
}

/// Record of an extended-fault run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtRecord {
    /// Opportunities: target-opcode executions on the target (SM, lane).
    pub opportunities: u64,
    /// Opportunities on which the fault was active (corruptions applied).
    pub activations: u64,
}

/// Handle to read the [`ExtRecord`] after the run.
#[derive(Debug, Clone)]
pub struct ExtHandle(Arc<Mutex<ExtRecord>>);

impl ExtHandle {
    /// Snapshot the record.
    pub fn get(&self) -> ExtRecord {
        self.0.lock().clone()
    }
}

/// The extended injector tool.
pub struct ExtInjector {
    fault: ExtFault,
    rng: StdRng,
    record: Arc<Mutex<ExtRecord>>,
}

impl ExtInjector {
    /// Create an extended injector and its record handle.
    pub fn new(fault: ExtFault) -> (NvBit<ExtInjector>, ExtHandle) {
        let seed = match fault.activation {
            ActivationPattern::Random { seed, .. } => seed,
            _ => 0,
        };
        let record = Arc::new(Mutex::new(ExtRecord::default()));
        let inj =
            ExtInjector { fault, rng: StdRng::seed_from_u64(seed), record: Arc::clone(&record) };
        (NvBit::new(inj), ExtHandle(record))
    }

    fn active(&mut self, opportunity: u64) -> bool {
        match &self.fault.activation {
            ActivationPattern::Always => true,
            ActivationPattern::Random { prob, .. } => self.rng.gen_bool(prob.clamp(0.0, 1.0)),
            ActivationPattern::Burst { start, len } => {
                opportunity >= *start && opportunity < start + len
            }
        }
    }
}

impl NvBitTool for ExtInjector {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if self.fault.opcodes.contains(&instr.op) {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        if thread.meta.sm != self.fault.sm_id || thread.meta.lane != self.fault.lane_id {
            return;
        }
        let opportunity = {
            let mut rec = self.record.lock();
            let o = rec.opportunities;
            rec.opportunities += 1;
            o
        };
        if !self.active(opportunity) {
            return;
        }
        self.record.lock().activations += 1;
        // Multi-register corruption: every GPR destination unit is affected.
        for reg in site.instr.gpr_dests() {
            let old = thread.read_reg(reg);
            thread.write_reg(reg, self.fault.corruption.apply(old));
        }
    }
}

/// A fault dictionary: per-opcode corruption behaviour (§V).
///
/// Opcodes absent from the dictionary are unaffected. Each entry can carry
/// its own activation probability, modeling an error-manifestation rate
/// derived from lower-level simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultDictionary {
    entries: BTreeMap<Opcode, DictEntry>,
}

/// One dictionary entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DictEntry {
    /// Corruption applied when the entry fires.
    pub corruption: CorruptionFn,
    /// Probability the fault manifests on a given execution.
    pub manifest_prob: f64,
}

impl FaultDictionary {
    /// An empty dictionary.
    pub fn new() -> FaultDictionary {
        FaultDictionary::default()
    }

    /// Add or replace an entry.
    pub fn insert(&mut self, op: Opcode, entry: DictEntry) -> &mut Self {
        self.entries.insert(op, entry);
        self
    }

    /// Look up an opcode.
    pub fn get(&self, op: Opcode) -> Option<&DictEntry> {
        self.entries.get(&op)
    }

    /// The opcodes with entries.
    pub fn opcodes(&self) -> impl Iterator<Item = Opcode> + '_ {
        self.entries.keys().copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Injector driven by a [`FaultDictionary`], affecting one (SM, lane).
pub struct DictInjector {
    dict: FaultDictionary,
    sm_id: u32,
    lane_id: u32,
    rng: StdRng,
    record: Arc<Mutex<ExtRecord>>,
}

impl DictInjector {
    /// Create a dictionary injector and its record handle.
    pub fn new(
        dict: FaultDictionary,
        sm_id: u32,
        lane_id: u32,
        seed: u64,
    ) -> (NvBit<DictInjector>, ExtHandle) {
        let record = Arc::new(Mutex::new(ExtRecord::default()));
        let inj = DictInjector {
            dict,
            sm_id,
            lane_id,
            rng: StdRng::seed_from_u64(seed),
            record: Arc::clone(&record),
        };
        (NvBit::new(inj), ExtHandle(record))
    }
}

impl NvBitTool for DictInjector {
    fn instrument_kernel(&mut self, kernel: &Kernel, inserter: &mut Inserter<'_>) {
        for (pc, instr) in kernel.instrs().iter().enumerate() {
            if self.dict.get(instr.op).is_some() {
                inserter.insert_call(pc, When::After, 0, Vec::new());
            }
        }
    }

    fn device_call(&mut self, site: &CallSite<'_>, thread: &mut gpu_sim::ThreadCtx<'_>) {
        if thread.meta.sm != self.sm_id || thread.meta.lane != self.lane_id {
            return;
        }
        let Some(entry) = self.dict.get(site.instr.opcode()).copied() else {
            return;
        };
        self.record.lock().opportunities += 1;
        if !self.rng.gen_bool(entry.manifest_prob.clamp(0.0, 1.0)) {
            return;
        }
        self.record.lock().activations += 1;
        for reg in site.instr.gpr_dests() {
            let old = thread.read_reg(reg);
            thread.write_reg(reg, entry.corruption.apply(old));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_runtime::{run_program, Program, Runtime, RuntimeConfig, RuntimeError};
    use gpu_sim::GpuConfig;

    struct App {
        iters: u32,
    }
    impl Program for App {
        fn name(&self) -> &str {
            "app"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            // Each thread repeatedly increments a value: `iters` IADD32I per
            // thread, so one (SM, lane) sees `iters` opportunities.
            let mut k = KernelBuilder::new("loopy");
            let (out, tid, acc, i) = (Reg(4), Reg(0), Reg(2), Reg(3));
            k.ldc(out, 0);
            k.s2r(tid, SpecialReg::GlobalTidX);
            k.movi(acc, 0);
            k.movi(i, 0);
            let top = k.new_label();
            k.bind(top);
            k.iaddi(acc, acc, 1);
            k.iaddi(i, i, 1);
            k.isetp(gpu_isa::PReg(0), gpu_isa::CmpOp::Lt, i, self.iters as i32);
            k.bra_if(gpu_isa::PReg(0), top);
            k.shli(Reg(5), tid, 2);
            k.iadd(out, out, Reg(5));
            k.stg(out, 0, acc);
            k.exit();
            let bytes = encode::encode_module(&Module::new("m", vec![k.finish()]));
            let m = rt.load_module(&bytes)?;
            let h = rt.get_kernel(m, "loopy")?;
            let buf = rt.alloc(32 * 4)?;
            rt.launch(h, 1u32, 32u32, &[buf.addr()])?;
            rt.synchronize()?;
            let v = rt.read_u32s(buf, 32)?;
            rt.println(format!("{v:?}"));
            Ok(())
        }
    }

    fn cfg() -> RuntimeConfig {
        RuntimeConfig {
            gpu: GpuConfig { num_sms: 1, ..GpuConfig::default() },
            // Corrupting a loop counter can livelock the kernel; keep the
            // hang monitor tight so such runs terminate as hangs quickly.
            instr_budget: Some(2_000_000),
            ..RuntimeConfig::default()
        }
    }

    fn fault(activation: ActivationPattern, corruption: CorruptionFn) -> ExtFault {
        ExtFault { opcodes: vec![Opcode::IADD32I], sm_id: 0, lane_id: 3, corruption, activation }
    }

    #[test]
    fn always_pattern_is_permanent() {
        let (tool, handle) =
            ExtInjector::new(fault(ActivationPattern::Always, CorruptionFn::Xor(0)));
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        // Lane 3 executes IADD32I 2×10 times in the loop (acc and i).
        assert_eq!(rec.opportunities, 20);
        assert_eq!(rec.activations, 20);
    }

    #[test]
    fn burst_pattern_activates_window_only() {
        let (tool, handle) = ExtInjector::new(fault(
            ActivationPattern::Burst { start: 5, len: 4 },
            CorruptionFn::Xor(0),
        ));
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        assert_eq!(rec.opportunities, 20);
        assert_eq!(rec.activations, 4);
    }

    #[test]
    fn random_pattern_is_reproducible_and_rate_shaped() {
        let run_once = || {
            let (tool, handle) = ExtInjector::new(fault(
                ActivationPattern::Random { prob: 0.5, seed: 99 },
                CorruptionFn::Xor(0),
            ));
            let out = run_program(&App { iters: 200 }, cfg(), Some(Box::new(tool)));
            assert!(out.termination.is_clean());
            handle.get()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "seeded activation is reproducible");
        assert_eq!(a.opportunities, 400);
        assert!((120..280).contains(&a.activations), "got {}", a.activations);
    }

    #[test]
    fn stuck_at_one_corruption() {
        // OR with 0x4 forces bit 2 of the loop counters on lane 3; the
        // final accumulator for lane 3 differs from the clean 10.
        let (tool, handle) =
            ExtInjector::new(fault(ActivationPattern::Always, CorruptionFn::Or(0x4)));
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert!(handle.get().activations > 0);
        // Clean output is all 10s; lane 3's accumulator is corrupted.
        let line = out.stdout.lines().next().expect("stdout");
        assert!(line.starts_with("[10, 10, 10, "), "{line}");
        assert!(!line.contains("[10, 10, 10, 10, "), "lane 3 must differ: {line}");
    }

    #[test]
    fn dictionary_injector_respects_entries() {
        let mut dict = FaultDictionary::new();
        // Xor(0) observes every execution without perturbing state — the
        // dictionary analog of a fault that never manifests a bit error.
        dict.insert(
            Opcode::IADD32I,
            DictEntry { corruption: CorruptionFn::Xor(0), manifest_prob: 1.0 },
        );
        assert_eq!(dict.len(), 1);
        assert!(!dict.is_empty());
        let (tool, handle) = DictInjector::new(dict, 0, 3, 7);
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        let rec = handle.get();
        assert_eq!(rec.opportunities, 20);
        assert_eq!(rec.activations, 20);
    }

    #[test]
    fn self_defeating_corruption_hangs_and_is_detected() {
        // XOR(1) on IADD32I undoes the loop counter's `+1` every iteration
        // on the target lane: a livelock. The hang monitor must catch it —
        // this is exactly the paper's "Timeout, indicating a hang" DUE.
        let mut dict = FaultDictionary::new();
        dict.insert(
            Opcode::IADD32I,
            DictEntry { corruption: CorruptionFn::Xor(1), manifest_prob: 1.0 },
        );
        let (tool, handle) = DictInjector::new(dict, 0, 3, 7);
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert_eq!(out.termination, gpu_runtime::Termination::Hang);
        assert!(handle.get().activations > 0);
    }

    #[test]
    fn dictionary_zero_probability_never_fires() {
        let mut dict = FaultDictionary::new();
        dict.insert(
            Opcode::IADD32I,
            DictEntry { corruption: CorruptionFn::Set(0), manifest_prob: 0.0 },
        );
        let (tool, handle) = DictInjector::new(dict, 0, 3, 7);
        let out = run_program(&App { iters: 10 }, cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        assert_eq!(handle.get().activations, 0);
        assert!(out.stdout.contains("[10, 10"), "output clean");
    }

    #[test]
    fn corruption_fns() {
        assert_eq!(CorruptionFn::Xor(0b1010).apply(0b0110), 0b1100);
        assert_eq!(CorruptionFn::And(0b1010).apply(0b0110), 0b0010);
        assert_eq!(CorruptionFn::Or(0b1010).apply(0b0110), 0b1110);
        assert_eq!(CorruptionFn::Set(7).apply(12345), 7);
    }
}
