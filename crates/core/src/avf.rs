//! Architectural vulnerability factor (AVF) estimation.
//!
//! The paper's motivation (§I): "The architectural vulnerability factor is
//! the probability that a fault will result in a visible error in the final
//! output of a program. The product of the raw error rate and the AVF
//! results in the visible error rate." A fault-injection campaign estimates
//! AVF directly: the fraction of injected faults that are *not* masked,
//! split into SDC-AVF and DUE-AVF.
//!
//! Campaigns target one instruction group at a time; [`combine`] merges
//! per-group estimates into a whole-program AVF by weighting each group by
//! its share of the dynamic instruction population.

use crate::campaign::TransientCampaign;
use crate::igid::InstrGroup;
use crate::profile::Profile;
use crate::stats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An AVF estimate with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvfEstimate {
    /// Number of injections behind the estimate.
    pub injections: usize,
    /// P(fault → silent data corruption).
    pub sdc: f64,
    /// P(fault → detected unrecoverable error).
    pub due: f64,
    /// Error margin at 90% confidence for the SDC and DUE fractions
    /// (worst-case binomial).
    pub margin90: f64,
}

impl AvfEstimate {
    /// Total AVF: the probability a fault is architecturally visible at all
    /// (`1 − masked`).
    pub fn total(&self) -> f64 {
        self.sdc + self.due
    }
}

impl fmt::Display for AvfEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AVF {:.1}% (SDC {:.1}%, DUE {:.1}%) ±{:.1}% @90% over {} injections",
            self.total() * 100.0,
            self.sdc * 100.0,
            self.due * 100.0,
            self.margin90 * 100.0,
            self.injections
        )
    }
}

/// Estimate the AVF of the campaign's instruction group from its outcomes.
pub fn from_campaign(c: &TransientCampaign) -> AvfEstimate {
    let n = c.counts.total().max(1) as usize;
    let (sdc, due, _) = c.counts.fractions();
    AvfEstimate { injections: n, sdc, due, margin90: stats::error_margin(n, 0.90) }
}

/// One group's contribution to a whole-program AVF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupAvf {
    /// The instruction group sampled.
    pub group: InstrGroup,
    /// The group's dynamic-instruction population in the profile.
    pub population: u64,
    /// The group's AVF estimate.
    pub estimate: AvfEstimate,
}

/// Combine per-group AVF estimates into a whole-program AVF, weighting each
/// group by its dynamic-instruction share. Groups must partition the
/// population (use the six base groups of Table II, not the derived ones).
///
/// Returns `None` when the total population is zero.
pub fn combine(groups: &[GroupAvf]) -> Option<AvfEstimate> {
    let total: u64 = groups.iter().map(|g| g.population).sum();
    if total == 0 {
        return None;
    }
    let mut sdc = 0.0;
    let mut due = 0.0;
    let mut margin = 0.0;
    let mut injections = 0usize;
    for g in groups {
        let w = g.population as f64 / total as f64;
        sdc += w * g.estimate.sdc;
        due += w * g.estimate.due;
        margin += w * g.estimate.margin90;
        injections += g.estimate.injections;
    }
    Some(AvfEstimate { injections, sdc, due, margin90: margin })
}

/// The population weights the combination uses, for reporting: each base
/// group's share of the profile's dynamic instructions.
pub fn group_weights(profile: &Profile) -> Vec<(InstrGroup, f64)> {
    let total = profile.total().max(1) as f64;
    InstrGroup::ALL[..6].iter().map(|g| (*g, profile.total_in_group(*g) as f64 / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{DueKind, Outcome, OutcomeClass, OutcomeCounts};

    fn estimate(n: usize, sdc_n: u64, due_n: u64) -> AvfEstimate {
        let mut counts = OutcomeCounts::default();
        for _ in 0..sdc_n {
            counts.add(&Outcome { class: OutcomeClass::Sdc(vec![]), potential_due: false });
        }
        for _ in 0..due_n {
            counts
                .add(&Outcome { class: OutcomeClass::Due(DueKind::Timeout), potential_due: false });
        }
        for _ in 0..(n as u64 - sdc_n - due_n) {
            counts.add(&Outcome { class: OutcomeClass::Masked, potential_due: false });
        }
        let (sdc, due, _) = counts.fractions();
        AvfEstimate { injections: n, sdc, due, margin90: stats::error_margin(n, 0.90) }
    }

    #[test]
    fn total_is_one_minus_masked() {
        let e = estimate(100, 30, 10);
        assert!((e.total() - 0.4).abs() < 1e-12);
        assert!((e.sdc - 0.3).abs() < 1e-12);
    }

    #[test]
    fn combine_weights_by_population() {
        let groups = vec![
            GroupAvf { group: InstrGroup::Fp32, population: 900, estimate: estimate(100, 50, 0) },
            GroupAvf { group: InstrGroup::Ld, population: 100, estimate: estimate(100, 0, 100) },
        ];
        let c = combine(&groups).expect("populated");
        assert!((c.sdc - 0.45).abs() < 1e-12, "0.9*0.5");
        assert!((c.due - 0.10).abs() < 1e-12, "0.1*1.0");
        assert_eq!(c.injections, 200);
    }

    #[test]
    fn combine_empty_population() {
        assert!(combine(&[]).is_none());
        let g = GroupAvf { group: InstrGroup::Fp64, population: 0, estimate: estimate(10, 1, 1) };
        assert!(combine(&[g]).is_none());
    }

    #[test]
    fn display_is_informative() {
        let s = estimate(100, 20, 5).to_string();
        assert!(s.contains("AVF 25.0%"), "{s}");
        assert!(s.contains("SDC 20.0%"), "{s}");
        assert!(s.contains("100 injections"), "{s}");
    }

    #[test]
    fn group_weights_sum_to_one() {
        use crate::profile::{KernelProfile, ProfilingMode};
        use gpu_isa::Opcode;
        let mut counts = std::collections::BTreeMap::new();
        counts.insert(Opcode::FADD, 60u64);
        counts.insert(Opcode::LDG, 30);
        counts.insert(Opcode::EXIT, 10);
        let p = Profile {
            mode: ProfilingMode::Exact,
            kernels: vec![KernelProfile { kernel: "k".into(), instance: 0, counts }],
        };
        let weights = group_weights(&p);
        let sum: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12, "base groups partition: {sum}");
        let fp32 = weights.iter().find(|(g, _)| *g == InstrGroup::Fp32).expect("fp32").1;
        assert!((fp32 - 0.6).abs() < 1e-12);
    }
}
