//! Runtime errors and the CUDA-style sticky kernel fault.

use gpu_isa::IsaError;
use gpu_sim::{MemError, TrapInfo};
use std::fmt;

/// A latched device-side fault, the analog of a sticky CUDA error.
///
/// When a kernel traps, the fault is recorded here and the device context is
/// marked corrupted; whether the *process* notices depends on whether host
/// code checks ([`crate::Runtime::last_error`] /
/// [`crate::Runtime::synchronize`]) — the distinction behind the paper's
/// *potential DUE* category (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelFault {
    /// The trap that latched the error.
    pub info: TrapInfo,
}

impl fmt::Display for KernelFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sticky device error: {}", self.info)
    }
}

/// Errors surfaced to host code by runtime APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A module binary failed to decode.
    ModuleLoad(IsaError),
    /// No kernel with the requested name exists in the module.
    KernelNotFound {
        /// The requested kernel name.
        name: String,
    },
    /// A stale module or kernel handle was used.
    BadHandle,
    /// Device memory operation failed.
    Mem(MemError),
    /// The launch configuration was rejected before execution.
    LaunchConfig(String),
    /// The kernel hung: the external monitor (instruction budget) killed it.
    /// Unlike memory faults this is always fatal to the run.
    Hang(TrapInfo),
    /// The run outlived the harness's wall-clock deadline
    /// ([`crate::RuntimeConfig::wall_deadline`]) and was killed. Always
    /// fatal, and classified as campaign infrastructure failure — never a
    /// DUE.
    Deadline(TrapInfo),
    /// The resource governor ([`crate::RuntimeConfig::limits`]) killed the
    /// run: a fault-corrupted allocation size or shared-memory declaration
    /// breached a cap. Always fatal, and classified as an OS-detected crash
    /// (DUE) — the sandbox analog of a cgroup OOM-kill.
    ResourceLimit(TrapInfo),
    /// A checked API observed the sticky device fault.
    Sticky(KernelFault),
    /// The application chose to abort the process on a device fault
    /// (`abort-on-error` host style); the OS observes a crash.
    DeviceAbort(KernelFault),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ModuleLoad(e) => write!(f, "module load failed: {e}"),
            RuntimeError::KernelNotFound { name } => write!(f, "kernel `{name}` not found"),
            RuntimeError::BadHandle => write!(f, "stale module or kernel handle"),
            RuntimeError::Mem(e) => write!(f, "device memory error: {e}"),
            RuntimeError::LaunchConfig(msg) => write!(f, "invalid launch: {msg}"),
            RuntimeError::Hang(info) => write!(f, "kernel hang detected by monitor: {info}"),
            RuntimeError::Deadline(info) => {
                write!(f, "run killed at wall-clock deadline: {info}")
            }
            RuntimeError::ResourceLimit(info) => {
                write!(f, "run killed by resource governor: {info}")
            }
            RuntimeError::Sticky(fault) => write!(f, "{fault}"),
            RuntimeError::DeviceAbort(fault) => {
                write!(f, "process aborted on device fault: {fault}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::ModuleLoad(e) => Some(e),
            RuntimeError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for RuntimeError {
    fn from(e: IsaError) -> Self {
        RuntimeError::ModuleLoad(e)
    }
}

impl From<MemError> for RuntimeError {
    fn from(e: MemError) -> Self {
        RuntimeError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TrapKind;

    #[test]
    fn display_nonempty() {
        let info = TrapInfo {
            kind: TrapKind::Timeout,
            kernel: "k".into(),
            pc: None,
            block: None,
            thread: None,
        };
        for e in [
            RuntimeError::KernelNotFound { name: "x".into() },
            RuntimeError::BadHandle,
            RuntimeError::LaunchConfig("bad".into()),
            RuntimeError::Hang(info.clone()),
            RuntimeError::Sticky(KernelFault { info }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
