//! Kernel-launch-boundary checkpoints for injection-run fast-forwarding.
//!
//! An injection campaign re-runs the same program hundreds of times, and
//! each run is identical to the golden run up to the targeted dynamic
//! kernel instance — faults cannot fire earlier. NVBitFI pays that prefix
//! on every run; this module makes it (nearly) free:
//!
//! 1. The golden run executes with checkpoint recording enabled
//!    ([`crate::Runtime::record_checkpoints`]), capturing a [`Checkpoint`]
//!    at every launch boundary: the post-launch global-memory state as a
//!    copy-on-write [`MemSnapshot`] plus the [`LaunchRecord`]. Snapshots
//!    share pages by refcount, so a store over a whole campaign costs
//!    roughly one copy of the pages each launch actually dirtied.
//! 2. Each injection run attaches the store with
//!    [`crate::Runtime::fast_forward`], naming the global launch index of
//!    its target. The host application replays unmodified (host logic is
//!    deterministic and cheap), but every launch *before* the target skips
//!    simulation entirely: the runtime restores the recorded post-launch
//!    snapshot, replays the recorded [`LaunchRecord`], and returns. Device
//!    reads the host performs between launches therefore observe exactly
//!    the golden values. The target instance and the genuinely divergent
//!    post-injection tail simulate normally.
//!
//! A store is immutable once recorded and `Send + Sync`, so campaign
//! workers share one store behind an `Arc` — no per-worker copies.

use crate::tool::LaunchRecord;
use gpu_sim::MemSnapshot;
use std::sync::Arc;

/// State captured at one launch boundary: the memory image immediately
/// after the launch completed, plus the launch's record.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Post-launch global memory (copy-on-write, shared with neighbors).
    pub mem: MemSnapshot,
    /// The launch this checkpoint follows.
    pub record: LaunchRecord,
}

/// Launch-boundary checkpoints of one golden run, indexed by *global*
/// launch index (position in the run's launch sequence, counting every
/// kernel name).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    checkpoints: Vec<Checkpoint>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Append the checkpoint for the next launch boundary.
    pub fn push(&mut self, checkpoint: Checkpoint) {
        self.checkpoints.push(checkpoint);
    }

    /// Number of recorded launch boundaries.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The checkpoint following global launch `idx`.
    pub fn get(&self, idx: u64) -> Option<&Checkpoint> {
        self.checkpoints.get(idx as usize)
    }

    /// The recorded launch records, in launch order.
    pub fn records(&self) -> impl Iterator<Item = &LaunchRecord> {
        self.checkpoints.iter().map(|c| &c.record)
    }

    /// Global launch index of dynamic instance `instance` of kernel
    /// `kernel`, or `None` if the golden run never reached it (a fault
    /// site selected from an approximate profile can lie beyond the real
    /// execution — such a fault never fires).
    pub fn find_instance(&self, kernel: &str, instance: u64) -> Option<u64> {
        self.checkpoints
            .iter()
            .position(|c| c.record.kernel == kernel && c.record.instance == instance)
            .map(|p| p as u64)
    }

    /// Dynamic instructions executed by the first `upto` launches — the
    /// work fast-forwarding to launch `upto` avoids re-simulating.
    pub fn instrs_before(&self, upto: u64) -> u64 {
        self.checkpoints.iter().take(upto as usize).map(|c| c.record.stats.dyn_instrs).sum()
    }

    /// Wrap in an [`Arc`] for sharing across campaign workers.
    pub fn into_shared(self) -> Arc<CheckpointStore> {
        Arc::new(self)
    }
}

/// Fast-forward state a replaying [`crate::Runtime`] carries: the golden
/// store plus the first global launch index that must simulate for real.
#[derive(Debug, Clone)]
pub(crate) struct FastForward {
    /// The golden run's checkpoints.
    pub store: Arc<CheckpointStore>,
    /// Launches with global index below this replay from the store.
    pub upto: u64,
    /// Dynamic instructions skipped so far by replaying from checkpoints.
    pub skipped_instrs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, LaunchStats};

    fn record(kernel: &str, instance: u64, dyn_instrs: u64) -> LaunchRecord {
        LaunchRecord {
            kernel: kernel.to_string(),
            instance,
            stats: LaunchStats { dyn_instrs, ..Default::default() },
            trap: None,
            skipped: false,
        }
    }

    fn store() -> CheckpointStore {
        let mem = GlobalMem::new(1 << 16);
        let mut s = CheckpointStore::new();
        s.push(Checkpoint { mem: mem.snapshot(), record: record("a", 0, 100) });
        s.push(Checkpoint { mem: mem.snapshot(), record: record("b", 0, 200) });
        s.push(Checkpoint { mem: mem.snapshot(), record: record("a", 1, 400) });
        s
    }

    #[test]
    fn find_instance_uses_per_name_instances() {
        let s = store();
        assert_eq!(s.find_instance("a", 0), Some(0));
        assert_eq!(s.find_instance("b", 0), Some(1));
        assert_eq!(s.find_instance("a", 1), Some(2));
        assert_eq!(s.find_instance("a", 2), None);
        assert_eq!(s.find_instance("c", 0), None);
    }

    #[test]
    fn instrs_before_sums_the_prefix() {
        let s = store();
        assert_eq!(s.instrs_before(0), 0);
        assert_eq!(s.instrs_before(1), 100);
        assert_eq!(s.instrs_before(2), 300);
        assert_eq!(s.instrs_before(3), 700);
        assert_eq!(s.instrs_before(99), 700, "saturates at the end");
    }

    #[test]
    fn store_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CheckpointStore>();
        let shared = store().into_shared();
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
        assert_eq!(shared.records().count(), 3);
    }
}
