//! The program abstraction: a host application driving the runtime.

use crate::checkpoint::CheckpointStore;
use crate::error::RuntimeError;
use crate::runtime::{Runtime, RuntimeConfig};
use crate::tool::{RunSummary, Tool};
use gpu_sim::TrapInfo;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a program run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// The process exited with a status code (0 = success).
    Normal {
        /// The exit status.
        exit_code: i32,
    },
    /// The external monitor killed the process after a detected hang.
    Hang,
    /// The process aborted (OS-detected crash), e.g. an abort-on-error host
    /// observing a device fault.
    Crash,
    /// The harness killed the process at its wall-clock deadline
    /// ([`crate::RuntimeConfig::wall_deadline`]). An infrastructure verdict
    /// about the experiment run, not an observation about the program —
    /// outcome classification must not fold it into the DUE taxonomy.
    DeadlineExceeded,
}

impl Termination {
    /// `true` for a clean, zero-status exit.
    pub fn is_clean(&self) -> bool {
        matches!(self, Termination::Normal { exit_code: 0 })
    }
}

/// Everything observable about one program run — the inputs to outcome
/// classification (paper Table V): standard output, output files, exit
/// status, device anomalies, and execution statistics.
#[derive(Debug, Clone)]
pub struct ProgramOutput {
    /// Captured standard output.
    pub stdout: String,
    /// Output files, keyed by name.
    pub files: BTreeMap<String, Vec<u8>>,
    /// How the process ended.
    pub termination: Termination,
    /// Device anomalies (trap log), whether or not the host checked them.
    pub anomalies: Vec<TrapInfo>,
    /// Launch-level statistics.
    pub summary: RunSummary,
    /// Dynamic instructions the run skipped by fast-forwarding the
    /// pre-injection prefix from checkpoints (0 for ordinary runs).
    pub prefix_instrs_skipped: u64,
}

impl ProgramOutput {
    /// `true` if any device anomaly was recorded — the "CUDA error /
    /// dmesg" signal behind potential-DUE classification.
    pub fn has_anomaly(&self) -> bool {
        !self.anomalies.is_empty()
    }
}

/// A GPU application: host logic that loads module binaries, manages device
/// memory, launches kernels, and emits output.
///
/// Implementations correspond to the paper's SpecACCEL benchmark programs;
/// the fault-injection campaign treats them as opaque (it never sees kernel
/// "source", only the module binaries the program loads).
pub trait Program: Sync {
    /// The program's name (e.g. `"303.ostencil"`).
    fn name(&self) -> &str;

    /// Run the host application to completion against `rt`.
    ///
    /// # Errors
    ///
    /// Any error returned here is the program exiting with non-zero status —
    /// an *application-detected* DUE in the paper's taxonomy.
    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError>;
}

/// Run a program to termination, optionally with an attached tool, and
/// collect its observable output.
///
/// This is the campaign's unit of execution: one process launch, one
/// [`ProgramOutput`].
pub fn run_program(
    program: &dyn Program,
    cfg: RuntimeConfig,
    tool: Option<Box<dyn Tool>>,
) -> ProgramOutput {
    drive(program, cfg, tool, false, None).0
}

/// Run a program while recording a launch-boundary [`CheckpointStore`] —
/// how a campaign's golden run captures the state injection runs
/// fast-forward from.
pub fn run_program_recording(
    program: &dyn Program,
    cfg: RuntimeConfig,
) -> (ProgramOutput, CheckpointStore) {
    let (out, store) = drive(program, cfg, None, true, None);
    (out, store.unwrap_or_default())
}

/// Run a program with launches below global index `upto` replayed from a
/// golden checkpoint store instead of simulated — the injection-run fast
/// path. `out.prefix_instrs_skipped` reports the avoided work.
pub fn run_program_fast_forward(
    program: &dyn Program,
    cfg: RuntimeConfig,
    tool: Option<Box<dyn Tool>>,
    store: Arc<CheckpointStore>,
    upto: u64,
) -> ProgramOutput {
    drive(program, cfg, tool, false, Some((store, upto))).0
}

fn drive(
    program: &dyn Program,
    cfg: RuntimeConfig,
    tool: Option<Box<dyn Tool>>,
    record_checkpoints: bool,
    fast_forward: Option<(Arc<CheckpointStore>, u64)>,
) -> (ProgramOutput, Option<CheckpointStore>) {
    let mut rt = Runtime::new(cfg);
    if let Some(t) = tool {
        rt.attach_tool(t);
    }
    if record_checkpoints {
        rt.record_checkpoints();
    }
    if let Some((store, upto)) = fast_forward {
        rt.fast_forward(store, upto);
    }
    let result = program.run(&mut rt);
    let summary = rt.finish();
    let termination = match &result {
        Ok(()) => Termination::Normal { exit_code: 0 },
        Err(RuntimeError::Hang(_)) => Termination::Hang,
        Err(RuntimeError::Deadline(_)) => Termination::DeadlineExceeded,
        Err(RuntimeError::DeviceAbort(_)) => Termination::Crash,
        // Governor kill: the sandbox terminates the victim like an OOM-kill,
        // which the OS (and thus Table V) records as a crash.
        Err(RuntimeError::ResourceLimit(_)) => Termination::Crash,
        Err(e) => {
            rt.println(format!("error: {e}"));
            Termination::Normal { exit_code: 1 }
        }
    };
    let checkpoints = rt.take_checkpoints();
    let prefix_instrs_skipped = rt.prefix_instrs_skipped();
    let (stdout, files, anomalies) = rt.into_output();
    (
        ProgramOutput { stdout, files, termination, anomalies, summary, prefix_instrs_skipped },
        checkpoints,
    )
}
