//! The runtime: module loading, launches, memory, and sticky errors.

use crate::checkpoint::{Checkpoint, CheckpointStore, FastForward};
use crate::error::{KernelFault, RuntimeError};
use crate::tool::{InstrMasks, KernelLaunchInfo, LaunchRecord, RunSummary, Tool};
use gpu_isa::{encode, Module};
use gpu_sim::{
    DevPtr, Dim3, GlobalMem, Gpu, GpuConfig, Instrumentation, Launch, MemError, ResourceLimits,
    SimError, TrapInfo, TrapKind,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Simulated device configuration.
    pub gpu: GpuConfig,
    /// Device global-memory capacity in bytes.
    pub mem_bytes: u32,
    /// Per-launch dynamic-instruction budget (the hang monitor threshold).
    /// `None` uses the device default.
    pub instr_budget: Option<u64>,
    /// Wall-clock deadline for the whole run, measured from
    /// [`Runtime::new`]. Passing it kills the run with
    /// [`Termination::DeadlineExceeded`] — an infrastructure verdict (the
    /// harness gave up), distinct from the hang monitor's DUE. `None`
    /// (the default) disables the deadline.
    pub wall_deadline: Option<std::time::Duration>,
    /// Resource-governor caps enforced on every run: global allocations,
    /// per-kernel static shared memory, and captured output. Breaching a
    /// memory cap kills the run with [`crate::RuntimeError::ResourceLimit`]
    /// (classified as an OS-detected crash); breaching the output cap
    /// truncates capture with [`OUTPUT_TRUNCATED_MARKER`]. Defaults are far
    /// above any golden run's usage, so only fault-corrupted executions can
    /// trip them.
    pub limits: ResourceLimits,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            gpu: GpuConfig::default(),
            mem_bytes: 64 << 20,
            instr_budget: None,
            wall_deadline: None,
            limits: ResourceLimits::default(),
        }
    }
}

/// Line appended to captured stdout when the resource governor truncates
/// runaway output (e.g. a fault-corrupted loop bound printing forever).
pub const OUTPUT_TRUNCATED_MARKER: &str = "[output truncated: resource governor cap reached]";

/// Handle to a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(usize);

/// Handle to a kernel within a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelHandle {
    module: usize,
    kernel: usize,
}

/// The process-level runtime a GPU program runs against.
///
/// Mirrors the CUDA runtime surface the paper's usage model depends on:
/// binary module loading (no source), synchronous kernel launches with
/// per-name dynamic-instance counting, `cudaGetLastError`-style sticky
/// errors, and a tool attach point ([`Runtime::attach_tool`]) that is
/// invisible to the program.
pub struct Runtime {
    cfg: RuntimeConfig,
    gpu: Gpu,
    mem: GlobalMem,
    modules: Vec<Arc<Module>>,
    tool: Option<Box<dyn Tool>>,
    sticky: Option<KernelFault>,
    anomalies: Vec<TrapInfo>,
    launch_counts: HashMap<String, u64>,
    records: Vec<LaunchRecord>,
    stdout: String,
    files: BTreeMap<String, Vec<u8>>,
    hang: Option<TrapInfo>,
    checkpoint_log: Option<CheckpointStore>,
    fast_forward: Option<FastForward>,
    output_bytes: u64,
    output_truncated: bool,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("modules", &self.modules.len())
            .field("launches", &self.records.len())
            .field("tool_attached", &self.tool.is_some())
            .field("sticky", &self.sticky)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Create a runtime with the given configuration.
    pub fn new(cfg: RuntimeConfig) -> Runtime {
        let mut gpu = Gpu::new(cfg.gpu);
        gpu.set_deadline(cfg.wall_deadline.map(|d| std::time::Instant::now() + d));
        gpu.set_limits(Some(cfg.limits));
        let mut mem = GlobalMem::new(cfg.mem_bytes);
        mem.set_alloc_limit(Some(cfg.limits.max_global_bytes));
        Runtime {
            gpu,
            mem,
            cfg,
            modules: Vec::new(),
            tool: None,
            sticky: None,
            anomalies: Vec::new(),
            launch_counts: HashMap::new(),
            records: Vec::new(),
            stdout: String::new(),
            files: BTreeMap::new(),
            hang: None,
            checkpoint_log: None,
            fast_forward: None,
            output_bytes: 0,
            output_truncated: false,
        }
    }

    // --- checkpointing -----------------------------------------------------

    /// Record a [`Checkpoint`] at every launch boundary (how the golden run
    /// populates the store injection runs fast-forward from). Collect the
    /// result with [`Runtime::take_checkpoints`].
    pub fn record_checkpoints(&mut self) {
        self.checkpoint_log = Some(CheckpointStore::new());
    }

    /// Detach and return the checkpoints recorded so far, disabling further
    /// recording. `None` if recording was never enabled.
    pub fn take_checkpoints(&mut self) -> Option<CheckpointStore> {
        self.checkpoint_log.take()
    }

    /// Replay launches below global index `upto` from a golden checkpoint
    /// store instead of simulating them.
    ///
    /// The host application still runs in full (its allocations, copies, and
    /// device reads behave exactly as in the golden run, because each
    /// replayed launch restores the recorded post-launch memory image), but
    /// the pre-injection kernel prefix costs O(pages) per launch instead of
    /// a full simulation. Launches at or beyond `upto` — the injection
    /// target and its tail — simulate normally.
    ///
    /// If the observed launch sequence ever diverges from the recorded one
    /// (it cannot before an injection fires, but this is checked), the
    /// runtime falls back to full simulation from that point on.
    pub fn fast_forward(&mut self, store: Arc<CheckpointStore>, upto: u64) {
        self.fast_forward = Some(FastForward { store, upto, skipped_instrs: 0 });
    }

    /// Dynamic instructions skipped by checkpoint replay this run.
    pub fn prefix_instrs_skipped(&self) -> u64 {
        self.fast_forward.as_ref().map_or(0, |ff| ff.skipped_instrs)
    }

    /// Attach a tool (the `LD_PRELOAD=tool.so` analog). At most one tool can
    /// be attached; attaching replaces any previous tool.
    pub fn attach_tool(&mut self, tool: Box<dyn Tool>) {
        self.tool = Some(tool);
    }

    /// `true` if a tool is attached.
    pub fn tool_attached(&self) -> bool {
        self.tool.is_some()
    }

    // --- modules -----------------------------------------------------------

    /// Load a module from its binary encoding (the `cubin` analog).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ModuleLoad`] if the binary does not decode.
    pub fn load_module(&mut self, bytes: &[u8]) -> Result<ModuleId, RuntimeError> {
        let module = Arc::new(encode::decode_module(bytes)?);
        if let Some(tool) = self.tool.as_deref_mut() {
            tool.on_module_load(&module);
        }
        self.modules.push(module);
        Ok(ModuleId(self.modules.len() - 1))
    }

    /// Look up a kernel by name in a loaded module.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadHandle`] for a stale module id and
    /// [`RuntimeError::KernelNotFound`] if the name is absent.
    pub fn get_kernel(&self, module: ModuleId, name: &str) -> Result<KernelHandle, RuntimeError> {
        let m = self.modules.get(module.0).ok_or(RuntimeError::BadHandle)?;
        let kernel = m
            .kernels()
            .iter()
            .position(|k| k.name() == name)
            .ok_or_else(|| RuntimeError::KernelNotFound { name: name.to_string() })?;
        Ok(KernelHandle { module: module.0, kernel })
    }

    // --- memory ---------------------------------------------------------------

    /// Allocate device memory (`cudaMalloc`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResourceLimit`] when the governor's
    /// allocation cap is breached (a fault-corrupted allocation size — the
    /// run is killed like a sandboxed OOM), or [`RuntimeError::Mem`] when
    /// device memory is genuinely exhausted.
    pub fn alloc(&mut self, bytes: u32) -> Result<DevPtr, RuntimeError> {
        match self.mem.alloc(bytes) {
            Err(MemError::LimitExceeded { requested, limit }) => {
                let info = TrapInfo {
                    kind: TrapKind::ResourceLimit {
                        space: gpu_isa::Space::Global,
                        requested,
                        limit,
                    },
                    kernel: "<host-alloc>".to_string(),
                    pc: None,
                    block: None,
                    thread: None,
                };
                // Like the launch-path governor kill: visible in the trap
                // log the way a sandbox OOM-kill is visible in dmesg.
                self.anomalies.push(info.clone());
                Err(RuntimeError::ResourceLimit(info))
            }
            other => Ok(other?),
        }
    }

    /// Host→device copy of `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn write_f32s(&mut self, dst: DevPtr, v: &[f32]) -> Result<(), RuntimeError> {
        Ok(self.mem.write_f32s(dst, v)?)
    }

    /// Device→host copy of `f32`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn read_f32s(&self, src: DevPtr, count: usize) -> Result<Vec<f32>, RuntimeError> {
        Ok(self.mem.read_f32s(src, count)?)
    }

    /// Host→device copy of `f64`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn write_f64s(&mut self, dst: DevPtr, v: &[f64]) -> Result<(), RuntimeError> {
        Ok(self.mem.write_f64s(dst, v)?)
    }

    /// Device→host copy of `f64`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn read_f64s(&self, src: DevPtr, count: usize) -> Result<Vec<f64>, RuntimeError> {
        Ok(self.mem.read_f64s(src, count)?)
    }

    /// Host→device copy of `u32`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn write_u32s(&mut self, dst: DevPtr, v: &[u32]) -> Result<(), RuntimeError> {
        Ok(self.mem.write_u32s(dst, v)?)
    }

    /// Device→host copy of `u32`s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Mem`] for copies touching unallocated memory.
    pub fn read_u32s(&self, src: DevPtr, count: usize) -> Result<Vec<u32>, RuntimeError> {
        Ok(self.mem.read_u32s(src, count)?)
    }

    // --- launches ----------------------------------------------------------------

    /// Launch a kernel and run it to completion (synchronous).
    ///
    /// If an earlier kernel corrupted the context (sticky error), the launch
    /// is *skipped* and `Ok(())` is returned — just as an unchecked CUDA
    /// launch silently fails; the error is observable via
    /// [`Runtime::last_error`] or [`Runtime::synchronize`].
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::BadHandle`] for stale handles,
    /// * [`RuntimeError::LaunchConfig`] for invalid geometry,
    /// * [`RuntimeError::Hang`] when the hang monitor killed the kernel —
    ///   this one is always fatal to the run.
    pub fn launch(
        &mut self,
        kernel: KernelHandle,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        params: &[u32],
    ) -> Result<(), RuntimeError> {
        let grid = grid.into();
        let block = block.into();
        let module = Arc::clone(self.modules.get(kernel.module).ok_or(RuntimeError::BadHandle)?);
        let k = module.kernels().get(kernel.kernel).ok_or(RuntimeError::BadHandle)?;

        let instance = {
            let c = self.launch_counts.entry(k.name().to_string()).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };

        if self.sticky.is_some() {
            // Context corrupted: the launch is dropped on the floor.
            let record = LaunchRecord {
                kernel: k.name().to_string(),
                instance,
                stats: Default::default(),
                trap: None,
                skipped: true,
            };
            if let Some(tool) = self.tool.as_deref_mut() {
                tool.after_launch(&record);
            }
            self.log_checkpoint(&record);
            self.records.push(record);
            return Ok(());
        }

        let info = KernelLaunchInfo { kernel: k, instance, grid, block };

        // Pre-injection prefix: replay from the golden checkpoint instead of
        // simulating. The tool still observes the launch (it declines to
        // instrument anything before its target), and memory lands on the
        // exact golden post-launch image.
        let global_idx = self.records.len() as u64;
        if let Some(ff) = &mut self.fast_forward {
            if global_idx < ff.upto {
                match ff.store.get(global_idx) {
                    Some(cp)
                        if cp.record.kernel == k.name()
                            && cp.record.instance == instance
                            && !cp.record.skipped
                            && cp.record.trap.is_none() =>
                    {
                        let record = cp.record.clone();
                        self.mem.restore(&cp.mem);
                        ff.skipped_instrs += record.stats.dyn_instrs;
                        if let Some(tool) = self.tool.as_deref_mut() {
                            // Parity with a full run: the tool is offered the
                            // launch (masks are unused — nothing simulates).
                            let _ = tool.instrument(&info);
                            tool.after_launch(&record);
                        }
                        self.records.push(record);
                        return Ok(());
                    }
                    // Divergence from the recorded sequence (or a recorded
                    // skip): fall back to full simulation from here on.
                    _ => self.fast_forward = None,
                }
            }
        }
        let masks: Option<InstrMasks> = self.tool.as_deref_mut().and_then(|t| t.instrument(&info));

        let launch = Launch { kernel: k, grid, block, params, instr_budget: self.cfg.instr_budget };
        let result = match (&mut self.tool, masks) {
            (Some(tool), Some(m)) => {
                let mut ins = Instrumentation {
                    before_mask: &m.before,
                    after_mask: &m.after,
                    hook: tool.as_mut(),
                    kernel_instance: instance,
                };
                self.gpu.launch(&launch, &mut self.mem, Some(&mut ins))
            }
            _ => self.gpu.launch(&launch, &mut self.mem, None),
        };

        let (stats, trap, fatal) = match result {
            Ok(stats) => (stats, None, None),
            Err(SimError::Trap { info, stats }) => {
                let kind = info.kind;
                if kind.is_deadline() {
                    // Harness verdict, not a device anomaly: the run is
                    // abandoned without polluting the potential-DUE record.
                    (stats, Some(kind), Some(RuntimeError::Deadline(info)))
                } else if kind.is_resource_limit() {
                    // Governor kill: fatal like a hang, but the OS (not the
                    // monitor) observes it — a crash in Table V terms.
                    self.anomalies.push(info.clone());
                    (stats, Some(kind), Some(RuntimeError::ResourceLimit(info)))
                } else {
                    self.anomalies.push(info.clone());
                    if kind.is_hang() {
                        self.hang = Some(info.clone());
                        (stats, Some(kind), Some(RuntimeError::Hang(info)))
                    } else {
                        self.sticky = Some(KernelFault { info });
                        (stats, Some(kind), None)
                    }
                }
            }
            Err(other) => return Err(RuntimeError::LaunchConfig(other.to_string())),
        };

        let record =
            LaunchRecord { kernel: k.name().to_string(), instance, stats, trap, skipped: false };
        if let Some(tool) = self.tool.as_deref_mut() {
            tool.after_launch(&record);
        }
        self.log_checkpoint(&record);
        self.records.push(record);
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Capture a launch-boundary checkpoint if recording is enabled.
    fn log_checkpoint(&mut self, record: &LaunchRecord) {
        if let Some(log) = &mut self.checkpoint_log {
            log.push(Checkpoint { mem: self.mem.snapshot(), record: record.clone() });
        }
    }

    // --- error observation -------------------------------------------------------

    /// Peek-and-clear the latched device error (`cudaGetLastError`).
    pub fn last_error(&mut self) -> Option<KernelFault> {
        self.sticky.take()
    }

    /// Check device health without clearing (`cudaDeviceSynchronize`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Sticky`] if a kernel fault is latched.
    pub fn synchronize(&self) -> Result<(), RuntimeError> {
        match &self.sticky {
            Some(fault) => Err(RuntimeError::Sticky(fault.clone())),
            None => Ok(()),
        }
    }

    /// Like [`Runtime::synchronize`], but for hosts built in the
    /// abort-on-error style (`assert(cudaSuccess)` / `CHECK()` macros that
    /// call `abort()`): a latched fault takes the *process* down, which the
    /// outcome taxonomy records as a crash (OS detection) rather than a
    /// graceful non-zero exit.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::DeviceAbort`] if a kernel fault is latched.
    pub fn synchronize_or_abort(&self) -> Result<(), RuntimeError> {
        match &self.sticky {
            Some(fault) => Err(RuntimeError::DeviceAbort(fault.clone())),
            None => Ok(()),
        }
    }

    /// All device anomalies observed this run, checked by the host or not —
    /// the "CUDA error message / dmesg" record the potential-DUE
    /// classification reads (Table V).
    pub fn anomalies(&self) -> &[TrapInfo] {
        &self.anomalies
    }

    /// The hang that aborted the run, if any.
    pub fn hang(&self) -> Option<&TrapInfo> {
        self.hang.as_ref()
    }

    // --- program-visible output -----------------------------------------------------

    /// Append a line to the program's standard output.
    ///
    /// Once total captured output (stdout plus files) reaches the
    /// governor's [`ResourceLimits::max_output_bytes`] cap, further lines
    /// are dropped and [`OUTPUT_TRUNCATED_MARKER`] is appended exactly once
    /// — runaway fault-induced print loops cannot exhaust host memory.
    pub fn println(&mut self, line: impl AsRef<str>) {
        if self.output_truncated {
            return;
        }
        let line = line.as_ref();
        let n = line.len() as u64 + 1;
        if self.output_bytes + n > self.cfg.limits.max_output_bytes {
            self.mark_output_truncated();
            return;
        }
        self.output_bytes += n;
        self.stdout.push_str(line);
        self.stdout.push('\n');
    }

    fn mark_output_truncated(&mut self) {
        self.output_truncated = true;
        self.stdout.push_str(OUTPUT_TRUNCATED_MARKER);
        self.stdout.push('\n');
    }

    /// `true` if the governor truncated captured output this run.
    pub fn output_truncated(&self) -> bool {
        self.output_truncated
    }

    /// The standard output so far.
    pub fn stdout(&self) -> &str {
        &self.stdout
    }

    /// Write (or overwrite) a named output file.
    ///
    /// Shares the governor's output budget with [`Runtime::println`]: a
    /// file that would push total capture past
    /// [`ResourceLimits::max_output_bytes`] is truncated to the remaining
    /// budget and the stdout marker is appended.
    pub fn write_file(&mut self, name: impl Into<String>, mut bytes: Vec<u8>) {
        if self.output_truncated {
            return;
        }
        let remaining = self.cfg.limits.max_output_bytes.saturating_sub(self.output_bytes);
        if bytes.len() as u64 > remaining {
            bytes.truncate(remaining as usize);
            self.mark_output_truncated();
        }
        self.output_bytes += bytes.len() as u64;
        self.files.insert(name.into(), bytes);
    }

    /// The output files written so far.
    pub fn files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    // --- teardown ------------------------------------------------------------------

    /// Per-launch records so far.
    pub fn records(&self) -> &[LaunchRecord] {
        &self.records
    }

    /// Summarize the run (also what the tool receives at exit).
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            launches: self.records.clone(),
            dyn_instrs: self.records.iter().map(|r| r.stats.dyn_instrs).sum(),
            cycles: self.records.iter().map(|r| r.stats.cycles).sum(),
        }
    }

    /// Signal process exit to the attached tool and detach it.
    pub fn finish(&mut self) -> RunSummary {
        let summary = self.summary();
        if let Some(mut tool) = self.tool.take() {
            tool.on_exit(&summary);
        }
        summary
    }

    /// Consume the runtime, yielding `(stdout, files, anomalies)`.
    pub fn into_output(self) -> (String, BTreeMap<String, Vec<u8>>, Vec<TrapInfo>) {
        (self.stdout, self.files, self.anomalies)
    }
}
