#![warn(missing_docs)]

//! # gpu-runtime — a CUDA-like driver/runtime for the simulated GPU
//!
//! The attach surface NVBitFI-style tools hook into (see `DESIGN.md`). A
//! [`Program`] (host application) loads *binary* kernel modules, allocates
//! device memory, and launches kernels; a [`Tool`] attached with
//! [`Runtime::attach_tool`] — the `LD_PRELOAD` analog — transparently
//! observes module loads and kernel launches and can instrument instructions
//! with register-level callbacks.
//!
//! The runtime reproduces the CUDA error semantics the paper's outcome
//! taxonomy (Table V) depends on:
//!
//! * a kernel trap (illegal address, misalignment, …) latches a **sticky
//!   error** and silently skips subsequent launches; whether the process
//!   notices depends on whether host code calls [`Runtime::last_error`] or
//!   [`Runtime::synchronize`] — unchecked anomalies become *potential DUEs*,
//! * a hang (instruction-budget timeout) is fatal: the monitor kills the
//!   run ([`RuntimeError::Hang`], [`Termination::Hang`]),
//! * everything a checker script could look at — stdout, output files, exit
//!   status, anomaly log — is captured in [`ProgramOutput`].

mod checkpoint;
mod error;
mod program;
mod runtime;
mod tool;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use error::{KernelFault, RuntimeError};
pub use program::{
    run_program, run_program_fast_forward, run_program_recording, Program, ProgramOutput,
    Termination,
};
pub use runtime::{KernelHandle, ModuleId, Runtime, RuntimeConfig, OUTPUT_TRUNCATED_MARKER};
pub use tool::{InstrMasks, KernelLaunchInfo, LaunchRecord, RunSummary, Tool};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::asm::KernelBuilder;
    use gpu_isa::{encode, Module, Reg, SpecialReg};
    use gpu_sim::{ExecHook, InstrSite, ThreadCtx};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Module with two kernels: `square` (out[i] = i*i) and `wild`
    /// (out-of-bounds store).
    fn test_module_bytes() -> Vec<u8> {
        let mut sq = KernelBuilder::new("square");
        let (out, tid, off) = (Reg(4), Reg(0), Reg(1));
        sq.ldc(out, 0);
        sq.s2r(tid, SpecialReg::GlobalTidX);
        sq.imad(Reg(2), tid, tid, Reg::RZ);
        sq.shli(off, tid, 2);
        sq.iadd(out, out, off);
        sq.stg(out, 0, Reg(2));
        sq.exit();

        let mut wild = KernelBuilder::new("wild");
        wild.movi(Reg(4), 0xDEAD_0000);
        wild.stg(Reg(4), 0, Reg(0));
        wild.exit();

        let mut spin = KernelBuilder::new("spin");
        let top = spin.new_label();
        spin.bind(top);
        spin.bra(top);
        spin.exit();

        encode::encode_module(&Module::new(
            "testmod",
            vec![sq.finish(), wild.finish(), spin.finish()],
        ))
    }

    fn small_cfg() -> RuntimeConfig {
        RuntimeConfig { mem_bytes: 1 << 20, instr_budget: Some(100_000), ..Default::default() }
    }

    #[test]
    fn load_launch_and_read_back() {
        let mut rt = Runtime::new(small_cfg());
        let m = rt.load_module(&test_module_bytes()).expect("load");
        let k = rt.get_kernel(m, "square").expect("kernel");
        let out = rt.alloc(64 * 4).expect("alloc");
        rt.launch(k, 2u32, 32u32, &[out.addr()]).expect("launch");
        rt.synchronize().expect("sync");
        let v = rt.read_u32s(out, 64).expect("read");
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i * i) as u32, "element {i}");
        }
    }

    #[test]
    fn module_load_rejects_garbage() {
        let mut rt = Runtime::new(small_cfg());
        assert!(matches!(rt.load_module(b"nonsense"), Err(RuntimeError::ModuleLoad(_))));
    }

    #[test]
    fn kernel_lookup_errors() {
        let mut rt = Runtime::new(small_cfg());
        let m = rt.load_module(&test_module_bytes()).expect("load");
        assert!(matches!(rt.get_kernel(m, "missing"), Err(RuntimeError::KernelNotFound { .. })));
    }

    #[test]
    fn sticky_error_skips_later_launches_until_checked() {
        let mut rt = Runtime::new(small_cfg());
        let m = rt.load_module(&test_module_bytes()).expect("load");
        let wild = rt.get_kernel(m, "wild").expect("kernel");
        let square = rt.get_kernel(m, "square").expect("kernel");
        let out = rt.alloc(64 * 4).expect("alloc");

        // The faulting launch itself returns Ok — the error is latched.
        rt.launch(wild, 1u32, 1u32, &[]).expect("launch returns ok");
        assert!(rt.synchronize().is_err());
        assert_eq!(rt.anomalies().len(), 1);

        // Subsequent launches are skipped while the error is latched.
        rt.launch(square, 2u32, 32u32, &[out.addr()]).expect("skipped ok");
        assert!(rt.records().last().expect("record").skipped);
        assert_eq!(rt.read_u32s(out, 4).expect("read"), vec![0, 0, 0, 0]);

        // cudaGetLastError-style check clears it.
        let fault = rt.last_error().expect("fault");
        assert!(fault.info.kernel.contains("wild"));
        assert!(rt.last_error().is_none(), "peek-and-clear");
        rt.synchronize().expect("clean after clear");

        // And the context works again.
        rt.launch(square, 2u32, 32u32, &[out.addr()]).expect("launch");
        assert_eq!(rt.read_u32s(out, 2).expect("read"), vec![0, 1]);
    }

    #[test]
    fn hang_is_fatal() {
        let mut rt = Runtime::new(small_cfg());
        let m = rt.load_module(&test_module_bytes()).expect("load");
        let spin = rt.get_kernel(m, "spin").expect("kernel");
        let err = rt.launch(spin, 1u32, 32u32, &[]).unwrap_err();
        assert!(matches!(err, RuntimeError::Hang(_)));
        assert!(rt.hang().is_some());
    }

    #[test]
    fn dynamic_instance_counting_is_per_name() {
        let mut rt = Runtime::new(small_cfg());
        let m = rt.load_module(&test_module_bytes()).expect("load");
        let k = rt.get_kernel(m, "square").expect("kernel");
        let out = rt.alloc(256).expect("alloc");
        for _ in 0..3 {
            rt.launch(k, 1u32, 32u32, &[out.addr()]).expect("launch");
        }
        let instances: Vec<u64> = rt.records().iter().map(|r| r.instance).collect();
        assert_eq!(instances, vec![0, 1, 2]);
    }

    #[test]
    fn stdout_and_files_are_captured() {
        struct Hello;
        impl Program for Hello {
            fn name(&self) -> &str {
                "hello"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                rt.println("hello world");
                rt.write_file("out.dat", vec![1, 2, 3]);
                Ok(())
            }
        }
        let out = run_program(&Hello, small_cfg(), None);
        assert_eq!(out.stdout, "hello world\n");
        assert_eq!(out.files["out.dat"], vec![1, 2, 3]);
        assert!(out.termination.is_clean());
        assert!(!out.has_anomaly());
    }

    #[test]
    fn failing_program_exits_nonzero() {
        struct Bad;
        impl Program for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                let m = rt.load_module(&test_module_bytes())?;
                let wild = rt.get_kernel(m, "wild")?;
                rt.launch(wild, 1u32, 1u32, &[])?;
                rt.synchronize()?; // the app checks → detected
                Ok(())
            }
        }
        let out = run_program(&Bad, small_cfg(), None);
        assert_eq!(out.termination, Termination::Normal { exit_code: 1 });
        assert!(out.has_anomaly());
    }

    #[test]
    fn deadline_kills_run_without_anomaly() {
        struct Spin;
        impl Program for Spin {
            fn name(&self) -> &str {
                "spin"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                let m = rt.load_module(&test_module_bytes())?;
                let spin = rt.get_kernel(m, "spin")?;
                rt.launch(spin, 1u32, 32u32, &[])?;
                Ok(())
            }
        }
        // Budget high enough that the hang monitor never fires; the
        // wall-clock deadline must kill the run instead.
        let cfg = RuntimeConfig {
            mem_bytes: 1 << 20,
            instr_budget: Some(u64::MAX),
            wall_deadline: Some(std::time::Duration::from_millis(20)),
            ..Default::default()
        };
        let out = run_program(&Spin, cfg, None);
        assert_eq!(out.termination, Termination::DeadlineExceeded);
        assert!(!out.has_anomaly(), "deadline is a harness verdict, not a device anomaly");

        // An already-expired deadline trips at launch entry, before any
        // instruction executes.
        let cfg = RuntimeConfig {
            mem_bytes: 1 << 20,
            wall_deadline: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        let out = run_program(&Spin, cfg, None);
        assert_eq!(out.termination, Termination::DeadlineExceeded);
        assert_eq!(out.summary.dyn_instrs, 0);
    }

    #[test]
    fn governor_alloc_cap_terminates_as_crash() {
        // A fault-corrupted allocation size: the governor must kill the run
        // (Termination::Crash), not bubble up a host allocation failure.
        struct Runaway;
        impl Program for Runaway {
            fn name(&self) -> &str {
                "runaway"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                rt.alloc(2 << 20)?;
                Ok(())
            }
        }
        let cfg = RuntimeConfig {
            mem_bytes: 64 << 20,
            limits: gpu_sim::ResourceLimits { max_global_bytes: 1 << 20, ..Default::default() },
            ..Default::default()
        };
        let out = run_program(&Runaway, cfg, None);
        assert_eq!(out.termination, Termination::Crash);
        assert!(out.has_anomaly(), "governor kill is recorded in the trap log");

        // Under default limits the same allocation is unremarkable.
        let out = run_program(&Runaway, RuntimeConfig::default(), None);
        assert_eq!(out.termination, Termination::Normal { exit_code: 0 });
    }

    #[test]
    fn governor_truncates_runaway_output() {
        // A fault-corrupted print-loop bound: capture stops at the cap with
        // an explicit marker instead of growing without bound.
        struct Chatty;
        impl Program for Chatty {
            fn name(&self) -> &str {
                "chatty"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                for i in 0..1000 {
                    rt.println(format!("line {i}"));
                }
                rt.write_file("out.dat", vec![7u8; 4096]);
                Ok(())
            }
        }
        let cfg = RuntimeConfig {
            limits: gpu_sim::ResourceLimits { max_output_bytes: 256, ..Default::default() },
            ..Default::default()
        };
        let out = run_program(&Chatty, cfg, None);
        assert!(out.stdout.len() < 1024, "stdout capped near the limit");
        assert!(out.stdout.ends_with(&format!("{OUTPUT_TRUNCATED_MARKER}\n")));
        assert_eq!(out.stdout.matches(OUTPUT_TRUNCATED_MARKER).count(), 1, "marker once");
        assert_eq!(out.termination, Termination::Normal { exit_code: 0 }, "truncation never traps");
        assert!(out.files.get("out.dat").is_none_or(|f| f.len() < 4096));

        let out = run_program(&Chatty, RuntimeConfig::default(), None);
        assert!(!out.stdout.contains(OUTPUT_TRUNCATED_MARKER));
        assert_eq!(out.files["out.dat"].len(), 4096);
    }

    #[test]
    fn hanging_program_terminates_as_hang() {
        struct Spin;
        impl Program for Spin {
            fn name(&self) -> &str {
                "spin"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                let m = rt.load_module(&test_module_bytes())?;
                let spin = rt.get_kernel(m, "spin")?;
                rt.launch(spin, 1u32, 32u32, &[])?;
                Ok(())
            }
        }
        let out = run_program(&Spin, small_cfg(), None);
        assert_eq!(out.termination, Termination::Hang);
    }

    /// Three launches of `square` at different offsets, with a device
    /// read-back (and stdout trace) between launches — host behaviour that
    /// depends on device memory contents at every step.
    struct Chain;
    impl Program for Chain {
        fn name(&self) -> &str {
            "chain"
        }
        fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
            let m = rt.load_module(&test_module_bytes())?;
            let k = rt.get_kernel(m, "square")?;
            let out = rt.alloc(3 * 64 * 4)?;
            for i in 0..3u32 {
                let slice = out.offset(i * 64 * 4);
                rt.launch(k, 2u32, 32u32, &[slice.addr()])?;
                let v = rt.read_u32s(slice, 64)?;
                rt.println(format!("launch {i}: sum {}", v.iter().sum::<u32>()));
            }
            rt.synchronize()?;
            Ok(())
        }
    }

    #[test]
    fn fast_forward_reproduces_the_full_run() {
        let (golden, store) = run_program_recording(&Chain, small_cfg());
        assert!(golden.termination.is_clean());
        assert_eq!(store.len(), 3);
        assert_eq!(golden.prefix_instrs_skipped, 0);
        let store = store.into_shared();

        for upto in 0..=3u64 {
            let out = run_program_fast_forward(&Chain, small_cfg(), None, Arc::clone(&store), upto);
            assert_eq!(out.stdout, golden.stdout, "fast-forward to {upto}");
            assert_eq!(out.files, golden.files, "fast-forward to {upto}");
            assert_eq!(out.summary, golden.summary, "fast-forward to {upto}");
            assert_eq!(
                out.prefix_instrs_skipped,
                store.instrs_before(upto),
                "fast-forward to {upto} skipped exactly the prefix"
            );
            if upto > 0 {
                assert!(out.prefix_instrs_skipped > 0);
            }
        }
    }

    /// A tool that counts module loads, instruments every instruction of
    /// every kernel, and tallies device callbacks.
    struct CountingTool {
        loads: u64,
        device_calls: Arc<AtomicU64>,
        launches_seen: u64,
        exit_seen: bool,
    }

    impl ExecHook for CountingTool {
        fn after(&mut self, _t: &mut ThreadCtx<'_>, _s: InstrSite<'_>) {
            self.device_calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    impl Tool for CountingTool {
        fn on_module_load(&mut self, _m: &Module) {
            self.loads += 1;
        }
        fn instrument(&mut self, info: &KernelLaunchInfo<'_>) -> Option<InstrMasks> {
            Some(InstrMasks::all_after(info.kernel.len()))
        }
        fn after_launch(&mut self, _r: &LaunchRecord) {
            self.launches_seen += 1;
        }
        fn on_exit(&mut self, _s: &RunSummary) {
            self.exit_seen = true;
        }
    }

    #[test]
    fn tool_sees_all_events_and_every_dynamic_instruction() {
        struct App;
        impl Program for App {
            fn name(&self) -> &str {
                "app"
            }
            fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
                let m = rt.load_module(&test_module_bytes())?;
                let k = rt.get_kernel(m, "square")?;
                let out = rt.alloc(64 * 4)?;
                rt.launch(k, 2u32, 32u32, &[out.addr()])?;
                rt.synchronize()?;
                Ok(())
            }
        }
        let calls = Arc::new(AtomicU64::new(0));
        let tool = CountingTool {
            loads: 0,
            device_calls: Arc::clone(&calls),
            launches_seen: 0,
            exit_seen: false,
        };
        let out = run_program(&App, small_cfg(), Some(Box::new(tool)));
        assert!(out.termination.is_clean());
        // 7 instructions × 64 threads.
        assert_eq!(calls.load(Ordering::Relaxed), 7 * 64);
        assert_eq!(out.summary.dyn_instrs, 7 * 64);
        // The program's own behaviour is unchanged by the tool.
        assert_eq!(out.summary.launches.len(), 1);
    }
}
