//! The tool attach point — the `LD_PRELOAD` analog.
//!
//! NVBitFI attaches `profiler.so` / `injector.so` to an *unmodified* target
//! program via `LD_PRELOAD`; the dynamic library observes CUDA driver events
//! and injects device code. Here, a [`Tool`] attached with
//! [`crate::Runtime::attach_tool`] observes the same events:
//!
//! * [`Tool::on_module_load`] — a module binary was loaded (the tool sees
//!   only the *decoded binary*, never builder structures — no source),
//! * [`Tool::instrument`] — a kernel is about to launch; the tool may return
//!   per-instruction instrumentation masks,
//! * device-side callbacks — a tool is also an [`ExecHook`], receiving
//!   before/after callbacks with register access for instructions it marked,
//! * [`Tool::after_launch`] / [`Tool::on_exit`] — completion events.
//!
//! The workload cannot tell whether a tool is attached (unless it times
//! itself) — exactly the transparency property NVBitFI relies on.

use gpu_isa::{Kernel, Module};
use gpu_sim::{Dim3, ExecHook, LaunchStats, TrapKind};
use serde::{Deserialize, Serialize};

/// Per-static-instruction instrumentation marks returned by a tool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrMasks {
    /// Fire the tool's `before` callback at these instruction indices.
    pub before: Vec<bool>,
    /// Fire the tool's `after` callback at these instruction indices.
    pub after: Vec<bool>,
}

impl InstrMasks {
    /// Masks instrumenting nothing for a kernel of `len` instructions.
    pub fn none(len: usize) -> InstrMasks {
        InstrMasks { before: vec![false; len], after: vec![false; len] }
    }

    /// Masks firing `after` at every instruction (how profilers and
    /// destination-corrupting injectors instrument).
    pub fn all_after(len: usize) -> InstrMasks {
        InstrMasks { before: vec![false; len], after: vec![true; len] }
    }

    /// Number of marked instructions (before + after).
    pub fn marked(&self) -> usize {
        self.before.iter().filter(|b| **b).count() + self.after.iter().filter(|b| **b).count()
    }
}

/// Information handed to a tool at each dynamic kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct KernelLaunchInfo<'a> {
    /// The kernel being launched.
    pub kernel: &'a Kernel,
    /// Zero-based dynamic instance of this kernel *name* within the process
    /// (the fault-site `kernel count` parameter counts these).
    pub instance: u64,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
}

/// Result record handed to [`Tool::after_launch`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Kernel name.
    pub kernel: String,
    /// Dynamic instance of the kernel name.
    pub instance: u64,
    /// Execution statistics (partial if trapped).
    pub stats: LaunchStats,
    /// The trap that ended the launch, if any.
    pub trap: Option<TrapKind>,
    /// `true` if the launch was skipped because the context was already
    /// corrupted by an earlier fault.
    pub skipped: bool,
}

/// End-of-run summary handed to [`Tool::on_exit`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-launch records, in launch order.
    pub launches: Vec<LaunchRecord>,
    /// Total guard-passing thread-level dynamic instructions.
    pub dyn_instrs: u64,
    /// Total simulated cycles.
    pub cycles: u64,
}

/// A dynamic instrumentation tool attached to the runtime.
///
/// All methods default to "observe nothing", so tools implement only the
/// events they care about. A tool is also the [`ExecHook`] receiving the
/// device-side callbacks for instructions it instrumented.
pub trait Tool: ExecHook + Send {
    /// A module binary was loaded (after decoding).
    fn on_module_load(&mut self, module: &Module) {
        let _ = module;
    }

    /// A kernel is about to launch. Return `Some` to instrument this launch;
    /// `None` runs it unmodified (the selective-instrumentation fast path).
    fn instrument(&mut self, info: &KernelLaunchInfo<'_>) -> Option<InstrMasks> {
        let _ = info;
        None
    }

    /// A launch finished (successfully, trapped, or skipped).
    fn after_launch(&mut self, info: &LaunchRecord) {
        let _ = info;
    }

    /// The program is exiting.
    fn on_exit(&mut self, summary: &RunSummary) {
        let _ = summary;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_constructors() {
        let n = InstrMasks::none(4);
        assert_eq!(n.marked(), 0);
        let a = InstrMasks::all_after(4);
        assert_eq!(a.marked(), 4);
        assert!(a.after.iter().all(|b| *b));
        assert!(a.before.iter().all(|b| !*b));
    }
}
