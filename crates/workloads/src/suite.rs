//! The benchmark suite registry — Table IV in code.

use crate::common::Scale;
use crate::{
    bt, cg, clvrleaf, ep, ilbdc, md, minighost, olbm, omriq, ostencil, palm, seismic, sp, swim,
};
use gpu_runtime::Program;
use nvbitfi::SdcCheck;

/// One suite program: the runnable [`Program`], its SDC-checking script,
/// and the paper's Table IV metadata for reporting.
pub struct BenchEntry {
    /// Program name (e.g. `"303.ostencil"`).
    pub name: &'static str,
    /// Table IV description.
    pub description: &'static str,
    /// Static kernel count reported in Table IV.
    pub paper_static: u32,
    /// Dynamic kernel count reported in Table IV.
    pub paper_dynamic: u32,
    /// The runnable program.
    pub program: Box<dyn Program + Send + Sync>,
    /// The program's SDC-checking script (§IV-A: always user-provided).
    pub check: Box<dyn SdcCheck + Send + Sync>,
}

impl std::fmt::Debug for BenchEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchEntry")
            .field("name", &self.name)
            .field("paper_static", &self.paper_static)
            .field("paper_dynamic", &self.paper_dynamic)
            .finish_non_exhaustive()
    }
}

/// All 15 SpecACCEL-analog programs, in Table IV order.
pub fn suite(scale: Scale) -> Vec<BenchEntry> {
    vec![
        BenchEntry {
            name: "303.ostencil",
            description: "Thermodynamics",
            paper_static: 2,
            paper_dynamic: 101,
            program: Box::new(ostencil::Ostencil { scale }),
            check: Box::new(ostencil::Ostencil::check()),
        },
        BenchEntry {
            name: "304.olbm",
            description: "Computational fluid dynamics, Lattice Boltzmann Method",
            paper_static: 3,
            paper_dynamic: 900,
            program: Box::new(olbm::Olbm { scale }),
            check: Box::new(olbm::Olbm::check()),
        },
        BenchEntry {
            name: "314.omriq",
            description: "Medicine",
            paper_static: 2,
            paper_dynamic: 2,
            program: Box::new(omriq::Omriq { scale }),
            check: Box::new(omriq::Omriq::check()),
        },
        BenchEntry {
            name: "350.md",
            description: "Molecular dynamics",
            paper_static: 3,
            paper_dynamic: 53,
            program: Box::new(md::Md { scale }),
            check: Box::new(md::Md::check()),
        },
        BenchEntry {
            name: "351.palm",
            description: "Large-eddy simulation, atmospheric turbulence",
            paper_static: 100,
            paper_dynamic: 7050,
            program: Box::new(palm::Palm { scale }),
            check: Box::new(palm::Palm::check()),
        },
        BenchEntry {
            name: "352.ep",
            description: "Embarrassingly parallel",
            paper_static: 7,
            paper_dynamic: 187,
            program: Box::new(ep::Ep { scale }),
            check: Box::new(ep::Ep::check()),
        },
        BenchEntry {
            name: "353.clvrleaf",
            description: "Weather",
            paper_static: 116,
            paper_dynamic: 12_528,
            program: Box::new(clvrleaf::Clvrleaf { scale }),
            check: Box::new(clvrleaf::Clvrleaf::check()),
        },
        BenchEntry {
            name: "354.cg",
            description: "Conjugate gradient",
            paper_static: 22,
            paper_dynamic: 2_027,
            program: Box::new(cg::Cg { scale }),
            check: Box::new(cg::Cg::check()),
        },
        BenchEntry {
            name: "355.seismic",
            description: "Seismic wave modeling",
            paper_static: 16,
            paper_dynamic: 3_502,
            program: Box::new(seismic::Seismic { scale }),
            check: Box::new(seismic::Seismic::check()),
        },
        BenchEntry {
            name: "356.sp",
            description: "Scalar Penta-diagonal solver",
            paper_static: 71,
            paper_dynamic: 27_692,
            program: Box::new(sp::Sp { scale, variant: sp::SpVariant::Sp }),
            check: Box::new(sp::Sp::check()),
        },
        BenchEntry {
            name: "357.csp",
            description: "Scalar Penta-diagonal solver",
            paper_static: 69,
            paper_dynamic: 26_890,
            program: Box::new(sp::Sp { scale, variant: sp::SpVariant::Csp }),
            check: Box::new(sp::Sp::check()),
        },
        BenchEntry {
            name: "359.miniGhost",
            description: "Finite difference",
            paper_static: 26,
            paper_dynamic: 8_010,
            program: Box::new(minighost::MiniGhost { scale }),
            check: Box::new(minighost::MiniGhost::check()),
        },
        BenchEntry {
            name: "360.ilbdc",
            description: "Fluid mechanics",
            paper_static: 1,
            paper_dynamic: 1_000,
            program: Box::new(ilbdc::Ilbdc { scale }),
            check: Box::new(ilbdc::Ilbdc::check()),
        },
        BenchEntry {
            name: "363.swim",
            description: "Weather",
            paper_static: 22,
            paper_dynamic: 11_999,
            program: Box::new(swim::Swim { scale }),
            check: Box::new(swim::Swim::check()),
        },
        BenchEntry {
            name: "370.bt",
            description: "Block Tri-diagonal solver for 3D PDE",
            paper_static: 50,
            paper_dynamic: 10_069,
            program: Box::new(bt::Bt { scale }),
            check: Box::new(bt::Bt::check()),
        },
    ]
}

/// Look up a suite entry by name (accepts `"354.cg"` or `"cg"`).
pub fn find(scale: Scale, name: &str) -> Option<BenchEntry> {
    suite(scale).into_iter().find(|e| e.name == name || e.name.split('.').nth(1) == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_programs() {
        assert_eq!(suite(Scale::Test).len(), 15);
    }

    #[test]
    fn names_are_unique_and_table_iv_ordered() {
        let s = suite(Scale::Test);
        let names: Vec<_> = s.iter().map(|e| e.name).collect();
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
        assert_eq!(names[0], "303.ostencil");
        assert_eq!(names[14], "370.bt");
    }

    #[test]
    fn paper_counts_match_table_iv() {
        let total_static: u32 = suite(Scale::Test).iter().map(|e| e.paper_static).sum();
        // Sum of Table IV's static-kernel column.
        assert_eq!(
            total_static,
            2 + 3 + 2 + 3 + 100 + 7 + 116 + 22 + 16 + 71 + 69 + 26 + 1 + 22 + 50
        );
    }

    #[test]
    fn find_by_short_and_full_name() {
        assert!(find(Scale::Test, "354.cg").is_some());
        assert!(find(Scale::Test, "cg").is_some());
        assert!(find(Scale::Test, "nope").is_none());
    }
}
