//! Kernel templates shared by the benchmark programs.
//!
//! SpecACCEL's OpenACC compiler lowers parallel loops into many small
//! kernels; the fifteen programs here are composed from the templates in
//! this module, instantiated under program-specific names (the suite's
//! static-kernel counts in Table IV come from those instantiations).
//!
//! All kernels use the same ABI: parameters are 32-bit words in constant
//! memory at byte offsets 0, 4, 8, …; element index is derived from the
//! launch geometry via special registers.

use gpu_isa::asm::KernelBuilder;
use gpu_isa::{AtomOp, BoolOp, CmpOp, Kernel, MufuFunc, PReg, Reg, ShflMode, SpecialReg};

const P0: PReg = PReg(0);

/// `y[i] = a*x[i] + y[i]` over `n` elements (FP32).
///
/// Params: `[y, x, a_bits, n]`.
pub fn saxpy_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (y, x, a, n, gtid, off, xv, yv) =
        (Reg(4), Reg(5), Reg(6), Reg(7), Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(y, 0);
    k.ldc(x, 4);
    k.ldc(a, 8);
    k.ldc(n, 12);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(y, y, off);
    k.iadd(x, x, off);
    k.ldg(xv, x, 0);
    k.ldg(yv, y, 0);
    k.ffma(yv, xv, a, yv);
    k.stg(y, 0, yv);
    k.bind(end);
    k.exit();
    k.finish()
}

/// `y[i] = a*x[i] + y[i]` over `n` elements (FP64 register pairs).
///
/// Params: `[y, x, a_lo, a_hi, n]`.
pub fn daxpy_f64(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (y, x, n, gtid, off) = (Reg(4), Reg(5), Reg(7), Reg(0), Reg(1));
    let (a, xv, yv) = (Reg(8), Reg(10), Reg(12)); // even pairs
    k.ldc(y, 0);
    k.ldc(x, 4);
    k.ldc(a, 8);
    k.ldc(Reg(9), 12);
    k.ldc(n, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 3);
    k.iadd(y, y, off);
    k.iadd(x, x, off);
    k.ldg64(xv, x, 0);
    k.ldg64(yv, y, 0);
    k.dfma(yv, xv, a, yv);
    k.stg64(y, 0, yv);
    k.bind(end);
    k.exit();
    k.finish()
}

/// `dst[i] = src[i]` over `n` elements.
///
/// Params: `[dst, src, n]`.
pub fn copy_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (d, s, n, gtid, off, v) = (Reg(4), Reg(5), Reg(6), Reg(0), Reg(1), Reg(2));
    k.ldc(d, 0);
    k.ldc(s, 4);
    k.ldc(n, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(d, d, off);
    k.iadd(s, s, off);
    k.ldg(v, s, 0);
    k.stg(d, 0, v);
    k.bind(end);
    k.exit();
    k.finish()
}

/// `a[i] = b[i] * c[i]` (elementwise product) over `n` elements — the
/// building block of device-side dot products.
///
/// Params: `[a, b, c, n]`.
pub fn mul_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (pa, pb, pc, n) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (gtid, off, bv, cv) = (Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(pa, 0);
    k.ldc(pb, 4);
    k.ldc(pc, 8);
    k.ldc(n, 12);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(pa, pa, off);
    k.iadd(pb, pb, off);
    k.iadd(pc, pc, off);
    k.ldg(bv, pb, 0);
    k.ldg(cv, pc, 0);
    k.fmul(bv, bv, cv);
    k.stg(pa, 0, bv);
    k.bind(end);
    k.exit();
    k.finish()
}

/// `a[i] = b[i] + s*c[i]` (STREAM triad) over `n` elements.
///
/// Params: `[a, b, c, s_bits, n]`.
pub fn triad_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (pa, pb, pc, s, n) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
    let (gtid, off, bv, cv) = (Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(pa, 0);
    k.ldc(pb, 4);
    k.ldc(pc, 8);
    k.ldc(s, 12);
    k.ldc(n, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(pa, pa, off);
    k.iadd(pb, pb, off);
    k.iadd(pc, pc, off);
    k.ldg(bv, pb, 0);
    k.ldg(cv, pc, 0);
    k.ffma(cv, cv, s, bv);
    k.stg(pa, 0, cv);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Five-point stencil: interior cells get
/// `out = in + c*(left+right+up+down − 4·in)`, boundary cells copy through.
///
/// Launch geometry: `block = (w, 1, 1)`, `grid = (h, 1, 1)`.
/// Params: `[out, in, c_bits]`.
pub fn stencil5_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (out, inp, c) = (Reg(4), Reg(5), Reg(6));
    let (x, y, w, h) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (idx, off, pin, pout, center) = (Reg(8), Reg(9), Reg(10), Reg(11), Reg(12));
    let (acc, t, rowoff) = (Reg(13), Reg(14), Reg(15));
    k.ldc(out, 0);
    k.ldc(inp, 4);
    k.ldc(c, 8);
    k.s2r(x, SpecialReg::TidX);
    k.s2r(y, SpecialReg::CtaIdX);
    k.s2r(w, SpecialReg::NTidX);
    k.s2r(h, SpecialReg::NCtaIdX);
    // idx = y*w + x; byte offset
    k.imad(idx, y, w, x);
    k.shli(off, idx, 2);
    k.iadd(pin, inp, off);
    k.iadd(pout, out, off);
    k.ldg(center, pin, 0);
    // interior = x>0 && x<w-1 && y>0 && y<h-1
    k.isetp(P0, CmpOp::Gt, x, 0);
    k.iaddi(t, w, -1);
    k.isetp_bool(P0, CmpOp::Lt, BoolOp::And, x, t, P0);
    k.movi(t, 0);
    k.isetp_bool(P0, CmpOp::Gt, BoolOp::And, y, t, P0);
    k.iaddi(t, h, -1);
    k.isetp_bool(P0, CmpOp::Lt, BoolOp::And, y, t, P0);
    let copy = k.new_label();
    let end = k.new_label();
    k.bra_ifnot(P0, copy);
    // acc = left + right
    k.ldg(acc, pin, -4);
    k.ldg(t, pin, 4);
    k.fadd(acc, acc, t);
    // up/down at ±w*4 bytes
    k.shli(rowoff, w, 2);
    k.isub(t, pin, rowoff);
    k.ldg(t, t, 0);
    k.fadd(acc, acc, t);
    k.iadd(t, pin, rowoff);
    k.ldg(t, t, 0);
    k.fadd(acc, acc, t);
    // acc -= 4*center ; out = center + c*acc
    k.fmuli(t, center, -4.0);
    k.fadd(acc, acc, t);
    k.ffma(acc, acc, c, center);
    k.stg(pout, 0, acc);
    k.bra(end);
    k.bind(copy);
    k.stg(pout, 0, center);
    k.bind(end);
    k.exit();
    k.finish()
}

/// One-dimensional three-point wave step:
/// `next[i] = 2·cur[i] − prev[i] + c·(cur[i−1] − 2·cur[i] + cur[i+1])` for
/// interior points, copy-through at the ends.
///
/// Params: `[next, cur, prev, c_bits, n]`.
pub fn wave_step_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (nx, cu, pv, c, n) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(16));
    let (gtid, off, center, acc, t) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8));
    let (pn, pc, pp) = (Reg(9), Reg(10), Reg(11));
    k.ldc(nx, 0);
    k.ldc(cu, 4);
    k.ldc(pv, 8);
    k.ldc(c, 12);
    k.ldc(n, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(pn, nx, off);
    k.iadd(pc, cu, off);
    k.iadd(pp, pv, off);
    k.ldg(center, pc, 0);
    // interior = gtid>0 && gtid<n-1
    k.isetp(P0, CmpOp::Gt, gtid, 0);
    k.iaddi(t, n, -1);
    k.isetp_bool(P0, CmpOp::Lt, BoolOp::And, gtid, t, P0);
    let copy = k.new_label();
    k.bra_ifnot(P0, copy);
    k.ldg(acc, pc, -4);
    k.ldg(t, pc, 4);
    k.fadd(acc, acc, t);
    k.fmuli(t, center, -2.0);
    k.fadd(acc, acc, t);
    k.fmul(acc, acc, c);
    k.fmuli(t, center, 2.0);
    k.fadd(acc, acc, t);
    // float negation: acc = acc - prev ⇒ FADD with prev multiplied by -1.
    k.ldg(t, pp, 0);
    k.fmuli(t, t, -1.0);
    k.fadd(acc, acc, t);
    k.stg(pn, 0, acc);
    k.bra(end);
    k.bind(copy);
    k.stg(pn, 0, center);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Block-wise sum reduction: `out[block] = Σ in[block·blockDim + tid]`
/// (shared-memory tree, then warp shuffle for the final 32).
///
/// Launch with power-of-two block size ≥ 32 and `shared = blockDim·4`.
/// Params: `[out, in, n]` — out-of-range elements contribute 0.
pub fn reduce_sum_f32(name: &str, block_size: u32) -> Kernel {
    assert!(block_size.is_power_of_two() && (32..=1024).contains(&block_size));
    let mut k = KernelBuilder::new(name);
    k.shared_bytes(block_size * 4);
    let (out, inp, n) = (Reg(4), Reg(5), Reg(6));
    let (gtid, tid, off, v, t, sa) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8), Reg(9));
    k.ldc(out, 0);
    k.ldc(inp, 4);
    k.ldc(n, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.s2r(tid, SpecialReg::TidX);
    // v = gtid < n ? in[gtid] : 0
    k.movi(v, 0);
    k.isetp_r(P0, CmpOp::Lt, gtid, n);
    let skip = k.new_label();
    k.bra_ifnot(P0, skip);
    k.shli(off, gtid, 2);
    k.iadd(off, inp, off);
    k.ldg(v, off, 0);
    k.bind(skip);
    // shared[tid] = v; tree-reduce halves down to one warp
    k.shli(sa, tid, 2);
    k.sts(sa, 0, v);
    k.bar();
    let mut stride = block_size / 2;
    while stride >= 32 {
        // if tid < stride { sh[tid] += sh[tid+stride] }
        k.isetp(P0, CmpOp::Lt, tid, stride as i32);
        let skip2 = k.new_label();
        k.bra_ifnot(P0, skip2);
        k.lds(v, sa, 0);
        k.lds(t, sa, (stride * 4) as i16);
        k.fadd(v, v, t);
        k.sts(sa, 0, v);
        k.bind(skip2);
        k.bar();
        stride /= 2;
    }
    // first warp: shuffle reduction of sh[tid] (tid < 32)
    k.isetp(P0, CmpOp::Lt, tid, 32);
    let done = k.new_label();
    k.bra_ifnot(P0, done);
    k.lds(v, sa, 0);
    for sh in [16u32, 8, 4, 2, 1] {
        k.shfl(ShflMode::Bfly, t, v, sh);
        k.fadd(v, v, t);
    }
    // lane 0 writes out[block]
    k.isetp(P0, CmpOp::Eq, tid, 0);
    k.bra_ifnot(P0, done);
    k.s2r(t, SpecialReg::CtaIdX);
    k.shli(t, t, 2);
    k.iadd(t, out, t);
    k.stg(t, 0, v);
    k.bind(done);
    k.exit();
    k.finish()
}

/// MRI-Q-style transcendental transform:
/// `out[i] = sin(in[i])·w + cos(in[i]·k)` (MUFU heavy).
///
/// Params: `[out, in, w_bits, k_bits, n]`.
pub fn mufu_transform(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (out, inp, w, kk, n) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(16));
    let (gtid, off, v, s, c) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8));
    k.ldc(out, 0);
    k.ldc(inp, 4);
    k.ldc(w, 8);
    k.ldc(kk, 12);
    k.ldc(n, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(inp, inp, off);
    k.iadd(out, out, off);
    k.ldg(v, inp, 0);
    k.mufu(MufuFunc::Sin, s, v);
    k.fmul(c, v, kk);
    k.mufu(MufuFunc::Cos, c, c);
    k.ffma(s, s, w, c);
    k.stg(out, 0, s);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Lennard-Jones-style FP64 force sweep: each thread loops over all `n`
/// atoms and accumulates `Σ (1/r²)·(1/r⁶ − 0.5)·dx` against its own
/// position (1-D positions; self-interaction excluded).
///
/// Params: `[force, pos, n]` (`force`, `pos` are f64 arrays).
pub fn lj_force_f64(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (force, pos, n) = (Reg(4), Reg(5), Reg(6));
    let (gtid, i, off) = (Reg(0), Reg(1), Reg(2));
    let (xi, xj, dx, r2, inv, acc, t) =
        (Reg(8), Reg(10), Reg(12), Reg(14), Reg(16), Reg(18), Reg(20));
    let (half, one) = (Reg(22), Reg(24));
    k.ldc(force, 0);
    k.ldc(pos, 4);
    k.ldc(n, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    // xi = pos[gtid]
    k.shli(off, gtid, 3);
    k.iadd(t, pos, off);
    k.ldg64(xi, t, 0);
    // constants: one = i2d(1), half = one * 0.5f (widened imm)
    k.movi(t, 1);
    k.i2d(one, t);
    k.movi(t, 0);
    k.i2d(acc, t); // acc = 0.0
                   // half = 0.5: build from one via dmul with f32 imm 0.5 (widened)
    let mut half_i = gpu_isa::Instr::new(gpu_isa::Opcode::DMUL);
    half_i.dsts[0] = gpu_isa::Dst::R64(half);
    half_i.srcs[0] = gpu_isa::Operand::R64(one);
    half_i.srcs[1] = gpu_isa::Operand::imm_f32(0.5);
    k.push(half_i);
    k.movi(i, 0);
    let top = k.new_label();
    k.bind(top);
    // skip self
    k.isetp_r(PReg(1), CmpOp::Eq, i, gtid);
    let skip = k.new_label();
    k.bra_if(PReg(1), skip);
    // xj = pos[i]; dx = xi - xj
    k.shli(off, i, 3);
    k.iadd(t, pos, off);
    k.ldg64(xj, t, 0);
    // dx = xi - xj: negate xj by multiplying with -1.0 then add
    let mut neg = gpu_isa::Instr::new(gpu_isa::Opcode::DMUL);
    neg.dsts[0] = gpu_isa::Dst::R64(dx);
    neg.srcs[0] = gpu_isa::Operand::R64(xj);
    neg.srcs[1] = gpu_isa::Operand::imm_f32(-1.0);
    k.push(neg);
    k.dadd(dx, xi, dx);
    // r2 = dx*dx + 1 (softening); inv = 1/r2 via f32 rcp refined once
    k.dfma(r2, dx, dx, one);
    k.d2f(t, r2);
    k.mufu(MufuFunc::Rcp, t, t);
    k.f2d(inv, t);
    // one Newton step: inv = inv*(2 - r2*inv)
    {
        let two = Reg(26);
        let mut mk2 = gpu_isa::Instr::new(gpu_isa::Opcode::DMUL);
        mk2.dsts[0] = gpu_isa::Dst::R64(two);
        mk2.srcs[0] = gpu_isa::Operand::R64(one);
        mk2.srcs[1] = gpu_isa::Operand::imm_f32(2.0);
        k.push(mk2);
        let prod = Reg(28);
        k.dmul(prod, r2, inv);
        let mut negp = gpu_isa::Instr::new(gpu_isa::Opcode::DMUL);
        negp.dsts[0] = gpu_isa::Dst::R64(prod);
        negp.srcs[0] = gpu_isa::Operand::R64(prod);
        negp.srcs[1] = gpu_isa::Operand::imm_f32(-1.0);
        k.push(negp);
        k.dadd(prod, two, prod);
        k.dmul(inv, inv, prod);
    }
    // inv6 = inv^3; term = inv*(inv6 - half)*dx ; acc += term
    {
        let inv6 = Reg(26);
        k.dmul(inv6, inv, inv);
        k.dmul(inv6, inv6, inv);
        let mut negh = gpu_isa::Instr::new(gpu_isa::Opcode::DMUL);
        negh.dsts[0] = gpu_isa::Dst::R64(Reg(28));
        negh.srcs[0] = gpu_isa::Operand::R64(half);
        negh.srcs[1] = gpu_isa::Operand::imm_f32(-1.0);
        k.push(negh);
        k.dadd(inv6, inv6, Reg(28));
        k.dmul(inv6, inv6, inv);
        k.dfma(acc, inv6, dx, acc);
    }
    k.bind(skip);
    k.iaddi(i, i, 1);
    k.isetp_r(PReg(1), CmpOp::Lt, i, n);
    k.bra_if(PReg(1), top);
    // force[gtid] = acc
    k.shli(off, gtid, 3);
    k.iadd(t, force, off);
    k.stg64(t, 0, acc);
    k.bind(end);
    k.exit();
    k.finish()
}

/// FP64 leapfrog integration: `pos[i] += vel[i]·dt`.
///
/// Params: `[pos, vel, dt_bits_f32, n]` (`dt` is widened from f32).
pub fn integrate_f64(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (pos, vel, dt32, n) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (gtid, off, p, v, dt) = (Reg(0), Reg(1), Reg(8), Reg(10), Reg(12));
    k.ldc(pos, 0);
    k.ldc(vel, 4);
    k.ldc(dt32, 8);
    k.ldc(n, 12);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.f2d(dt, dt32);
    k.shli(off, gtid, 3);
    k.iadd(pos, pos, off);
    k.iadd(vel, vel, off);
    k.ldg64(p, pos, 0);
    k.ldg64(v, vel, 0);
    k.dfma(p, v, dt, p);
    k.stg64(pos, 0, p);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Integer LCG scrambler: `iters` rounds of
/// `s = s·1664525 + 1013904223; s ^= s >> 13` per element.
///
/// Params: `[data, n, iters]`.
pub fn lcg_scramble(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (data, n, iters) = (Reg(4), Reg(5), Reg(6));
    let (gtid, off, s, i, t) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8));
    k.ldc(data, 0);
    k.ldc(n, 4);
    k.ldc(iters, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(data, data, off);
    k.ldg(s, data, 0);
    k.movi(i, 0);
    let top = k.new_label();
    k.bind(top);
    k.movi(t, 1664525);
    k.imul(s, s, t);
    k.iaddi(s, s, 1013904223);
    k.shri(t, s, 13);
    k.xor(s, s, t);
    k.iaddi(i, i, 1);
    k.isetp_r(P0, CmpOp::Lt, i, iters);
    k.bra_if(P0, top);
    k.stg(data, 0, s);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Atomic histogram: `bins[value[i] & (nbins−1)] += 1` via `ATOMG.ADD`.
///
/// Params: `[bins, values, nbins_mask, n]`.
pub fn atomic_histogram(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (bins, vals, mask, n) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (gtid, off, v, one) = (Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(bins, 0);
    k.ldc(vals, 4);
    k.ldc(mask, 8);
    k.ldc(n, 12);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(vals, vals, off);
    k.ldg(v, vals, 0);
    k.and(v, v, mask);
    k.shli(v, v, 2);
    k.iadd(v, bins, v);
    k.movi(one, 1);
    k.atomg(AtomOp::Add, Reg(8), v, 0, one);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Indexed gather (SpMV-flavoured): `out[i] = Σ_{j<deg} val[i·deg+j] ·
/// x[idx[i·deg+j]]`.
///
/// Params: `[out, val, idx, x, deg, n]`.
pub fn spmv_gather(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (out, val, idx, x, deg, n) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(16), Reg(17));
    let (gtid, j, base, acc, t, a, xi) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8), Reg(9), Reg(10));
    k.ldc(out, 0);
    k.ldc(val, 4);
    k.ldc(idx, 8);
    k.ldc(x, 12);
    k.ldc(deg, 16);
    k.ldc(n, 20);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.movi(acc, 0);
    k.imul(base, gtid, deg);
    k.movi(j, 0);
    let top = k.new_label();
    k.bind(top);
    // t = (base + j) * 4
    k.iadd(t, base, j);
    k.shli(t, t, 2);
    // a = val[base+j]
    k.iadd(a, val, t);
    k.ldg(a, a, 0);
    // xi = x[idx[base+j]]
    k.iadd(xi, idx, t);
    k.ldg(xi, xi, 0);
    k.shli(xi, xi, 2);
    k.iadd(xi, x, xi);
    k.ldg(xi, xi, 0);
    k.ffma(acc, a, xi, acc);
    k.iaddi(j, j, 1);
    k.isetp_r(P0, CmpOp::Lt, j, deg);
    k.bra_if(P0, top);
    k.shli(t, gtid, 2);
    k.iadd(t, out, t);
    k.stg(t, 0, acc);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Threshold-guarded update: elements with `data[i] > threshold` take an
/// expensive path (several FMAs); others are left untouched. The dynamic
/// instruction count therefore varies with the data — the pattern that
/// makes approximate profiling drift from exact profiling (Figure 2).
///
/// Params: `[data, threshold_bits, n]`.
pub fn guarded_update(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (data, th, n) = (Reg(4), Reg(5), Reg(6));
    let (gtid, off, v, t) = (Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(data, 0);
    k.ldc(th, 4);
    k.ldc(n, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(data, data, off);
    k.ldg(v, data, 0);
    k.fsetp(PReg(1), CmpOp::Gt, v, th);
    let skip = k.new_label();
    k.bra_ifnot(PReg(1), skip);
    // expensive damped update: v = v*0.8 + 0.05 three times
    for _ in 0..3 {
        k.fmuli(t, v, 0.8);
        k.faddi(v, t, 0.05);
    }
    k.stg(data, 0, v);
    k.bind(skip);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Per-thread forward/backward recurrence over a row of length `rowlen`
/// (the line-sweep at the heart of the SP/BT penta/tri-diagonal solvers):
/// forward `x[j] += a·x[j−1]`, then backward `x[j] += b·x[j+1]`.
///
/// Params: `[data, a_bits, b_bits, rowlen, nrows]`; thread `i` owns row `i`.
pub fn line_sweep_f32(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (data, a, b, rowlen, nrows) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(16));
    let (gtid, j, p, prev, cur) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8));
    k.ldc(data, 0);
    k.ldc(a, 4);
    k.ldc(b, 8);
    k.ldc(rowlen, 12);
    k.ldc(nrows, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, nrows);
    let end = k.new_label();
    k.bra_if(P0, end);
    // p = &data[gtid*rowlen]
    k.imul(p, gtid, rowlen);
    k.shli(p, p, 2);
    k.iadd(p, data, p);
    // forward sweep
    k.ldg(prev, p, 0);
    k.movi(j, 1);
    let fwd = k.new_label();
    k.bind(fwd);
    k.shli(cur, j, 2);
    k.iadd(cur, p, cur);
    k.ldg(Reg(9), cur, 0);
    k.ffma(prev, prev, a, Reg(9));
    k.stg(cur, 0, prev);
    k.iaddi(j, j, 1);
    k.isetp_r(P0, CmpOp::Lt, j, rowlen);
    k.bra_if(P0, fwd);
    // backward sweep
    k.iaddi(j, rowlen, -2);
    let bwd = k.new_label();
    k.bind(bwd);
    k.shli(cur, j, 2);
    k.iadd(cur, p, cur);
    k.ldg(Reg(9), cur, 4); // x[j+1]
    k.ldg(Reg(10), cur, 0);
    k.ffma(Reg(10), Reg(9), b, Reg(10));
    k.stg(cur, 0, Reg(10));
    k.iaddi(j, j, -1);
    k.isetp(P0, CmpOp::Ge, j, 0);
    k.bra_if(P0, bwd);
    k.bind(end);
    k.exit();
    k.finish()
}

/// D2Q9-flavoured LBM collide: relax each of 9 per-cell distributions
/// toward their cell average: `f_d = f_d + ω·(avg − f_d)`.
///
/// Layout: `f[d·ncells + i]` (structure of arrays).
/// Params: `[f, omega_bits, ncells]`.
pub fn lbm_collide(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (f, omega, ncells) = (Reg(4), Reg(5), Reg(6));
    let (gtid, d, acc, t, addr, stride, avg) =
        (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8), Reg(9), Reg(10));
    k.ldc(f, 0);
    k.ldc(omega, 4);
    k.ldc(ncells, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, ncells);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(stride, ncells, 2);
    // avg = (Σ_d f[d]) / 9
    k.movi(acc, 0);
    k.shli(addr, gtid, 2);
    k.iadd(addr, f, addr);
    k.movi(d, 0);
    let sum = k.new_label();
    k.bind(sum);
    k.ldg(t, addr, 0);
    k.fadd(acc, acc, t);
    k.iadd(addr, addr, stride);
    k.iaddi(d, d, 1);
    k.isetp(P0, CmpOp::Lt, d, 9);
    k.bra_if(P0, sum);
    k.fmuli(avg, acc, 1.0 / 9.0);
    // relax every direction
    k.shli(addr, gtid, 2);
    k.iadd(addr, f, addr);
    k.movi(d, 0);
    let relax = k.new_label();
    k.bind(relax);
    k.ldg(t, addr, 0);
    k.fmuli(Reg(11), t, -1.0);
    k.fadd(Reg(11), avg, Reg(11)); // avg - f
    k.ffma(t, Reg(11), omega, t);
    k.stg(addr, 0, t);
    k.iadd(addr, addr, stride);
    k.iaddi(d, d, 1);
    k.isetp(P0, CmpOp::Lt, d, 9);
    k.bra_if(P0, relax);
    k.bind(end);
    k.exit();
    k.finish()
}

/// LBM stream step for one direction: `dst[d·n + i] = src[d·n + shift(i)]`
/// with a per-direction circular shift.
///
/// Params: `[dst, src, d, shift, ncells]`.
pub fn lbm_stream(name: &str) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (dst, src, dir, shift, ncells) = (Reg(4), Reg(5), Reg(6), Reg(7), Reg(16));
    let (gtid, t, sidx, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    k.ldc(dst, 0);
    k.ldc(src, 4);
    k.ldc(dir, 8);
    k.ldc(shift, 12);
    k.ldc(ncells, 16);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, ncells);
    let end = k.new_label();
    k.bra_if(P0, end);
    // sidx = (gtid + shift) mod ncells  (ncells is a power of two: mask)
    k.iaddi(t, ncells, -1);
    k.iadd(sidx, gtid, shift);
    k.and(sidx, sidx, t);
    // linear offsets include d·ncells
    k.imul(t, dir, ncells);
    k.iadd(sidx, sidx, t);
    k.shli(sidx, sidx, 2);
    k.iadd(sidx, src, sidx);
    k.ldg(v, sidx, 0);
    k.imul(t, dir, ncells);
    k.iadd(t, t, gtid);
    k.shli(t, t, 2);
    k.iadd(t, dst, t);
    k.stg(t, 0, v);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Program-specific variant of a template: perturbs the damping
/// coefficients *and the instruction selection* so each generated static
/// kernel is distinct (the analog of a compiler emitting one kernel per
/// parallel loop, with different codegen per loop shape). Four codegen
/// flavors rotate by variant index:
///
/// * flavor 0 — immediate-form FP32 (`FMUL32I`/`FADD32I`/`FFMA`),
/// * flavor 1 — register constants with an `FMNMX` clamp,
/// * flavor 2 — `IMAD`/`ISCADD` addressing instead of `SHL`+`IADD`,
/// * flavor 3 — an `FSETP`/`FSEL` overload guard and `IADD3` addressing.
///
/// All flavors are numerically tame (damped toward a small fixed point).
pub fn damped_update_variant(name: &str, variant: u32) -> Kernel {
    let mut k = KernelBuilder::new(name);
    let (data, n) = (Reg(4), Reg(5));
    let (gtid, off, v, t) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let c = 0.90 + 0.0008 * (variant % 100) as f32;
    let d = 0.01 + 0.0001 * (variant % 64) as f32;
    k.ldc(data, 0);
    k.ldc(n, 4);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    match variant % 4 {
        2 => {
            // IMAD/ISCADD addressing: addr = gtid*4 + base.
            k.movi(off, 4);
            k.imad(data, gtid, off, data);
        }
        3 => {
            // IADD3 addressing: base + off + RZ.
            k.shli(off, gtid, 2);
            k.iadd3(data, data, off, Reg::RZ);
        }
        _ => {
            k.shli(off, gtid, 2);
            k.iadd(data, data, off);
        }
    }
    k.ldg(v, data, 0);
    match variant % 4 {
        1 => {
            // Register constants + FMNMX clamp to [., 8.0].
            k.movf(t, c);
            k.fmul(t, v, t);
            k.movf(Reg(8), d);
            k.fadd(v, t, Reg(8));
            k.movf(Reg(8), 8.0);
            k.fmnmx(v, v, Reg(8), true);
        }
        3 => {
            // Overload guard: halve when v > 2, else damp.
            k.movf(Reg(8), 2.0);
            k.fsetp(gpu_isa::PReg(1), CmpOp::Gt, v, Reg(8));
            k.fmuli(t, v, 0.5);
            k.fmuli(Reg(8), v, c);
            k.faddi(Reg(8), Reg(8), d);
            let mut sel = gpu_isa::Instr::new(gpu_isa::Opcode::FSEL);
            sel.dsts[0] = gpu_isa::Dst::R(v);
            sel.srcs = [
                gpu_isa::Operand::R(t),
                gpu_isa::Operand::R(Reg(8)),
                gpu_isa::Operand::P(gpu_isa::PReg(1)),
                gpu_isa::Operand::None,
            ];
            k.push(sel);
        }
        _ => {
            k.fmuli(t, v, c);
            k.faddi(v, t, d);
            k.fmul(t, v, v);
            k.ffma(v, t, Reg::RZ, v); // t*0 + v keeps an FFMA in the mix
        }
    }
    k.stg(data, 0, v);
    k.bind(end);
    k.exit();
    k.finish()
}

/// Integer bit-mixing round: a hash-like scramble exercising the
/// bit-manipulation datapath (`BREV`, `BFE`, `BFI`, `PRMT`, `SHF`, `POPC`):
/// for each element, `iters` rounds of
/// `s = bfi(bfe(s,8,16), brev(s), 8, 16); s = prmt(s, shf(s, s, 7)); s += popc(s)`.
///
/// Params: `[data, n, iters]`.
pub fn bitmix_u32(name: &str) -> Kernel {
    use gpu_isa::{Dst, Instr, Opcode, Operand};
    let mut k = KernelBuilder::new(name);
    let (data, n, iters) = (Reg(4), Reg(5), Reg(6));
    let (gtid, off, s, i, t, u) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(8), Reg(9));
    k.ldc(data, 0);
    k.ldc(n, 4);
    k.ldc(iters, 8);
    k.s2r(gtid, SpecialReg::GlobalTidX);
    k.isetp_r(P0, CmpOp::Ge, gtid, n);
    let end = k.new_label();
    k.bra_if(P0, end);
    k.shli(off, gtid, 2);
    k.iadd(data, data, off);
    k.ldg(s, data, 0);
    k.movi(i, 0);
    let top = k.new_label();
    k.bind(top);
    // t = brev(s)
    let mut brev = Instr::new(Opcode::BREV);
    brev.dsts[0] = Dst::R(t);
    brev.srcs[0] = Operand::R(s);
    k.push(brev);
    // u = bfe(s, pos=8 len=16)
    let mut bfe = Instr::new(Opcode::BFE);
    bfe.dsts[0] = Dst::R(u);
    bfe.srcs = [Operand::R(s), Operand::Imm(8 | (16 << 8)), Operand::None, Operand::None];
    k.push(bfe);
    // s = bfi(u -> t at pos=8 len=16)
    let mut bfi = Instr::new(Opcode::BFI);
    bfi.dsts[0] = Dst::R(s);
    bfi.srcs = [Operand::R(u), Operand::Imm(8 | (16 << 8)), Operand::R(t), Operand::None];
    k.push(bfi);
    // t = shf(s, s, 7); s = prmt(s, t, 0x6240)
    let mut shf = Instr::new(Opcode::SHF);
    shf.dsts[0] = Dst::R(t);
    shf.srcs = [Operand::R(s), Operand::R(s), Operand::Imm(7), Operand::None];
    k.push(shf);
    let mut prmt = Instr::new(Opcode::PRMT);
    prmt.dsts[0] = Dst::R(s);
    prmt.srcs = [Operand::R(s), Operand::R(t), Operand::Imm(0x6240), Operand::None];
    k.push(prmt);
    // s += popc(s)
    let mut popc = Instr::new(Opcode::POPC);
    popc.dsts[0] = Dst::R(t);
    popc.srcs[0] = Operand::R(s);
    k.push(popc);
    k.iadd(s, s, t);
    k.iaddi(i, i, 1);
    k.isetp_r(P0, CmpOp::Lt, i, iters);
    k.bra_if(P0, top);
    k.stg(data, 0, s);
    k.bind(end);
    k.exit();
    k.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Dim3, GlobalMem, Gpu, GpuConfig, Launch};

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::default())
    }

    fn launch(
        kernel: &Kernel,
        grid: u32,
        block: u32,
        params: &[u32],
        mem: &mut GlobalMem,
    ) -> gpu_sim::LaunchStats {
        gpu()
            .launch(
                &Launch {
                    kernel,
                    grid: Dim3::from(grid),
                    block: Dim3::from(block),
                    params,
                    instr_budget: Some(50_000_000),
                },
                mem,
                None,
            )
            .expect("launch")
    }

    #[test]
    fn saxpy_matches_reference() {
        let k = saxpy_f32("saxpy");
        let mut mem = GlobalMem::new(1 << 20);
        let n = 100usize;
        let y = mem.alloc((n * 4) as u32).expect("y");
        let x = mem.alloc((n * 4) as u32).expect("x");
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let ys: Vec<f32> = (0..n).map(|i| 1.0 + i as f32).collect();
        mem.write_f32s(x, &xs).expect("w");
        mem.write_f32s(y, &ys).expect("w");
        launch(&k, 4, 32, &[y.addr(), x.addr(), 2.0f32.to_bits(), n as u32], &mut mem);
        let out = mem.read_f32s(y, n).expect("r");
        for i in 0..n {
            assert_eq!(out[i], 2.0f32.mul_add(xs[i], ys[i]), "i={i}");
        }
    }

    #[test]
    fn daxpy_matches_reference() {
        let k = daxpy_f64("daxpy");
        let mut mem = GlobalMem::new(1 << 20);
        let n = 64usize;
        let y = mem.alloc((n * 8) as u32).expect("y");
        let x = mem.alloc((n * 8) as u32).expect("x");
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = (0..n).map(|i| 3.0 - i as f64).collect();
        mem.write_f64s(x, &xs).expect("w");
        mem.write_f64s(y, &ys).expect("w");
        let a = 1.5f64;
        let bits = a.to_bits();
        launch(
            &k,
            2,
            32,
            &[y.addr(), x.addr(), bits as u32, (bits >> 32) as u32, n as u32],
            &mut mem,
        );
        let out = mem.read_f64s(y, n).expect("r");
        for i in 0..n {
            assert_eq!(out[i], a.mul_add(xs[i], ys[i]), "i={i}");
        }
    }

    #[test]
    fn stencil_diffuses_and_preserves_boundary() {
        let k = stencil5_f32("st");
        let (w, h) = (16u32, 8u32);
        let n = (w * h) as usize;
        let mut mem = GlobalMem::new(1 << 20);
        let out = mem.alloc((n * 4) as u32).expect("out");
        let inp = mem.alloc((n * 4) as u32).expect("in");
        let mut init = vec![0.0f32; n];
        init[(h / 2 * w + w / 2) as usize] = 100.0; // hot spot
        mem.write_f32s(inp, &init).expect("w");
        launch(&k, h, w, &[out.addr(), inp.addr(), 0.2f32.to_bits()], &mut mem);
        let res = mem.read_f32s(out, n).expect("r");
        let c = (h / 2 * w + w / 2) as usize;
        let near = |a: f32, b: f32| (a - b).abs() <= 1e-4 * b.abs().max(1.0);
        assert!(near(res[c], 100.0 + 0.2 * (0.0 - 400.0)), "{}", res[c]);
        assert!(near(res[c + 1], 0.2 * 100.0), "right neighbour heated: {}", res[c + 1]);
        assert_eq!(res[0], 0.0, "corner copied through");
        // reference check all interior cells (FMA vs separate rounding can
        // differ in the last ulp)
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = (y * w + x) as usize;
                let expect = init[i]
                    + 0.2
                        * (init[i - 1] + init[i + 1] + init[i - w as usize] + init[i + w as usize]
                            - 4.0 * init[i]);
                assert!(near(res[i], expect), "cell ({x},{y}): {} vs {expect}", res[i]);
            }
        }
    }

    #[test]
    fn reduce_sum_matches_reference() {
        for block in [32u32, 64, 128] {
            let k = reduce_sum_f32("red", block);
            let n = (block * 3 + 5) as usize; // ragged tail
            let blocks = (n as u32).div_ceil(block);
            let mut mem = GlobalMem::new(1 << 20);
            let out = mem.alloc(blocks * 4).expect("out");
            let inp = mem.alloc((n * 4) as u32).expect("in");
            let xs: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
            mem.write_f32s(inp, &xs).expect("w");
            launch(&k, blocks, block, &[out.addr(), inp.addr(), n as u32], &mut mem);
            let partials = mem.read_f32s(out, blocks as usize).expect("r");
            for (b, got) in partials.iter().enumerate() {
                let lo = b * block as usize;
                let hi = (lo + block as usize).min(n);
                let expect: f32 = xs[lo..hi].iter().sum();
                assert_eq!(*got, expect, "block {b} of size {block}");
            }
        }
    }

    #[test]
    fn mufu_transform_matches_reference() {
        let k = mufu_transform("mriq");
        let n = 64usize;
        let mut mem = GlobalMem::new(1 << 20);
        let out = mem.alloc((n * 4) as u32).expect("out");
        let inp = mem.alloc((n * 4) as u32).expect("in");
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        mem.write_f32s(inp, &xs).expect("w");
        let (w, kk) = (1.5f32, 2.0f32);
        launch(&k, 2, 32, &[out.addr(), inp.addr(), w.to_bits(), kk.to_bits(), n as u32], &mut mem);
        let res = mem.read_f32s(out, n).expect("r");
        for i in 0..n {
            let expect = xs[i].sin().mul_add(w, (xs[i] * kk).cos());
            assert!((res[i] - expect).abs() < 1e-5, "i={i}: {} vs {expect}", res[i]);
        }
    }

    #[test]
    fn lcg_scramble_matches_reference() {
        let k = lcg_scramble("lcg");
        let n = 50usize;
        let iters = 8u32;
        let mut mem = GlobalMem::new(1 << 20);
        let data = mem.alloc((n * 4) as u32).expect("d");
        let init: Vec<u32> = (0..n as u32).collect();
        mem.write_u32s(data, &init).expect("w");
        launch(&k, 2, 32, &[data.addr(), n as u32, iters], &mut mem);
        let res = mem.read_u32s(data, n).expect("r");
        for i in 0..n {
            let mut s = init[i];
            for _ in 0..iters {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                s ^= s >> 13;
            }
            assert_eq!(res[i], s, "i={i}");
        }
    }

    #[test]
    fn histogram_counts_all_elements() {
        let k = atomic_histogram("hist");
        let n = 200usize;
        let nbins = 16u32;
        let mut mem = GlobalMem::new(1 << 20);
        let bins = mem.alloc(nbins * 4).expect("bins");
        let vals = mem.alloc((n * 4) as u32).expect("vals");
        let vs: Vec<u32> = (0..n as u32).map(|i| i * 7 + 3).collect();
        mem.write_u32s(vals, &vs).expect("w");
        launch(&k, 7, 32, &[bins.addr(), vals.addr(), nbins - 1, n as u32], &mut mem);
        let res = mem.read_u32s(bins, nbins as usize).expect("r");
        assert_eq!(res.iter().sum::<u32>(), n as u32);
        let mut expect = vec![0u32; nbins as usize];
        for v in &vs {
            expect[(v & (nbins - 1)) as usize] += 1;
        }
        assert_eq!(res, expect);
    }

    #[test]
    fn spmv_gather_matches_reference() {
        let k = spmv_gather("spmv");
        let n = 40usize;
        let deg = 4usize;
        let mut mem = GlobalMem::new(1 << 20);
        let out = mem.alloc((n * 4) as u32).expect("out");
        let val = mem.alloc((n * deg * 4) as u32).expect("val");
        let idx = mem.alloc((n * deg * 4) as u32).expect("idx");
        let x = mem.alloc((n * 4) as u32).expect("x");
        let vals: Vec<f32> = (0..n * deg).map(|i| (i % 5) as f32 * 0.5).collect();
        let idxs: Vec<u32> = (0..n * deg).map(|i| ((i * 13) % n) as u32).collect();
        let xs: Vec<f32> = (0..n).map(|i| 1.0 + i as f32 * 0.1).collect();
        mem.write_f32s(val, &vals).expect("w");
        mem.write_u32s(idx, &idxs).expect("w");
        mem.write_f32s(x, &xs).expect("w");
        launch(
            &k,
            2,
            32,
            &[out.addr(), val.addr(), idx.addr(), x.addr(), deg as u32, n as u32],
            &mut mem,
        );
        let res = mem.read_f32s(out, n).expect("r");
        for i in 0..n {
            let mut acc = 0.0f32;
            for j in 0..deg {
                acc = vals[i * deg + j].mul_add(xs[idxs[i * deg + j] as usize], acc);
            }
            assert!((res[i] - acc).abs() < 1e-5, "row {i}");
        }
    }

    #[test]
    fn guarded_update_only_touches_above_threshold() {
        let k = guarded_update("gu");
        let n = 64usize;
        let mut mem = GlobalMem::new(1 << 20);
        let data = mem.alloc((n * 4) as u32).expect("d");
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        mem.write_f32s(data, &xs).expect("w");
        let stats = launch(&k, 2, 32, &[data.addr(), 31.5f32.to_bits(), n as u32], &mut mem);
        let res = mem.read_f32s(data, n).expect("r");
        for i in 0..n {
            if xs[i] > 31.5 {
                let mut v = xs[i];
                for _ in 0..3 {
                    v = v * 0.8 + 0.05;
                }
                assert!((res[i] - v).abs() < 1e-6, "i={i}");
            } else {
                assert_eq!(res[i], xs[i], "i={i} untouched");
            }
        }
        // Data-dependent dynamic count: lowering the threshold must execute
        // more instructions.
        let mut mem2 = GlobalMem::new(1 << 20);
        let d2 = mem2.alloc((n * 4) as u32).expect("d");
        mem2.write_f32s(d2, &xs).expect("w");
        let stats_low = launch(&k, 2, 32, &[d2.addr(), 1.5f32.to_bits(), n as u32], &mut mem2);
        assert!(stats_low.dyn_instrs > stats.dyn_instrs);
    }

    #[test]
    fn line_sweep_matches_reference() {
        let k = line_sweep_f32("sweep");
        let (nrows, rowlen) = (8usize, 16usize);
        let mut mem = GlobalMem::new(1 << 20);
        let data = mem.alloc((nrows * rowlen * 4) as u32).expect("d");
        let init: Vec<f32> = (0..nrows * rowlen).map(|i| ((i % 11) as f32) * 0.1).collect();
        mem.write_f32s(data, &init).expect("w");
        let (a, b) = (0.5f32, 0.25f32);
        launch(
            &k,
            1,
            32,
            &[data.addr(), a.to_bits(), b.to_bits(), rowlen as u32, nrows as u32],
            &mut mem,
        );
        let res = mem.read_f32s(data, nrows * rowlen).expect("r");
        for r in 0..nrows {
            let row = &init[r * rowlen..(r + 1) * rowlen];
            let mut x: Vec<f32> = row.to_vec();
            for j in 1..rowlen {
                x[j] = x[j - 1].mul_add(a, x[j]);
            }
            for j in (0..rowlen - 1).rev() {
                x[j] = x[j + 1].mul_add(b, x[j]);
            }
            for j in 0..rowlen {
                let got = res[r * rowlen + j];
                assert!((got - x[j]).abs() < 1e-4, "row {r} col {j}: {got} vs {}", x[j]);
            }
        }
    }

    #[test]
    fn lbm_collide_conserves_mass() {
        let k = lbm_collide("collide");
        let ncells = 32usize;
        let mut mem = GlobalMem::new(1 << 20);
        let f = mem.alloc((9 * ncells * 4) as u32).expect("f");
        let init: Vec<f32> = (0..9 * ncells).map(|i| 1.0 + (i % 9) as f32 * 0.1).collect();
        mem.write_f32s(f, &init).expect("w");
        launch(&k, 1, 32, &[f.addr(), 0.6f32.to_bits(), ncells as u32], &mut mem);
        let res = mem.read_f32s(f, 9 * ncells).expect("r");
        for cell in 0..ncells {
            let before: f32 = (0..9).map(|d| init[d * ncells + cell]).sum();
            let after: f32 = (0..9).map(|d| res[d * ncells + cell]).sum();
            assert!((before - after).abs() < 1e-4, "cell {cell}: {before} vs {after}");
            // and each direction moved toward the average
            let avg = before / 9.0;
            for d in 0..9 {
                let b = init[d * ncells + cell];
                let a = res[d * ncells + cell];
                let expect = b + 0.6 * (avg - b);
                assert!((a - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn lbm_stream_shifts_circularly() {
        let k = lbm_stream("stream");
        let ncells = 16usize; // power of two
        let mut mem = GlobalMem::new(1 << 20);
        let dst = mem.alloc((9 * ncells * 4) as u32).expect("dst");
        let src = mem.alloc((9 * ncells * 4) as u32).expect("src");
        let init: Vec<f32> = (0..9 * ncells).map(|i| i as f32).collect();
        mem.write_f32s(src, &init).expect("w");
        let (d, shift) = (3u32, 5u32);
        launch(&k, 1, 16, &[dst.addr(), src.addr(), d, shift, ncells as u32], &mut mem);
        let res = mem.read_f32s(dst, 9 * ncells).expect("r");
        for i in 0..ncells {
            let sidx = (i + shift as usize) % ncells;
            assert_eq!(res[d as usize * ncells + i], init[d as usize * ncells + sidx]);
        }
    }

    #[test]
    fn wave_step_matches_reference() {
        let k = wave_step_f32("wave");
        let n = 64usize;
        let mut mem = GlobalMem::new(1 << 20);
        let nxt = mem.alloc((n * 4) as u32).expect("n");
        let cur = mem.alloc((n * 4) as u32).expect("c");
        let prv = mem.alloc((n * 4) as u32).expect("p");
        let cu: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let pv: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3 - 0.1).sin()).collect();
        mem.write_f32s(cur, &cu).expect("w");
        mem.write_f32s(prv, &pv).expect("w");
        let c = 0.3f32;
        launch(&k, 2, 32, &[nxt.addr(), cur.addr(), prv.addr(), c.to_bits(), n as u32], &mut mem);
        let res = mem.read_f32s(nxt, n).expect("r");
        assert_eq!(res[0], cu[0]);
        assert_eq!(res[n - 1], cu[n - 1]);
        for i in 1..n - 1 {
            let lap = cu[i - 1] + cu[i + 1] - 2.0 * cu[i];
            let expect = lap * c + 2.0 * cu[i] - pv[i];
            assert!((res[i] - expect).abs() < 1e-5, "i={i}: {} vs {expect}", res[i]);
        }
    }

    #[test]
    fn integrate_f64_advances_positions() {
        let k = integrate_f64("integ");
        let n = 32usize;
        let mut mem = GlobalMem::new(1 << 20);
        let pos = mem.alloc((n * 8) as u32).expect("p");
        let vel = mem.alloc((n * 8) as u32).expect("v");
        let ps: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let vs: Vec<f64> = (0..n).map(|i| 0.5 - i as f64 * 0.01).collect();
        mem.write_f64s(pos, &ps).expect("w");
        mem.write_f64s(vel, &vs).expect("w");
        let dt = 0.125f32;
        launch(&k, 1, 32, &[pos.addr(), vel.addr(), dt.to_bits(), n as u32], &mut mem);
        let res = mem.read_f64s(pos, n).expect("r");
        for i in 0..n {
            assert_eq!(res[i], vs[i].mul_add(dt as f64, ps[i]), "i={i}");
        }
    }

    #[test]
    fn lj_force_is_antisymmetric_for_pair() {
        // Two atoms: equal and opposite forces.
        let k = lj_force_f64("lj");
        let mut mem = GlobalMem::new(1 << 20);
        let force = mem.alloc(2 * 8).expect("f");
        let pos = mem.alloc(2 * 8).expect("p");
        mem.write_f64s(pos, &[0.0, 1.0]).expect("w");
        launch(&k, 1, 32, &[force.addr(), pos.addr(), 2], &mut mem);
        let f = mem.read_f64s(force, 2).expect("r");
        assert!((f[0] + f[1]).abs() < 1e-9, "{f:?}");
        assert!(f[0].abs() > 1e-6, "nonzero interaction: {f:?}");
    }

    #[test]
    fn variants_are_distinct_kernels() {
        let a = damped_update_variant("v0", 0);
        let b = damped_update_variant("v1", 1);
        assert_ne!(a.instrs(), b.instrs(), "coefficients differ");
        // and they run
        let mut mem = GlobalMem::new(1 << 16);
        let d = mem.alloc(32 * 4).expect("d");
        mem.write_f32s(d, &[1.0; 32]).expect("w");
        launch(&a, 1, 32, &[d.addr(), 32], &mut mem);
        let v = mem.read_f32s(d, 32).expect("r");
        assert!(v.iter().all(|x| (*x - 0.91).abs() < 1e-5), "{v:?}");
    }
}
