//! `359.miniGhost` — finite difference with halo exchange.
//!
//! Table IV shape: 26 static kernels, 8010 dynamic kernels. Alternating
//! stencil variants with explicit "halo exchange" copies and a global
//! residual reduction each step.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Stencil variants (10) + copies (8) + reduce (1) + others = 26 static.
const STENCILS: usize = 10;
const COPIES: usize = 8;
const MISC: usize = 7;

/// The `359.miniGhost` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiniGhost {
    /// Problem scale.
    pub scale: Scale,
}

impl MiniGhost {
    /// ((width, height), timesteps).
    fn dims(&self) -> ((u32, u32), u32) {
        self.scale.pick(((8, 4), 2), ((8, 6), 25))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-4)
    }
}

impl Program for MiniGhost {
    fn name(&self) -> &str {
        "359.miniGhost"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let ((w, h), steps) = self.dims();
        let n = (w * h) as usize;
        let mut kernels = Vec::new();
        for i in 0..STENCILS {
            kernels.push(kernels::stencil5_f32(&format!("mg_stencil_k{i:02}")));
        }
        for i in 0..COPIES {
            kernels.push(kernels::copy_f32(&format!("mg_halo_k{i}")));
        }
        kernels.push(kernels::reduce_sum_f32("mg_residual", 32));
        for i in 0..MISC {
            kernels.push(kernels::damped_update_variant(&format!("mg_bspma_k{i}"), 29 + i as u32));
        }
        let m = load_kernels(rt, "minighost", kernels)?;
        let stencils: Vec<_> = (0..STENCILS)
            .map(|i| rt.get_kernel(m, &format!("mg_stencil_k{i:02}")))
            .collect::<Result<_, _>>()?;
        let halos: Vec<_> = (0..COPIES)
            .map(|i| rt.get_kernel(m, &format!("mg_halo_k{i}")))
            .collect::<Result<_, _>>()?;
        let residual = rt.get_kernel(m, "mg_residual")?;
        let misc: Vec<_> = (0..MISC)
            .map(|i| rt.get_kernel(m, &format!("mg_bspma_k{i}")))
            .collect::<Result<_, _>>()?;

        let a = rt.alloc((n * 4) as u32)?;
        let b = rt.alloc((n * 4) as u32)?;
        let partials = rt.alloc((n as u32).div_ceil(32) * 4)?;
        let mut init = vec![0.3f32; n];
        init[n / 3] = 9.0;
        init[2 * n / 3] = -4.0;
        rt.write_f32s(a, &init)?;
        rt.write_f32s(b, &init)?;

        let blocks = (n as u32).div_ceil(32);
        let (mut src, mut dst) = (a, b);
        for s in 0..steps {
            let st = stencils[(s as usize) % STENCILS];
            rt.launch(st, h, w, &[dst.addr(), src.addr(), 0.18f32.to_bits()])?;
            // Halo exchange: two copies per step, rotating buffers.
            let h1 = halos[(s as usize * 2) % COPIES];
            let h2 = halos[(s as usize * 2 + 1) % COPIES];
            rt.launch(h1, blocks, 32u32, &[src.addr(), dst.addr(), n as u32])?;
            rt.launch(h2, blocks, 32u32, &[dst.addr(), src.addr(), n as u32])?;
            let mk = misc[(s as usize) % MISC];
            rt.launch(mk, blocks, 32u32, &[dst.addr(), n as u32])?;
            rt.launch(residual, blocks, 32u32, &[partials.addr(), dst.addr(), n as u32])?;
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize()?;

        let field = rt.read_f32s(src, n)?;
        let parts = rt.read_f32s(partials, blocks as usize)?;
        let res: f64 = parts.iter().map(|v| *v as f64).sum();
        rt.println(format!("minighost cells {n} steps {steps}"));
        rt.println(format!("residual {}", fmt_f(res)));
        rt.write_file("minighost.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&MiniGhost { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("residual"));
    }

    #[test]
    fn static_kernel_count_is_26() {
        let out = run_program(&MiniGhost { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 26, "Table IV: 26 static kernels");
    }
}
