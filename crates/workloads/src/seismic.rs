//! `355.seismic` — seismic wave modeling.
//!
//! Table IV shape: 16 static kernels, 3502 dynamic kernels. A 1-D
//! wave-equation time loop (ping-pong `seis_step`), a source injection, an
//! absorbing boundary, and a bank of generated attenuation passes.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Generated attenuation variants (13 + 3 structural = 16 static kernels).
const VARIANTS: usize = 13;

/// The `355.seismic` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Seismic {
    /// Problem scale.
    pub scale: Scale,
}

impl Seismic {
    /// (grid points, timesteps).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((64, 6), (64, 110))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Seismic {
    fn name(&self) -> &str {
        "355.seismic"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (n, steps) = self.dims();
        let mut kernels = vec![
            kernels::wave_step_f32("seis_step"),
            kernels::saxpy_f32("seis_source"),
            kernels::guarded_update("seis_absorb"),
        ];
        for i in 0..VARIANTS {
            kernels
                .push(kernels::damped_update_variant(&format!("seis_atten_k{i:02}"), 7 + i as u32));
        }
        let m = load_kernels(rt, "seismic", kernels)?;
        let step = rt.get_kernel(m, "seis_step")?;
        let source = rt.get_kernel(m, "seis_source")?;
        let absorb = rt.get_kernel(m, "seis_absorb")?;
        let atten: Vec<_> = (0..VARIANTS)
            .map(|i| rt.get_kernel(m, &format!("seis_atten_k{i:02}")))
            .collect::<Result<_, _>>()?;

        let a = rt.alloc(n * 4)?;
        let b = rt.alloc(n * 4)?;
        let c = rt.alloc(n * 4)?;
        let pulse = rt.alloc(n * 4)?;
        rt.write_f32s(a, &vec![0.0; n as usize])?;
        rt.write_f32s(b, &vec![0.0; n as usize])?;
        // Ricker-ish source wavelet centred in the domain.
        let src: Vec<f32> = (0..n)
            .map(|i| {
                let t = (i as f32 - n as f32 / 2.0) / 4.0;
                (1.0 - 2.0 * t * t) * (-t * t).exp() * 0.1
            })
            .collect();
        rt.write_f32s(pulse, &src)?;

        let blocks = n.div_ceil(32);
        let courant = 0.4f32;
        let (mut prev, mut cur, mut next) = (a, b, c);
        for s in 0..steps {
            rt.launch(
                step,
                blocks,
                32u32,
                &[next.addr(), cur.addr(), prev.addr(), courant.to_bits(), n],
            )?;
            // Inject the source for the first quarter of the run.
            if s < steps / 4 + 1 {
                rt.launch(
                    source,
                    blocks,
                    32u32,
                    &[next.addr(), pulse.addr(), 1.0f32.to_bits(), n],
                )?;
            }
            // Absorb energy where amplitude exceeds a threshold (the
            // guarded path's dynamic count follows the wavefront).
            rt.launch(absorb, blocks, 32u32, &[next.addr(), 0.5f32.to_bits(), n])?;
            let at = atten[(s as usize) % VARIANTS];
            rt.launch(at, blocks, 32u32, &[next.addr(), n])?;
            let t = prev;
            prev = cur;
            cur = next;
            next = t;
        }
        rt.synchronize()?;

        let field = rt.read_f32s(cur, n as usize)?;
        let energy: f64 = field.iter().map(|v| (*v as f64) * (*v as f64)).sum();
        rt.println(format!("seismic points {n} steps {steps}"));
        rt.println(format!("wave_energy {}", fmt_f(energy)));
        rt.write_file("seismic.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_with_propagating_wave() {
        let out = run_program(&Seismic { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        let line = out.stdout.lines().find(|l| l.starts_with("wave_energy")).expect("energy");
        let v: f64 = line.split_whitespace().nth(1).expect("v").parse().expect("f64");
        assert!(v.is_finite(), "{v}");
    }

    #[test]
    fn static_kernel_count_is_16() {
        let out = run_program(&Seismic { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 16, "Table IV: 16 static kernels");
    }
}
