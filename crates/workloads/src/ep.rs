//! `352.ep` — embarrassingly parallel (NAS EP flavour).
//!
//! Table IV shape: 7 static kernels, 187 dynamic kernels. Rounds of
//! pseudo-random generation, transform, tallying, and reduction; integer
//! and atomic heavy, checked exactly (integer outputs have no tolerance).

use crate::common::{load_kernels, Scale};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};
use nvbitfi::ExactDiff;

/// The `352.ep` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ep {
    /// Problem scale.
    pub scale: Scale,
}

impl Ep {
    /// (elements, rounds).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((32, 5), (64, 30))
    }

    /// The program's SDC-checking script: integer outputs, exact.
    pub fn check() -> ExactDiff {
        ExactDiff
    }
}

impl Program for Ep {
    fn name(&self) -> &str {
        "352.ep"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (n, rounds) = self.dims();
        let nbins = 16u32;
        let m = load_kernels(
            rt,
            "ep",
            vec![
                kernels::lcg_scramble("ep_seed"),
                kernels::bitmix_u32("ep_next"),
                kernels::mufu_transform("ep_gauss"),
                kernels::atomic_histogram("ep_tally"),
                kernels::reduce_sum_f32("ep_reduce", 32),
                kernels::copy_f32("ep_snapshot"),
                kernels::saxpy_f32("ep_accum"),
            ],
        )?;
        let seed = rt.get_kernel(m, "ep_seed")?;
        let next = rt.get_kernel(m, "ep_next")?;
        let gauss = rt.get_kernel(m, "ep_gauss")?;
        let tally = rt.get_kernel(m, "ep_tally")?;
        let reduce = rt.get_kernel(m, "ep_reduce")?;
        let snapshot = rt.get_kernel(m, "ep_snapshot")?;
        let accum = rt.get_kernel(m, "ep_accum")?;

        let state = rt.alloc(n * 4)?;
        let fvals = rt.alloc(n * 4)?;
        let bins = rt.alloc(nbins * 4)?;
        let partials = rt.alloc(n.div_ceil(32) * 4)?;
        let acc = rt.alloc(n * 4)?;
        let snap = rt.alloc(n * 4)?;
        rt.write_u32s(state, &(0..n).map(|i| i.wrapping_mul(2654435761)).collect::<Vec<_>>())?;
        rt.write_f32s(acc, &vec![0.0; n as usize])?;

        let blocks = n.div_ceil(32);
        rt.launch(seed, blocks, 32u32, &[state.addr(), n, 4])?;
        for _ in 0..rounds {
            rt.launch(next, blocks, 32u32, &[state.addr(), n, 2])?;
            // interpret the integer state as small floats via transform
            rt.launch(
                gauss,
                blocks,
                32u32,
                &[fvals.addr(), state.addr(), 0.001f32.to_bits(), 0.0005f32.to_bits(), n],
            )?;
            rt.launch(tally, blocks, 32u32, &[bins.addr(), state.addr(), nbins - 1, n])?;
            rt.launch(reduce, blocks, 32u32, &[partials.addr(), fvals.addr(), n])?;
            rt.launch(accum, blocks, 32u32, &[acc.addr(), fvals.addr(), 0.1f32.to_bits(), n])?;
            rt.launch(snapshot, blocks, 32u32, &[snap.addr(), acc.addr(), n])?;
        }
        rt.synchronize()?;

        let hist = rt.read_u32s(bins, nbins as usize)?;
        let total: u32 = hist.iter().sum();
        rt.println(format!("ep elements {n} rounds {rounds}"));
        rt.println(format!("tally_total {total}"));
        rt.println(format!("histogram {hist:?}"));
        let bytes: Vec<u8> = hist.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.write_file("ep.out", bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_and_tallies_everything() {
        let (n, rounds) = Ep { scale: Scale::Test }.dims();
        let out = run_program(&Ep { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains(&format!("tally_total {}", n * rounds)));
    }

    #[test]
    fn paper_scale_matches_table_iv_shape() {
        let out = run_program(&Ep { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 7, "Table IV: 7 static kernels");
        // 1 + 30 rounds × 6 = 181 dynamic kernels (Table IV: 187).
        assert_eq!(out.summary.launches.len(), 181);
    }
}
