//! `370.bt` — block tri-diagonal solver for 3-D PDEs.
//!
//! Table IV shape: 50 static kernels, 10,069 dynamic kernels. NAS-BT
//! structure: tri-diagonal line sweeps in three logical dimensions, an
//! RHS stencil, and a large bank of generated block-update kernels.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Generated block-update kernels (45 + 5 structural = 50 static).
const BLOCKS: usize = 45;

/// The `370.bt` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bt {
    /// Problem scale.
    pub scale: Scale,
}

impl Bt {
    /// ((rows, rowlen), outer steps).
    fn dims(&self) -> ((u32, u32), u32) {
        self.scale.pick(((4, 8), 1), ((8, 8), 9))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Bt {
    fn name(&self) -> &str {
        "370.bt"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let ((rows, rowlen), steps) = self.dims();
        let n = (rows * rowlen) as usize;
        let mut kernels = vec![
            kernels::line_sweep_f32("bt_x_solve"),
            kernels::line_sweep_f32("bt_y_solve"),
            kernels::line_sweep_f32("bt_z_solve"),
            kernels::stencil5_f32("bt_compute_rhs"),
            kernels::saxpy_f32("bt_add"),
        ];
        for i in 0..BLOCKS {
            kernels
                .push(kernels::damped_update_variant(&format!("bt_block_k{i:02}"), 71 + i as u32));
        }
        let m = load_kernels(rt, "bt", kernels)?;
        let solves = [
            rt.get_kernel(m, "bt_x_solve")?,
            rt.get_kernel(m, "bt_y_solve")?,
            rt.get_kernel(m, "bt_z_solve")?,
        ];
        let rhs = rt.get_kernel(m, "bt_compute_rhs")?;
        let add = rt.get_kernel(m, "bt_add")?;
        let blocks_k: Vec<_> = (0..BLOCKS)
            .map(|i| rt.get_kernel(m, &format!("bt_block_k{i:02}")))
            .collect::<Result<_, _>>()?;

        let u = rt.alloc((n * 4) as u32)?;
        let rhs_buf = rt.alloc((n * 4) as u32)?;
        let init: Vec<f32> = (0..n).map(|i| 0.5 + 0.015 * ((i % 19) as f32)).collect();
        rt.write_f32s(u, &init)?;

        let nblocks = (n as u32).div_ceil(32);
        let row_blocks = rows.div_ceil(32);
        let sweep_coeffs = [(0.3f32, 0.2f32), (0.25, 0.25), (0.2, 0.3)];
        for s in 0..steps {
            rt.launch(rhs, rows, rowlen, &[rhs_buf.addr(), u.addr(), 0.1f32.to_bits()])?;
            for (dim, solve) in solves.iter().enumerate() {
                let (a, b) = sweep_coeffs[dim];
                rt.launch(
                    *solve,
                    row_blocks,
                    32u32,
                    &[u.addr(), a.to_bits(), b.to_bits(), rowlen, rows],
                )?;
            }
            // Five block-update kernels per step, rotating through the bank.
            for j in 0..5usize {
                let k = blocks_k[(s as usize * 5 + j) % BLOCKS];
                rt.launch(k, nblocks, 32u32, &[u.addr(), n as u32])?;
            }
            rt.launch(
                add,
                nblocks,
                32u32,
                &[u.addr(), rhs_buf.addr(), 0.05f32.to_bits(), n as u32],
            )?;
        }
        // This host is built abort-on-error style (CHECK macros calling
        // abort()): a device fault crashes the process — an OS-detected DUE.
        rt.synchronize_or_abort()?;

        let field = rt.read_f32s(u, n)?;
        let norm: f64 = field.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt();
        rt.println(format!("bt cells {n} steps {steps}"));
        rt.println(format!("u_rms {}", fmt_f(norm)));
        rt.write_file("bt.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Bt { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("u_rms"));
    }

    #[test]
    fn static_kernel_count_is_50() {
        let out = run_program(&Bt { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 50, "Table IV: 50 static kernels");
    }
}
