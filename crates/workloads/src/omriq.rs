//! `314.omriq` — medicine (MRI reconstruction Q-matrix).
//!
//! Table IV shape: 2 static kernels, 2 dynamic kernels — one
//! transcendental-heavy pass each (`mriq_phimag`, `mriq_q`).

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// The `314.omriq` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Omriq {
    /// Problem scale.
    pub scale: Scale,
}

impl Omriq {
    fn samples(&self) -> u32 {
        self.scale.pick(256, 2048)
    }

    /// The program's SDC-checking script. MUFU approximations warrant a
    /// looser tolerance.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Omriq {
    fn name(&self) -> &str {
        "314.omriq"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let n = self.samples();
        let m = load_kernels(
            rt,
            "omriq",
            vec![kernels::mufu_transform("mriq_phimag"), kernels::mufu_transform("mriq_q")],
        )?;
        let phimag = rt.get_kernel(m, "mriq_phimag")?;
        let q = rt.get_kernel(m, "mriq_q")?;

        let kx = rt.alloc(n * 4)?;
        let phi = rt.alloc(n * 4)?;
        let out = rt.alloc(n * 4)?;
        let ks: Vec<f32> = (0..n).map(|i| i as f32 * 0.013 - 3.0).collect();
        rt.write_f32s(kx, &ks)?;

        let blocks = n.div_ceil(64);
        rt.launch(
            phimag,
            blocks,
            64u32,
            &[phi.addr(), kx.addr(), 1.3f32.to_bits(), 2.1f32.to_bits(), n],
        )?;
        rt.launch(
            q,
            blocks,
            64u32,
            &[out.addr(), phi.addr(), 0.7f32.to_bits(), 4.5f32.to_bits(), n],
        )?;
        rt.synchronize()?;

        let qv = rt.read_f32s(out, n as usize)?;
        let energy: f64 = qv.iter().map(|v| (*v as f64) * (*v as f64)).sum();
        rt.println(format!("omriq samples {n}"));
        rt.println(format!("q_energy {}", fmt_f(energy)));
        rt.write_file("omriq.out", f32_bytes(&qv));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Omriq { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("q_energy"));
    }

    #[test]
    fn exactly_two_dynamic_kernels() {
        let out = run_program(&Omriq { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        assert_eq!(out.summary.launches.len(), 2);
    }
}
