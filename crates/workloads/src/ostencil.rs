//! `303.ostencil` — thermodynamics (2-D heat diffusion stencil).
//!
//! Table IV shape: 2 static kernels, 101 dynamic kernels
//! (50 ping-pong iterations × 2 `stencil_step` launches + 1 `final_copy`).

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// The `303.ostencil` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ostencil {
    /// Problem scale.
    pub scale: Scale,
}

impl Ostencil {
    /// (width, height, iterations): each iteration is two `stencil_step`
    /// launches (ping-pong), so dynamic kernels = 2·iters + 1.
    fn dims(&self) -> (u32, u32, u32) {
        self.scale.pick((8, 6, 5), (16, 12, 50))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-4)
    }
}

impl Program for Ostencil {
    fn name(&self) -> &str {
        "303.ostencil"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (w, h, iters) = self.dims();
        let n = (w * h) as usize;
        let m = load_kernels(
            rt,
            "ostencil",
            vec![kernels::stencil5_f32("stencil_step"), kernels::copy_f32("final_copy")],
        )?;
        let step = rt.get_kernel(m, "stencil_step")?;
        let copy = rt.get_kernel(m, "final_copy")?;

        let a = rt.alloc((n * 4) as u32)?;
        let b = rt.alloc((n * 4) as u32)?;
        let out = rt.alloc((n * 4) as u32)?;
        // Hot plate: top row at 100 degrees, a hot spot in the middle.
        let mut init = vec![0.0f32; n];
        for cell in init.iter_mut().take(w as usize) {
            *cell = 100.0;
        }
        init[(h / 2 * w + w / 2) as usize] = 250.0;
        rt.write_f32s(a, &init)?;
        rt.write_f32s(b, &init)?;

        let c = 0.2f32;
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(step, h, w, &[dst.addr(), src.addr(), c.to_bits()])?;
            std::mem::swap(&mut src, &mut dst);
            rt.launch(step, h, w, &[dst.addr(), src.addr(), c.to_bits()])?;
            std::mem::swap(&mut src, &mut dst);
        }
        rt.launch(copy, h, w, &[out.addr(), src.addr(), n as u32])?;
        rt.synchronize()?;

        let field = rt.read_f32s(out, n)?;
        let total: f64 = field.iter().map(|v| *v as f64).sum();
        let hottest = field.iter().cloned().fold(f32::MIN, f32::max);
        rt.println(format!("ostencil cells {n} iters {iters}"));
        rt.println(format!("heat_total {}", fmt_f(total)));
        rt.println(format!("heat_max {}", fmt_f(hottest as f64)));
        rt.write_file("ostencil.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_and_diffuses_heat() {
        let out = run_program(&Ostencil { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(!out.has_anomaly());
        assert!(out.stdout.contains("heat_total"));
        // The interior warmed up: max is below the initial spike but above 0.
        let max_line = out.stdout.lines().find(|l| l.starts_with("heat_max")).expect("max");
        let v: f64 = max_line.split_whitespace().nth(1).expect("v").parse().expect("f64");
        assert!(v > 50.0 && v < 250.0, "{v}");
        assert!(out.files.contains_key("ostencil.out"));
    }

    #[test]
    fn dynamic_kernel_count_matches_table_iv_shape() {
        let out = run_program(&Ostencil { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        // 2 static kernels, 101 dynamic kernels (Table IV).
        assert_eq!(out.summary.launches.len(), 101);
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 2);
    }
}
