//! `360.ilbdc` — fluid mechanics (lattice-Boltzmann relaxation core).
//!
//! Table IV shape: **1 static kernel, 1000 dynamic kernels** — the same
//! relaxation kernel launched over and over. Like `304.olbm` this host does
//! not check device errors.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// The `360.ilbdc` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ilbdc {
    /// Problem scale.
    pub scale: Scale,
}

impl Ilbdc {
    /// (cells, launches).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((8, 20), (8, 250))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Ilbdc {
    fn name(&self) -> &str {
        "360.ilbdc"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (ncells, launches) = self.dims();
        let total = (9 * ncells) as usize;
        let m = load_kernels(rt, "ilbdc", vec![kernels::lbm_collide("ilbdc_relax")])?;
        let relax = rt.get_kernel(m, "ilbdc_relax")?;

        let f = rt.alloc((total * 4) as u32)?;
        let init: Vec<f32> = (0..total).map(|i| 1.0 + 0.05 * ((i % 7) as f32)).collect();
        rt.write_f32s(f, &init)?;

        let blocks = ncells.div_ceil(32).max(1);
        for _ in 0..launches {
            rt.launch(relax, blocks, 32u32, &[f.addr(), 0.55f32.to_bits(), ncells])?;
        }
        // No error check (potential-DUE population).

        let field = rt.read_f32s(f, total)?;
        let mass: f64 = field.iter().map(|v| *v as f64).sum();
        rt.println(format!("ilbdc cells {ncells} launches {launches}"));
        rt.println(format!("mass {}", fmt_f(mass)));
        rt.write_file("ilbdc.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_and_conserves_mass() {
        let p = Ilbdc { scale: Scale::Test };
        let (ncells, _) = p.dims();
        let out = run_program(&p, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        // Relaxation conserves per-cell mass: total = Σ initial.
        let expect: f64 = (0..9 * ncells as usize).map(|i| 1.0 + 0.05 * ((i % 7) as f64)).sum();
        let line = out.stdout.lines().find(|l| l.starts_with("mass")).expect("mass");
        let got: f64 = line.split_whitespace().nth(1).expect("v").parse().expect("f64");
        assert!((got - expect).abs() < 1e-2, "{got} vs {expect}");
    }

    #[test]
    fn single_static_kernel_many_dynamic() {
        let out = run_program(&Ilbdc { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 1, "Table IV: 1 static kernel");
        assert_eq!(out.summary.launches.len(), 250);
    }
}
