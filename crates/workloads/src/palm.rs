//! `351.palm` — large-eddy simulation, atmospheric turbulence.
//!
//! Table IV shape: **100 static kernels**, 7050 dynamic kernels. PALM's
//! OpenACC build lowers each parallel loop nest into its own kernel; here
//! the 100 static kernels are generated coefficient variants of a damped
//! field update, launched round-robin over the shared field.
//!
//! Like `304.olbm`, this host never checks device errors.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Number of generated static kernels (Table IV).
pub const STATIC_KERNELS: usize = 100;

/// The `351.palm` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Palm {
    /// Problem scale.
    pub scale: Scale,
}

impl Palm {
    /// (field cells, total launches).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((32, 100), (64, 470))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-4)
    }
}

impl Program for Palm {
    fn name(&self) -> &str {
        "351.palm"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (n, launches) = self.dims();
        let kernels: Vec<_> = (0..STATIC_KERNELS)
            .map(|i| kernels::damped_update_variant(&format!("palm_k{i:02}"), i as u32))
            .collect();
        let m = load_kernels(rt, "palm", kernels)?;
        let handles: Vec<_> = (0..STATIC_KERNELS)
            .map(|i| rt.get_kernel(m, &format!("palm_k{i:02}")))
            .collect::<Result<_, _>>()?;

        let field = rt.alloc(n * 4)?;
        let init: Vec<f32> = (0..n).map(|i| 0.5 + 0.01 * (i % 17) as f32).collect();
        rt.write_f32s(field, &init)?;

        let blocks = n.div_ceil(32);
        for l in 0..launches {
            let k = handles[(l as usize) % STATIC_KERNELS];
            rt.launch(k, blocks, 32u32, &[field.addr(), n])?;
        }
        // No error check, as in olbm — unchecked anomalies become
        // potential DUEs.

        let f = rt.read_f32s(field, n as usize)?;
        let mean: f64 = f.iter().map(|v| *v as f64).sum::<f64>() / n as f64;
        rt.println(format!("palm cells {n} launches {launches}"));
        rt.println(format!("field_mean {}", fmt_f(mean)));
        rt.write_file("palm.out", f32_bytes(&f));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Palm { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("field_mean"));
    }

    #[test]
    fn hundred_static_kernels() {
        let out = run_program(&Palm { scale: Scale::Test }, RuntimeConfig::default(), None);
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), STATIC_KERNELS, "Table IV: 100 static kernels");
        assert_eq!(out.summary.launches.len(), 100);
    }
}
