//! `354.cg` — conjugate gradient.
//!
//! Table IV shape: 22 static kernels, 2027 dynamic kernels. The interesting
//! structural property reproduced here: the dot-product reduction runs as a
//! *tree* — the same static kernel (`cg_reduce`) is launched repeatedly with
//! shrinking grids, so different dynamic instances of one static kernel
//! execute different instruction counts. Approximate profiling (which
//! extrapolates from the first instance) misestimates exactly this pattern,
//! which is what drives the exact-vs-approximate divergence in Figure 2.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Generated auxiliary kernels to reach Table IV's 22 static kernels.
const AUX: usize = 15;

/// The `354.cg` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cg {
    /// Problem scale.
    pub scale: Scale,
}

impl Cg {
    /// (unknowns, row degree, iterations).
    fn dims(&self) -> (u32, u32, u32) {
        self.scale.pick((64, 3, 3), (128, 3, 22))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(5e-4)
    }
}

impl Program for Cg {
    fn name(&self) -> &str {
        "354.cg"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (n, deg, iters) = self.dims();
        let mut kernels = vec![
            kernels::spmv_gather("cg_spmv"),
            kernels::saxpy_f32("cg_axpy_x"),
            kernels::saxpy_f32("cg_axpy_r"),
            kernels::triad_f32("cg_update_p"),
            kernels::reduce_sum_f32("cg_reduce", 32),
            kernels::copy_f32("cg_copy"),
            kernels::mul_f32("cg_dot_mul"),
        ];
        for i in 0..AUX {
            kernels.push(kernels::damped_update_variant(
                &format!("cg_precond_k{i:02}"),
                40 + i as u32,
            ));
        }
        let m = load_kernels(rt, "cg", kernels)?;
        let spmv = rt.get_kernel(m, "cg_spmv")?;
        let axpy_x = rt.get_kernel(m, "cg_axpy_x")?;
        let axpy_r = rt.get_kernel(m, "cg_axpy_r")?;
        let update_p = rt.get_kernel(m, "cg_update_p")?;
        let reduce = rt.get_kernel(m, "cg_reduce")?;
        let copy = rt.get_kernel(m, "cg_copy")?;
        let dot_mul = rt.get_kernel(m, "cg_dot_mul")?;
        let precond: Vec<_> = (0..AUX)
            .map(|i| rt.get_kernel(m, &format!("cg_precond_k{i:02}")))
            .collect::<Result<_, _>>()?;

        // A diagonally-dominant sparse system with `deg` off-diagonals.
        let nnz = (n * deg) as usize;
        let val = rt.alloc((nnz * 4) as u32)?;
        let idx = rt.alloc((nnz * 4) as u32)?;
        let x = rt.alloc(n * 4)?;
        let r = rt.alloc(n * 4)?;
        let p = rt.alloc(n * 4)?;
        let ap = rt.alloc(n * 4)?;
        let scratch = rt.alloc(n * 4)?;
        let vals: Vec<f32> =
            (0..nnz).map(|k| if k % deg as usize == 0 { 2.5 } else { -0.2 }).collect();
        let idxs: Vec<u32> = (0..n)
            .flat_map(|i| (0..deg).map(move |j| if j == 0 { i } else { (i + j * 7) % n }))
            .collect();
        rt.write_f32s(val, &vals)?;
        rt.write_u32s(idx, &idxs)?;
        rt.write_f32s(x, &vec![0.0; n as usize])?;
        let b: Vec<f32> = (0..n).map(|i| 1.0 + 0.01 * (i % 9) as f32).collect();
        rt.write_f32s(r, &b)?;
        rt.write_f32s(p, &b)?;

        let blocks = n.div_ceil(32);
        // Reduce an n-vector down to one value through the tree; returns the
        // scalar read back on the host (mirrors CG's host-side alpha/beta).
        let tree_reduce = |rt: &mut Runtime, src: u32, len: u32| -> Result<f32, RuntimeError> {
            let mut len = len;
            let mut src = src;
            loop {
                let out_blocks = len.div_ceil(32);
                rt.launch(reduce, out_blocks, 32u32, &[scratch.addr(), src, len])?;
                if out_blocks == 1 {
                    return Ok(rt.read_f32s(scratch, 1)?[0]);
                }
                len = out_blocks;
                src = scratch.addr();
            }
        };

        let mut rho_prev = 1.0f32;
        for it in 0..iters {
            // Light "preconditioner" passes, a few per iteration.
            for (j, pk) in precond.iter().enumerate() {
                if (it as usize + j).is_multiple_of(5) {
                    rt.launch(*pk, blocks, 32u32, &[p.addr(), n])?;
                }
            }
            rt.launch(spmv, blocks, 32u32, &[ap.addr(), val.addr(), idx.addr(), p.addr(), deg, n])?;
            // rho = r·r, p_ap = p·Ap — elementwise product then tree-reduce.
            rt.launch(dot_mul, blocks, 32u32, &[scratch.addr(), r.addr(), r.addr(), n])?;
            let rho = tree_reduce(rt, scratch.addr(), n)?;
            rt.launch(dot_mul, blocks, 32u32, &[scratch.addr(), p.addr(), ap.addr(), n])?;
            let p_ap = tree_reduce(rt, scratch.addr(), n)?;
            // Host-side clamps keep this synthetic iteration contractive
            // even though the matrix is only approximately SPD.
            let alpha = (rho / p_ap.max(1e-6)).clamp(-1.0, 1.0);
            rt.launch(axpy_x, blocks, 32u32, &[x.addr(), p.addr(), alpha.to_bits(), n])?;
            rt.launch(axpy_r, blocks, 32u32, &[r.addr(), ap.addr(), (-alpha).to_bits(), n])?;
            let beta = (rho / rho_prev.max(1e-6)).clamp(0.0, 0.9);
            rho_prev = rho.max(1e-6);
            rt.launch(update_p, blocks, 32u32, &[p.addr(), r.addr(), p.addr(), beta.to_bits(), n])?;
            rt.launch(copy, blocks, 32u32, &[scratch.addr(), r.addr(), n])?;
        }
        rt.synchronize()?;

        let xs = rt.read_f32s(x, n as usize)?;
        let norm: f64 = xs.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt();
        rt.println(format!("cg unknowns {n} iters {iters}"));
        rt.println(format!("x_norm {}", fmt_f(norm)));
        rt.write_file("cg.out", f32_bytes(&xs));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_and_produces_solution() {
        let out = run_program(&Cg { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        let line = out.stdout.lines().find(|l| l.starts_with("x_norm")).expect("norm");
        let v: f64 = line.split_whitespace().nth(1).expect("v").parse().expect("f64");
        assert!(v.is_finite() && v > 0.0, "{v}");
    }

    #[test]
    fn static_kernel_count_is_22() {
        let out = run_program(&Cg { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 22, "Table IV: 22 static kernels");
    }

    #[test]
    fn reduce_tree_varies_instance_workload() {
        // The defining property: `cg_reduce` instances have different
        // dynamic sizes (the reduction tree shrinks).
        let out = run_program(&Cg { scale: Scale::Paper }, RuntimeConfig::default(), None);
        let sizes: std::collections::BTreeSet<u64> = out
            .summary
            .launches
            .iter()
            .filter(|l| l.kernel == "cg_reduce")
            .map(|l| l.stats.dyn_instrs)
            .collect();
        assert!(sizes.len() >= 2, "reduction tree must have ≥2 level sizes: {sizes:?}");
    }
}
