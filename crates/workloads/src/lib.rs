#![warn(missing_docs)]

//! # workloads — a SpecACCEL-analog benchmark suite
//!
//! Fifteen synthetic HPC programs mirroring the *structure* of the
//! SpecACCEL OpenACC v1.2 suite the NVBitFI paper evaluates on (Table IV):
//! the same static/dynamic kernel-count shape, a comparable mix of domains
//! (stencils, LBM, molecular dynamics, CG, line sweeps, …), per-program
//! golden outputs, and a per-program SDC-checking script — "SDC checking
//! scripts must always be provided by the user" (§IV-A).
//!
//! Each program is an opaque [`gpu_runtime::Program`]: host logic that
//! loads *binary* kernel modules and launches kernels. Fault-injection
//! tools attach to the runtime without the programs' knowledge.
//!
//! Use [`suite::suite`] for the full Table IV registry, or individual
//! program types ([`ostencil::Ostencil`], …) directly.
//!
//! ```
//! use workloads::{suite, Scale};
//! use gpu_runtime::{run_program, RuntimeConfig};
//!
//! let entry = suite::find(Scale::Test, "303.ostencil").expect("program exists");
//! let out = run_program(entry.program.as_ref(), RuntimeConfig::default(), None);
//! assert!(out.termination.is_clean());
//! ```

pub mod bt;
pub mod cg;
pub mod clvrleaf;
mod common;
pub mod ep;
pub mod ilbdc;
pub mod kernels;
pub mod md;
pub mod minighost;
pub mod olbm;
pub mod omriq;
pub mod ostencil;
pub mod palm;
pub mod seismic;
pub mod sp;
pub mod suite;
pub mod swim;

pub use common::{FileElem, Scale, TolerantCheck};
pub use suite::{find, suite, BenchEntry};
