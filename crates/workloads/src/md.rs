//! `350.md` — molecular dynamics (Lennard-Jones, FP64).
//!
//! Table IV shape: 3 static kernels, 53 dynamic kernels
//! (17 timesteps × (`md_forces` + `md_vel` + `md_integrate`) + 2 setup).
//! The FP64 arithmetic makes this the suite's main `G_FP64` target.

use crate::common::{f64_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// The `350.md` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Md {
    /// Problem scale.
    pub scale: Scale,
}

impl Md {
    /// (atoms, timesteps).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((8, 3), (24, 17))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f64(1e-9)
    }
}

impl Program for Md {
    fn name(&self) -> &str {
        "350.md"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (n, steps) = self.dims();
        let m = load_kernels(
            rt,
            "md",
            vec![
                kernels::lj_force_f64("md_forces"),
                kernels::daxpy_f64("md_vel"),
                kernels::integrate_f64("md_integrate"),
            ],
        )?;
        let forces = rt.get_kernel(m, "md_forces")?;
        let vel_update = rt.get_kernel(m, "md_vel")?;
        let integrate = rt.get_kernel(m, "md_integrate")?;

        let pos = rt.alloc(n * 8)?;
        let vel = rt.alloc(n * 8)?;
        let force = rt.alloc(n * 8)?;
        // A slightly perturbed 1-D chain.
        let ps: Vec<f64> = (0..n).map(|i| i as f64 * 1.2 + 0.01 * ((i % 3) as f64)).collect();
        rt.write_f64s(pos, &ps)?;
        rt.write_f64s(vel, &vec![0.0; n as usize])?;

        let dt = 0.002f32;
        let dt_bits = (dt as f64).to_bits();
        let blocks = n.div_ceil(32);
        // Setup: one force evaluation + half-kick (the 2 extra dynamic
        // kernels in the Table IV count).
        rt.launch(forces, blocks, 32u32, &[force.addr(), pos.addr(), n])?;
        rt.launch(
            vel_update,
            blocks,
            32u32,
            &[vel.addr(), force.addr(), dt_bits as u32, (dt_bits >> 32) as u32, n],
        )?;
        for _ in 0..steps {
            rt.launch(forces, blocks, 32u32, &[force.addr(), pos.addr(), n])?;
            rt.launch(
                vel_update,
                blocks,
                32u32,
                &[vel.addr(), force.addr(), dt_bits as u32, (dt_bits >> 32) as u32, n],
            )?;
            rt.launch(integrate, blocks, 32u32, &[pos.addr(), vel.addr(), dt.to_bits(), n])?;
        }
        // This host is built abort-on-error style (CHECK macros calling
        // abort()): a device fault crashes the process — an OS-detected DUE.
        rt.synchronize_or_abort()?;

        let p = rt.read_f64s(pos, n as usize)?;
        let v = rt.read_f64s(vel, n as usize)?;
        let com: f64 = p.iter().sum::<f64>() / n as f64;
        let ke: f64 = v.iter().map(|x| 0.5 * x * x).sum();
        rt.println(format!("md atoms {n} steps {steps}"));
        rt.println(format!("center_of_mass {}", fmt_f(com)));
        rt.println(format!("kinetic_energy {}", fmt_f(ke)));
        rt.write_file("md.out", f64_bytes(&p));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean_and_moves_atoms() {
        let out = run_program(&Md { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        let ke_line = out.stdout.lines().find(|l| l.starts_with("kinetic_energy")).expect("ke");
        let ke: f64 = ke_line.split_whitespace().nth(1).expect("v").parse().expect("f64");
        assert!(ke > 0.0, "atoms must move: {ke}");
    }

    #[test]
    fn paper_scale_matches_table_iv_shape() {
        let out = run_program(&Md { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        // 3 static kernels, 53 dynamic kernels (Table IV).
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert_eq!(out.summary.launches.len(), 53);
    }
}
