//! Shared host-side helpers: problem scaling, module assembly, and the
//! tolerance-based SDC checker the FP programs use.

use gpu_isa::{encode, Kernel, Module};
use gpu_runtime::{ModuleId, ProgramOutput, Runtime, RuntimeError};
use nvbitfi::{GoldenOutput, SdcCheck, SdcReason, SdcVerdict};
use serde::{Deserialize, Serialize};

/// Problem scale: `Test` keeps runs tiny for debug-build unit tests;
/// `Paper` mirrors Table IV's kernel structure (scaled to simulator size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny inputs for fast (debug-build) testing.
    Test,
    /// The Table IV-shaped configuration used by the benchmark harness.
    #[default]
    Paper,
}

impl Scale {
    /// Pick a value by scale.
    pub fn pick<T>(self, test: T, paper: T) -> T {
        match self {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }
}

/// Assemble kernels into a module *binary* and load it — the only way
/// programs hand code to the runtime (no source crosses the boundary).
pub(crate) fn load_kernels(
    rt: &mut Runtime,
    name: &str,
    kernels: Vec<Kernel>,
) -> Result<ModuleId, RuntimeError> {
    let bytes = encode::encode_module(&Module::new(name, kernels));
    rt.load_module(&bytes)
}

/// Format a float for stdout so golden comparison is deterministic.
pub(crate) fn fmt_f(v: f64) -> String {
    format!("{v:.6e}")
}

/// Element type of a program's output files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileElem {
    /// Little-endian `f32` array.
    F32,
    /// Little-endian `f64` array.
    F64,
    /// Raw bytes (compared exactly).
    Bytes,
}

/// The SpecACCEL-style numeric checker: stdout tokens and output-file
/// elements must match golden within a relative tolerance; non-numeric
/// stdout tokens must match exactly.
#[derive(Debug, Clone, Copy)]
pub struct TolerantCheck {
    /// Relative tolerance (against `max(1, |golden|)`).
    pub rel_tol: f64,
    /// How output files are interpreted.
    pub file_elem: FileElem,
}

impl TolerantCheck {
    /// A checker with the given relative tolerance over `f32` files.
    pub fn f32(rel_tol: f64) -> TolerantCheck {
        TolerantCheck { rel_tol, file_elem: FileElem::F32 }
    }

    /// A checker with the given relative tolerance over `f64` files.
    pub fn f64(rel_tol: f64) -> TolerantCheck {
        TolerantCheck { rel_tol, file_elem: FileElem::F64 }
    }

    fn close(&self, golden: f64, got: f64) -> bool {
        let scale = golden.abs().max(1.0);
        // Written so a NaN on either side fails the comparison.
        (got - golden).abs() <= self.rel_tol * scale
    }

    fn check_stdout(&self, golden: &str, got: &str) -> bool {
        let gt: Vec<&str> = golden.split_whitespace().collect();
        let rt: Vec<&str> = got.split_whitespace().collect();
        if gt.len() != rt.len() {
            return false;
        }
        gt.iter().zip(&rt).all(|(g, r)| match (g.parse::<f64>(), r.parse::<f64>()) {
            (Ok(gv), Ok(rv)) => self.close(gv, rv),
            _ => g == r,
        })
    }

    fn check_file(&self, golden: &[u8], got: &[u8]) -> bool {
        if golden.len() != got.len() {
            return false;
        }
        match self.file_elem {
            FileElem::Bytes => golden == got,
            FileElem::F32 => golden.chunks_exact(4).zip(got.chunks_exact(4)).all(|(g, r)| {
                let gv = f32::from_le_bytes([g[0], g[1], g[2], g[3]]) as f64;
                let rv = f32::from_le_bytes([r[0], r[1], r[2], r[3]]) as f64;
                self.close(gv, rv)
            }),
            FileElem::F64 => golden.chunks_exact(8).zip(got.chunks_exact(8)).all(|(g, r)| {
                let gv = f64::from_le_bytes([g[0], g[1], g[2], g[3], g[4], g[5], g[6], g[7]]);
                let rv = f64::from_le_bytes([r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]]);
                self.close(gv, rv)
            }),
        }
    }
}

impl SdcCheck for TolerantCheck {
    fn check(&self, golden: &GoldenOutput, run: &ProgramOutput) -> SdcVerdict {
        let mut reasons = Vec::new();
        if !self.check_stdout(&golden.stdout, &run.stdout) {
            reasons.push(SdcReason::Stdout);
        }
        for (name, bytes) in &golden.files {
            match run.files.get(name) {
                Some(got) if self.check_file(bytes, got) => {}
                _ => reasons.push(SdcReason::File(name.clone())),
            }
        }
        for name in run.files.keys() {
            if !golden.files.contains_key(name) {
                reasons.push(SdcReason::File(name.clone()));
            }
        }
        if reasons.is_empty() {
            SdcVerdict::Pass
        } else {
            SdcVerdict::Fail(reasons)
        }
    }
}

/// Serialize an `f32` slice as little-endian bytes (for output files).
pub(crate) fn f32_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Serialize an `f64` slice as little-endian bytes (for output files).
pub(crate) fn f64_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::RunSummary;
    use std::collections::BTreeMap;

    fn golden(stdout: &str, file: Vec<u8>) -> GoldenOutput {
        let mut files = BTreeMap::new();
        files.insert("out.dat".to_string(), file);
        GoldenOutput { stdout: stdout.into(), files, summary: RunSummary::default() }
    }

    fn run(stdout: &str, file: Vec<u8>) -> ProgramOutput {
        let mut files = BTreeMap::new();
        files.insert("out.dat".to_string(), file);
        ProgramOutput {
            stdout: stdout.into(),
            files,
            termination: gpu_runtime::Termination::Normal { exit_code: 0 },
            anomalies: Vec::new(),
            summary: RunSummary::default(),
            prefix_instrs_skipped: 0,
        }
    }

    #[test]
    fn tolerant_stdout_accepts_small_drift() {
        let c = TolerantCheck::f32(1e-4);
        let g = golden("checksum 1.000000e0 cells 64", f32_bytes(&[1.0]));
        let ok = run("checksum 1.000050e0 cells 64", f32_bytes(&[1.0]));
        assert_eq!(c.check(&g, &ok), SdcVerdict::Pass);
        let bad = run("checksum 1.100000e0 cells 64", f32_bytes(&[1.0]));
        assert!(matches!(c.check(&g, &bad), SdcVerdict::Fail(_)));
    }

    #[test]
    fn tolerant_rejects_token_changes() {
        let c = TolerantCheck::f32(1e-4);
        let g = golden("checksum 1.0", f32_bytes(&[1.0]));
        assert!(matches!(
            c.check(&g, &run("checksum 1.0 extra", f32_bytes(&[1.0]))),
            SdcVerdict::Fail(_)
        ));
        assert!(matches!(
            c.check(&g, &run("CHECKSUM 1.0", f32_bytes(&[1.0]))),
            SdcVerdict::Fail(_)
        ));
    }

    #[test]
    fn tolerant_file_comparison() {
        let c = TolerantCheck::f32(1e-3);
        let g = golden("x", f32_bytes(&[1.0, 2.0, 3.0]));
        assert_eq!(c.check(&g, &run("x", f32_bytes(&[1.0005, 2.0, 3.0]))), SdcVerdict::Pass);
        assert!(matches!(c.check(&g, &run("x", f32_bytes(&[1.5, 2.0, 3.0]))), SdcVerdict::Fail(_)));
        // length change fails
        assert!(matches!(c.check(&g, &run("x", f32_bytes(&[1.0, 2.0]))), SdcVerdict::Fail(_)));
    }

    #[test]
    fn nan_always_fails() {
        let c = TolerantCheck::f32(1e-3);
        let g = golden("v 1.0", f32_bytes(&[1.0]));
        assert!(matches!(c.check(&g, &run("v NaN", f32_bytes(&[1.0]))), SdcVerdict::Fail(_)));
        assert!(matches!(c.check(&g, &run("v 1.0", f32_bytes(&[f32::NAN]))), SdcVerdict::Fail(_)));
    }

    #[test]
    fn f64_files() {
        let c = TolerantCheck::f64(1e-9);
        let g = golden("x", f64_bytes(&[1.0, -2.0]));
        assert_eq!(c.check(&g, &run("x", f64_bytes(&[1.0, -2.0]))), SdcVerdict::Pass);
        assert!(matches!(c.check(&g, &run("x", f64_bytes(&[1.0, -2.1]))), SdcVerdict::Fail(_)));
    }

    #[test]
    fn missing_and_extra_files_fail() {
        let c = TolerantCheck::f32(1e-3);
        let g = golden("x", f32_bytes(&[1.0]));
        let mut r = run("x", f32_bytes(&[1.0]));
        r.files.insert("stray.dat".into(), vec![1]);
        assert!(matches!(c.check(&g, &r), SdcVerdict::Fail(_)));
        let mut r = run("x", f32_bytes(&[1.0]));
        r.files.clear();
        assert!(matches!(c.check(&g, &r), SdcVerdict::Fail(_)));
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Test.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }
}
