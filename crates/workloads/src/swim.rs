//! `363.swim` — weather (shallow-water equations).
//!
//! Table IV shape: 22 static kernels, 11,999 dynamic kernels. Three coupled
//! fields (u, v, p) updated by per-field stencils, time-smoothed with
//! triads, boundary-corrected by guarded updates, plus a bank of generated
//! filter passes.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Generated filter kernels (13 + 9 structural = 22 static).
const FILTERS: usize = 13;

/// The `363.swim` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Swim {
    /// Problem scale.
    pub scale: Scale,
}

impl Swim {
    /// ((width, height), timesteps).
    fn dims(&self) -> ((u32, u32), u32) {
        self.scale.pick(((8, 4), 2), ((8, 8), 50))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Swim {
    fn name(&self) -> &str {
        "363.swim"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let ((w, h), steps) = self.dims();
        let n = (w * h) as usize;
        let mut kernels = vec![
            kernels::stencil5_f32("swim_calc_u"),
            kernels::stencil5_f32("swim_calc_v"),
            kernels::stencil5_f32("swim_calc_p"),
            kernels::triad_f32("swim_smooth_u"),
            kernels::triad_f32("swim_smooth_v"),
            kernels::triad_f32("swim_smooth_p"),
            kernels::guarded_update("swim_bc_u"),
            kernels::guarded_update("swim_bc_v"),
            kernels::guarded_update("swim_bc_p"),
        ];
        for i in 0..FILTERS {
            kernels.push(kernels::damped_update_variant(
                &format!("swim_filter_k{i:02}"),
                53 + i as u32,
            ));
        }
        let m = load_kernels(rt, "swim", kernels)?;
        let calc = [
            rt.get_kernel(m, "swim_calc_u")?,
            rt.get_kernel(m, "swim_calc_v")?,
            rt.get_kernel(m, "swim_calc_p")?,
        ];
        let smooth = [
            rt.get_kernel(m, "swim_smooth_u")?,
            rt.get_kernel(m, "swim_smooth_v")?,
            rt.get_kernel(m, "swim_smooth_p")?,
        ];
        let bc = [
            rt.get_kernel(m, "swim_bc_u")?,
            rt.get_kernel(m, "swim_bc_v")?,
            rt.get_kernel(m, "swim_bc_p")?,
        ];
        let filters: Vec<_> = (0..FILTERS)
            .map(|i| rt.get_kernel(m, &format!("swim_filter_k{i:02}")))
            .collect::<Result<_, _>>()?;

        // Three fields and a scratch buffer each.
        let mut fields = Vec::new();
        for fi in 0..3u32 {
            let cur = rt.alloc((n * 4) as u32)?;
            let new = rt.alloc((n * 4) as u32)?;
            let init: Vec<f32> = (0..n)
                .map(|i| 0.2 * (fi as f32 + 1.0) + 0.03 * (((i as u32 + fi * 5) % 11) as f32))
                .collect();
            rt.write_f32s(cur, &init)?;
            rt.write_f32s(new, &init)?;
            fields.push((cur, new));
        }

        let blocks = (n as u32).div_ceil(32);
        for s in 0..steps {
            for fi in 0..3usize {
                let (cur, new) = fields[fi];
                rt.launch(calc[fi], h, w, &[new.addr(), cur.addr(), 0.12f32.to_bits()])?;
                // time smoothing: cur = cur + 0.5*(new)
                rt.launch(
                    smooth[fi],
                    blocks,
                    32u32,
                    &[cur.addr(), cur.addr(), new.addr(), 0.5f32.to_bits(), n as u32],
                )?;
                rt.launch(bc[fi], blocks, 32u32, &[cur.addr(), 1.0f32.to_bits(), n as u32])?;
            }
            let f = filters[(s as usize) % FILTERS];
            let (cur, _) = fields[(s as usize) % 3];
            rt.launch(f, blocks, 32u32, &[cur.addr(), n as u32])?;
        }
        rt.synchronize()?;

        let mut all = Vec::new();
        let mut checks = Vec::new();
        for (cur, _) in &fields {
            let f = rt.read_f32s(*cur, n)?;
            checks.push(f.iter().map(|v| *v as f64).sum::<f64>());
            all.extend_from_slice(&f);
        }
        rt.println(format!("swim cells {n} steps {steps}"));
        rt.println(format!(
            "u_sum {} v_sum {} p_sum {}",
            fmt_f(checks[0]),
            fmt_f(checks[1]),
            fmt_f(checks[2])
        ));
        rt.write_file("swim.out", f32_bytes(&all));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Swim { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("u_sum"));
    }

    #[test]
    fn static_kernel_count_is_22() {
        let out = run_program(&Swim { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 22, "Table IV: 22 static kernels");
    }
}
