//! `353.clvrleaf` — weather (CloverLeaf-style compressible hydrodynamics).
//!
//! Table IV shape: **116 static kernels**, 12,528 dynamic kernels. The
//! OpenACC CloverLeaf famously compiles into well over a hundred small
//! kernels; here: 112 generated cell-update variants plus a two-buffer
//! stencil pair, a guarded flux limiter, and a field copy.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Number of generated variant kernels (112 + 4 structural = 116 total).
const VARIANTS: usize = 112;

/// The `353.clvrleaf` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clvrleaf {
    /// Problem scale.
    pub scale: Scale,
}

impl Clvrleaf {
    /// ((width, height), hydro steps).
    fn dims(&self) -> ((u32, u32), u32) {
        self.scale.pick(((8, 4), 1), ((8, 6), 4))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-4)
    }
}

impl Program for Clvrleaf {
    fn name(&self) -> &str {
        "353.clvrleaf"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let ((w, h), steps) = self.dims();
        let n = (w * h) as usize;
        let mut kernels: Vec<_> = (0..VARIANTS)
            .map(|i| kernels::damped_update_variant(&format!("clvr_cell_k{i:03}"), i as u32))
            .collect();
        kernels.push(kernels::stencil5_f32("clvr_advec_x"));
        kernels.push(kernels::stencil5_f32("clvr_advec_y"));
        kernels.push(kernels::guarded_update("clvr_limiter"));
        kernels.push(kernels::copy_f32("clvr_halo"));
        let m = load_kernels(rt, "clvrleaf", kernels)?;
        let variants: Vec<_> = (0..VARIANTS)
            .map(|i| rt.get_kernel(m, &format!("clvr_cell_k{i:03}")))
            .collect::<Result<_, _>>()?;
        let advec_x = rt.get_kernel(m, "clvr_advec_x")?;
        let advec_y = rt.get_kernel(m, "clvr_advec_y")?;
        let limiter = rt.get_kernel(m, "clvr_limiter")?;
        let halo = rt.get_kernel(m, "clvr_halo")?;

        let density = rt.alloc((n * 4) as u32)?;
        let work = rt.alloc((n * 4) as u32)?;
        let init: Vec<f32> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 0.125 }).collect(); // Sod-like split
        rt.write_f32s(density, &init)?;

        let blocks = (n as u32).div_ceil(32);
        for _ in 0..steps {
            // Every cell-update pass (EOS, viscosity, accelerate, …)
            for v in &variants {
                rt.launch(*v, blocks, 32u32, &[density.addr(), n as u32])?;
            }
            // Directional advection sweeps (ping-pong).
            rt.launch(advec_x, h, w, &[work.addr(), density.addr(), 0.15f32.to_bits()])?;
            rt.launch(advec_y, h, w, &[density.addr(), work.addr(), 0.15f32.to_bits()])?;
            // Flux limiter only where density drifted high.
            rt.launch(limiter, blocks, 32u32, &[density.addr(), 1.05f32.to_bits(), n as u32])?;
            rt.launch(halo, blocks, 32u32, &[work.addr(), density.addr(), n as u32])?;
        }
        rt.synchronize()?;

        let field = rt.read_f32s(density, n)?;
        let mass: f64 = field.iter().map(|v| *v as f64).sum();
        rt.println(format!("clvrleaf cells {n} steps {steps}"));
        rt.println(format!("mass {}", fmt_f(mass)));
        rt.write_file("clvrleaf.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Clvrleaf { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("mass"));
    }

    #[test]
    fn static_kernel_count_is_116() {
        let out = run_program(&Clvrleaf { scale: Scale::Test }, RuntimeConfig::default(), None);
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 116, "Table IV: 116 static kernels");
    }
}
