//! `304.olbm` — computational fluid dynamics, Lattice Boltzmann Method.
//!
//! Table IV shape: 3 static kernels, ~900 dynamic kernels. Each timestep
//! launches one `lbm_collide`, nine per-direction `lbm_stream`s, and one
//! `lbm_bc` boundary relaxation, so 80 timesteps ≈ 881 dynamic kernels.
//!
//! This host deliberately does *not* check device errors
//! (`cudaGetLastError` is never called) — it is one of the programs that
//! populate the paper's *potential DUE* category when a fault corrupts an
//! address.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// The `304.olbm` benchmark program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Olbm {
    /// Problem scale.
    pub scale: Scale,
}

impl Olbm {
    /// (cells, timesteps). Cells must be a power of two (circular shifts).
    fn dims(&self) -> (u32, u32) {
        self.scale.pick((16, 8), (16, 80))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Olbm {
    fn name(&self) -> &str {
        "304.olbm"
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let (ncells, steps) = self.dims();
        let total = (9 * ncells) as usize;
        let m = load_kernels(
            rt,
            "olbm",
            vec![
                kernels::lbm_collide("lbm_collide"),
                kernels::lbm_stream("lbm_stream"),
                kernels::guarded_update("lbm_bc"),
            ],
        )?;
        let collide = rt.get_kernel(m, "lbm_collide")?;
        let stream = rt.get_kernel(m, "lbm_stream")?;
        let bc = rt.get_kernel(m, "lbm_bc")?;

        let f = rt.alloc((total * 4) as u32)?;
        let g = rt.alloc((total * 4) as u32)?;
        let init: Vec<f32> =
            (0..total).map(|i| 1.0 + 0.08 * ((i % 13) as f32) - 0.04 * ((i % 5) as f32)).collect();
        rt.write_f32s(f, &init)?;

        let omega = 0.65f32;
        // Per-direction circular shifts (D2Q9-ish velocity set).
        let shifts = [0u32, 1, ncells - 1, 4, ncells - 4, 5, ncells - 5, 3, ncells - 3];
        let blocks = ncells.div_ceil(32).max(1);
        let (mut cur, mut nxt) = (f, g);
        for _ in 0..steps {
            rt.launch(collide, blocks, 32u32, &[cur.addr(), omega.to_bits(), ncells])?;
            for (d, sh) in shifts.iter().enumerate() {
                rt.launch(stream, blocks, 32u32, &[nxt.addr(), cur.addr(), d as u32, *sh, ncells])?;
            }
            // Dampen distributions that drifted high (threshold evolves the
            // executed-instruction count across instances).
            rt.launch(bc, blocks * 9, 32u32, &[nxt.addr(), 1.2f32.to_bits(), total as u32])?;
            std::mem::swap(&mut cur, &mut nxt);
        }
        // No rt.synchronize() here on purpose — see module docs.

        let field = rt.read_f32s(cur, total)?;
        let mass: f64 = field.iter().map(|v| *v as f64).sum();
        rt.println(format!("olbm cells {ncells} steps {steps}"));
        rt.println(format!("mass {}", fmt_f(mass)));
        rt.write_file("olbm.out", f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn golden_run_is_clean() {
        let out = run_program(&Olbm { scale: Scale::Test }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(!out.has_anomaly());
        assert!(out.stdout.contains("mass"));
        assert!(out.files.contains_key("olbm.out"));
    }

    #[test]
    fn paper_scale_matches_table_iv_shape() {
        let out = run_program(&Olbm { scale: Scale::Paper }, RuntimeConfig::default(), None);
        assert!(out.termination.is_clean());
        let names: std::collections::BTreeSet<_> =
            out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
        assert_eq!(names.len(), 3, "3 static kernels");
        // 80 steps × 11 launches = 880 dynamic kernels (Table IV: 900).
        assert_eq!(out.summary.launches.len(), 880);
    }
}
