//! `356.sp` and `357.csp` — scalar penta-diagonal solvers.
//!
//! Table IV shape: 71 / 69 static kernels, ~27k dynamic kernels (scaled
//! here). Both programs share the NAS-SP structure — per-dimension line
//! sweeps plus many small cell-update kernels — and differ in coefficient
//! sets and kernel counts, exactly as SP and its C-variant CSP do.

use crate::common::{f32_bytes, fmt_f, load_kernels, Scale, TolerantCheck};
use crate::kernels;
use gpu_runtime::{Program, Runtime, RuntimeError};

/// Which of the two penta-diagonal programs this instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpVariant {
    /// `356.sp`: 71 static kernels.
    Sp,
    /// `357.csp`: 69 static kernels, different sweep coefficients.
    Csp,
}

impl SpVariant {
    fn name(self) -> &'static str {
        match self {
            SpVariant::Sp => "356.sp",
            SpVariant::Csp => "357.csp",
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            SpVariant::Sp => "sp",
            SpVariant::Csp => "csp",
        }
    }

    /// Generated cell-update kernels (plus 4 structural = Table IV count).
    fn variants(self) -> usize {
        match self {
            SpVariant::Sp => 67,  // 67 + 4 = 71
            SpVariant::Csp => 65, // 65 + 4 = 69
        }
    }

    fn coeffs(self) -> (f32, f32) {
        match self {
            SpVariant::Sp => (0.35, 0.20),
            SpVariant::Csp => (0.30, 0.25),
        }
    }
}

/// A scalar penta-diagonal solver benchmark (`356.sp` / `357.csp`).
#[derive(Debug, Clone, Copy)]
pub struct Sp {
    /// Problem scale.
    pub scale: Scale,
    /// SP or CSP.
    pub variant: SpVariant,
}

impl Sp {
    /// ((rows, rowlen), outer steps).
    fn dims(&self) -> ((u32, u32), u32) {
        self.scale.pick(((4, 8), 1), ((8, 8), 10))
    }

    /// The program's SDC-checking script.
    pub fn check() -> TolerantCheck {
        TolerantCheck::f32(1e-3)
    }
}

impl Program for Sp {
    fn name(&self) -> &str {
        self.variant.name()
    }

    fn run(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        let ((rows, rowlen), steps) = self.dims();
        let n = (rows * rowlen) as usize;
        let p = self.variant.prefix();
        let nvariants = self.variant.variants();
        let (ca, cb) = self.variant.coeffs();

        let mut kernels = vec![
            kernels::line_sweep_f32(&format!("{p}_sweep_x")),
            kernels::line_sweep_f32(&format!("{p}_sweep_y")),
            kernels::stencil5_f32(&format!("{p}_rhs")),
            kernels::guarded_update(&format!("{p}_adi_fix")),
        ];
        for i in 0..nvariants {
            kernels
                .push(kernels::damped_update_variant(&format!("{p}_cell_k{i:02}"), 11 + i as u32));
        }
        let m = load_kernels(rt, p, kernels)?;
        let sweep_x = rt.get_kernel(m, &format!("{p}_sweep_x"))?;
        let sweep_y = rt.get_kernel(m, &format!("{p}_sweep_y"))?;
        let rhs = rt.get_kernel(m, &format!("{p}_rhs"))?;
        let adi_fix = rt.get_kernel(m, &format!("{p}_adi_fix"))?;
        let cells: Vec<_> = (0..nvariants)
            .map(|i| rt.get_kernel(m, &format!("{p}_cell_k{i:02}")))
            .collect::<Result<_, _>>()?;

        let u = rt.alloc((n * 4) as u32)?;
        let work = rt.alloc((n * 4) as u32)?;
        let init: Vec<f32> = (0..n).map(|i| 0.4 + 0.02 * ((i % 23) as f32)).collect();
        rt.write_f32s(u, &init)?;

        let blocks = (n as u32).div_ceil(32);
        let row_blocks = rows.div_ceil(32);
        for s in 0..steps {
            // Compute an RHS-like smoothed field.
            rt.launch(rhs, rows, rowlen, &[work.addr(), u.addr(), 0.1f32.to_bits()])?;
            // ADI line sweeps along both logical dimensions.
            rt.launch(
                sweep_x,
                row_blocks,
                32u32,
                &[u.addr(), ca.to_bits(), cb.to_bits(), rowlen, rows],
            )?;
            rt.launch(
                sweep_y,
                row_blocks,
                32u32,
                &[u.addr(), cb.to_bits(), ca.to_bits(), rowlen, rows],
            )?;
            // A rotating subset of the cell-update kernels each step.
            for (j, c) in cells.iter().enumerate() {
                if (s as usize + j).is_multiple_of(2) {
                    rt.launch(*c, blocks, 32u32, &[u.addr(), n as u32])?;
                }
            }
            rt.launch(adi_fix, blocks, 32u32, &[u.addr(), 0.9f32.to_bits(), n as u32])?;
        }
        rt.synchronize()?;

        let field = rt.read_f32s(u, n)?;
        let norm: f64 = field.iter().map(|v| (*v as f64).abs()).sum();
        rt.println(format!("{p} cells {n} steps {steps}"));
        rt.println(format!("u_norm {}", fmt_f(norm)));
        rt.write_file(format!("{p}.out"), f32_bytes(&field));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_runtime::{run_program, RuntimeConfig};

    #[test]
    fn sp_golden_run_is_clean() {
        let out = run_program(
            &Sp { scale: Scale::Test, variant: SpVariant::Sp },
            RuntimeConfig::default(),
            None,
        );
        assert!(out.termination.is_clean(), "{}", out.stdout);
        assert!(out.stdout.contains("u_norm"));
    }

    #[test]
    fn static_kernel_counts_match_table_iv() {
        for (variant, expect) in [(SpVariant::Sp, 71usize), (SpVariant::Csp, 69)] {
            let out =
                run_program(&Sp { scale: Scale::Paper, variant }, RuntimeConfig::default(), None);
            assert!(out.termination.is_clean());
            let names: std::collections::BTreeSet<_> =
                out.summary.launches.iter().map(|l| l.kernel.as_str()).collect();
            assert_eq!(names.len(), expect, "{variant:?}");
        }
    }

    #[test]
    fn sp_and_csp_produce_different_results() {
        let a = run_program(
            &Sp { scale: Scale::Test, variant: SpVariant::Sp },
            RuntimeConfig::default(),
            None,
        );
        let b = run_program(
            &Sp { scale: Scale::Test, variant: SpVariant::Csp },
            RuntimeConfig::default(),
            None,
        );
        let norm = |out: &gpu_runtime::ProgramOutput| {
            out.stdout
                .lines()
                .find(|l| l.contains("u_norm"))
                .map(|l| l.split_whitespace().nth(1).expect("v").to_string())
        };
        assert_ne!(norm(&a), norm(&b), "different coefficient sets");
    }
}
