//! Every suite kernel must pass the static linter.
//!
//! The campaign's dead-fault pruning trusts the analyses behind `fi lint`,
//! so the suite's own kernels are held to the zero-defect bar: no
//! uninitialized reads, no unreachable code, no missing `EXIT`, no dead
//! writes. Modules are captured the same way a real tool sees them — at
//! load time, as decoded binaries — so the encode/decode round-trip is
//! linted, not the builder output.

use gpu_analysis::{lint_module, render_text, Severity};
use gpu_isa::Module;
use gpu_runtime::{run_program, RuntimeConfig, Tool};
use gpu_sim::ExecHook;
use parking_lot::Mutex;
use std::sync::Arc;
use workloads::{suite, Scale};

/// A tool that records every module the program loads.
struct ModuleCapture {
    modules: Arc<Mutex<Vec<Module>>>,
}

impl ExecHook for ModuleCapture {}

impl Tool for ModuleCapture {
    fn on_module_load(&mut self, module: &Module) {
        self.modules.lock().push(module.clone());
    }
}

#[test]
fn all_suite_kernels_lint_clean() {
    let mut failures = String::new();
    for entry in suite(Scale::Test) {
        let modules = Arc::new(Mutex::new(Vec::new()));
        let capture = ModuleCapture { modules: Arc::clone(&modules) };
        let out =
            run_program(entry.program.as_ref(), RuntimeConfig::default(), Some(Box::new(capture)));
        assert!(
            out.termination.is_clean(),
            "{}: golden run failed: {:?}",
            entry.name,
            out.termination
        );
        let modules = modules.lock();
        assert!(!modules.is_empty(), "{}: no modules captured", entry.name);
        for module in modules.iter() {
            let findings = lint_module(module);
            if !findings.is_empty() {
                failures.push_str(&format!(
                    "\n== {} module `{}` ==\n{}",
                    entry.name,
                    module.name(),
                    render_text(&findings)
                ));
            }
            assert!(
                !findings.iter().any(|f| f.severity == Severity::Error),
                "linter errors in suite kernels:{failures}"
            );
        }
    }
    assert!(failures.is_empty(), "linter findings in suite kernels:{failures}");
}
